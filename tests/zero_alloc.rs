//! The steady-state serial clock must perform no per-cycle heap
//! allocation (the paper's Table I runs clock tens of millions of
//! cycles; allocator traffic in the hot loop dominated profiles before
//! the engine moved to reusable scratch buffers).
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up phase grows every reusable buffer to its steady-state
//! capacity, an identical measured phase must allocate nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hmc_sim::hmc_core::{topology, HmcSim};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, Packet, StorageMode};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// One harness round: inject mixed reads/writes round-robin until
/// back-pressure, clock once, drain all responses.
fn round(sim: &mut HmcSim, rng: &mut Lcg, tag: &mut u16, capacity: u64, num_links: u8) {
    for link in 0..num_links {
        loop {
            let addr = (rng.next() % (capacity / 64)) * 64;
            let write = rng.next().is_multiple_of(2);
            let packet = if write {
                let data = [0x5au8; 64];
                Packet::request(Command::Wr(BlockSize::B64), 0, addr, *tag, link, &data).unwrap()
            } else {
                Packet::request(Command::Rd(BlockSize::B64), 0, addr, *tag, link, &[]).unwrap()
            };
            match sim.send(0, link, packet) {
                Ok(()) => *tag = if *tag >= 0x1ff { 1 } else { *tag + 1 },
                Err(e) if e.is_stall() => break,
                Err(e) => panic!("send failed: {e}"),
            }
        }
    }
    sim.clock().unwrap();
    for link in 0..num_links {
        while sim.recv(0, link).is_ok() {}
    }
}

#[test]
fn steady_state_serial_clock_allocates_nothing() {
    let cfg = DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly);
    let mut sim = HmcSim::new(1, cfg).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();

    let capacity = sim.config().capacity_bytes;
    let num_links = sim.config().num_links;
    let mut rng = Lcg(0xFEED);
    let mut tag: u16 = 1;

    // Warm-up: grow every reusable buffer (event stages, drain plans,
    // queue-backed structures) to steady-state capacity.
    for _ in 0..256 {
        round(&mut sim, &mut rng, &mut tag, capacity, num_links);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..256 {
        round(&mut sim, &mut rng, &mut tag, capacity, num_links);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state clock() must not touch the allocator \
         ({} allocations in 256 loaded cycles)",
        after - before
    );
}
