//! Tracing integration (§IV.E): the right events fire for the right
//! scenarios, verbosity filters hold, and the Figure 5 series collector
//! observes a live run end-to-end.

use hmc_sim::hmc_core::{topology, ConflictPolicy, HmcSim, SimParams};
use hmc_sim::hmc_host::{run_workload, Host, RunConfig};
use hmc_sim::hmc_trace::{
    CountingSink, EventKind, SeriesCollector, SharedSink, TextSink, Tracer, VecSink, Verbosity,
};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, Packet, StorageMode};
use hmc_sim::hmc_workloads::RandomAccess;

fn traced(
    config: DeviceConfig,
    verbosity: Verbosity,
) -> (HmcSim, Host, SharedSink<CountingSink>) {
    let mut sim = HmcSim::new(1, config).unwrap();
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).unwrap();
    let sink = SharedSink::new(CountingSink::default());
    sim.set_tracer(Tracer::new(verbosity, Box::new(sink.clone())));
    let host = Host::attach(&sim, host_id).unwrap();
    (sim, host, sink)
}

#[test]
fn full_verbosity_records_completions_and_route_latency() {
    let cfg = DeviceConfig::small()
        .with_queue_depths(64, 32)
        .with_storage_mode(StorageMode::TimingOnly);
    let (mut sim, mut host, sink) = traced(cfg, Verbosity::Full);
    let mut w = RandomAccess::new(1, 1 << 28, BlockSize::B64, 50, 2_000);
    run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    let c = &sink.0.lock().counters;
    let reads = c.get(EventKind::ReadComplete);
    let writes = c.get(EventKind::WriteComplete);
    assert_eq!(reads + writes, 2_000, "every request completes exactly once");
    // Round-robin injection over 4 links into 16 vaults: 3 of 4 packets
    // land on a link not co-located with the destination quad.
    let route = c.get(EventKind::RouteLatency);
    let frac = route as f64 / 2_000.0;
    assert!(
        (0.70..0.80).contains(&frac),
        "expected ~75% route-latency events, got {frac}"
    );
}

#[test]
fn stalls_verbosity_suppresses_completions() {
    let cfg = DeviceConfig::small().with_storage_mode(StorageMode::TimingOnly);
    let (mut sim, mut host, sink) = traced(cfg, Verbosity::Stalls);
    let mut w = RandomAccess::new(1, 1 << 28, BlockSize::B64, 50, 500);
    run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    let c = &sink.0.lock().counters;
    assert_eq!(c.get(EventKind::ReadComplete), 0);
    assert_eq!(c.get(EventKind::WriteComplete), 0);
    assert_eq!(c.get(EventKind::TokenReturn), 0);
}

#[test]
fn off_verbosity_records_nothing() {
    let cfg = DeviceConfig::small().with_storage_mode(StorageMode::TimingOnly);
    let (mut sim, mut host, sink) = traced(cfg, Verbosity::Off);
    let mut w = RandomAccess::new(1, 1 << 28, BlockSize::B64, 50, 500);
    run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    assert_eq!(sink.0.lock().counters.total(), 0);
}

#[test]
fn bank_conflicts_are_recognized_under_pressure() {
    // Deep queues + a paper-sized device: random traffic must produce
    // bank conflicts that stage 3 recognizes and traces.
    let cfg = DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly);
    let (mut sim, mut host, sink) = traced(cfg, Verbosity::Stalls);
    let mut w = RandomAccess::new(1, 2 << 30, BlockSize::B64, 50, 20_000);
    run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    let conflicts = sink.0.lock().counters.get(EventKind::BankConflict);
    assert!(conflicts > 100, "only {conflicts} conflicts recognized");
}

#[test]
fn conflict_free_streams_trace_no_conflicts() {
    use hmc_sim::hmc_workloads::{Stream, StreamMode};
    let cfg = DeviceConfig::small()
        .with_queue_depths(64, 32)
        .with_storage_mode(StorageMode::TimingOnly);
    let (mut sim, mut host, sink) = traced(cfg, Verbosity::Stalls);
    // Unit-stride streaming rotates vaults and banks perfectly under the
    // low-interleave map: zero conflicts by construction.
    let mut w = Stream::unit(1 << 28, BlockSize::B128, StreamMode::ReadOnly, 5_000);
    run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    assert_eq!(sink.0.lock().counters.get(EventKind::BankConflict), 0);
}

#[test]
fn stall_queue_policy_traces_more_pressure_than_skip() {
    let run_with = |policy: ConflictPolicy| {
        let cfg =
            DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly);
        let mut sim = HmcSim::new(1, cfg).unwrap().with_params(SimParams {
            conflict_policy: policy,
            ..SimParams::default()
        });
        let host_id = sim.host_cube_id(0);
        topology::build_simple(&mut sim, host_id).unwrap();
        let mut host = Host::attach(&sim, host_id).unwrap();
        let mut w = RandomAccess::new(1, 2 << 30, BlockSize::B64, 50, 20_000);
        run_workload(&mut sim, &mut host, &mut w, RunConfig::default())
            .unwrap()
            .cycles
    };
    let skip = run_with(ConflictPolicy::SkipConflicting);
    let stall = run_with(ConflictPolicy::StallQueue);
    assert!(
        stall > skip,
        "in-order vaults ({stall} cycles) must be slower than reordering \
         vaults ({skip} cycles)"
    );
}

#[test]
fn text_sink_produces_parseable_lines() {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).unwrap();
    let buf = SharedSink::new(TextSink::new(Vec::<u8>::new()));
    sim.set_tracer(Tracer::new(Verbosity::Full, Box::new(buf.clone())));
    let req = Packet::request(Command::Rd(BlockSize::B64), 0, 0x1240, 3, 0, &[]).unwrap();
    sim.send(0, 0, req).unwrap();
    sim.clock().unwrap();
    sim.tracer_mut().flush();
    let guard = buf.0.lock();
    // Reach inside the TextSink buffer via a fresh render instead: use a
    // VecSink-backed comparison for structure.
    drop(guard);
    let vec_sink = SharedSink::new(VecSink::default());
    let mut sim2 = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host2 = sim2.host_cube_id(0);
    topology::build_simple(&mut sim2, host2).unwrap();
    sim2.set_tracer(Tracer::new(Verbosity::Full, Box::new(vec_sink.clone())));
    let req = Packet::request(Command::Rd(BlockSize::B64), 0, 0x1240, 3, 0, &[]).unwrap();
    sim2.send(0, 0, req).unwrap();
    sim2.clock().unwrap();
    let records = &vec_sink.0.lock().records;
    assert!(!records.is_empty());
    for r in records.iter() {
        let line = r.to_line();
        assert!(line.starts_with(&r.cycle.to_string()));
        assert!(line.contains("cube=0"));
    }
}

#[test]
fn series_collector_tracks_a_live_run() {
    let cfg = DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly);
    let mut sim = HmcSim::new(1, cfg).unwrap();
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).unwrap();
    let series = SharedSink::new(SeriesCollector::new(8, 16));
    sim.set_tracer(Tracer::new(Verbosity::Full, Box::new(series.clone())));
    let mut host = Host::attach(&sim, host_id).unwrap();
    let mut w = RandomAccess::new(1, 2 << 30, BlockSize::B64, 50, 10_000);
    let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();

    let collector = series.0.lock();
    let totals = collector.totals();
    assert_eq!(totals.reads + totals.writes, 10_000);
    assert!(totals.bank_conflicts > 0);
    assert!(!collector.rows().is_empty());
    let last_row_cycle = collector.rows().last().unwrap().cycle;
    assert!(last_row_cycle <= report.cycles + 8);
    // Per-vault tallies account for every completion.
    let vu = collector.vaults();
    let sum: u64 = vu.reads.iter().sum::<u64>() + vu.writes.iter().sum::<u64>();
    assert_eq!(sum, 10_000);
}
