//! Property-based tests over the protocol and addressing invariants:
//! packet codec roundtrips, CRC error detection, address-map bijectivity,
//! queue FIFO discipline, and end-to-end data integrity under random
//! operation sequences.

use proptest::prelude::*;

use hmc_sim::hmc_core::{decode_response, topology, HmcSim, PacketQueue, QueueEntry};
use hmc_sim::hmc_types::address::{AddressMap, Field};
use hmc_sim::hmc_types::crc::crc32k;
use hmc_sim::hmc_types::{
    BankFirstMap, BlockSize, Command, CustomMap, DeviceConfig, LinearMap, LowInterleaveMap,
    MapGeometry, Packet, PhysAddr,
};

fn arb_block_size() -> impl Strategy<Value = BlockSize> {
    prop::sample::select(BlockSize::ALL.to_vec())
}

fn arb_request_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        arb_block_size().prop_map(Command::Rd),
        arb_block_size().prop_map(Command::Wr),
        arb_block_size().prop_map(Command::PostedWr),
        Just(Command::TwoAdd8),
        Just(Command::Add16),
        Just(Command::Bwr),
        Just(Command::PostedTwoAdd8),
        Just(Command::PostedAdd16),
        Just(Command::PostedBwr),
        Just(Command::ModeRead),
        Just(Command::ModeWrite),
    ]
}

proptest! {
    #[test]
    fn packet_request_roundtrips_all_fields(
        cmd in arb_request_command(),
        cub in 0u8..8,
        addr in 0u64..(1 << 34),
        tag in 0u16..512,
        link in 0u8..8,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..cmd.request_data_bytes())
            .map(|i| seed.wrapping_add(i as u8))
            .collect();
        let p = Packet::request(cmd, cub, addr, tag, link, &data).unwrap();
        prop_assert_eq!(p.cmd().unwrap(), cmd);
        prop_assert_eq!(p.cub(), cub);
        prop_assert_eq!(p.addr(), addr);
        prop_assert_eq!(p.tag(), tag);
        prop_assert_eq!(p.slid(), link);
        prop_assert_eq!(p.lng(), cmd.request_flits());
        prop_assert_eq!(p.data_as_bytes(), data);
        prop_assert!(p.validate().is_ok());
    }

    #[test]
    fn header_bit_corruption_never_passes_validation(
        addr in 0u64..(1 << 34),
        tag in 0u16..512,
        bit in 0u32..64,
    ) {
        let mut p = Packet::request(Command::Rd(BlockSize::B64), 1, addr, tag, 0, &[]).unwrap();
        p.header ^= 1u64 << bit;
        // Either the CRC catches it, or (if it's a reserved bit) the CRC
        // changes; no silent pass of a *live* field flip is possible.
        let live = p.validate().is_ok();
        if live {
            // Only reserved-bit flips may still validate — but then the
            // CRC must have been recomputed... which we never did, so a
            // passing packet means the bit was reserved AND the CRC
            // covers it. CRC covers all 64 header bits, so nothing may
            // pass.
            prop_assert!(false, "corrupted header bit {bit} passed validation");
        }
    }

    #[test]
    fn crc_differs_for_different_payloads(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
        prop_assume!(a != b);
        // Not a cryptographic guarantee, but for short random inputs a
        // collision would almost surely indicate an implementation bug.
        prop_assume!(a.len() <= 144 && b.len() <= 144);
        if crc32k(&a) == crc32k(&b) {
            // Allow the astronomically rare true collision: lengths must
            // at least differ for it to be plausible.
            prop_assert_ne!(a.len(), b.len(), "CRC collision on equal-length short inputs");
        }
    }

    #[test]
    fn address_maps_are_bijective(
        order in prop::sample::select(vec![
            [Field::Vault, Field::Bank, Field::Row],
            [Field::Bank, Field::Vault, Field::Row],
            [Field::Row, Field::Bank, Field::Vault],
            [Field::Vault, Field::Row, Field::Bank],
            [Field::Row, Field::Vault, Field::Bank],
            [Field::Bank, Field::Row, Field::Vault],
        ]),
        addr_seed in any::<u64>(),
    ) {
        let g = MapGeometry { block_bytes: 64, vaults: 16, banks: 8, rows: 1 << 16 };
        let m = CustomMap::new(g, order).unwrap();
        let addr = PhysAddr::new(addr_seed % g.capacity_bytes()).unwrap();
        let d = m.decode(addr).unwrap();
        prop_assert!(d.vault < 16);
        prop_assert!(d.bank < 8);
        prop_assert!(d.row < (1 << 16));
        prop_assert!(d.offset < 64);
        prop_assert_eq!(m.encode(d).unwrap(), addr);
    }

    #[test]
    fn all_map_kinds_are_bijective_on_paper_geometries(
        kind in 0usize..4,
        preset in 0usize..4,
        addr_seed in any::<u64>(),
        other_seed in any::<u64>(),
    ) {
        // The four map kinds the conformance fuzzer sweeps (three
        // specification maps plus a custom ordering), over the real
        // paper geometries — up to the 8 GB preset, which spans the
        // full 33-bit offset range of the 34-bit HMC address space.
        let g = DeviceConfig::paper_configs()[preset].1.geometry();
        let maps: [Box<dyn AddressMap>; 4] = [
            Box::new(LowInterleaveMap::new(g).unwrap()),
            Box::new(BankFirstMap::new(g).unwrap()),
            Box::new(LinearMap::new(g).unwrap()),
            Box::new(CustomMap::new(g, [Field::Row, Field::Vault, Field::Bank]).unwrap()),
        ];
        let m = &maps[kind];

        // decode ∘ encode is the identity on every in-capacity address…
        let addr = PhysAddr::new(addr_seed % g.capacity_bytes()).unwrap();
        let d = m.decode(addr).unwrap();
        prop_assert!(d.vault < g.vaults);
        prop_assert!(d.bank < g.banks);
        prop_assert!(d.row < g.rows);
        prop_assert!(d.offset < g.block_bytes);
        prop_assert_eq!(m.encode(d).unwrap(), addr);

        // …and injective: distinct addresses never decode to the same
        // (vault, bank, row, offset) coordinates.
        let other = PhysAddr::new(other_seed % g.capacity_bytes()).unwrap();
        let e = m.decode(other).unwrap();
        if addr != other {
            prop_assert!(
                (d.vault, d.bank, d.row, d.offset) != (e.vault, e.bank, e.row, e.offset),
                "coordinate collision between {:#x} and {:#x}",
                addr.raw(), other.raw()
            );
        }

        // Same (vault, bank, row) block => the addresses differ only in
        // their offset bits (blocks never alias).
        if (d.vault, d.bank, d.row) == (e.vault, e.bank, e.row) {
            let back = m.encode(hmc_sim::hmc_types::DecodedAddr { offset: e.offset, ..d }).unwrap();
            prop_assert_eq!(back, other, "block aliasing between distinct addresses");
        }

        // Addresses past the device capacity are rejected, not wrapped.
        if g.capacity_bytes() < (1 << hmc_sim::hmc_types::PhysAddr::BITS) {
            let beyond = PhysAddr::new(g.capacity_bytes()).unwrap();
            prop_assert!(m.decode(beyond).is_err());
        }
    }

    #[test]
    fn standard_maps_agree_on_offset_and_ranges(addr_seed in any::<u64>()) {
        let g = MapGeometry { block_bytes: 128, vaults: 32, banks: 16, rows: 1 << 12 };
        let addr = PhysAddr::new(addr_seed % g.capacity_bytes()).unwrap();
        let maps: [&dyn AddressMap; 3] = [
            &LowInterleaveMap::new(g).unwrap(),
            &BankFirstMap::new(g).unwrap(),
            &LinearMap::new(g).unwrap(),
        ];
        let offsets: Vec<u32> = maps.iter().map(|m| m.decode(addr).unwrap().offset).collect();
        prop_assert!(offsets.windows(2).all(|w| w[0] == w[1]),
            "all maps share the in-block offset");
    }

    #[test]
    fn queue_preserves_fifo_under_random_push_pop(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut q = PacketQueue::new(16);
        let mut model: std::collections::VecDeque<u16> = Default::default();
        let mut next_tag = 0u16;
        for push in ops {
            if push && !q.is_full() {
                let p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, next_tag % 512, 0, &[]).unwrap();
                q.push(QueueEntry::new(p, 1, 0, 0)).unwrap();
                model.push_back(next_tag % 512);
                next_tag = next_tag.wrapping_add(1);
            } else if !push {
                let got = q.pop().map(|e| e.packet.tag());
                prop_assert_eq!(got, model.pop_front());
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_write_read_sequences_preserve_data(
        ops in prop::collection::vec((0u64..256, any::<u8>()), 1..40),
        seed in any::<u8>(),
    ) {
        // A reference model (HashMap of 16-byte blocks) must agree with
        // the simulated device after any random sequence of writes.
        let mut sim = HmcSim::new(1, DeviceConfig::small().with_queue_depths(64, 32)).unwrap();
        let host = sim.host_cube_id(0);
        topology::build_simple(&mut sim, host).unwrap();
        let mut model: std::collections::HashMap<u64, [u8; 16]> = Default::default();

        for (i, (block, value)) in ops.iter().enumerate() {
            let addr = block * 16;
            let data = [value.wrapping_add(seed); 16];
            let wr = Packet::request(
                Command::Wr(BlockSize::B16), 0, addr, (i % 512) as u16, 0, &data,
            ).unwrap();
            sim.send(0, 0, wr).unwrap();
            // Complete each write before the next to keep the model simple.
            let mut done = false;
            for _ in 0..32 {
                sim.clock().unwrap();
                if sim.recv(0, 0).is_ok() { done = true; break; }
            }
            prop_assert!(done);
            model.insert(addr, data);
        }
        for (addr, expect) in model {
            let rd = Packet::request(Command::Rd(BlockSize::B16), 0, addr, 0, 0, &[]).unwrap();
            sim.send(0, 0, rd).unwrap();
            let mut got = None;
            for _ in 0..32 {
                sim.clock().unwrap();
                if let Ok(p) = sim.recv(0, 0) {
                    got = Some(decode_response(&p).unwrap().data);
                    break;
                }
            }
            prop_assert_eq!(got.unwrap(), expect.to_vec());
        }
    }

    #[test]
    fn every_command_class_survives_device_transit(
        cmd in arb_request_command(),
        block in 0u64..1024,
    ) {
        prop_assume!(!cmd.is_mode()); // mode needs register addresses
        let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
        let host = sim.host_cube_id(0);
        topology::build_simple(&mut sim, host).unwrap();
        let addr = block * 128;
        let data: Vec<u8> = (0..cmd.request_data_bytes()).map(|i| i as u8).collect();
        let req = Packet::request(cmd, 0, addr, 5, 0, &data).unwrap();
        sim.send(0, 0, req).unwrap();
        let mut responses = 0;
        for _ in 0..32 {
            sim.clock().unwrap();
            while let Ok(p) = sim.recv(0, 0) {
                let info = decode_response(&p).unwrap();
                prop_assert!(info.is_ok());
                prop_assert_eq!(info.tag, 5);
                responses += 1;
            }
        }
        if cmd.response_command().is_some() {
            prop_assert_eq!(responses, 1, "{:?}", cmd);
        } else {
            prop_assert_eq!(responses, 0, "posted {:?}", cmd);
        }
        prop_assert!(sim.is_idle());
    }
}
