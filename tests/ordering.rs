//! Packet-ordering semantics (§III.C): weak ordering overall, but "all
//! reordering points present in a given HMC implementation must maintain
//! the order of a stream of packets from a specific link to a specific
//! bank within a vault."

use hmc_sim::hmc_core::{decode_response, topology, HmcSim};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, Packet};

fn sim() -> HmcSim {
    let mut s = HmcSim::new(1, DeviceConfig::small().with_queue_depths(64, 32)).unwrap();
    let host = s.host_cube_id(0);
    topology::build_simple(&mut s, host).unwrap();
    s
}

/// Drain all responses from one link, in delivery order.
fn drain_all(sim: &mut HmcSim, link: u8, expect: usize) -> Vec<u16> {
    let mut tags = Vec::new();
    for _ in 0..256 {
        sim.clock().unwrap();
        while let Ok(p) = sim.recv(0, link) {
            tags.push(p.tag());
        }
        if tags.len() >= expect {
            break;
        }
    }
    tags
}

#[test]
fn same_link_same_bank_writes_apply_in_order() {
    // Two writes from the same link to the same address: the second must
    // win. Repeat with ten versions to make reordering overwhelmingly
    // visible if it occurred.
    let mut s = sim();
    for version in 0..10u8 {
        let data = [version; 16];
        let wr =
            Packet::request(Command::Wr(BlockSize::B16), 0, 0x40, version as u16, 0, &data)
                .unwrap();
        s.send(0, 0, wr).unwrap();
    }
    drain_all(&mut s, 0, 10);
    let rd = Packet::request(Command::Rd(BlockSize::B16), 0, 0x40, 99, 0, &[]).unwrap();
    s.send(0, 0, rd).unwrap();
    let mut data = None;
    for _ in 0..32 {
        s.clock().unwrap();
        if let Ok(p) = s.recv(0, 0) {
            data = Some(decode_response(&p).unwrap().data);
            break;
        }
    }
    assert_eq!(data.unwrap(), vec![9u8; 16], "last write must win");
}

#[test]
fn write_then_read_same_address_is_deterministic() {
    // §III.C: "memory write requests followed by memory read requests
    // deliver correct and deterministic behavior."
    let mut s = sim();
    let data = [0xc3u8; 16];
    let wr = Packet::request(Command::Wr(BlockSize::B16), 0, 0x80, 1, 0, &data).unwrap();
    let rd = Packet::request(Command::Rd(BlockSize::B16), 0, 0x80, 2, 0, &[]).unwrap();
    s.send(0, 0, wr).unwrap();
    s.send(0, 0, rd).unwrap();
    let mut read_data = None;
    for _ in 0..32 {
        s.clock().unwrap();
        while let Ok(p) = s.recv(0, 0) {
            if p.tag() == 2 {
                read_data = Some(decode_response(&p).unwrap().data);
            }
        }
        if read_data.is_some() {
            break;
        }
    }
    assert_eq!(read_data.unwrap(), data.to_vec(), "read sees the write");
}

#[test]
fn same_stream_order_is_preserved_in_responses() {
    // All requests from one link to one (vault, bank): their responses
    // must return in issue order (the stream never reorders internally,
    // and the response path is FIFO per queue).
    let mut s = sim();
    // Address 0x0 and address block + vault stride * 0: same vault/bank
    // rows: use identical address with distinct tags.
    for tag in 0..8 {
        let rd = Packet::request(Command::Rd(BlockSize::B16), 0, 0x0, tag, 0, &[]).unwrap();
        s.send(0, 0, rd).unwrap();
    }
    let tags = drain_all(&mut s, 0, 8);
    assert_eq!(tags, (0..8).collect::<Vec<u16>>(), "stream order preserved");
}

#[test]
fn cross_vault_requests_may_complete_out_of_order() {
    // Weak ordering: requests to different vaults from one link may
    // overtake each other. We do not assert that they *must* reorder —
    // only that whatever order arrives carries correct payloads.
    let mut s = sim();
    // Write distinct data to two different vaults (block 0 -> vault 0,
    // block 1 -> vault 1 under low interleave with 128-byte blocks).
    for (i, addr) in [0u64, 128].iter().enumerate() {
        let data = [i as u8 + 1; 16];
        let wr = Packet::request(
            Command::Wr(BlockSize::B16),
            0,
            *addr,
            i as u16,
            0,
            &data,
        )
        .unwrap();
        s.send(0, 0, wr).unwrap();
    }
    drain_all(&mut s, 0, 2);
    for (i, addr) in [0u64, 128].iter().enumerate() {
        let rd = Packet::request(
            Command::Rd(BlockSize::B16),
            0,
            *addr,
            10 + i as u16,
            0,
            &[],
        )
        .unwrap();
        s.send(0, 0, rd).unwrap();
    }
    let mut seen = 0;
    for _ in 0..32 {
        s.clock().unwrap();
        while let Ok(p) = s.recv(0, 0) {
            let info = decode_response(&p).unwrap();
            let expect = (info.tag - 10 + 1) as u8;
            assert_eq!(info.data, vec![expect; 16]);
            seen += 1;
        }
        if seen == 2 {
            break;
        }
    }
    assert_eq!(seen, 2);
}

#[test]
fn responses_may_arrive_out_of_order_across_links() {
    // §V.C: "response packets … may arrive out of order. It is up to the
    // calling application to decode and correlate." Inject on all four
    // links and verify correlation by tag works regardless of order.
    let mut s = sim();
    let mut expected = std::collections::HashSet::new();
    for link in 0..4u8 {
        for j in 0..4u16 {
            let tag = link as u16 * 16 + j;
            let rd = Packet::request(
                Command::Rd(BlockSize::B16),
                0,
                (tag as u64) * 128,
                tag,
                link,
                &[],
            )
            .unwrap();
            s.send(0, link, rd).unwrap();
            expected.insert(tag);
        }
    }
    let mut got = std::collections::HashSet::new();
    for _ in 0..64 {
        s.clock().unwrap();
        for link in 0..4u8 {
            while let Ok(p) = s.recv(0, link) {
                assert!(got.insert(p.tag()), "duplicate tag {}", p.tag());
            }
        }
        if got.len() == expected.len() {
            break;
        }
    }
    assert_eq!(got, expected, "every tag correlates exactly once");
}

#[test]
fn responses_return_on_the_request_link() {
    // SLID association: a response exits the device on the link its
    // request entered (when that link serves the destination host).
    let mut s = sim();
    for link in 0..4u8 {
        let rd = Packet::request(
            Command::Rd(BlockSize::B16),
            0,
            link as u64 * 128,
            link as u16,
            link,
            &[],
        )
        .unwrap();
        s.send(0, link, rd).unwrap();
    }
    for _ in 0..8 {
        s.clock().unwrap();
    }
    for link in 0..4u8 {
        let p = s.recv(0, link).expect("response on its own link");
        assert_eq!(p.tag(), link as u16, "link {link} got its own response");
        assert!(s.recv(0, link).is_err(), "exactly one per link");
    }
}

#[test]
fn packets_for_free_vaults_pass_stalled_ones() {
    // §III.C: "Arriving packets that are destined for ancillary devices
    // may pass those waiting for local vault access." With a one-slot
    // vault queue, the second vault-0 packet stalls at the crossbar while
    // a later vault-1 packet overtakes it.
    let mut s = {
        let mut s = HmcSim::new(
            1,
            DeviceConfig::small().with_queue_depths(8, 1),
        )
        .unwrap();
        let host = s.host_cube_id(0);
        hmc_sim::hmc_core::topology::build_simple(&mut s, host).unwrap();
        s
    };
    // Blocks 0 and 16 → vault 0; block 1 → vault 1 (low interleave).
    let mk = |block: u64, tag| {
        Packet::request(Command::Rd(BlockSize::B16), 0, block * 128, tag, 0, &[]).unwrap()
    };
    s.send(0, 0, mk(0, 0)).unwrap(); // vault 0
    s.send(0, 0, mk(16, 1)).unwrap(); // vault 0 again: will stall
    s.send(0, 0, mk(1, 2)).unwrap(); // vault 1: passes tag 1
    s.clock().unwrap();
    let mut first_cycle: Vec<u16> = Vec::new();
    while let Ok(p) = s.recv(0, 0) {
        first_cycle.push(p.tag());
    }
    first_cycle.sort_unstable();
    assert_eq!(
        first_cycle,
        vec![0, 2],
        "the vault-1 packet must complete ahead of the stalled vault-0 one"
    );
    s.clock().unwrap();
    assert_eq!(s.recv(0, 0).unwrap().tag(), 1, "stalled packet follows");
}

#[test]
fn disconnecting_a_link_breaks_routing_gracefully() {
    let mut s = HmcSim::new(2, DeviceConfig::small()).unwrap();
    let host = s.host_cube_id(0);
    s.connect_host(0, 0, host).unwrap();
    s.connect_devices(0, 1, 1, 0).unwrap();
    s.finalize_topology().unwrap();
    // Reachable before...
    let rd = Packet::request(Command::Rd(BlockSize::B16), 1, 0, 1, 0, &[]).unwrap();
    s.send(0, 0, rd).unwrap();
    let mut ok = false;
    for _ in 0..8 {
        s.clock().unwrap();
        if let Ok(p) = s.recv(0, 0) {
            ok = p.errstat().unwrap().is_ok();
            break;
        }
    }
    assert!(ok);
    // ...misrouted after the chain link is cut.
    s.disconnect(0, 1).unwrap();
    let rd = Packet::request(Command::Rd(BlockSize::B16), 1, 0, 2, 0, &[]).unwrap();
    s.send(0, 0, rd).unwrap();
    let mut status = None;
    for _ in 0..8 {
        s.clock().unwrap();
        if let Ok(p) = s.recv(0, 0) {
            status = Some(p.errstat().unwrap());
            break;
        }
    }
    assert_eq!(
        status,
        Some(hmc_sim::hmc_types::ResponseStatus::Misroute)
    );
}
