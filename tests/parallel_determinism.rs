//! The sharded clock engine must be bit-identical to the serial engine:
//! same completion cycle for every response, same response tag/payload
//! streams on every link, same per-category trace-event counts. These
//! tests drive identical seeded workloads through `threads = 1` and
//! `threads = 4` simulations and compare everything observable.

use hmc_sim::hmc_core::{topology, FaultConfig, HmcSim};
use hmc_sim::hmc_trace::{CountingSink, EventKind, SharedSink, Tracer, Verbosity};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, Packet};

/// One observed response: delivery cycle, link, tag, first payload word.
type Observation = (u64, u8, u16, u64);

/// Everything [`run`] observes: the response stream, per-kind trace-event
/// counts, and the completion cycle.
type RunResult = (Vec<Observation>, Vec<u64>, u64);

/// A deterministic glibc-style LCG — the workload generator for these
/// tests, kept local so the op stream can never drift under us.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// Drive `requests` mixed reads/writes through one device of `cfg` with
/// the given thread count; record every response in delivery order plus
/// the per-kind trace-event counts and final cycle/statistics.
fn run(cfg: DeviceConfig, threads: usize, requests: u64, seed: u64) -> RunResult {
    run_with_faults(cfg, threads, requests, seed, None).0
}

/// [`run`], optionally with link-error injection armed; also returns the
/// fault statistics `(injected, detected, poisoned)` for determinism
/// comparison.
fn run_with_faults(
    cfg: DeviceConfig,
    threads: usize,
    requests: u64,
    seed: u64,
    faults: Option<FaultConfig>,
) -> (RunResult, (u64, u64, u64)) {
    let mut sim = HmcSim::new(1, cfg).unwrap().with_threads(threads);
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    if let Some(f) = faults {
        sim.enable_fault_injection(f);
    }
    let counting = SharedSink::new(CountingSink::default());
    sim.set_tracer(Tracer::new(Verbosity::Full, Box::new(counting.clone())));

    let num_links = sim.config().num_links;
    let capacity = sim.config().capacity_bytes;
    let mut rng = Lcg(seed);
    let mut observations = Vec::new();
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut next_tag: u16 = 1;

    while received < requests {
        // Inject round-robin across links until back-pressure or done.
        if sent < requests {
            'inject: for link in 0..num_links {
                loop {
                    if sent >= requests {
                        break 'inject;
                    }
                    let addr = (rng.next() % (capacity / 64)) * 64;
                    let tag = next_tag;
                    let write = rng.next().is_multiple_of(2);
                    let packet = if write {
                        let mut data = [0u8; 64];
                        data[..8].copy_from_slice(&rng.next().to_le_bytes());
                        Packet::request(Command::Wr(BlockSize::B64), 0, addr, tag, link, &data)
                            .unwrap()
                    } else {
                        Packet::request(Command::Rd(BlockSize::B64), 0, addr, tag, link, &[])
                            .unwrap()
                    };
                    match sim.send(0, link, packet) {
                        Ok(()) => {
                            sent += 1;
                            next_tag = if next_tag >= 0x1ff { 1 } else { next_tag + 1 };
                        }
                        Err(e) if e.is_stall() => break,
                        Err(e) => panic!("send failed: {e}"),
                    }
                }
            }
        }

        sim.clock().unwrap();

        for link in 0..num_links {
            while let Ok(p) = sim.recv(0, link) {
                let word = p.data_words().first().copied().unwrap_or(0);
                observations.push((sim.current_clock(), link, p.tag(), word));
                received += 1;
            }
        }
        assert!(
            sim.current_clock() < 1_000_000,
            "workload did not converge ({received}/{requests} responses)"
        );
    }

    let fault_stats = sim
        .fault_state()
        .map_or((0, 0, 0), |f| (f.injected, f.detected, f.poisoned));
    let counters = &counting.0.lock().counters;
    let counts: Vec<u64> = EventKind::ALL.iter().map(|&k| counters.get(k)).collect();
    (
        (observations, counts, sim.current_clock()),
        fault_stats,
    )
}

fn assert_bit_identical(cfg: DeviceConfig, requests: u64, seed: u64) {
    let (obs_serial, counts_serial, cycles_serial) = run(cfg.clone(), 1, requests, seed);
    let (obs_parallel, counts_parallel, cycles_parallel) = run(cfg, 4, requests, seed);

    assert_eq!(
        cycles_serial, cycles_parallel,
        "completion cycle counts diverge between serial and sharded engines"
    );
    for (i, &kind) in EventKind::ALL.iter().enumerate() {
        assert_eq!(
            counts_serial[i], counts_parallel[i],
            "{kind:?} trace-event counts diverge"
        );
    }
    assert_eq!(
        obs_serial.len(),
        obs_parallel.len(),
        "response counts diverge"
    );
    for (a, b) in obs_serial.iter().zip(&obs_parallel) {
        assert_eq!(a, b, "response stream diverges (cycle, link, tag, payload)");
    }
}

#[test]
fn small_config_is_bit_identical_across_threads() {
    assert_bit_identical(DeviceConfig::small(), 2_000, 0xD15EA5E);
}

#[test]
fn paper_4link_8bank_is_bit_identical_across_threads() {
    assert_bit_identical(DeviceConfig::paper_4link_8bank_2gb(), 2_000, 42);
}

#[test]
fn fault_injection_is_bit_identical_across_one_two_four_eight_threads() {
    // Error injection adds a second seeded random stream (the SERDES
    // corruption rolls) and the retry/retransmission timing path; all of
    // it must stay on the deterministic serial schedule regardless of
    // shard count. Compare full observable state across 1/2/4/8 threads.
    let faults = FaultConfig {
        packet_error_rate: 0.02,
        retry_cycles: 6,
        seed: 0xFA_0175,
        ..FaultConfig::default()
    };
    let cfg = DeviceConfig::small();
    let (reference, ref_faults) =
        run_with_faults(cfg.clone(), 1, 1_500, 0xACC01ADE, Some(faults));
    assert!(
        ref_faults.0 > 0 && ref_faults.1 > 0,
        "the error rate must actually inject and detect corruptions \
         (injected {}, detected {})",
        ref_faults.0,
        ref_faults.1
    );
    for threads in [2, 4, 8] {
        let (run, fault_stats) =
            run_with_faults(cfg.clone(), threads, 1_500, 0xACC01ADE, Some(faults));
        assert_eq!(
            fault_stats, ref_faults,
            "{threads}-thread injected/detected counters diverge from serial"
        );
        assert_eq!(
            run.2, reference.2,
            "{threads}-thread completion cycle diverges from serial"
        );
        assert_eq!(
            run.0, reference.0,
            "{threads}-thread response stream diverges from serial"
        );
        assert_eq!(
            run.1, reference.1,
            "{threads}-thread trace-event counts diverge from serial"
        );
    }
}

#[test]
fn retry_exhaustion_is_bit_identical_across_threads() {
    // Same contract as above, but with a retry budget tight enough that
    // links actually go down: the exhaustion aborts, poisoned error
    // responses, and retraining windows must all land on the identical
    // cycles regardless of shard count.
    let faults = FaultConfig {
        packet_error_rate: 0.3,
        retry_cycles: 5,
        retry_limit: 1,
        retrain_cycles: 24,
        seed: 0x0015_04ED,
    };
    let cfg = DeviceConfig::small();
    let (reference, ref_faults) =
        run_with_faults(cfg.clone(), 1, 1_000, 0x0BAD_C0DE, Some(faults));
    assert!(
        ref_faults.2 > 0,
        "the tight retry budget must actually poison packets (poisoned {})",
        ref_faults.2
    );
    for threads in [2, 4, 8] {
        let (run, fault_stats) =
            run_with_faults(cfg.clone(), threads, 1_000, 0x0BAD_C0DE, Some(faults));
        assert_eq!(
            fault_stats, ref_faults,
            "{threads}-thread injected/detected/poisoned counters diverge"
        );
        assert_eq!(
            (run.2, &run.0, &run.1),
            (reference.2, &reference.0, &reference.1),
            "{threads}-thread observable state diverges from serial"
        );
    }
}

#[test]
fn clock_batch_matches_per_cycle_clocking() {
    // Batched parallel clocking must equal cycle-at-a-time serial
    // clocking on an idle-then-loaded device.
    let build = |threads: usize| {
        let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap().with_threads(threads);
        let host = sim.host_cube_id(0);
        topology::build_simple(&mut sim, host).unwrap();
        let p = Packet::request(Command::Rd(BlockSize::B64), 0, 0x40, 7, 0, &[]).unwrap();
        sim.send(0, 0, p).unwrap();
        sim
    };
    let mut serial = build(1);
    for _ in 0..16 {
        serial.clock().unwrap();
    }
    let mut batched = build(4);
    batched.clock_batch(16).unwrap();
    assert_eq!(serial.current_clock(), batched.current_clock());
    let a = serial.recv(0, 0).unwrap();
    let b = batched.recv(0, 0).unwrap();
    assert_eq!(a.tag(), b.tag());
    assert_eq!(a.data_words(), b.data_words());
}
