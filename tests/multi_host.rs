//! Multiple hosts sharing one simulation object: the link structure
//! "supports the ability to attach devices to both hosts (processors) or
//! other HMC devices" (§III.A), and hosts are ordinary cube IDs above the
//! device range (§V.B) — so several processors can share a cube.

use hmc_sim::hmc_core::HmcSim;
use hmc_sim::hmc_host::{run_workload, Host, RunConfig};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, Packet, StorageMode};
use hmc_sim::hmc_workloads::{RandomAccess, Workload};

/// One device, two hosts: host A on links 0–1, host B on links 2–3.
fn dual_host_sim() -> (HmcSim, u8, u8) {
    let mut sim = HmcSim::new(
        1,
        DeviceConfig::small()
            .with_queue_depths(32, 16)
            .with_storage_mode(StorageMode::Functional),
    )
    .unwrap();
    let host_a = sim.host_cube_id(0);
    let host_b = sim.host_cube_id(1);
    sim.connect_host(0, 0, host_a).unwrap();
    sim.connect_host(0, 1, host_a).unwrap();
    sim.connect_host(0, 2, host_b).unwrap();
    sim.connect_host(0, 3, host_b).unwrap();
    sim.finalize_topology().unwrap();
    (sim, host_a, host_b)
}

#[test]
fn hosts_discover_only_their_own_links() {
    let (sim, host_a, host_b) = dual_host_sim();
    let a = Host::attach(&sim, host_a).unwrap();
    let b = Host::attach(&sim, host_b).unwrap();
    assert_eq!(a.ports(), &[(0, 0), (0, 1)]);
    assert_eq!(b.ports(), &[(0, 2), (0, 3)]);
}

#[test]
fn responses_return_to_the_issuing_host() {
    let (mut sim, _a, _b) = dual_host_sim();
    // Host A sends on link 0, host B on link 2, same address.
    let ra = Packet::request(Command::Rd(BlockSize::B16), 0, 0x40, 1, 0, &[]).unwrap();
    let rb = Packet::request(Command::Rd(BlockSize::B16), 0, 0x40, 2, 2, &[]).unwrap();
    sim.send(0, 0, ra).unwrap();
    sim.send(0, 2, rb).unwrap();
    for _ in 0..8 {
        sim.clock().unwrap();
    }
    let pa = sim.recv(0, 0).expect("host A response on its link");
    let pb = sim.recv(0, 2).expect("host B response on its link");
    assert_eq!(pa.tag(), 1);
    assert_eq!(pb.tag(), 2);
    assert!(sim.recv(0, 1).is_err());
    assert!(sim.recv(0, 3).is_err());
}

#[test]
fn two_hosts_run_workloads_concurrently() {
    let (mut sim, host_a, host_b) = dual_host_sim();
    let mut a = Host::attach(&sim, host_a).unwrap();
    let mut b = Host::attach(&sim, host_b).unwrap();
    let mut wa = RandomAccess::new(1, 1 << 24, BlockSize::B64, 50, 1_000);
    let mut wb = RandomAccess::new(2, 1 << 24, BlockSize::B64, 50, 1_000);

    // Interleave the two drivers by hand on a shared clock.
    let mut pending_a = None;
    let mut pending_b = None;
    let mut safety = 0u32;
    loop {
        for (host, workload, pending) in [
            (&mut a, &mut wa, &mut pending_a),
            (&mut b, &mut wb, &mut pending_b),
        ] {
            loop {
                let op = match pending.take() {
                    Some(op) => op,
                    None => match workload.next_op() {
                        Some(op) => op,
                        None => break,
                    },
                };
                if !host.try_issue(&mut sim, 0, &op).unwrap() {
                    *pending = Some(op);
                    break;
                }
            }
        }
        sim.clock().unwrap();
        a.drain(&mut sim).unwrap();
        b.drain(&mut sim).unwrap();
        if a.stats.completed == 1_000 && b.stats.completed == 1_000 {
            break;
        }
        safety += 1;
        assert!(safety < 100_000, "dual-host run did not converge");
    }
    assert_eq!(a.stats.errors + b.stats.errors, 0);
    assert_eq!(a.stats.orphans + b.stats.orphans, 0, "no cross-host leaks");
}

#[test]
fn shared_device_with_driver_loop_per_host_in_sequence() {
    // Simpler integration: run host A's workload to completion, then
    // host B's, against the same device state.
    let (mut sim, host_a, host_b) = dual_host_sim();
    let mut a = Host::attach(&sim, host_a).unwrap();
    let mut b = Host::attach(&sim, host_b).unwrap();
    let ra = run_workload(
        &mut sim,
        &mut a,
        &mut RandomAccess::new(3, 1 << 24, BlockSize::B64, 50, 500),
        RunConfig::default(),
    )
    .unwrap();
    let rb = run_workload(
        &mut sim,
        &mut b,
        &mut RandomAccess::new(4, 1 << 24, BlockSize::B64, 50, 500),
        RunConfig::default(),
    )
    .unwrap();
    assert_eq!(ra.completed, 500);
    assert_eq!(rb.completed, 500);
}

#[test]
fn chained_device_serves_a_second_host_through_the_chain() {
    // host A - dev0 - dev1 - host B: both hosts reach both devices.
    let mut sim = HmcSim::new(2, DeviceConfig::small()).unwrap();
    let host_a = sim.host_cube_id(0);
    let host_b = sim.host_cube_id(1);
    sim.connect_host(0, 0, host_a).unwrap();
    sim.connect_devices(0, 1, 1, 0).unwrap();
    sim.connect_host(1, 1, host_b).unwrap();
    sim.finalize_topology().unwrap();

    // Host A writes device 1; host B reads it back.
    let data = [0xabu8; 16];
    let wr = Packet::request(Command::Wr(BlockSize::B16), 1, 0x200, 1, 0, &data).unwrap();
    sim.send(0, 0, wr).unwrap();
    for _ in 0..16 {
        sim.clock().unwrap();
        if sim.recv(0, 0).is_ok() {
            break;
        }
    }
    let rd = Packet::request(Command::Rd(BlockSize::B16), 1, 0x200, 2, 1, &[]).unwrap();
    sim.send(1, 1, rd).unwrap();
    let mut got = None;
    for _ in 0..16 {
        sim.clock().unwrap();
        if let Ok(p) = sim.recv(1, 1) {
            got = Some(p.data_as_bytes());
            break;
        }
    }
    assert_eq!(got.unwrap(), data.to_vec(), "host B sees host A's write");
}
