//! Figure 2 correspondence: the physical HMC structure and the HMC-Sim
//! software structure must mirror each other — links ↔ crossbars ↔ quads,
//! four vaults per quad, banks per vault, DRAMs per bank.

use hmc_sim::hmc_core::{HmcSim, Quad};
use hmc_sim::hmc_types::{DeviceConfig, LinkSpeed};

#[test]
fn four_link_hierarchy_counts_match_figure_2() {
    let cfg = DeviceConfig::paper_4link_8bank_2gb();
    let sim = HmcSim::new(1, cfg.clone()).unwrap();
    let dev = sim.device(0).unwrap();

    assert_eq!(dev.links.len(), 4, "four external links");
    assert_eq!(dev.xbars.len(), 4, "one crossbar unit per link");
    assert_eq!(dev.quads.len(), 4, "one quad per link");
    assert_eq!(dev.vaults.len(), 16, "sixteen vaults (four per quad)");
    for quad in &dev.quads {
        assert_eq!(quad.vaults.len(), 4, "each quad owns four vaults");
    }
    for vault in &dev.vaults {
        assert_eq!(vault.mem.num_banks(), 8, "eight banks per vault");
        assert_eq!(
            vault.mem.bank(0).unwrap().drams().dies(),
            cfg.drams_per_bank,
            "DRAM block per bank"
        );
    }
}

#[test]
fn eight_link_hierarchy_scales() {
    let cfg = DeviceConfig::paper_8link_16bank_8gb();
    let sim = HmcSim::new(1, cfg).unwrap();
    let dev = sim.device(0).unwrap();
    assert_eq!(dev.links.len(), 8);
    assert_eq!(dev.quads.len(), 8);
    assert_eq!(dev.vaults.len(), 32);
    assert_eq!(dev.vaults[0].mem.num_banks(), 16);
}

#[test]
fn links_pair_with_their_closest_quad() {
    // §IV.A: "Each link is physically closest to the respectively
    // numbered quad unit, which contains a block of four vaults."
    let sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let dev = sim.device(0).unwrap();
    for (i, link) in dev.links.iter().enumerate() {
        assert_eq!(link.quad as usize, i);
        let quad = &dev.quads[i];
        for v in quad.vaults {
            assert_eq!(Quad::of_vault(v) as usize, i);
        }
    }
}

#[test]
fn quads_partition_the_vaults() {
    let sim = HmcSim::new(1, DeviceConfig::paper_8link_8bank_4gb()).unwrap();
    let dev = sim.device(0).unwrap();
    let mut seen = std::collections::HashSet::new();
    for quad in &dev.quads {
        for v in quad.vaults {
            assert!(seen.insert(v), "vault {v} owned by two quads");
        }
    }
    assert_eq!(seen.len(), dev.vaults.len(), "every vault has an owner");
}

#[test]
fn capacity_distributes_across_the_hierarchy() {
    for (label, cfg) in DeviceConfig::paper_configs() {
        let total: u64 = cfg.num_vaults as u64
            * cfg.banks_per_vault as u64
            * cfg.bank_capacity_bytes();
        assert_eq!(total, cfg.capacity_bytes, "{label}");
    }
}

#[test]
fn bandwidth_limits_follow_the_spec() {
    // §III.A: four-link devices run 10/12.5/15 Gbps; eight-link only 10.
    assert!(LinkSpeed::Gbps15.legal_for_links(4));
    assert!(!LinkSpeed::Gbps15.legal_for_links(8));
    let mut cfg = DeviceConfig::paper_8link_8bank_4gb();
    cfg.link_speed = LinkSpeed::Gbps12_5;
    assert!(HmcSim::new(1, cfg).is_err());
}
