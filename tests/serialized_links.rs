//! The optional serialized-link model: when `link_flits_per_cycle` is
//! set, each link direction honours a physical FLIT beat rate, with debt
//! carried across cycles for oversized packets.

use hmc_sim::hmc_core::{topology, HmcSim, SimParams};
use hmc_sim::hmc_host::{run_workload, Host, RunConfig};
use hmc_sim::hmc_types::{BlockSize, DeviceConfig, StorageMode};
use hmc_sim::hmc_workloads::{RandomAccess, Stream, StreamMode};

fn sim_with(flits: Option<usize>) -> (HmcSim, Host) {
    let cfg = DeviceConfig::small()
        .with_queue_depths(32, 16)
        .with_storage_mode(StorageMode::TimingOnly);
    let mut sim = HmcSim::new(1, cfg).unwrap().with_params(SimParams {
        link_flits_per_cycle: flits,
        ..SimParams::default()
    });
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).unwrap();
    let host = Host::attach(&sim, host_id).unwrap();
    (sim, host)
}

#[test]
fn read_only_traffic_hits_the_line_rate_exactly() {
    // RD64 requests are one FLIT each; at 1 FLIT/cycle/link over 4 links
    // the steady-state inbound rate is exactly 4 requests per cycle.
    let (mut sim, mut host) = sim_with(Some(1));
    let mut w = RandomAccess::new(1, 1 << 28, BlockSize::B64, 100, 8_192);
    let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    let rate = report.throughput;
    assert!(
        (3.7..=4.01).contains(&rate),
        "1-FLIT reads over 4 serialized links should run at ~4/cycle, got {rate}"
    );
}

#[test]
fn write_heavy_traffic_amortizes_flit_debt() {
    // WR64 requests are five FLITs: the long-run rate must be one fifth
    // of the read-only rate (debt carrying, not per-cycle rounding).
    let (mut sim, mut host) = sim_with(Some(1));
    let mut w = Stream::unit(1 << 24, BlockSize::B64, StreamMode::WriteOnly, 4_096);
    let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    let rate = report.throughput;
    assert!(
        (0.74..=0.81).contains(&rate),
        "5-FLIT writes over 4 serialized links should run at ~0.8/cycle, got {rate}"
    );
}

#[test]
fn wider_beat_budgets_scale_throughput() {
    let run = |flits: Option<usize>| {
        let (mut sim, mut host) = sim_with(flits);
        let mut w = RandomAccess::new(2, 1 << 28, BlockSize::B64, 50, 8_192);
        run_workload(&mut sim, &mut host, &mut w, RunConfig::default())
            .unwrap()
            .cycles
    };
    let beat1 = run(Some(1));
    let beat4 = run(Some(4));
    let unserialized = run(None);
    assert!(beat1 > beat4, "1-beat links ({beat1}) slower than 4-beat ({beat4})");
    assert!(
        beat4 > unserialized,
        "4-beat links ({beat4}) slower than the packet-arbitration model ({unserialized})"
    );
    // Throughput ratio between beat budgets is roughly proportional.
    let ratio = beat1 as f64 / beat4 as f64;
    assert!(
        (2.5..=4.5).contains(&ratio),
        "quadrupling beats should roughly quadruple throughput (ratio {ratio:.2})"
    );
}

#[test]
fn serialization_changes_timing_not_results() {
    let run = |flits: Option<usize>| {
        let (mut sim, mut host) = sim_with(flits);
        let mut w = RandomAccess::new(3, 1 << 28, BlockSize::B64, 50, 2_000);
        let r = run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
        (r.completed, r.errors)
    };
    assert_eq!(run(Some(1)), (2_000, 0));
    assert_eq!(run(None), (2_000, 0));
}

#[test]
fn zero_beat_budget_is_clamped_not_wedged() {
    // A zero FLIT budget could never drain a packet; the engine clamps
    // it to one beat instead of deadlocking.
    let (mut sim, mut host) = sim_with(Some(0));
    let mut w = RandomAccess::new(4, 1 << 28, BlockSize::B64, 100, 256);
    let report = run_workload(
        &mut sim,
        &mut host,
        &mut w,
        RunConfig {
            max_cycles: 1 << 16,
            ..RunConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.completed, 256);
}
