//! Periodic DRAM refresh (optional extension): banks rotate out of
//! service on a configurable schedule, costing throughput but never
//! correctness.

use hmc_sim::hmc_core::{topology, HmcSim, RefreshParams, SimParams};
use hmc_sim::hmc_host::{run_workload, Host, RunConfig};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, Packet, StorageMode};
use hmc_sim::hmc_workloads::RandomAccess;

fn sim_with(refresh: Option<RefreshParams>) -> HmcSim {
    let cfg = DeviceConfig::small()
        .with_queue_depths(32, 16)
        .with_storage_mode(StorageMode::TimingOnly);
    let mut s = HmcSim::new(1, cfg).unwrap().with_params(SimParams {
        refresh,
        ..SimParams::default()
    });
    let host = s.host_cube_id(0);
    topology::build_simple(&mut s, host).unwrap();
    s
}

#[test]
fn a_request_to_a_refreshing_bank_waits_out_the_window() {
    // Refresh window covers cycles 0..8 of every 16-cycle interval, and
    // at window 0 vault 0 refreshes bank 0. Address 0 targets exactly
    // vault 0 / bank 0 under the low-interleave map.
    let mut s = sim_with(Some(RefreshParams {
        interval: 16,
        duration: 8,
    }));
    let rd = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 1, 0, &[]).unwrap();
    s.send(0, 0, rd).unwrap();
    let mut delivered_at = None;
    for _ in 0..32 {
        s.clock().unwrap();
        if s.recv(0, 0).is_ok() {
            delivered_at = Some(s.current_clock());
            break;
        }
    }
    let t = delivered_at.expect("request completes after the window");
    assert!(
        t >= 8,
        "the bank was under refresh until cycle 8, delivery at {t}"
    );
}

#[test]
fn requests_to_other_banks_proceed_during_refresh() {
    let mut s = sim_with(Some(RefreshParams {
        interval: 1_000,
        duration: 1_000, // bank 0 of vault 0 is under refresh forever
    }));
    // Bank 1 of vault 0: block index = 16 (wraps vaults) → vault 0,
    // bank 1 under low interleave with 128-byte blocks.
    let rd = Packet::request(Command::Rd(BlockSize::B16), 0, 16 * 128, 1, 0, &[]).unwrap();
    s.send(0, 0, rd).unwrap();
    s.clock().unwrap();
    assert!(s.recv(0, 0).is_ok(), "unrefreshed banks stay in service");
}

#[test]
fn refresh_costs_throughput_but_not_correctness() {
    let run = |refresh: Option<RefreshParams>| {
        let mut s = sim_with(refresh);
        let host_id = s.host_cube_id(0);
        let mut host = Host::attach(&s, host_id).unwrap();
        let mut w = RandomAccess::new(1, 1 << 28, BlockSize::B64, 50, 5_000);
        run_workload(&mut s, &mut host, &mut w, RunConfig::default()).unwrap()
    };
    let clean = run(None);
    let refreshed = run(Some(RefreshParams {
        interval: 8,
        duration: 4, // half of every interval: one bank of eight down
    }));
    assert_eq!(clean.completed, 5_000);
    assert_eq!(refreshed.completed, 5_000, "refresh never drops requests");
    assert_eq!(refreshed.errors, 0);
    assert!(
        refreshed.cycles > clean.cycles,
        "refresh ({}) must cost cycles over the clean run ({})",
        refreshed.cycles,
        clean.cycles
    );
}

#[test]
fn refresh_pressure_scales_with_duty_cycle() {
    let run = |duration: u64| {
        let mut s = sim_with(Some(RefreshParams {
            interval: 16,
            duration,
        }));
        let host_id = s.host_cube_id(0);
        let mut host = Host::attach(&s, host_id).unwrap();
        let mut w = RandomAccess::new(2, 1 << 28, BlockSize::B64, 50, 5_000);
        run_workload(&mut s, &mut host, &mut w, RunConfig::default())
            .unwrap()
            .cycles
    };
    let light = run(2);
    let heavy = run(12);
    assert!(
        heavy > light,
        "75% duty ({heavy}) must cost more than 12.5% duty ({light})"
    );
}
