//! In-band register access (§V.D): MODE_READ and MODE_WRITE packets route
//! over the memory links — including through chained devices — while JTAG
//! access stays out of band.

use hmc_sim::hmc_core::{decode_response, regs, topology, HmcSim, ResponseInfo};
use hmc_sim::hmc_types::{Command, DeviceConfig, Packet, ResponseStatus};

fn pump(sim: &mut HmcSim, link: u8) -> ResponseInfo {
    for _ in 0..32 {
        sim.clock().unwrap();
        if let Ok(p) = sim.recv(0, link) {
            return decode_response(&p).unwrap();
        }
    }
    panic!("no response");
}

fn mode_write_packet(cub: u8, reg: u32, value: u64, tag: u16) -> Packet {
    let mut payload = [0u8; 16];
    payload[..8].copy_from_slice(&value.to_le_bytes());
    Packet::request(Command::ModeWrite, cub, reg as u64, tag, 0, &payload).unwrap()
}

fn mode_read_packet(cub: u8, reg: u32, tag: u16) -> Packet {
    Packet::request(Command::ModeRead, cub, reg as u64, tag, 0, &[]).unwrap()
}

#[test]
fn mode_write_then_read_roundtrips() {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();

    sim.send(0, 0, mode_write_packet(0, regs::GC, 0xfeed_f00d, 1)).unwrap();
    let r = pump(&mut sim, 0);
    assert_eq!(r.cmd, Command::ModeWriteResponse);
    assert!(r.is_ok());

    sim.send(0, 0, mode_read_packet(0, regs::GC, 2)).unwrap();
    let r = pump(&mut sim, 0);
    assert_eq!(r.cmd, Command::ModeReadResponse);
    assert_eq!(
        u64::from_le_bytes(r.data[..8].try_into().unwrap()),
        0xfeed_f00d
    );
    // The same value is visible via JTAG — one register file, two paths.
    assert_eq!(sim.jtag_reg_read(0, regs::GC).unwrap(), 0xfeed_f00d);
}

#[test]
fn mode_packets_route_to_chained_devices() {
    // "These packet types will route to the destination cube ID as would
    // any other packet type" (§V.D).
    let mut sim = HmcSim::new(3, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_chain(&mut sim, host).unwrap();

    sim.send(0, 0, mode_write_packet(2, regs::GC, 77, 1)).unwrap();
    let r = pump(&mut sim, 0);
    assert!(r.is_ok());
    assert_eq!(sim.jtag_reg_read(2, regs::GC).unwrap(), 77);
    assert_eq!(sim.jtag_reg_read(0, regs::GC).unwrap(), 0, "only device 2");

    sim.send(0, 0, mode_read_packet(2, regs::GC, 2)).unwrap();
    let r = pump(&mut sim, 0);
    assert_eq!(u64::from_le_bytes(r.data[..8].try_into().unwrap()), 77);
}

#[test]
fn mode_write_to_read_only_register_errors() {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    sim.send(0, 0, mode_write_packet(0, regs::RVID, 1, 1)).unwrap();
    let r = pump(&mut sim, 0);
    assert_eq!(r.cmd, Command::ErrorResponse);
    assert_eq!(r.status, ResponseStatus::CommandError);
}

#[test]
fn mode_access_to_unknown_register_errors() {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    sim.send(0, 0, mode_read_packet(0, 0x00de_ad00, 1)).unwrap();
    let r = pump(&mut sim, 0);
    assert_eq!(r.status, ResponseStatus::AddressError);
}

#[test]
fn mode_write_to_rws_register_self_clears() {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    sim.send(0, 0, mode_write_packet(0, regs::EDR0, 0xff, 1)).unwrap();
    let r = pump(&mut sim, 0);
    assert!(r.is_ok());
    // The write landed mid-cycle and cleared at that cycle's edge (or a
    // later one); after pumping, the register must read zero.
    assert_eq!(sim.jtag_reg_read(0, regs::EDR0).unwrap(), 0);
}

#[test]
fn feat_register_reports_geometry_in_band() {
    let mut sim = HmcSim::new(1, DeviceConfig::paper_8link_16bank_8gb()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    sim.send(0, 0, mode_read_packet(0, regs::FEAT, 1)).unwrap();
    let r = pump(&mut sim, 0);
    let feat = u64::from_le_bytes(r.data[..8].try_into().unwrap());
    assert_eq!(feat & 0xff, 8, "8 GB");
    assert_eq!((feat >> 8) & 0xff, 8, "8 links");
    assert_eq!((feat >> 16) & 0xff, 32, "32 vaults");
}

#[test]
fn jtag_and_inband_share_one_register_file() {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    sim.jtag_reg_write(0, regs::GRL, 0x55).unwrap();
    sim.send(0, 0, mode_read_packet(0, regs::GRL, 1)).unwrap();
    let r = pump(&mut sim, 0);
    assert_eq!(u64::from_le_bytes(r.data[..8].try_into().unwrap()), 0x55);
}
