//! Error simulation (§IV requirement 5): lossy links with CRC detection
//! and retransmission penalties, plus the live-register behaviours (IBTC
//! mirrors tokens; AC switches address-map modes).

use hmc_sim::hmc_core::{regs, topology, FaultConfig, HmcSim};
use hmc_sim::hmc_host::{run_workload, Host, RunConfig};
use hmc_sim::hmc_trace::{CountingSink, EventKind, SharedSink, Tracer, Verbosity};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, Packet, StorageMode};
use hmc_sim::hmc_workloads::RandomAccess;

fn sim() -> HmcSim {
    let mut s = HmcSim::new(
        1,
        DeviceConfig::small()
            .with_queue_depths(32, 16)
            .with_storage_mode(StorageMode::TimingOnly),
    )
    .unwrap();
    let host = s.host_cube_id(0);
    topology::build_simple(&mut s, host).unwrap();
    s
}

#[test]
fn corrupted_packets_are_detected_and_recovered() {
    let mut s = sim();
    let sink = SharedSink::new(CountingSink::default());
    s.set_tracer(Tracer::new(Verbosity::Stalls, Box::new(sink.clone())));
    s.enable_fault_injection(FaultConfig {
        packet_error_rate: 0.25,
        retry_cycles: 4,
        // Effectively unbounded retries: this test is about recovery,
        // not exhaustion (0.25^1000 never happens).
        retry_limit: 1_000,
        seed: 42,
        ..FaultConfig::default()
    });
    let host_id = s.host_cube_id(0);
    let mut host = Host::attach(&s, host_id).unwrap();
    let mut w = RandomAccess::new(1, 1 << 28, BlockSize::B64, 50, 2_000);
    let report = run_workload(&mut s, &mut host, &mut w, RunConfig::default()).unwrap();

    // Every request still completes — retransmission recovers them all.
    assert_eq!(report.completed, 2_000);
    assert_eq!(report.errors, 0);

    let faults = s.fault_state().unwrap();
    assert!(faults.injected > 300, "~25% of 2000 packets should corrupt");
    assert_eq!(
        faults.injected, faults.detected,
        "every corruption is detected exactly once"
    );
    assert_eq!(
        sink.0.lock().counters.get(EventKind::LinkRetry),
        faults.detected,
        "each detection raises one LINK_RETRY trace event"
    );
}

#[test]
fn retry_exhaustion_poisons_every_abandoned_request() {
    // Aggressive corruption against a tight retry budget: ~12% of
    // packets (0.35^2) exhaust their attempts. The device must still
    // answer *every* request — abandoned packets come back as poisoned
    // error responses, never silent drops — and each abort takes the
    // link down for a retraining window.
    let mut s = sim();
    let sink = SharedSink::new(CountingSink::default());
    s.set_tracer(Tracer::new(Verbosity::Stalls, Box::new(sink.clone())));
    s.enable_fault_injection(FaultConfig {
        packet_error_rate: 0.35,
        retry_cycles: 3,
        retry_limit: 1,
        retrain_cycles: 16,
        seed: 0x000B_AD11,
    });
    let host_id = s.host_cube_id(0);
    let mut host = Host::attach(&s, host_id).unwrap();
    let mut w = RandomAccess::new(3, 1 << 28, BlockSize::B64, 50, 2_000);
    let report = run_workload(&mut s, &mut host, &mut w, RunConfig::default()).unwrap();

    // Exactly one response per request: nothing dropped, nothing doubled.
    assert_eq!(report.completed, 2_000);
    assert_eq!(host.stats.orphans, 0);

    let faults = s.fault_state().unwrap().clone();
    assert!(faults.poisoned > 0, "the tight cap must actually exhaust");
    assert_eq!(report.errors, faults.poisoned, "every error is a poison");
    assert_eq!(host.stats.poisoned, faults.poisoned);
    assert_eq!(s.stats().poisoned_responses, faults.poisoned);
    assert_eq!(s.stats().link_retries + faults.poisoned, faults.detected);

    let counters = &sink.0.lock().counters;
    assert_eq!(
        counters.get(EventKind::LinkDown),
        faults.poisoned,
        "one LINK_DOWN per abandoned packet"
    );
    assert_eq!(counters.get(EventKind::PoisonedResponse), faults.poisoned);
    assert_eq!(
        counters.get(EventKind::LinkRetry) + counters.get(EventKind::LinkDown),
        faults.detected,
        "every detection either scheduled a retry or took the link down"
    );
    assert!(
        counters.get(EventKind::LinkRetrain) > 0,
        "downed links must come back up and log it"
    );
}

#[test]
fn lossy_links_cost_cycles() {
    let run = |rate: f64| {
        let mut s = sim();
        if rate > 0.0 {
            s.enable_fault_injection(FaultConfig {
                packet_error_rate: rate,
                retry_cycles: 8,
                seed: 7,
                ..FaultConfig::default()
            });
        }
        let host_id = s.host_cube_id(0);
        let mut host = Host::attach(&s, host_id).unwrap();
        let mut w = RandomAccess::new(1, 1 << 28, BlockSize::B64, 50, 2_000);
        run_workload(&mut s, &mut host, &mut w, RunConfig::default())
            .unwrap()
            .cycles
    };
    let clean = run(0.0);
    let lossy = run(0.2);
    assert!(
        lossy > clean,
        "20% packet loss ({lossy} cycles) must be slower than clean ({clean})"
    );
}

#[test]
fn zero_rate_fault_injection_is_a_noop() {
    let mut s = sim();
    s.enable_fault_injection(FaultConfig {
        packet_error_rate: 0.0,
        retry_cycles: 8,
        seed: 1,
        ..FaultConfig::default()
    });
    let host_id = s.host_cube_id(0);
    let mut host = Host::attach(&s, host_id).unwrap();
    let mut w = RandomAccess::new(1, 1 << 28, BlockSize::B64, 50, 500);
    let report = run_workload(&mut s, &mut host, &mut w, RunConfig::default()).unwrap();
    assert_eq!(report.completed, 500);
    assert_eq!(s.fault_state().unwrap().injected, 0);
}

#[test]
fn ibtc_registers_mirror_live_token_counts() {
    let mut s = sim();
    let initial = s.device(0).unwrap().links[0].tokens as u64;
    // Queue a few reads on link 0 without clocking: tokens consumed.
    for tag in 0..4u16 {
        let rd = Packet::request(Command::Rd(BlockSize::B16), 0, 0, tag, 0, &[]).unwrap();
        s.send(0, 0, rd).unwrap();
    }
    // IBTC updates at the clock edge (stage 6)... but the crossbar also
    // drains this cycle, returning the tokens. Use a vault-full setup
    // instead: just check the register equals the live value after a
    // clock with traffic in flight.
    s.clock().unwrap();
    let live = s.device(0).unwrap().links[0].tokens as u64;
    let reg = s.jtag_reg_read(0, regs::ibtc(0)).unwrap();
    assert_eq!(reg, live, "IBTC register mirrors the live token pool");
    assert!(reg <= initial);
}

#[test]
fn ac_register_switches_address_map_modes() {
    let mut s = sim();
    assert_eq!(s.address_map().name(), "low-interleave");
    // Mode 2: linear map.
    s.jtag_reg_write(0, regs::AC, 2).unwrap();
    s.clock().unwrap();
    assert_eq!(s.address_map().name(), "linear");
    // Mode 1: bank-first.
    s.jtag_reg_write(0, regs::AC, 1).unwrap();
    s.clock().unwrap();
    assert_eq!(s.address_map().name(), "bank-first");
    // Unknown mode: unchanged.
    s.jtag_reg_write(0, regs::AC, 99).unwrap();
    s.clock().unwrap();
    assert_eq!(s.address_map().name(), "bank-first");
    // Back to default.
    s.jtag_reg_write(0, regs::AC, 0).unwrap();
    s.clock().unwrap();
    assert_eq!(s.address_map().name(), "low-interleave");
}

#[test]
fn ac_map_switch_affects_routing_behaviour() {
    // Under the linear map, sequential blocks pile into vault 0; under
    // low-interleave they rotate. Observe through vault stats.
    let mut s = sim();
    s.jtag_reg_write(0, regs::AC, 2).unwrap(); // linear
    s.clock().unwrap();
    for tag in 0..8u16 {
        let rd = Packet::request(
            Command::Rd(BlockSize::B64),
            0,
            tag as u64 * 128,
            tag,
            0,
            &[],
        )
        .unwrap();
        s.send(0, 0, rd).unwrap();
    }
    for _ in 0..16 {
        s.clock().unwrap();
        while s.recv(0, 0).is_ok() {}
    }
    let v0 = s.device(0).unwrap().vaults[0].stats.processed;
    assert_eq!(v0, 8, "linear map sends all sequential blocks to vault 0");
}
