//! Figure 1 end-to-end: traffic flows through all four published
//! topologies (simple, ring, mesh, 2D torus) plus chains, and the
//! infrastructure honours its topology constraints (§IV req. 2, §V.B).

use hmc_sim::hmc_core::{topology, HmcSim, ResponseInfo};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, HmcError, Packet, ResponseStatus};

fn four_link(n: u8) -> HmcSim {
    HmcSim::new(n, DeviceConfig::small()).unwrap()
}

fn eight_link(n: u8) -> HmcSim {
    HmcSim::new(
        n,
        DeviceConfig::paper_8link_8bank_4gb().with_queue_depths(16, 8),
    )
    .unwrap()
}

/// Write then read every device through the given host link; returns the
/// decoded read responses in device order.
fn roundtrip_all(sim: &mut HmcSim, host_link: u8) -> Vec<ResponseInfo> {
    let n = sim.num_devices();
    let mut out = Vec::new();
    for dev in 0..n {
        let data = [dev ^ 0xa5; 16];
        let wr = Packet::request(
            Command::Wr(BlockSize::B16),
            dev,
            0x100,
            (dev as u16) * 2,
            host_link,
            &data,
        )
        .unwrap();
        let rd = Packet::request(
            Command::Rd(BlockSize::B16),
            dev,
            0x100,
            (dev as u16) * 2 + 1,
            host_link,
            &[],
        )
        .unwrap();
        sim.send(0, host_link, wr).unwrap();
        // Let the write land before the read (order across links is not
        // guaranteed; same link is, but keep the test unambiguous).
        for _ in 0..32 {
            sim.clock().unwrap();
            if sim.recv(0, host_link).is_ok() {
                break;
            }
        }
        sim.send(0, host_link, rd).unwrap();
        for _ in 0..32 {
            sim.clock().unwrap();
            if let Ok(p) = sim.recv(0, host_link) {
                out.push(hmc_sim::hmc_core::decode_response(&p).unwrap());
                break;
            }
        }
    }
    out
}

#[test]
fn simple_topology_carries_traffic() {
    let mut sim = four_link(1);
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    let responses = roundtrip_all(&mut sim, 0);
    assert_eq!(responses.len(), 1);
    assert!(responses[0].is_ok());
    assert_eq!(responses[0].data, vec![0xa5; 16]);
}

#[test]
fn chain_reaches_every_device_with_data_integrity() {
    let mut sim = four_link(4);
    let host = sim.host_cube_id(0);
    topology::build_chain(&mut sim, host).unwrap();
    let responses = roundtrip_all(&mut sim, 0);
    assert_eq!(responses.len(), 4);
    for (dev, r) in responses.iter().enumerate() {
        assert!(r.is_ok(), "device {dev}");
        assert_eq!(r.data, vec![dev as u8 ^ 0xa5; 16], "device {dev} data");
    }
}

#[test]
fn ring_reaches_every_device() {
    let mut sim = four_link(5);
    let host = sim.host_cube_id(0);
    topology::build_ring(&mut sim, host).unwrap();
    let responses = roundtrip_all(&mut sim, 0);
    assert_eq!(responses.len(), 5);
    assert!(responses.iter().all(|r| r.is_ok()));
}

#[test]
fn mesh_reaches_every_device() {
    let mut sim = four_link(6);
    let host = sim.host_cube_id(0);
    topology::build_mesh(&mut sim, 3, 2, host).unwrap();
    let responses = roundtrip_all(&mut sim, 0);
    assert_eq!(responses.len(), 6);
    assert!(responses.iter().all(|r| r.is_ok()));
}

#[test]
fn torus_reaches_every_device() {
    let mut sim = eight_link(4);
    let host = sim.host_cube_id(0);
    topology::build_torus(&mut sim, 2, 2, host).unwrap();
    let responses = roundtrip_all(&mut sim, 4);
    assert_eq!(responses.len(), 4);
    assert!(responses.iter().all(|r| r.is_ok()));
}

#[test]
fn loopback_is_rejected_at_configuration_time() {
    // §V.B: "the infrastructure does not permit users to configure links
    // as loopbacks."
    let mut sim = four_link(2);
    assert!(matches!(
        sim.connect_devices(1, 0, 1, 1),
        Err(HmcError::Topology(_))
    ));
}

#[test]
fn cross_object_links_are_rejected() {
    // §V.B: "devices that link to one another must exist within the same
    // HMC-Sim object structure."
    let mut sim = four_link(2);
    assert!(matches!(
        sim.connect_devices(0, 0, 5, 0),
        Err(HmcError::Topology(_))
    ));
}

#[test]
fn hostless_configuration_is_rejected() {
    // §V.B: "the user must configure at least one device that connects
    // to a host link."
    let mut sim = four_link(3);
    sim.connect_devices(0, 0, 1, 0).unwrap();
    sim.connect_devices(1, 1, 2, 0).unwrap();
    assert!(matches!(
        sim.finalize_topology(),
        Err(HmcError::Topology(_))
    ));
}

#[test]
fn deliberately_misconfigured_topology_yields_error_responses() {
    // §IV req. 2: misconfigurations produce response packets with error
    // structures rather than being rejected outright.
    let mut sim = four_link(3);
    let host = sim.host_cube_id(0);
    sim.connect_host(0, 0, host).unwrap();
    sim.connect_devices(0, 1, 1, 0).unwrap();
    // Device 2 is left unreachable on purpose.
    sim.finalize_topology().unwrap();

    let req = Packet::request(Command::Rd(BlockSize::B16), 2, 0, 9, 0, &[]).unwrap();
    sim.send(0, 0, req).unwrap();
    let mut status = None;
    for _ in 0..16 {
        sim.clock().unwrap();
        if let Ok(p) = sim.recv(0, 0) {
            status = Some(p.errstat().unwrap());
            break;
        }
    }
    assert_eq!(status, Some(ResponseStatus::Misroute));
}

#[test]
fn ring_takes_the_short_way_round() {
    // In a 5-ring, device 4 is one hop counter-clockwise from device 0:
    // it must answer faster than device 2 (two hops clockwise).
    let latency = |target: u8| {
        let mut sim = four_link(5);
        let host = sim.host_cube_id(0);
        topology::build_ring(&mut sim, host).unwrap();
        let req = Packet::request(Command::Rd(BlockSize::B16), target, 0, 1, 0, &[]).unwrap();
        sim.send(0, 0, req).unwrap();
        for c in 1..64 {
            sim.clock().unwrap();
            if sim.recv(0, 0).is_ok() {
                return c;
            }
        }
        panic!("no response from {target}");
    };
    assert!(latency(4) < latency(2), "wrap direction must be used");
}
