//! Functional end-to-end tests: data integrity through the full device
//! pipeline for every command class, all block sizes, and the host/driver
//! stack.

use hmc_sim::hmc_core::{decode_response, topology, HmcSim};
use hmc_sim::hmc_host::{run_workload, Host, RunConfig};
use hmc_sim::hmc_types::{
    BlockSize, Command, DeviceConfig, Packet, ResponseStatus, StorageMode,
};
use hmc_sim::hmc_workloads::{
    Gups, PointerChase, RandomAccess, Stencil, Stream, StreamMode, UpdateKind,
};

fn sim() -> HmcSim {
    let mut s = HmcSim::new(1, DeviceConfig::small().with_queue_depths(32, 16)).unwrap();
    let host = s.host_cube_id(0);
    topology::build_simple(&mut s, host).unwrap();
    s
}

/// Send one request and pump the clock until its response returns.
fn transact(sim: &mut HmcSim, link: u8, packet: Packet) -> hmc_sim::hmc_core::ResponseInfo {
    sim.send(0, link, packet).unwrap();
    for _ in 0..64 {
        sim.clock().unwrap();
        if let Ok(p) = sim.recv(0, link) {
            return decode_response(&p).unwrap();
        }
    }
    panic!("no response within 64 cycles");
}

#[test]
fn write_read_roundtrip_at_every_block_size() {
    let mut s = sim();
    for (i, bs) in BlockSize::ALL.iter().enumerate() {
        let addr = (i as u64) * 4096;
        let data: Vec<u8> = (0..bs.bytes() as u32).map(|b| (b % 251) as u8).collect();
        let wr = Packet::request(Command::Wr(*bs), 0, addr, 1, 0, &data).unwrap();
        let r = transact(&mut s, 0, wr);
        assert_eq!(r.cmd, Command::WrResponse, "{bs:?}");
        assert!(r.is_ok());
        let rd = Packet::request(Command::Rd(*bs), 0, addr, 2, 0, &[]).unwrap();
        let r = transact(&mut s, 0, rd);
        assert_eq!(r.cmd, Command::RdResponse);
        assert_eq!(r.data, data, "{bs:?} data integrity");
    }
}

#[test]
fn posted_writes_land_without_responses() {
    let mut s = sim();
    let data = [0x42u8; 32];
    let wr = Packet::request(Command::PostedWr(BlockSize::B32), 0, 0x2000, 0x1ff, 0, &data)
        .unwrap();
    s.send(0, 0, wr).unwrap();
    for _ in 0..8 {
        s.clock().unwrap();
    }
    assert!(s.recv(0, 0).is_err(), "posted write produces no response");
    let rd = Packet::request(Command::Rd(BlockSize::B32), 0, 0x2000, 1, 0, &[]).unwrap();
    let r = transact(&mut s, 0, rd);
    assert_eq!(r.data, data.to_vec(), "posted data is durable");
}

#[test]
fn atomic_commands_read_modify_write() {
    let mut s = sim();
    // Seed [100, 200] at 0x3000.
    let mut seed = [0u8; 16];
    seed[..8].copy_from_slice(&100u64.to_le_bytes());
    seed[8..].copy_from_slice(&200u64.to_le_bytes());
    transact(
        &mut s,
        0,
        Packet::request(Command::Wr(BlockSize::B16), 0, 0x3000, 1, 0, &seed).unwrap(),
    );
    // 2ADD8 adds (5, 7).
    let mut ops = [0u8; 16];
    ops[..8].copy_from_slice(&5u64.to_le_bytes());
    ops[8..].copy_from_slice(&7u64.to_le_bytes());
    let r = transact(
        &mut s,
        0,
        Packet::request(Command::TwoAdd8, 0, 0x3000, 2, 0, &ops).unwrap(),
    );
    assert_eq!(r.cmd, Command::WrResponse);
    // ADD16 adds 1 (128-bit).
    let mut one = [0u8; 16];
    one[0] = 1;
    transact(
        &mut s,
        0,
        Packet::request(Command::Add16, 0, 0x3000, 3, 0, &one).unwrap(),
    );
    // BWR clears the low 32 bits of the first word.
    let mut bwr = [0u8; 16];
    bwr[8..].copy_from_slice(&0x0000_0000_ffff_ffffu64.to_le_bytes());
    transact(
        &mut s,
        0,
        Packet::request(Command::Bwr, 0, 0x3000, 4, 0, &bwr).unwrap(),
    );
    let r = transact(
        &mut s,
        0,
        Packet::request(Command::Rd(BlockSize::B16), 0, 0x3000, 5, 0, &[]).unwrap(),
    );
    let w0 = u64::from_le_bytes(r.data[..8].try_into().unwrap());
    let w1 = u64::from_le_bytes(r.data[8..].try_into().unwrap());
    // 100 + 5 (2ADD8) + 1 (ADD16) = 106, then BWR clears its low 32 bits.
    assert_eq!(w0, 106 & 0xffff_ffff_0000_0000);
    assert_eq!(w1, 207, "200 + 7, ADD16 carry does not reach word 1");
}

#[test]
fn out_of_range_addresses_produce_error_responses() {
    let mut s = sim();
    let over = s.config().capacity_bytes;
    let rd = Packet::request(Command::Rd(BlockSize::B16), 0, over, 1, 0, &[]).unwrap();
    let r = transact(&mut s, 0, rd);
    assert_eq!(r.cmd, Command::ErrorResponse);
    assert_eq!(r.status, ResponseStatus::AddressError);
    assert!(r.data_invalid);
    // The device's global error register counted it.
    assert!(s.jtag_reg_read(0, hmc_sim::hmc_core::regs::ERR).unwrap() >= 1);
}

#[test]
fn every_workload_generator_runs_clean_through_the_driver() {
    let host_id;
    let mut s = {
        let mut s = HmcSim::new(
            1,
            DeviceConfig::small()
                .with_queue_depths(32, 16)
                .with_storage_mode(StorageMode::Functional),
        )
        .unwrap();
        host_id = s.host_cube_id(0);
        topology::build_simple(&mut s, host_id).unwrap();
        s
    };
    let mut host = Host::attach(&s, host_id).unwrap();

    let reports = [
        run_workload(
            &mut s,
            &mut host,
            &mut RandomAccess::new(1, 1 << 24, BlockSize::B64, 50, 2_000),
            RunConfig::default(),
        )
        .unwrap(),
        run_workload(
            &mut s,
            &mut host,
            &mut Stream::unit(1 << 20, BlockSize::B128, StreamMode::Copy, 1_000),
            RunConfig::default(),
        )
        .unwrap(),
        run_workload(
            &mut s,
            &mut host,
            &mut Gups::new(2, 1 << 20, UpdateKind::Add16, 1_000),
            RunConfig::default(),
        )
        .unwrap(),
        run_workload(
            &mut s,
            &mut host,
            &mut PointerChase::new(3, 1 << 16, BlockSize::B64, 500),
            RunConfig::default(),
        )
        .unwrap(),
        run_workload(
            &mut s,
            &mut host,
            &mut Stencil::new(16, 16, BlockSize::B64, 1),
            RunConfig::default(),
        )
        .unwrap(),
    ];
    for r in &reports {
        assert_eq!(r.errors, 0);
        assert_eq!(r.completed + r.posted, r.injected);
        assert!(r.cycles > 0);
    }
    assert!(s.is_idle());
}

#[test]
fn functional_gups_updates_are_all_applied() {
    let mut s = sim();
    let host_id = s.host_cube_id(0);
    let host = Host::attach(&s, host_id).unwrap();
    // 100 ADD16 updates over a tiny 4-slot table, then read the table
    // back and verify the sum of all slots equals the update count times
    // the operand (each update adds the address-seeded payload pattern —
    // so instead verify via direct packets on a single slot).
    let mut total = 0u64;
    for i in 0..100u64 {
        let mut op = [0u8; 16];
        op[..8].copy_from_slice(&i.to_le_bytes());
        let r = {
            s.send(
                0,
                0,
                Packet::request(Command::Add16, 0, 0x4000, 1, 0, &op).unwrap(),
            )
            .unwrap();
            loop {
                s.clock().unwrap();
                if let Ok(p) = s.recv(0, 0) {
                    break decode_response(&p).unwrap();
                }
            }
        };
        assert!(r.is_ok());
        total += i;
    }
    let rd = Packet::request(Command::Rd(BlockSize::B16), 0, 0x4000, 2, 0, &[]).unwrap();
    let r = transact(&mut s, 0, rd);
    let w0 = u64::from_le_bytes(r.data[..8].try_into().unwrap());
    assert_eq!(w0, total);
    drop(host);
}

#[test]
fn timing_only_mode_preserves_cycle_behaviour() {
    // The same workload must take the same number of cycles in
    // functional and timing-only modes — only data movement differs.
    let mut cycles = Vec::new();
    for mode in [StorageMode::Functional, StorageMode::TimingOnly] {
        let mut s = HmcSim::new(
            1,
            DeviceConfig::small()
                .with_queue_depths(32, 16)
                .with_storage_mode(mode),
        )
        .unwrap();
        let host_id = s.host_cube_id(0);
        topology::build_simple(&mut s, host_id).unwrap();
        let mut host = Host::attach(&s, host_id).unwrap();
        let mut w = RandomAccess::new(5, 1 << 28, BlockSize::B64, 50, 3_000);
        let r = run_workload(&mut s, &mut host, &mut w, RunConfig::default()).unwrap();
        cycles.push(r.cycles);
    }
    assert_eq!(cycles[0], cycles[1], "storage mode must not affect timing");
}
