//! Error-path coverage: misroutes, zombies, address errors, command
//! errors, CRC rejection, and stall signalling — the behaviours §IV
//! requirement 2 demands for deliberately misconfigured systems.

use hmc_sim::hmc_core::{decode_response, topology, HmcSim, SimParams};
use hmc_sim::hmc_trace::{CountingSink, EventKind, SharedSink, Tracer, Verbosity};
use hmc_sim::hmc_types::{
    BlockSize, Command, DeviceConfig, HmcError, Packet, ResponseStatus,
};

fn traced_sim(n: u8) -> (HmcSim, SharedSink<CountingSink>) {
    let mut s = HmcSim::new(n, DeviceConfig::small()).unwrap();
    let sink = SharedSink::new(CountingSink::default());
    s.set_tracer(Tracer::new(Verbosity::Stalls, Box::new(sink.clone())));
    (s, sink)
}

fn pump_for_response(sim: &mut HmcSim, link: u8, max: u32) -> Option<Packet> {
    for _ in 0..max {
        sim.clock().unwrap();
        if let Ok(p) = sim.recv(0, link) {
            return Some(p);
        }
    }
    None
}

#[test]
fn request_to_nonexistent_cube_is_misrouted_with_trace() {
    let (mut sim, sink) = traced_sim(1);
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    // Cube 5 does not exist anywhere in the topology.
    let req = Packet::request(Command::Rd(BlockSize::B16), 5, 0, 1, 0, &[]).unwrap();
    sim.send(0, 0, req).unwrap();
    let rsp = pump_for_response(&mut sim, 0, 8).expect("error response");
    let info = decode_response(&rsp).unwrap();
    assert_eq!(info.status, ResponseStatus::Misroute);
    assert_eq!(info.tag, 1);
    let counters = &sink.0.lock().counters;
    assert_eq!(counters.get(EventKind::Misroute), 1);
    assert_eq!(counters.get(EventKind::ErrorResponse), 1);
}

#[test]
fn zombie_detection_retires_packets_that_circle() {
    // A ring with a tiny hop budget: a request for a far device exceeds
    // the budget and is retired as a zombie.
    let (mut sim, sink) = {
        let mut s = HmcSim::new(6, DeviceConfig::small())
            .unwrap()
            .with_params(SimParams {
                hop_budget: 2,
                ..SimParams::default()
            });
        let sink = SharedSink::new(CountingSink::default());
        s.set_tracer(Tracer::new(Verbosity::Stalls, Box::new(sink.clone())));
        (s, sink)
    };
    let host = sim.host_cube_id(0);
    topology::build_chain(&mut sim, host).unwrap();
    // Device 5 is 5 hops away; budget is 2.
    let req = Packet::request(Command::Rd(BlockSize::B16), 5, 0, 3, 0, &[]).unwrap();
    sim.send(0, 0, req).unwrap();
    let rsp = pump_for_response(&mut sim, 0, 16).expect("zombie error response");
    let info = decode_response(&rsp).unwrap();
    assert_eq!(info.status, ResponseStatus::Zombie);
    assert!(sink.0.lock().counters.get(EventKind::Zombie) >= 1);
}

#[test]
fn address_beyond_capacity_is_an_address_error() {
    let (mut sim, _) = traced_sim(1);
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    let req =
        Packet::request(Command::Rd(BlockSize::B16), 0, (1 << 34) - 64, 2, 0, &[]).unwrap();
    sim.send(0, 0, req).unwrap();
    let rsp = pump_for_response(&mut sim, 0, 8).expect("error response");
    assert_eq!(rsp.errstat().unwrap(), ResponseStatus::AddressError);
}

#[test]
fn corrupt_crc_is_rejected_at_send() {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    let mut req = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 1, 0, &[]).unwrap();
    req.data[0] ^= 1; // corrupt a dead word: CRC still fine
    assert!(sim.send(0, 0, req.clone()).is_ok());
    req.set_addr(0x40); // corrupt a live field without resealing
    assert!(matches!(
        sim.send(0, 0, req),
        Err(HmcError::InvalidPacket(_))
    ));
}

#[test]
fn stall_signalling_matches_queue_capacity() {
    let mut sim = HmcSim::new(
        1,
        DeviceConfig::small().with_queue_depths(4, 2),
    )
    .unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    for tag in 0..4 {
        let req = Packet::request(Command::Rd(BlockSize::B16), 0, 0, tag, 0, &[]).unwrap();
        sim.send(0, 0, req).unwrap();
    }
    let req = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 4, 0, &[]).unwrap();
    let err = sim.send(0, 0, req).unwrap_err();
    assert!(err.is_stall());
    // One clock frees slots (the crossbar drains into vaults).
    sim.clock().unwrap();
    let req = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 5, 0, &[]).unwrap();
    assert!(sim.send(0, 0, req).is_ok());
}

#[test]
fn vault_response_queue_backpressure_stalls_processing() {
    // Tiny response queues + no host drain: vaults must hold requests
    // rather than dropping responses.
    let mut sim = HmcSim::new(
        1,
        DeviceConfig::small().with_queue_depths(16, 1),
    )
    .unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    // Two reads to the same vault: the second's response cannot register
    // while the first still occupies the single vault response slot...
    // but stage 5 drains the slot into the (roomier) crossbar response
    // queue each cycle, so after enough cycles both responses exist.
    for tag in 0..2 {
        let req = Packet::request(Command::Rd(BlockSize::B16), 0, 0, tag, 0, &[]).unwrap();
        sim.send(0, 0, req).unwrap();
    }
    let mut got = 0;
    for _ in 0..16 {
        sim.clock().unwrap();
        while sim.recv(0, 0).is_ok() {
            got += 1;
        }
    }
    assert_eq!(got, 2, "both responses eventually deliver");
}

#[test]
fn undecodable_command_in_flight_yields_command_error() {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    // Build a valid packet, then give it an undefined CMD and reseal so
    // it passes CRC but fails decode inside the device.
    let mut req = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 7, 0, &[]).unwrap();
    req.header = (req.header & !0x3f) | 0x3f; // 0x3f is undefined
    req.seal();
    // send() validates and rejects it up front — the host-side guard.
    assert!(sim.send(0, 0, req.clone()).is_err());
    // Inject it behind the guard to exercise the device-side path.
    {
        use hmc_sim::hmc_core::QueueEntry;
        let entry = QueueEntry::new(req, host, 0, 0);
        sim.device_mut(0)
            .unwrap()
            .xbars[0]
            .rqst
            .push(entry)
            .unwrap();
    }
    let rsp = pump_for_response(&mut sim, 0, 8).expect("command error response");
    assert_eq!(rsp.errstat().unwrap(), ResponseStatus::CommandError);
}

#[test]
fn error_register_accumulates_device_side_failures() {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    let err_reg = hmc_sim::hmc_core::regs::ERR;
    assert_eq!(sim.jtag_reg_read(0, err_reg).unwrap(), 0);
    for i in 0..3 {
        let req = Packet::request(
            Command::Rd(BlockSize::B16),
            0,
            (1 << 34) - 64,
            i,
            0,
            &[],
        )
        .unwrap();
        sim.send(0, 0, req).unwrap();
        pump_for_response(&mut sim, 0, 8).unwrap();
    }
    assert_eq!(sim.jtag_reg_read(0, err_reg).unwrap(), 3);
}
