//! Multi-device (chained) behaviour: cross-cube routing of requests and
//! responses, child/root stage ordering, flow-control packets, and the
//! multi-object (NUMA-style) usage pattern of §IV.A.

use hmc_sim::hmc_core::{decode_response, topology, HmcSim};
use hmc_sim::hmc_host::{run_workload, Host, RunConfig};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, Packet};
use hmc_sim::hmc_workloads::RandomAccess;

fn chain(n: u8) -> HmcSim {
    let mut s = HmcSim::new(n, DeviceConfig::small().with_queue_depths(32, 16)).unwrap();
    let host = s.host_cube_id(0);
    topology::build_chain(&mut s, host).unwrap();
    s
}

#[test]
fn workload_against_a_remote_device_completes() {
    let mut sim = chain(3);
    let host_id = sim.host_cube_id(0);
    let mut host = Host::attach(&sim, host_id).unwrap();
    let mut w = RandomAccess::new(1, 1 << 28, BlockSize::B64, 50, 1_000);
    let report = run_workload(
        &mut sim,
        &mut host,
        &mut w,
        RunConfig {
            target_cube: 2,
            ..RunConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.completed, 1_000);
    assert_eq!(report.errors, 0);
    assert!(
        report.mean_latency >= 5.0,
        "two chained hops each way must cost cycles (mean {})",
        report.mean_latency
    );
    // The remote device did the memory work; the root did none.
    let far: u64 = sim.device(2).unwrap().vaults.iter().map(|v| v.stats.processed).sum();
    let near: u64 = sim.device(0).unwrap().vaults.iter().map(|v| v.stats.processed).sum();
    assert_eq!(far, 1_000);
    assert_eq!(near, 0);
}

#[test]
fn mixed_near_and_far_traffic_shares_the_chain() {
    let mut sim = chain(2);
    let host_id = sim.host_cube_id(0);
    let host = Host::attach(&sim, host_id).unwrap();
    // Alternate targets by hand.
    let mut near_latency = Vec::new();
    let mut far_latency = Vec::new();
    for i in 0..50u64 {
        let target = (i % 2) as u8;
        let rd = Packet::request(
            Command::Rd(BlockSize::B64),
            target,
            i * 128,
            (i % 512) as u16,
            0,
            &[],
        )
        .unwrap();
        let start = sim.current_clock();
        sim.send(0, 0, rd).unwrap();
        loop {
            sim.clock().unwrap();
            if sim.recv(0, 0).is_ok() {
                let lat = sim.current_clock() - start;
                if target == 0 {
                    near_latency.push(lat);
                } else {
                    far_latency.push(lat);
                }
                break;
            }
            assert!(sim.current_clock() - start < 64);
        }
    }
    let near: u64 = near_latency.iter().sum::<u64>() / near_latency.len() as u64;
    let far: u64 = far_latency.iter().sum::<u64>() / far_latency.len() as u64;
    assert!(far > near, "far device {far} must exceed near {near}");
    drop(host);
}

#[test]
fn flow_control_packets_are_consumed_silently() {
    let mut sim = chain(2);
    for cmd in [Command::Null, Command::Pret, Command::Tret, Command::Irtry] {
        let p = Packet::flow(cmd, 0, 4).unwrap();
        sim.send(0, 0, p).unwrap();
    }
    for _ in 0..4 {
        sim.clock().unwrap();
    }
    assert!(sim.is_idle(), "flow packets retire without residue");
    assert!(sim.recv(0, 0).is_err(), "flow packets elicit no response");
}

#[test]
fn token_pool_depletes_and_refills() {
    // Token accounting: a link's pool shrinks while packets sit in its
    // crossbar queue and refills as they drain.
    let mut sim = chain(2);
    let initial = sim.device(0).unwrap().links[0].tokens;
    for tag in 0..4u16 {
        let rd = Packet::request(Command::Rd(BlockSize::B16), 0, 0, tag, 0, &[]).unwrap();
        sim.send(0, 0, rd).unwrap();
    }
    let after_send = sim.device(0).unwrap().links[0].tokens;
    assert_eq!(initial - after_send, 4, "one FLIT per queued read");
    for _ in 0..4 {
        sim.clock().unwrap();
        while sim.recv(0, 0).is_ok() {}
    }
    assert_eq!(
        sim.device(0).unwrap().links[0].tokens,
        initial,
        "tokens return as the crossbar retires packets"
    );
}

#[test]
fn child_devices_never_hold_host_links() {
    let sim = chain(4);
    assert!(sim.device(0).unwrap().is_root());
    for d in 1..4 {
        assert!(!sim.device(d).unwrap().is_root(), "device {d} is a child");
    }
}

#[test]
fn two_sim_objects_run_independently() {
    // §IV.A: multiple HMC-Sim objects model NUMA-style systems; their
    // clocks and state must be fully independent.
    let mut a = chain(1);
    let mut b = chain(1);
    let rd = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 1, 0, &[]).unwrap();
    a.send(0, 0, rd).unwrap();
    for _ in 0..3 {
        a.clock().unwrap();
    }
    assert_eq!(a.current_clock(), 3);
    assert_eq!(b.current_clock(), 0, "object B never ticked");
    assert!(a.recv(0, 0).is_ok());
    assert!(b.recv(0, 0).is_err());
}

#[test]
fn writes_to_far_devices_are_durable() {
    let mut sim = chain(3);
    let data = [0x77u8; 64];
    let wr = Packet::request(Command::Wr(BlockSize::B64), 2, 0x5000, 1, 0, &data).unwrap();
    sim.send(0, 0, wr).unwrap();
    for _ in 0..16 {
        sim.clock().unwrap();
        if sim.recv(0, 0).is_ok() {
            break;
        }
    }
    let rd = Packet::request(Command::Rd(BlockSize::B64), 2, 0x5000, 2, 0, &[]).unwrap();
    sim.send(0, 0, rd).unwrap();
    let mut got = None;
    for _ in 0..16 {
        sim.clock().unwrap();
        if let Ok(p) = sim.recv(0, 0) {
            got = Some(decode_response(&p).unwrap().data);
            break;
        }
    }
    assert_eq!(got.unwrap(), data.to_vec());
}
