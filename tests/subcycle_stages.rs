//! Figure 3 semantics: packets progress one internal stage per sub-cycle,
//! never jumping from the crossbar interface to a memory bank inside a
//! single sub-cycle operation, and responses register root-first.

use hmc_sim::hmc_core::{topology, HmcSim};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, Packet};

fn single() -> HmcSim {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    sim
}

fn chain(n: u8) -> HmcSim {
    let mut sim = HmcSim::new(n, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_chain(&mut sim, host).unwrap();
    sim
}

fn read(cub: u8, tag: u16) -> Packet {
    Packet::request(Command::Rd(BlockSize::B16), cub, 0x40, tag, 0, &[]).unwrap()
}

/// Where tag currently sits: (xbar_rqst, vault_rqst, vault_rsp, xbar_rsp)
/// counts summed over all devices.
fn locate(sim: &HmcSim, tag: u16) -> (usize, usize, usize, usize) {
    let mut loc = (0, 0, 0, 0);
    for d in 0..sim.num_devices() {
        let dev = sim.device(d).unwrap();
        for x in &dev.xbars {
            loc.0 += x.rqst.iter().filter(|e| e.packet.tag() == tag).count();
            loc.3 += x.rsp.iter().filter(|e| e.packet.tag() == tag).count();
        }
        for v in &dev.vaults {
            loc.1 += v.rqst.iter().filter(|e| e.packet.tag() == tag).count();
            loc.2 += v.rsp.iter().filter(|e| e.packet.tag() == tag).count();
        }
    }
    loc
}

#[test]
fn injected_packet_waits_in_the_crossbar_until_clocked() {
    let mut sim = single();
    sim.send(0, 0, read(0, 1)).unwrap();
    // "Without this call, external memory operations may progress until
    // appropriate stall signals are recognized. However, internal device
    // operations will not progress" (§V.A): no clock, packet stays put.
    assert_eq!(locate(&sim, 1), (1, 0, 0, 0));
    assert!(sim.recv(0, 0).is_err());
}

#[test]
fn single_device_request_resolves_through_the_stage_pipeline() {
    let mut sim = single();
    sim.send(0, 0, read(0, 1)).unwrap();
    // One clock: stage 2 moves it to the vault, stage 4 processes it,
    // stage 5 registers the response — three different sub-cycles.
    sim.clock().unwrap();
    assert_eq!(
        locate(&sim, 1),
        (0, 0, 0, 1),
        "after one cycle the response sits in the crossbar response queue"
    );
    let rsp = sim.recv(0, 0).unwrap();
    assert_eq!(rsp.tag(), 1);
}

#[test]
fn chained_requests_take_one_hop_per_cycle() {
    let mut sim = chain(3); // host - 0 - 1 - 2
    sim.send(0, 0, read(2, 7)).unwrap();
    // Cycle 1: root xbar (stage 2) forwards to device 1.
    sim.clock().unwrap();
    let at = |sim: &HmcSim, d: u8, tag| {
        sim.device(d)
            .unwrap()
            .xbars
            .iter()
            .flat_map(|x| x.rqst.iter())
            .any(|e| e.packet.tag() == tag)
    };
    assert!(at(&sim, 1, 7), "cycle 1: request at device 1's crossbar");
    // Cycle 2: child stage forwards device1 -> device2, where the packet
    // is processed within the same cycle's later stages.
    sim.clock().unwrap();
    let (xq, _vq, _vr, xr) = locate(&sim, 7);
    assert_eq!(xq, 0, "request fully consumed at device 2");
    assert!(xr >= 1, "response born on device 2");
    // Responses also take one hop per cycle back to the root.
    let mut delivered = None;
    for extra in 1..=4 {
        sim.clock().unwrap();
        if let Ok(p) = sim.recv(0, 0) {
            delivered = Some((extra, p));
            break;
        }
    }
    let (extra, p) = delivered.expect("response arrives");
    assert_eq!(p.tag(), 7);
    assert!(extra >= 2, "two chained hops back cannot be instantaneous");
}

#[test]
fn deeper_chains_cost_proportionally_more_cycles() {
    let mut latencies = Vec::new();
    for target in 0..4u8 {
        let mut sim = chain(4);
        sim.send(0, 0, read(target, 9)).unwrap();
        let mut cycles = 0;
        loop {
            sim.clock().unwrap();
            cycles += 1;
            if sim.recv(0, 0).is_ok() {
                break;
            }
            assert!(cycles < 64, "target {target} unreachable");
        }
        latencies.push(cycles);
    }
    assert!(
        latencies.windows(2).all(|w| w[0] < w[1]),
        "latency must grow with chain depth: {latencies:?}"
    );
}

#[test]
fn clock_updates_are_stage_six() {
    let mut sim = single();
    assert_eq!(sim.current_clock(), 0);
    for i in 1..=5 {
        sim.clock().unwrap();
        assert_eq!(sim.current_clock(), i);
    }
}

#[test]
fn trace_events_are_stamped_within_the_current_clock_domain() {
    // "All trace messages reported by the first four stages are
    // registered within the current clock domain" (§IV.C.6): events from
    // cycle N carry clock value N, not N+1.
    use hmc_sim::hmc_trace::{SharedSink, Tracer, VecSink, Verbosity};
    let mut sim = single();
    let sink = SharedSink::new(VecSink::default());
    sim.set_tracer(Tracer::new(Verbosity::Full, Box::new(sink.clone())));
    sim.send(0, 0, read(0, 3)).unwrap();
    sim.clock().unwrap();
    let records = &sink.0.lock().records;
    assert!(!records.is_empty());
    assert!(
        records.iter().all(|r| r.cycle == 0),
        "first-cycle events carry clock value 0"
    );
}
