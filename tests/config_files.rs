//! Round-trip coverage for the shipped device configuration files.
//!
//! Every JSON file under `configs/` must load, validate, and — for the
//! four paper-geometry files plus `small.json` — match the corresponding
//! built-in preset field-for-field, so a config handed to `hmc-serve` or
//! the CLI by file is indistinguishable from one selected by name.

use std::path::PathBuf;

use hmc_types::DeviceConfig;

fn configs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("configs")
}

fn load(name: &str) -> DeviceConfig {
    let path = configs_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_shipped_config_loads_and_validates() {
    let mut seen = 0;
    for entry in std::fs::read_dir(configs_dir()).expect("configs/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let config: DeviceConfig = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        config
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
    assert!(seen >= 5, "expected at least the five shipped configs, found {seen}");
}

#[test]
fn the_paper_geometry_files_match_their_presets_field_for_field() {
    // (file, preset name) — `DeviceConfig` derives `PartialEq`, so this
    // comparison covers every field, including queue depths and SERDES
    // lane counts.
    for (file, preset) in [
        ("4l8b.json", "4l8b"),
        ("4l16b.json", "4l16b"),
        ("8l8b.json", "8l8b"),
        ("8l16b.json", "8l16b"),
        ("small.json", "small"),
    ] {
        let from_file = load(file);
        let built_in = DeviceConfig::by_name(preset).expect("preset exists");
        assert_eq!(
            from_file, built_in,
            "configs/{file} drifted from the {preset} preset"
        );
    }
}

#[test]
fn configs_survive_a_serialize_deserialize_round_trip() {
    for (_, config) in DeviceConfig::paper_configs() {
        let json = serde_json::to_string(&config).unwrap();
        let back: DeviceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }
}
