//! Soak tests: longer mixed-traffic runs exercising the whole stack at
//! once — mixed workloads, replay determinism, functional-mode data
//! integrity under concurrency, and every device configuration.

use hmc_sim::hmc_core::{decode_response, topology, HmcSim};
use hmc_sim::hmc_host::{run_workload, Host, RunConfig};
use hmc_sim::hmc_types::{BlockSize, Command, DeviceConfig, Packet, StorageMode};
use hmc_sim::hmc_workloads::{
    Gups, Mixed, RandomAccess, Replay, Stream, StreamMode, UpdateKind,
};

fn build(cfg: DeviceConfig) -> (HmcSim, Host) {
    let mut sim = HmcSim::new(1, cfg).unwrap();
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).unwrap();
    let host = Host::attach(&sim, host_id).unwrap();
    (sim, host)
}

fn mixed_workload(seed: u32) -> Mixed {
    Mixed::new(
        seed,
        vec![
            (
                4,
                Box::new(RandomAccess::new(seed, 1 << 26, BlockSize::B64, 50, 4_000)),
            ),
            (
                2,
                Box::new(Stream::unit(
                    1 << 24,
                    BlockSize::B128,
                    StreamMode::Copy,
                    2_000,
                )),
            ),
            (
                1,
                Box::new(Gups::new(seed, 1 << 20, UpdateKind::TwoAdd8, 1_000)),
            ),
        ],
    )
}

#[test]
fn mixed_traffic_soaks_clean_on_every_paper_config() {
    for (label, cfg) in DeviceConfig::paper_configs() {
        let (mut sim, mut host) =
            build(cfg.with_storage_mode(StorageMode::TimingOnly));
        let mut w = mixed_workload(7);
        let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default())
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(report.injected, 7_000, "{label}");
        assert_eq!(report.completed, 7_000, "{label}");
        assert_eq!(report.errors, 0, "{label}");
        assert!(sim.is_idle(), "{label}: device must drain");
    }
}

#[test]
fn replayed_mixture_reproduces_cycle_counts_exactly() {
    // Record the mixture once, then replay it twice: identical streams
    // must produce identical simulated timings.
    let mut source = mixed_workload(11);
    let recorded = Replay::record(&mut source);
    assert_eq!(recorded.len(), 7_000);

    let run = |trace: &Replay| {
        let (mut sim, mut host) = build(
            DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly),
        );
        let mut replay = trace.clone();
        run_workload(&mut sim, &mut host, &mut replay, RunConfig::default())
            .unwrap()
            .cycles
    };
    let first = run(&recorded);
    let second = run(&recorded);
    assert_eq!(first, second, "replays must be cycle-deterministic");
}

#[test]
fn csv_roundtripped_trace_times_identically() {
    let mut source = RandomAccess::new(5, 1 << 24, BlockSize::B64, 50, 3_000);
    let recorded = Replay::record(&mut source);
    let mut csv = Vec::new();
    recorded.write_csv(&mut csv).unwrap();
    let parsed = Replay::read_csv(&csv[..]).unwrap();

    let run = |mut w: Replay| {
        let (mut sim, mut host) = build(
            DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly),
        );
        run_workload(&mut sim, &mut host, &mut w, RunConfig::default())
            .unwrap()
            .cycles
    };
    assert_eq!(run(recorded), run(parsed));
}

#[test]
fn functional_mode_scatter_gather_integrity() {
    // Scatter 256 distinct blocks through the driver, then gather them
    // with raw packets and verify every byte.
    let (mut sim, _host) = build(
        DeviceConfig::small()
            .with_queue_depths(64, 32)
            .with_storage_mode(StorageMode::Functional),
    );
    // Scatter phase: direct sends, two writes in flight per link.
    let mut written = Vec::new();
    for i in 0..256u64 {
        let addr = i * 256 + 0x10_0000;
        let val = (i as u8) ^ 0x5a;
        let wr = Packet::request(
            Command::Wr(BlockSize::B32),
            0,
            addr,
            (i % 512) as u16,
            (i % 4) as u8,
            &[val; 32],
        )
        .unwrap();
        loop {
            match sim.send(0, (i % 4) as u8, wr.clone()) {
                Ok(()) => break,
                Err(e) if e.is_stall() => {
                    sim.clock().unwrap();
                    for l in 0..4 {
                        while sim.recv(0, l).is_ok() {}
                    }
                }
                Err(e) => panic!("{e}"),
            }
        }
        written.push((addr, val));
    }
    for _ in 0..64 {
        sim.clock().unwrap();
        for l in 0..4 {
            while sim.recv(0, l).is_ok() {}
        }
    }
    assert!(sim.is_idle());
    // Gather phase.
    for (i, (addr, val)) in written.into_iter().enumerate() {
        let rd = Packet::request(
            Command::Rd(BlockSize::B32),
            0,
            addr,
            (i % 512) as u16,
            0,
            &[],
        )
        .unwrap();
        sim.send(0, 0, rd).unwrap();
        let mut ok = false;
        for _ in 0..16 {
            sim.clock().unwrap();
            if let Ok(p) = sim.recv(0, 0) {
                let info = decode_response(&p).unwrap();
                assert_eq!(info.data, vec![val; 32], "block at {addr:#x}");
                ok = true;
                break;
            }
        }
        assert!(ok, "no response for block {addr:#x}");
    }
}

#[test]
fn sustained_pressure_against_tiny_queues_never_wedges() {
    // Small queues + heavy traffic: the run completes without the
    // max-cycles guard firing, proving no deadlock in the stall graph.
    let (mut sim, mut host) = build(
        DeviceConfig::small()
            .with_queue_depths(2, 1)
            .with_storage_mode(StorageMode::TimingOnly),
    );
    let mut w = RandomAccess::new(3, 1 << 26, BlockSize::B128, 50, 3_000);
    let report = run_workload(
        &mut sim,
        &mut host,
        &mut w,
        RunConfig {
            max_cycles: 1 << 22,
            ..RunConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.completed, 3_000);
    assert!(report.send_stalls > 0, "tiny queues must exert back-pressure");
}

#[test]
fn million_request_run_returns_every_token_and_drains_every_queue() {
    // Token conservation at scale: after a 1M-request mixed run the
    // device must quiesce completely — zero resident packets anywhere in
    // the structure hierarchy and every link's IBTC token pool back at
    // exactly its initial allotment. A single leaked FLIT fails this.
    let (mut sim, mut host) = build(
        DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly),
    );
    let initial: Vec<u32> = sim.device(0).unwrap().links.iter().map(|l| l.tokens).collect();
    let mut w = RandomAccess::new(21, 1 << 26, BlockSize::B64, 50, 1_000_000);
    let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    assert_eq!(report.injected, 1_000_000);
    assert_eq!(report.completed, 1_000_000);
    assert_eq!(report.errors, 0);

    assert!(sim.is_idle(), "device must quiesce after the run");
    assert_eq!(sim.total_occupancy(), 0, "no packet may remain in any queue");
    let dev = sim.device(0).unwrap();
    for (l, &init) in dev.links.iter().zip(&initial) {
        assert!(
            l.at_initial_tokens(),
            "link {} leaked tokens: {}/{} at quiesce",
            l.id,
            l.tokens,
            l.initial_tokens
        );
        assert_eq!(l.tokens, init, "link {} token pool drifted", l.id);
    }
}

#[test]
fn invariant_checked_soak_reports_zero_violations() {
    // The same stack with the protocol invariant checker armed through
    // the driver flag: a clean run must report exactly zero violations.
    let (mut sim, mut host) = build(
        DeviceConfig::paper_4link_16bank_4gb().with_storage_mode(StorageMode::Functional),
    );
    let mut w = mixed_workload(13);
    let report = run_workload(
        &mut sim,
        &mut host,
        &mut w,
        RunConfig {
            check_invariants: true,
            ..RunConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.completed, 7_000);
    assert_eq!(
        report.invariant_violations, 0,
        "first violation: {:?}",
        sim.invariant_violations().first()
    );
}

#[test]
fn profile_predictions_match_observed_utilization() {
    use hmc_sim::hmc_workloads::profile;
    // Profile the workload statically, run it, and compare the hottest
    // vault prediction against the simulator's utilization report.
    let cfg = DeviceConfig::small().with_storage_mode(StorageMode::TimingOnly);
    let map = cfg.default_map().unwrap();
    let mut for_profile = RandomAccess::new(9, 1 << 26, BlockSize::B64, 50, 5_000);
    let predicted = profile(&mut for_profile, &map, u64::MAX).unwrap();

    let (mut sim, mut host) = build(cfg);
    let mut w = RandomAccess::new(9, 1 << 26, BlockSize::B64, 50, 5_000);
    run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    let observed = &sim.utilization()[0];

    for (v, report) in observed.vaults.iter().enumerate() {
        assert_eq!(
            report.controller.processed, predicted.vault_counts[v],
            "vault {v}: simulator and profiler must agree exactly"
        );
    }
}
