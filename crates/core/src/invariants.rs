//! The protocol invariant checker.
//!
//! A conformance layer behind [`crate::params::SimParams::check_invariants`]:
//! when the
//! flag is off (the default) every hook below costs one branch and the
//! clock hot path stays allocation-free; when it is on, the simulation
//! object cross-checks itself every cycle against the properties the
//! packet protocol guarantees:
//!
//! * **queue-slot validity** — no queue ever exceeds its configured
//!   depth, every resident packet has a legal FLIT count, and decoded
//!   vault/bank coordinates stay inside the device geometry;
//! * **token conservation** — for every host link, the live token count
//!   plus the FLITs parked in that link's crossbar request queue equals
//!   the initial allotment (IBTC semantics, paper §IV.A);
//! * **tag lifecycle** — a 9-bit tag is never reused by a host while a
//!   response for it is still owed, and every delivered response
//!   correlates to an in-flight tag;
//! * **CRC validity** — every packet delivered to a host carries an
//!   intact CRC-32/Koopman seal;
//! * **stream-order preservation** — responses for requests that entered
//!   on the same link and target the same vault and bank are delivered
//!   in issue order (the §III.C link→bank stream-order guarantee; weak
//!   ordering may only reorder *across* streams).
//!
//! Violations are recorded, not panicked, so differential harnesses (the
//! `hmc-conform` crate) can shrink a failing input down to a minimal
//! reproduction after the fact.

use std::collections::HashMap;

use hmc_types::{CubeId, LinkId, Packet, PhysAddr, MAX_PACKET_FLITS};

use crate::link::Endpoint;
use crate::queue::QueueEntry;
use crate::sim::HmcSim;

/// Recorded violations are capped so a hard failure loop cannot grow the
/// report without bound; the total count keeps rising past the cap.
const MAX_RECORDED: usize = 64;

/// One in-flight (host, tag) pair: `None` stream for register traffic.
#[derive(Debug, Clone, Copy)]
struct TagInfo {
    stream: Option<u64>,
    seq: u64,
}

/// Per-stream issue and delivery sequence counters.
#[derive(Debug, Clone, Copy, Default)]
struct StreamSeq {
    next_issue: u64,
    last_delivered: Option<u64>,
}

/// Checker state, lazily boxed onto [`HmcSim`] when the flag is on.
#[derive(Debug, Default)]
pub struct InvariantState {
    /// (host << 16 | tag) -> in-flight info.
    in_flight: HashMap<u32, TagInfo>,
    /// Packed (dev, link, vault, bank) -> sequence counters.
    streams: HashMap<u64, StreamSeq>,
    /// First [`MAX_RECORDED`] violation descriptions.
    violations: Vec<String>,
    /// Total violations observed (may exceed `violations.len()`).
    total: u64,
}

impl InvariantState {
    fn record(&mut self, msg: String) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(msg);
        }
    }
}

fn tag_key(host: CubeId, tag: u16) -> u32 {
    ((host as u32) << 16) | tag as u32
}

fn stream_key(dev: CubeId, link: LinkId, vault: u16, bank: u16) -> u64 {
    ((dev as u64) << 48) | ((link as u64) << 40) | ((vault as u64) << 20) | bank as u64
}

impl HmcSim {
    /// Flip the invariant checker on or off after construction (the
    /// builder path is [`crate::params::SimParams::check_invariants`]).
    pub fn set_check_invariants(&mut self, on: bool) {
        self.params.check_invariants = on;
        if !on {
            self.inv = None;
        }
    }

    /// Violations recorded so far (empty when the checker is off or the
    /// run is clean). At most the first 64 are retained.
    pub fn invariant_violations(&self) -> &[String] {
        self.inv
            .as_ref()
            .map(|s| s.violations.as_slice())
            .unwrap_or(&[])
    }

    /// Total violation count, including any past the recording cap.
    pub fn total_invariant_violations(&self) -> u64 {
        self.inv.as_ref().map(|s| s.total).unwrap_or(0)
    }

    /// Drop recorded violations and in-flight tracking (fresh run).
    pub fn clear_invariant_state(&mut self) {
        self.inv = None;
    }

    fn inv_state(&mut self) -> &mut InvariantState {
        self.inv.get_or_insert_with(Default::default)
    }

    /// Send-side hook: tag-lifecycle and stream-sequence bookkeeping.
    /// Called only when the flag is on, after the packet is accepted.
    pub(crate) fn inv_record_send(&mut self, dev: CubeId, link: LinkId, host: CubeId, p: &Packet) {
        let cmd = match p.cmd() {
            Ok(c) => c,
            Err(_) => return, // send() already rejected it
        };
        if cmd.is_flow() || cmd.response_command().is_none() {
            // Flow packets carry no tag; posted requests owe no response,
            // so their shared tag (0x1ff) is exempt from the lifecycle.
            return;
        }
        let stream = if cmd.is_mode() {
            None // register traffic has no vault/bank stream
        } else {
            PhysAddr::new(p.addr())
                .ok()
                .and_then(|a| self.map.decode(a).ok())
                .map(|d| stream_key(dev, link, d.vault, d.bank))
        };
        let tag = p.tag();
        let state = self.inv_state();
        let seq = match stream {
            Some(k) => {
                let s = state.streams.entry(k).or_default();
                let seq = s.next_issue;
                s.next_issue += 1;
                seq
            }
            None => 0,
        };
        if state
            .in_flight
            .insert(tag_key(host, tag), TagInfo { stream, seq })
            .is_some()
        {
            state.record(format!(
                "tag reuse: host {host} reissued tag {tag:#x} while a response was in flight"
            ));
        }
    }

    /// Receive-side hook: egress CRC, tag correlation, stream order.
    /// Called only when the flag is on, after an entry leaves a host
    /// link's response queue.
    pub(crate) fn inv_check_recv(&mut self, dev: CubeId, link: LinkId, entry: &QueueEntry) {
        let host = match self
            .devices
            .get(dev as usize)
            .and_then(|d| d.links.get(link as usize))
            .map(|l| l.remote)
        {
            Some(Endpoint::Host(h)) => h,
            _ => return,
        };
        let p = &entry.packet;
        if !p.verify_crc() {
            let tag = p.tag();
            self.inv_state().record(format!(
                "egress CRC: packet tag {tag:#x} delivered on dev {dev} link {link} \
                 fails CRC-32/Koopman verification"
            ));
        }
        let cmd = match p.cmd() {
            Ok(c) if c.is_response() => c,
            Ok(c) => {
                let m = c.mnemonic();
                self.inv_state().record(format!(
                    "egress class: non-response packet {m} delivered on dev {dev} link {link}"
                ));
                return;
            }
            Err(_) => {
                let raw = p.raw_cmd();
                self.inv_state().record(format!(
                    "egress class: undecodable command {raw:#x} delivered on dev {dev} link {link}"
                ));
                return;
            }
        };
        let _ = cmd;
        let tag = p.tag();
        // A poisoned response aborted at the link layer: its request
        // never completed in the memory stream, so it is exempt from
        // stream-order accounting (it may legitimately outrun earlier
        // same-stream responses still in the vault pipeline). Tag
        // correlation still applies — exactly one response per request.
        let poisoned = p.errstat() == Ok(hmc_types::ResponseStatus::LinkPoisoned);
        let state = self.inv_state();
        match state.in_flight.remove(&tag_key(host, tag)) {
            None => state.record(format!(
                "tag correlation: response tag {tag:#x} on dev {dev} link {link} \
                 matches no in-flight request of host {host}"
            )),
            Some(_) if poisoned => {}
            Some(info) => {
                if let Some(k) = info.stream {
                    let last = state.streams.get(&k).and_then(|s| s.last_delivered);
                    if let Some(last) = last {
                        if info.seq <= last {
                            state.record(format!(
                                "stream order: tag {tag:#x} (issue seq {}) delivered after \
                                 seq {last} of the same (link, vault, bank) stream {k:#x}",
                                info.seq
                            ));
                        }
                    }
                    if last.is_none_or(|l| info.seq > l) {
                        state.streams.entry(k).or_default().last_delivered = Some(info.seq);
                    }
                }
            }
        }
    }

    /// Whole-device structural sweep, run at the end of every cycle while
    /// the flag is on: queue-slot validity and token conservation.
    pub(crate) fn inv_check_cycle(&mut self) {
        let mut found: Vec<String> = Vec::new();
        let banks = self.config.banks_per_vault;
        let vaults = self.config.num_vaults;
        let clock = self.clock;
        let check_entry = |found: &mut Vec<String>, what: &str, e: &QueueEntry| {
            let flits = e.packet.lng();
            if flits == 0 || flits > MAX_PACKET_FLITS {
                found.push(format!(
                    "queue slot: {what} holds a packet with illegal length {flits} FLITs \
                     (tag {:#x}, cycle {clock})",
                    e.packet.tag()
                ));
            }
            if e.is_decoded() && (e.dest_vault >= vaults || e.dest_bank >= banks) {
                found.push(format!(
                    "queue slot: {what} decoded out of range (vault {} / bank {}, \
                     geometry {vaults}x{banks}, tag {:#x})",
                    e.dest_vault,
                    e.dest_bank,
                    e.packet.tag()
                ));
            }
        };
        for d in &self.devices {
            let di = d.id;
            for (li, x) in d.xbars.iter().enumerate() {
                for (name, q) in [("rqst", &x.rqst), ("rsp", &x.rsp)] {
                    if q.len() > q.depth() {
                        found.push(format!(
                            "queue depth: dev {di} xbar {li} {name} holds {} of {} slots",
                            q.len(),
                            q.depth()
                        ));
                    }
                    for e in q.iter() {
                        check_entry(&mut found, &format!("dev {di} xbar {li} {name}"), e);
                    }
                }
            }
            for v in &d.vaults {
                for (name, q) in [("rqst", &v.rqst), ("rsp", &v.rsp)] {
                    if q.len() > q.depth() {
                        found.push(format!(
                            "queue depth: dev {di} vault {} {name} holds {} of {} slots",
                            v.id,
                            q.len(),
                            q.depth()
                        ));
                    }
                }
                for e in v.rqst.iter() {
                    check_entry(&mut found, &format!("dev {di} vault {}", v.id), e);
                    if e.is_decoded() && e.dest_vault != v.id {
                        found.push(format!(
                            "routing: packet for vault {} resident in vault {} of dev {di} \
                             (tag {:#x})",
                            e.dest_vault,
                            v.id,
                            e.packet.tag()
                        ));
                    }
                }
            }
            for (l, x) in d.links.iter().zip(&d.xbars) {
                if l.tokens > l.initial_tokens {
                    found.push(format!(
                        "token overflow: dev {di} link {} holds {} of {} tokens",
                        l.id, l.tokens, l.initial_tokens
                    ));
                }
                if l.is_host_link() {
                    let parked = x.rqst.resident_flits();
                    if l.tokens + parked != l.initial_tokens {
                        found.push(format!(
                            "token conservation: dev {di} link {} has {} live + {} parked \
                             tokens against an initial allotment of {} (cycle {clock})",
                            l.id, l.tokens, parked, l.initial_tokens
                        ));
                    }
                }
            }
        }
        if !found.is_empty() {
            let state = self.inv_state();
            for msg in found {
                state.record(msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SimParams;
    use crate::topology;
    use hmc_types::{BlockSize, Command, DeviceConfig};

    fn sim() -> HmcSim {
        let mut s = HmcSim::new(1, DeviceConfig::small())
            .unwrap()
            .with_params(SimParams {
                check_invariants: true,
                ..SimParams::default()
            });
        let host = s.host_cube_id(0);
        topology::build_simple(&mut s, host).unwrap();
        s
    }

    fn read(addr: u64, tag: u16, link: u8) -> Packet {
        Packet::request(Command::Rd(BlockSize::B64), 0, addr, tag, link, &[]).unwrap()
    }

    #[test]
    fn clean_run_records_nothing() {
        let mut s = sim();
        for tag in 0..4 {
            s.send(0, 0, read(tag as u64 * 64, tag, 0)).unwrap();
        }
        for _ in 0..16 {
            s.clock().unwrap();
            for l in 0..4 {
                while s.recv(0, l).is_ok() {}
            }
        }
        assert!(s.is_idle());
        assert_eq!(s.invariant_violations(), &[] as &[String]);
        assert_eq!(s.total_invariant_violations(), 0);
    }

    #[test]
    fn tag_reuse_while_in_flight_is_flagged() {
        let mut s = sim();
        s.send(0, 0, read(0, 7, 0)).unwrap();
        s.send(0, 1, read(64, 7, 1)).unwrap();
        assert_eq!(s.total_invariant_violations(), 1);
        assert!(s.invariant_violations()[0].contains("tag reuse"));
    }

    #[test]
    fn orphan_response_is_flagged() {
        use hmc_types::packet::ResponseStatus;
        let mut s = sim();
        let rsp =
            Packet::response(Command::RdResponse, 9, 0, ResponseStatus::Ok, &[0u8; 64]).unwrap();
        let entry = QueueEntry::new(rsp, 0, s.host_cube_id(0), 0);
        s.devices[0].xbars[0].rsp.push(entry).unwrap();
        let _ = s.recv(0, 0).unwrap();
        assert_eq!(s.total_invariant_violations(), 1);
        assert!(s.invariant_violations()[0].contains("tag correlation"));
    }

    #[test]
    fn corrupted_egress_crc_is_flagged() {
        use hmc_types::packet::ResponseStatus;
        let mut s = sim();
        s.send(0, 0, read(0, 3, 0)).unwrap();
        let mut rsp =
            Packet::response(Command::RdResponse, 3, 0, ResponseStatus::Ok, &[0u8; 64]).unwrap();
        rsp.set_crc(rsp.crc() ^ 0x8000_0000);
        let entry = QueueEntry::new(rsp, 0, s.host_cube_id(0), 0);
        s.devices[0].xbars[0].rsp.push(entry).unwrap();
        let _ = s.recv(0, 0).unwrap();
        assert!(s
            .invariant_violations()
            .iter()
            .any(|v| v.contains("egress CRC")));
    }

    #[test]
    fn token_imbalance_is_flagged_by_the_cycle_sweep() {
        let mut s = sim();
        s.devices[0].links[0].tokens -= 1; // simulate a leak
        s.clock().unwrap();
        assert!(s
            .invariant_violations()
            .iter()
            .any(|v| v.contains("token conservation")));
    }

    #[test]
    fn checker_off_keeps_no_state() {
        let mut s = HmcSim::new(1, DeviceConfig::small()).unwrap();
        let host = s.host_cube_id(0);
        topology::build_simple(&mut s, host).unwrap();
        s.send(0, 0, read(0, 1, 0)).unwrap();
        s.clock().unwrap();
        assert_eq!(s.invariant_violations(), &[] as &[String]);
        assert_eq!(s.total_invariant_violations(), 0);
    }

    #[test]
    fn recording_caps_but_keeps_counting() {
        let mut state = InvariantState::default();
        for i in 0..(MAX_RECORDED + 10) {
            state.record(format!("v{i}"));
        }
        assert_eq!(state.violations.len(), MAX_RECORDED);
        assert_eq!(state.total, (MAX_RECORDED + 10) as u64);
    }
}
