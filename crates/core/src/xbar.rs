//! Crossbar units.
//!
//! "Crossbar units are analogous to the first-level logic layer present in
//! an HMC device. They simulate the queuing mechanisms present in the
//! crossbar unit between device links and device vault controllers.
//! Crossbar units contain the request and response queues for the
//! respective device that are accessible from the host" (paper §IV.A).

use hmc_types::LinkId;

use crate::queue::{PacketQueue, QueueEntry};

/// The crossbar logic stage attached to one link: a request queue (host →
/// vaults) and a response queue (vaults → host).
#[derive(Debug)]
pub struct Crossbar {
    /// The link this crossbar unit serves.
    pub link: LinkId,
    /// Request (inbound) queue.
    pub rqst: PacketQueue,
    /// Response (outbound) queue.
    pub rsp: PacketQueue,
}

impl Crossbar {
    /// Create the crossbar stage for `link` with `depth` slots per
    /// direction (the paper's tests use 128 bidirectional slots, §VI.A).
    pub fn new(link: LinkId, depth: usize) -> Self {
        Crossbar {
            link,
            rqst: PacketQueue::new(depth),
            rsp: PacketQueue::new(depth),
        }
    }

    /// Drop all queued packets (device reset).
    pub fn clear(&mut self) {
        self.rqst.clear();
        self.rsp.clear();
    }

    /// Total packets resident in both directions.
    pub fn occupancy(&self) -> usize {
        self.rqst.len() + self.rsp.len()
    }

    /// True when every queued response is already parked in a position
    /// the response walk will not move it from — per the caller's
    /// `parked` predicate (typically "deliverable to the host attached to
    /// this link, waiting on a host `recv`"). An empty queue is trivially
    /// parked. The fast-forward horizon uses this to prove the response
    /// direction of a crossbar dead.
    pub fn rsp_all_parked(&self, parked: impl Fn(&QueueEntry) -> bool) -> bool {
        self.rsp.iter().all(parked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueEntry;
    use hmc_types::{BlockSize, Command, Packet};

    fn entry(tag: u16) -> QueueEntry {
        let p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, tag, 0, &[]).unwrap();
        QueueEntry::new(p, 1, 0, 0)
    }

    #[test]
    fn both_directions_have_the_configured_depth() {
        let x = Crossbar::new(2, 128);
        assert_eq!(x.link, 2);
        assert_eq!(x.rqst.depth(), 128);
        assert_eq!(x.rsp.depth(), 128);
    }

    #[test]
    fn directions_are_independent() {
        let mut x = Crossbar::new(0, 2);
        x.rqst.push(entry(0)).unwrap();
        x.rqst.push(entry(1)).unwrap();
        assert!(x.rqst.is_full());
        assert!(x.rsp.is_empty(), "request traffic must not occupy response slots");
        assert_eq!(x.occupancy(), 2);
    }

    #[test]
    fn parked_predicate_covers_every_response() {
        let mut x = Crossbar::new(0, 4);
        assert!(x.rsp_all_parked(|_| false), "empty queue is parked");
        x.rsp.push(entry(0)).unwrap();
        x.rsp.push(entry(1)).unwrap();
        assert!(x.rsp_all_parked(|e| e.packet.tag() < 2));
        assert!(!x.rsp_all_parked(|e| e.packet.tag() < 1));
    }

    #[test]
    fn clear_empties_both_directions() {
        let mut x = Crossbar::new(0, 4);
        x.rqst.push(entry(0)).unwrap();
        x.rsp.push(entry(1)).unwrap();
        x.clear();
        assert_eq!(x.occupancy(), 0);
    }
}
