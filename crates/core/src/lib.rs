//! # hmc-core
//!
//! The HMC-Sim device model: the full structure hierarchy of the paper's
//! §IV (devices → links / crossbars / quads → vaults → banks → DRAMs),
//! fixed-depth queue slots, the six-stage sub-cycle clock of Figure 3,
//! the register file with in-band (MODE) and side-band (JTAG) access,
//! flexible topologies with hop-by-hop routing between chained cubes, and
//! a C-style facade mirroring the Figure 4 calling sequence.
//!
//! # Quick start
//!
//! ```
//! use hmc_core::{topology, HmcSim};
//! use hmc_types::{BlockSize, Command, DeviceConfig, Packet};
//!
//! let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
//! let host = sim.host_cube_id(0);
//! topology::build_simple(&mut sim, host).unwrap();
//!
//! let req = Packet::request(Command::Rd(BlockSize::B64), 0, 0x40, 1, 0, &[]).unwrap();
//! sim.send(0, 0, req).unwrap();
//! for _ in 0..4 {
//!     sim.clock().unwrap();
//! }
//! let rsp = sim.recv(0, 0).unwrap();
//! assert_eq!(rsp.tag(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod builder;
pub mod device;
pub(crate) mod engine;
pub mod fault;
pub mod inspect;
pub mod invariants;
pub mod jtag;
pub mod link;
pub mod noc;
pub mod params;
pub mod quad;
pub mod queue;
pub mod register;
pub mod report;
pub mod routing;
pub mod sim;
pub mod stages;
pub mod timing;
pub mod topology;
pub mod vault;
pub mod xbar;

pub use api::{hmcsim_clock, hmcsim_init, hmcsim_link_config, hmcsim_recv, hmcsim_send, LinkType};
pub use builder::{build_mem_request, decode_response, ResponseInfo};
pub use device::Device;
pub use fault::{FaultConfig, FaultState};
pub use inspect::{DeviceSnapshot, QueueLocation};
pub use invariants::InvariantState;
pub use link::{Endpoint, Link};
pub use noc::{Interconnect, MeshTopology, NocParams, NocState, RingTopology, Topology};
pub use params::{ConflictPolicy, RefreshParams, SimParams};
pub use quad::Quad;
pub use queue::{PacketQueue, QueueEntry};
pub use register::{regs, RegClass, RegisterFile};
pub use report::{DeviceUtilizationReport, VaultUtilizationReport};
pub use routing::RouteTable;
pub use sim::{HmcSim, SimStats, MAX_CUBES};
pub use timing::{
    make_timing, ClassicTiming, DdrTiming, IssueGrant, RowOutcome, TimingParams, VaultTiming,
};
pub use vault::{Vault, VaultStats};
pub use xbar::Crossbar;
