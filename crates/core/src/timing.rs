//! Pluggable vault timing backends.
//!
//! The paper's vault model treats every non-conflicting access as taking
//! "equivalent and constant time" (§IV.C.4). [`VaultTiming`] abstracts
//! that decision behind a trait so the memory model's fidelity becomes a
//! scenario axis: [`ClassicTiming`] reproduces the paper's conflict
//! window bit-for-bit, while [`DdrTiming`] runs a cycle-accurate
//! DDR-style per-bank state machine (row-buffer hits/misses/conflicts,
//! ACT/PRE/RD/WR spacing under tRCD/tRP/tRAS/tCAS/tCCD, refresh closing
//! open rows).
//!
//! ## Contract
//!
//! The engine consults a backend twice per candidate request:
//!
//! 1. [`VaultTiming::blocked_until`] — a **pure** admission query: may
//!    bank `bank` accept an access to `row` at `cycle`? `None` means
//!    issuable now; `Some(edge)` names the earliest cycle worth retrying
//!    (the fast-forward horizon jumps straight to the minimum such edge,
//!    so edges must be exact, not conservative).
//! 2. [`VaultTiming::try_issue`] — commits the access and returns an
//!    [`IssueGrant`]: when the data is ready, the row-buffer outcome, and
//!    the implied PRE/ACT/RD-or-WR command cycles (the property tests
//!    assert constraint spacing directly on these).
//!
//! `try_issue` must only be called at a cycle where `blocked_until`
//! returned `None`. Both backends are deterministic and carry no
//! interior mutability, so the sharded engine can move them across
//! threads with the vault they belong to.
//!
//! Refresh is normalized lazily: rather than a per-cycle hook (which
//! fast-forward would skip), [`DdrTiming`] derives the most recent
//! refresh window for a bank from the cycle it is consulted at and
//! applies any not-yet-seen window before answering. Stepped and
//! fast-forwarded runs therefore observe identical bank state at every
//! consult, which is what keeps them bit-identical.

use hmc_types::{Cycle, DdrTimings, PagePolicy, TimingKind};

use crate::params::RefreshParams;

/// Timing-backend selection plus the DDR constraint set, carried in
/// `SimParams`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingParams {
    /// Which backend to run.
    pub kind: TimingKind,
    /// DDR constraints (used only by [`TimingKind::Ddr`]).
    pub ddr: DdrTimings,
}

impl TimingParams {
    /// Parameters for a backend kind with default constraints.
    pub fn of(kind: TimingKind) -> Self {
        TimingParams {
            kind,
            ..TimingParams::default()
        }
    }
}

/// Row-buffer outcome of an issued access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The backend does not model row buffers (classic).
    None,
    /// The addressed row was already open: column access only.
    Hit,
    /// The bank was precharged: ACT then column access.
    Miss,
    /// Another row was open: PRE, ACT, then column access.
    Conflict,
}

/// What an issued access implies: data readiness and the DDR command
/// schedule behind it. Classic grants carry `data_ready == rw_cycle ==
/// issue cycle` and no PRE/ACT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueGrant {
    /// Cycle the response data becomes available (the vault releases the
    /// response to its output queue at the first tick at or after this).
    pub data_ready: Cycle,
    /// Row-buffer outcome.
    pub outcome: RowOutcome,
    /// Cycle a PRE command fires, if the access precharges (row
    /// conflict, or closed-page auto-precharge).
    pub pre_cycle: Option<Cycle>,
    /// Cycle an ACT command fires, if the access opens a row.
    pub act_cycle: Option<Cycle>,
    /// Cycle the RD/WR column command fires.
    pub rw_cycle: Cycle,
}

/// Per-vault bank timing decisions: when a request may issue, when its
/// data returns, and how refresh interacts with bank state.
pub trait VaultTiming: Send + std::fmt::Debug {
    /// Pure admission query: `None` if bank `bank` can accept an access
    /// to `row` at `cycle`, else the earliest cycle worth retrying.
    /// Must not mutate state (the fast-forward horizon calls this
    /// without issuing).
    fn blocked_until(&self, bank: u16, row: u64, cycle: Cycle) -> Option<Cycle>;

    /// Commit an access at `cycle` (only after `blocked_until` returned
    /// `None` for the same arguments) and return its grant.
    fn try_issue(&mut self, bank: u16, row: u64, cycle: Cycle) -> IssueGrant;

    /// Hold bank `bank` out of service until `until` — the cost of an
    /// out-of-band refresh such as TRR targeted refresh. The park must
    /// surface through [`VaultTiming::blocked_until`] as an exact edge
    /// (so fast-forward horizons stay correct); parking never shortens
    /// an existing busy period. The default ignores the request (a
    /// zero-cost refresh).
    fn park_bank(&mut self, bank: u16, until: Cycle) {
        let _ = (bank, until);
    }

    /// Return to power-on state (all banks precharged, no history).
    fn reset(&mut self);

    /// Which backend this is.
    fn kind(&self) -> TimingKind;
}

/// Build the backend selected by `params` for one vault.
pub fn make_timing(
    params: TimingParams,
    vault: u16,
    banks: u16,
    refresh: Option<RefreshParams>,
) -> Box<dyn VaultTiming> {
    match params.kind {
        TimingKind::Classic => Box::new(ClassicTiming::new()),
        TimingKind::Ddr => Box::new(DdrTiming::new(params.ddr, vault, banks, refresh)),
    }
}

/// The paper's constant-time model as a timing backend: one access per
/// bank per cycle, data ready the cycle it issues. Byte-identical to the
/// pre-trait `used`-bitmask walk.
#[derive(Debug, Clone)]
pub struct ClassicTiming {
    /// Banks that already issued during `cur_cycle` (same 64-bit mask,
    /// same `bank & 0x3f` indexing as the original walk).
    used: u64,
    cur_cycle: Cycle,
    /// Per-bank park deadlines (TRR refresh cost); all zero — and the
    /// backend bit-identical to the original walk — until `park_bank`
    /// is first called.
    parked: [Cycle; 64],
}

impl ClassicTiming {
    /// A fresh classic backend.
    pub fn new() -> Self {
        ClassicTiming {
            used: 0,
            cur_cycle: 0,
            parked: [0; 64],
        }
    }
}

impl Default for ClassicTiming {
    fn default() -> Self {
        Self::new()
    }
}

impl VaultTiming for ClassicTiming {
    fn blocked_until(&self, bank: u16, _row: u64, cycle: Cycle) -> Option<Cycle> {
        let parked = self.parked[(bank & 0x3f) as usize];
        if cycle < parked {
            return Some(parked);
        }
        if cycle == self.cur_cycle && self.used & (1u64 << (bank & 0x3f)) != 0 {
            Some(cycle.saturating_add(1))
        } else {
            None
        }
    }

    fn try_issue(&mut self, bank: u16, _row: u64, cycle: Cycle) -> IssueGrant {
        if cycle != self.cur_cycle {
            self.cur_cycle = cycle;
            self.used = 0;
        }
        self.used |= 1u64 << (bank & 0x3f);
        IssueGrant {
            data_ready: cycle,
            outcome: RowOutcome::None,
            pre_cycle: None,
            act_cycle: None,
            rw_cycle: cycle,
        }
    }

    fn park_bank(&mut self, bank: u16, until: Cycle) {
        let slot = (bank & 0x3f) as usize;
        self.parked[slot] = self.parked[slot].max(until);
    }

    fn reset(&mut self) {
        self.used = 0;
        self.cur_cycle = 0;
        self.parked = [0; 64];
    }

    fn kind(&self) -> TimingKind {
        TimingKind::Classic
    }
}

/// Per-bank DDR state.
#[derive(Debug, Clone, Copy)]
struct BankState {
    /// The open row, meaningful only when `has_open`.
    open_row: u64,
    has_open: bool,
    /// Earliest cycle the bank accepts its next column access.
    ready_at: Cycle,
    /// Cycle of the last ACT (tRAS gates PRE until `act_at + t_ras`).
    act_at: Cycle,
    /// Most recent refresh window index already folded into this state.
    refresh_applied: Option<u64>,
}

impl BankState {
    fn fresh() -> Self {
        BankState {
            open_row: 0,
            has_open: false,
            ready_at: 0,
            act_at: 0,
            refresh_applied: None,
        }
    }
}

/// Cycle-accurate DDR-style state machine: per-bank row-buffer state and
/// ACT/PRE/RD/WR transitions under [`DdrTimings`].
#[derive(Debug, Clone)]
pub struct DdrTiming {
    t: DdrTimings,
    vault: u16,
    banks: Vec<BankState>,
    refresh: Option<RefreshParams>,
}

impl DdrTiming {
    /// A fresh DDR backend for vault `vault` with `banks` banks.
    pub fn new(t: DdrTimings, vault: u16, banks: u16, refresh: Option<RefreshParams>) -> Self {
        DdrTiming {
            t,
            vault,
            banks: vec![BankState::fresh(); (banks.max(1) as usize).min(64)],
            refresh,
        }
    }

    fn slot(&self, bank: u16) -> usize {
        (bank & 0x3f) as usize % self.banks.len()
    }

    /// The most recent refresh window for `bank` whose start is at or
    /// before `cycle`, with the cycle that window releases the bank.
    /// `None` when refresh is inert or the bank has not been refreshed
    /// yet.
    fn latest_refresh_window(&self, bank: usize, cycle: Cycle) -> Option<(u64, Cycle)> {
        let r = self.refresh?;
        let nbanks = self.banks.len() as u64;
        if r.interval == 0 || r.duration == 0 {
            return None;
        }
        // Window w refreshes bank (w + vault) % nbanks; solve for the
        // residue that lands on `bank`, then step back from the current
        // window index to the latest one with that residue.
        let residue = (bank as u64 + nbanks - self.vault as u64 % nbanks) % nbanks;
        let w0 = cycle / r.interval;
        let delta = (w0 % nbanks + nbanks - residue) % nbanks;
        let w = w0.checked_sub(delta)?;
        let start = w * r.interval;
        let dur = r.duration.min(r.interval);
        // Same edge math as `RefreshParams::window_edge_after` for an
        // in-progress window, so horizon jumps land exactly here.
        let end = if dur == r.interval {
            start.saturating_add(r.interval)
        } else {
            start.saturating_add(dur)
        };
        Some((w, end))
    }

    /// Bank state as of `cycle` with any not-yet-applied refresh window
    /// folded in, plus the window to record if one applied.
    fn shadow(&self, bank: usize, cycle: Cycle) -> (BankState, Option<u64>) {
        let mut st = self.banks[bank];
        if let Some((w, end)) = self.latest_refresh_window(bank, cycle) {
            if st.refresh_applied.is_none_or(|applied| w > applied) {
                // Refresh closes the open row and holds the bank until
                // the window releases it.
                st.has_open = false;
                st.ready_at = st.ready_at.max(end);
                st.refresh_applied = Some(w);
                return (st, Some(w));
            }
        }
        (st, None)
    }
}

impl VaultTiming for DdrTiming {
    fn blocked_until(&self, bank: u16, row: u64, cycle: Cycle) -> Option<Cycle> {
        let (st, _) = self.shadow(self.slot(bank), cycle);
        if cycle < st.ready_at {
            return Some(st.ready_at);
        }
        if st.has_open && st.open_row != row {
            // A row conflict must precharge, and PRE waits out tRAS.
            let pre_ok = st.act_at.saturating_add(self.t.t_ras);
            if cycle < pre_ok {
                return Some(pre_ok);
            }
        }
        None
    }

    fn try_issue(&mut self, bank: u16, row: u64, cycle: Cycle) -> IssueGrant {
        let slot = self.slot(bank);
        let (shadowed, applied) = self.shadow(slot, cycle);
        if applied.is_some() {
            self.banks[slot] = shadowed;
        }
        let st = &mut self.banks[slot];
        debug_assert!(cycle >= st.ready_at, "issue before bank ready");
        let t = self.t;
        if st.has_open && st.open_row == row {
            // Row hit: column access only.
            st.ready_at = cycle.saturating_add(t.t_ccd);
            return IssueGrant {
                data_ready: cycle.saturating_add(t.t_cas),
                outcome: RowOutcome::Hit,
                pre_cycle: None,
                act_cycle: None,
                rw_cycle: cycle,
            };
        }
        if !st.has_open {
            // Row miss: ACT, wait tRCD, column access.
            let rw = cycle.saturating_add(t.t_rcd);
            st.act_at = cycle;
            match t.page_policy {
                PagePolicy::Open => {
                    st.has_open = true;
                    st.open_row = row;
                    st.ready_at = rw.saturating_add(t.t_ccd);
                    IssueGrant {
                        data_ready: rw.saturating_add(t.t_cas),
                        outcome: RowOutcome::Miss,
                        pre_cycle: None,
                        act_cycle: Some(cycle),
                        rw_cycle: rw,
                    }
                }
                PagePolicy::Closed => {
                    // Auto-precharge once both tRAS (from ACT) and the
                    // column access allow it.
                    let pre = cycle
                        .saturating_add(t.t_ras)
                        .max(rw.saturating_add(t.t_ccd));
                    st.has_open = false;
                    st.ready_at = pre.saturating_add(t.t_rp);
                    IssueGrant {
                        data_ready: rw.saturating_add(t.t_cas),
                        outcome: RowOutcome::Miss,
                        pre_cycle: Some(pre),
                        act_cycle: Some(cycle),
                        rw_cycle: rw,
                    }
                }
            }
        } else {
            // Row conflict: PRE (tRAS already satisfied — blocked_until
            // gated on it), ACT after tRP, column access after tRCD.
            debug_assert!(cycle >= st.act_at.saturating_add(t.t_ras));
            let act = cycle.saturating_add(t.t_rp);
            let rw = act.saturating_add(t.t_rcd);
            st.act_at = act;
            st.open_row = row;
            st.has_open = matches!(t.page_policy, PagePolicy::Open);
            st.ready_at = rw.saturating_add(t.t_ccd);
            if matches!(t.page_policy, PagePolicy::Closed) {
                let pre = act.saturating_add(t.t_ras).max(rw.saturating_add(t.t_ccd));
                st.ready_at = pre.saturating_add(t.t_rp);
            }
            IssueGrant {
                data_ready: rw.saturating_add(t.t_cas),
                outcome: RowOutcome::Conflict,
                pre_cycle: Some(cycle),
                act_cycle: Some(act),
                rw_cycle: rw,
            }
        }
    }

    fn park_bank(&mut self, bank: u16, until: Cycle) {
        // The refresh busy period rides the ordinary readiness edge, so
        // it surfaces through `blocked_until` exactly.
        let slot = self.slot(bank);
        let st = &mut self.banks[slot];
        st.ready_at = st.ready_at.max(until);
    }

    fn reset(&mut self) {
        for b in &mut self.banks {
            *b = BankState::fresh();
        }
    }

    fn kind(&self) -> TimingKind {
        TimingKind::Ddr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ddr() -> DdrTiming {
        DdrTiming::new(DdrTimings::default(), 0, 8, None)
    }

    #[test]
    fn classic_allows_one_access_per_bank_per_cycle() {
        let mut c = ClassicTiming::new();
        assert_eq!(c.blocked_until(3, 0, 10), None);
        let g = c.try_issue(3, 0, 10);
        assert_eq!(g.data_ready, 10);
        assert_eq!(g.outcome, RowOutcome::None);
        assert_eq!(c.blocked_until(3, 7, 10), Some(11));
        // Other banks are free the same cycle; the bank frees next cycle.
        assert_eq!(c.blocked_until(4, 0, 10), None);
        assert_eq!(c.blocked_until(3, 0, 11), None);
    }

    #[test]
    fn classic_masks_banks_past_63_like_the_original_walk() {
        let mut c = ClassicTiming::new();
        c.try_issue(64, 0, 5); // bank 64 & 0x3f == bank 0
        assert_eq!(c.blocked_until(0, 0, 5), Some(6));
    }

    #[test]
    fn ddr_hit_miss_conflict_latencies() {
        let t = DdrTimings::default();
        let mut d = ddr();
        // Cold bank: miss pays tRCD + tCAS.
        assert_eq!(d.blocked_until(0, 7, 0), None);
        let miss = d.try_issue(0, 7, 0);
        assert_eq!(miss.outcome, RowOutcome::Miss);
        assert_eq!(miss.act_cycle, Some(0));
        assert_eq!(miss.rw_cycle, t.t_rcd);
        assert_eq!(miss.data_ready, t.t_rcd + t.t_cas);
        // Same row once ready: hit pays tCAS only.
        let ready = t.t_rcd + t.t_ccd;
        assert_eq!(d.blocked_until(0, 7, ready - 1), Some(ready));
        let hit = d.try_issue(0, 7, ready);
        assert_eq!(hit.outcome, RowOutcome::Hit);
        assert_eq!(hit.data_ready, ready + t.t_cas);
        // Different row: conflict waits for tRAS then pays tRP + tRCD + tCAS.
        let pre_ok = t.t_ras; // act_at was 0
        assert_eq!(d.blocked_until(0, 9, ready + t.t_ccd), Some(pre_ok));
        let conflict = d.try_issue(0, 9, pre_ok);
        assert_eq!(conflict.outcome, RowOutcome::Conflict);
        assert_eq!(conflict.pre_cycle, Some(pre_ok));
        assert_eq!(conflict.act_cycle, Some(pre_ok + t.t_rp));
        assert_eq!(conflict.data_ready, pre_ok + t.t_rp + t.t_rcd + t.t_cas);
    }

    #[test]
    fn ddr_closed_page_never_hits() {
        let t = DdrTimings {
            page_policy: PagePolicy::Closed,
            ..DdrTimings::default()
        };
        let mut d = DdrTiming::new(t, 0, 8, None);
        let first = d.try_issue(2, 5, 0);
        assert_eq!(first.outcome, RowOutcome::Miss);
        let pre = first.pre_cycle.unwrap();
        assert!(pre >= t.t_ras && pre >= t.t_rcd + t.t_ccd);
        // Next access to the very same row still misses (auto-precharged).
        let next_ok = d.blocked_until(2, 5, pre).unwrap();
        assert_eq!(next_ok, pre + t.t_rp);
        let second = d.try_issue(2, 5, next_ok);
        assert_eq!(second.outcome, RowOutcome::Miss);
    }

    #[test]
    fn refresh_closes_the_open_row_and_parks_the_bank() {
        let r = RefreshParams {
            interval: 1000,
            duration: 100,
        };
        let t = DdrTimings::default();
        let mut d = DdrTiming::new(t, 0, 8, Some(r));
        // Open row 3 on bank 0 well before its refresh window (window 0
        // refreshes bank 0 of vault 0 at cycles 0..100 — issue after).
        let g = d.try_issue(0, 3, 200);
        assert_eq!(g.outcome, RowOutcome::Miss);
        // Bank 0's next window is window 8 (8 % 8 == 0): cycles
        // 8000..8100. Mid-window the bank is parked until the edge.
        assert_eq!(d.blocked_until(0, 3, 8050), Some(8100));
        // After the window the row is closed: the same row misses again.
        assert_eq!(d.blocked_until(0, 3, 8100), None);
        let after = d.try_issue(0, 3, 8100);
        assert_eq!(after.outcome, RowOutcome::Miss);
    }

    #[test]
    fn refresh_shadow_is_pure_until_issue() {
        let r = RefreshParams {
            interval: 100,
            duration: 10,
        };
        let mut d = DdrTiming::new(DdrTimings::default(), 0, 4, Some(r));
        // blocked_until mid-window must not commit the window...
        assert_eq!(d.blocked_until(0, 1, 5), Some(10));
        assert!(d.banks[0].refresh_applied.is_none());
        // ...try_issue after the window does.
        let _ = d.try_issue(0, 1, 10);
        assert_eq!(d.banks[0].refresh_applied, Some(0));
    }

    #[test]
    fn ddr_respects_ccd_between_hits() {
        let t = DdrTimings::default();
        let mut d = ddr();
        let g0 = d.try_issue(1, 0, 0);
        let first_hit = g0.rw_cycle + t.t_ccd;
        let g1 = d.try_issue(1, 0, first_hit);
        assert_eq!(d.blocked_until(1, 0, first_hit + 1), Some(first_hit + t.t_ccd));
        assert!(g1.rw_cycle - g0.rw_cycle >= t.t_ccd);
    }

    #[test]
    fn park_bank_surfaces_through_blocked_until() {
        // Classic: the park is an exact edge and never shrinks.
        let mut c = ClassicTiming::new();
        c.park_bank(2, 50);
        assert_eq!(c.blocked_until(2, 0, 10), Some(50));
        assert_eq!(c.blocked_until(2, 0, 50), None);
        assert_eq!(c.blocked_until(3, 0, 10), None, "other banks free");
        c.park_bank(2, 30);
        assert_eq!(c.blocked_until(2, 0, 10), Some(50), "parks never shorten");
        // DDR: the park rides the bank's readiness edge.
        let mut d = ddr();
        d.park_bank(1, 77);
        assert_eq!(d.blocked_until(1, 0, 5), Some(77));
        assert_eq!(d.blocked_until(1, 0, 77), None);
    }

    #[test]
    fn make_timing_selects_backends() {
        let c = make_timing(TimingParams::default(), 0, 8, None);
        assert_eq!(c.kind(), TimingKind::Classic);
        let d = make_timing(TimingParams::of(TimingKind::Ddr), 0, 8, None);
        assert_eq!(d.kind(), TimingKind::Ddr);
    }
}
