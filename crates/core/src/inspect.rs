//! Structured simulation-state snapshots.
//!
//! HMC-Sim's structure hierarchy was chosen "to easily track packet source
//! and destination correctness throughout the life of a device object"
//! (§IV.A). This module exposes that tracking to tools: per-queue
//! occupancy snapshots, packet location queries by tag, and a rendered
//! occupancy table for debugging and the Figure 3 walkthrough binary.

use hmc_types::{CubeId, LinkId, VaultId};

use crate::sim::HmcSim;

/// Which queue a packet currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueLocation {
    /// A link crossbar request queue.
    XbarRequest {
        /// Device holding the queue.
        cube: CubeId,
        /// Link index.
        link: LinkId,
        /// Slot position from the head.
        slot: usize,
    },
    /// A link crossbar response queue.
    XbarResponse {
        /// Device holding the queue.
        cube: CubeId,
        /// Link index.
        link: LinkId,
        /// Slot position from the head.
        slot: usize,
    },
    /// A vault request queue.
    VaultRequest {
        /// Device holding the queue.
        cube: CubeId,
        /// Vault index.
        vault: VaultId,
        /// Slot position from the head.
        slot: usize,
    },
    /// A vault response queue.
    VaultResponse {
        /// Device holding the queue.
        cube: CubeId,
        /// Vault index.
        vault: VaultId,
        /// Slot position from the head.
        slot: usize,
    },
}

/// Occupancy snapshot of one device's queues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSnapshot {
    /// The device's cube ID.
    pub cube: CubeId,
    /// `(request, response)` occupancy per link crossbar.
    pub xbars: Vec<(usize, usize)>,
    /// `(request, response)` occupancy per vault.
    pub vaults: Vec<(usize, usize)>,
}

impl DeviceSnapshot {
    /// Total packets resident on the device.
    pub fn total(&self) -> usize {
        self.xbars.iter().map(|(a, b)| a + b).sum::<usize>()
            + self.vaults.iter().map(|(a, b)| a + b).sum::<usize>()
    }
}

impl HmcSim {
    /// Occupancy snapshot of every device.
    pub fn snapshot(&self) -> Vec<DeviceSnapshot> {
        self.devices
            .iter()
            .map(|d| DeviceSnapshot {
                cube: d.id,
                xbars: d
                    .xbars
                    .iter()
                    .map(|x| (x.rqst.len(), x.rsp.len()))
                    .collect(),
                vaults: d
                    .vaults
                    .iter()
                    .map(|v| (v.rqst.len(), v.rsp.len()))
                    .collect(),
            })
            .collect()
    }

    /// Every queue position currently holding a packet with `tag`.
    ///
    /// Tags are only unique per host while in flight, so this may return
    /// several locations under tag reuse.
    pub fn locate_tag(&self, tag: u16) -> Vec<QueueLocation> {
        let mut out = Vec::new();
        for d in &self.devices {
            for x in &d.xbars {
                for (slot, e) in x.rqst.iter().enumerate() {
                    if e.packet.tag() == tag {
                        out.push(QueueLocation::XbarRequest {
                            cube: d.id,
                            link: x.link,
                            slot,
                        });
                    }
                }
                for (slot, e) in x.rsp.iter().enumerate() {
                    if e.packet.tag() == tag {
                        out.push(QueueLocation::XbarResponse {
                            cube: d.id,
                            link: x.link,
                            slot,
                        });
                    }
                }
            }
            for v in &d.vaults {
                for (slot, e) in v.rqst.iter().enumerate() {
                    if e.packet.tag() == tag {
                        out.push(QueueLocation::VaultRequest {
                            cube: d.id,
                            vault: v.id,
                            slot,
                        });
                    }
                }
                for (slot, e) in v.rsp.iter().enumerate() {
                    if e.packet.tag() == tag {
                        out.push(QueueLocation::VaultResponse {
                            cube: d.id,
                            vault: v.id,
                            slot,
                        });
                    }
                }
            }
        }
        out
    }

    /// Render an occupancy table (one line per non-empty queue).
    pub fn render_occupancy(&self) -> String {
        let mut out = String::new();
        for snap in self.snapshot() {
            for (l, (rq, rs)) in snap.xbars.iter().enumerate() {
                if rq + rs > 0 {
                    out.push_str(&format!(
                        "dev{} link{l} xbar: rqst={rq} rsp={rs}\n",
                        snap.cube
                    ));
                }
            }
            for (v, (rq, rs)) in snap.vaults.iter().enumerate() {
                if rq + rs > 0 {
                    out.push_str(&format!(
                        "dev{} vault{v}: rqst={rq} rsp={rs}\n",
                        snap.cube
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use hmc_types::{BlockSize, Command, DeviceConfig, Packet};

    fn sim() -> HmcSim {
        let mut s = HmcSim::new(1, DeviceConfig::small()).unwrap();
        let host = s.host_cube_id(0);
        topology::build_simple(&mut s, host).unwrap();
        s
    }

    #[test]
    fn snapshot_tracks_occupancy() {
        let mut s = sim();
        assert_eq!(s.snapshot()[0].total(), 0);
        let p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 7, 0, &[]).unwrap();
        s.send(0, 0, p).unwrap();
        let snap = &s.snapshot()[0];
        assert_eq!(snap.total(), 1);
        assert_eq!(snap.xbars[0], (1, 0));
        assert_eq!(snap.xbars[1], (0, 0));
    }

    #[test]
    fn locate_tag_follows_the_packet() {
        let mut s = sim();
        let p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 42, 0, &[]).unwrap();
        s.send(0, 0, p).unwrap();
        assert_eq!(
            s.locate_tag(42),
            vec![QueueLocation::XbarRequest {
                cube: 0,
                link: 0,
                slot: 0
            }]
        );
        s.clock().unwrap();
        assert_eq!(
            s.locate_tag(42),
            vec![QueueLocation::XbarResponse {
                cube: 0,
                link: 0,
                slot: 0
            }]
        );
        s.recv(0, 0).unwrap();
        assert!(s.locate_tag(42).is_empty());
    }

    #[test]
    fn render_lists_only_occupied_queues() {
        let mut s = sim();
        assert!(s.render_occupancy().is_empty());
        let p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 1, 2, &[]).unwrap();
        s.send(0, 2, p).unwrap();
        let rendered = s.render_occupancy();
        assert!(rendered.contains("dev0 link2 xbar: rqst=1 rsp=0"));
        assert_eq!(rendered.lines().count(), 1);
    }
}
