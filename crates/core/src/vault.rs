//! Vault controllers.
//!
//! "The vault structure maps directly to the notion of a vertically stacked
//! vault unit within the HMC specification. Each vault contains response
//! and request queues whose respective depths are configured at
//! initialization time in order to mimic the presence of a vault
//! controller. Each vault also contains a reference to a block of memory
//! bank structures" (paper §IV.A).
//!
//! A vault's packet-execution path (sub-cycle stage 4) processes write
//! packets, read packets and atomic (read-modify-write) packets "in
//! equivalent and constant time as long as their bank addressing does not
//! conflict" (§IV.C.4), registering responses in the vault response queue.

use hmc_mem::{CellFaultState, VaultMemory};
use hmc_types::address::AddressMap;
use hmc_types::packet::ResponseStatus;
use hmc_types::{Command, CubeId, Cycle, HmcError, Packet, PhysAddr, VaultId};

use crate::queue::{PacketQueue, QueueEntry};
use crate::timing::{ClassicTiming, VaultTiming};

/// Largest data payload a packet can carry (eight 16-byte data FLITs of
/// the maximal nine-FLIT packet) — sizes the stack staging buffers.
const MAX_BLOCK_BYTES: usize = 128;

/// Per-vault operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VaultStats {
    /// Requests fully processed by this vault.
    pub processed: u64,
    /// Reads processed.
    pub reads: u64,
    /// Writes processed (including posted).
    pub writes: u64,
    /// Atomics processed (including posted).
    pub atomics: u64,
    /// Error responses generated.
    pub errors: u64,
}

/// The result of executing one request packet at a vault.
///
/// Response entries are registered directly in the vault's response
/// queue by [`Vault::execute`]; this enum only reports *what happened*
/// so stage 4 can stage trace events and error-register updates without
/// a heap-allocated hand-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execution {
    /// The request completed; no response is owed (posted commands,
    /// including posted failures).
    Done,
    /// The request completed and a normal response was registered in
    /// the vault response queue.
    Responded,
    /// The request failed and an error response with the given status
    /// was registered in the vault response queue.
    RespondedError(ResponseStatus),
}

/// A response whose data is not ready yet: the timing backend granted
/// the access at issue time but the column data lands `data_ready`
/// cycles later. Held by the vault until release into [`Vault::rsp`].
#[derive(Debug)]
pub struct PendingRsp {
    /// Cycle the response may enter the response queue.
    pub ready_at: Cycle,
    /// Issue order within this vault (ties on `ready_at` release in
    /// issue order, preserving per-bank stream order).
    pub seq: u64,
    /// The finished response entry.
    pub entry: QueueEntry,
}

/// One vault: controller queues plus the memory bank stack.
#[derive(Debug)]
pub struct Vault {
    /// Vault index on the device.
    pub id: VaultId,
    /// Request queue (from the crossbar).
    pub rqst: PacketQueue,
    /// Response queue (toward the crossbar).
    pub rsp: PacketQueue,
    /// Responses issued but not yet data-ready (always empty under the
    /// classic backend, which returns data the cycle it issues).
    pub pending: Vec<PendingRsp>,
    /// Issue-order counter for `pending` tie-breaks.
    pub pending_seq: u64,
    /// The bank stack.
    pub mem: VaultMemory,
    /// The timing backend deciding when requests issue and data returns.
    pub timing: Box<dyn VaultTiming>,
    /// Cell-fault injection state (RowHammer + retention), installed by
    /// the simulation when `SimParams::cell_faults` is set. Lives inside
    /// the vault so it shards with the vault across worker threads.
    pub faults: Option<Box<CellFaultState>>,
    /// Operation counters.
    pub stats: VaultStats,
}

impl Vault {
    /// Create vault `id` with `depth`-slot controller queues over the
    /// given bank stack, running the classic (constant-time) backend
    /// until the simulation installs another.
    pub fn new(id: VaultId, depth: usize, mem: VaultMemory) -> Self {
        Vault {
            id,
            rqst: PacketQueue::new(depth),
            rsp: PacketQueue::new(depth),
            pending: Vec::with_capacity(depth),
            pending_seq: 0,
            mem,
            timing: Box::new(ClassicTiming::new()),
            faults: None,
            stats: VaultStats::default(),
        }
    }

    /// True when registering another response would overflow the
    /// controller's response capacity: queued responses plus not-yet-
    /// ready pending ones fill every slot. Reduces to `rsp.is_full()`
    /// under the classic backend (`pending` stays empty).
    pub fn rsp_capacity_full(&self) -> bool {
        self.rsp.len() + self.pending.len() >= self.rsp.depth()
    }

    /// Earliest `ready_at` among pending responses (fast-forward edge).
    pub fn pending_min_ready(&self) -> Option<Cycle> {
        self.pending.iter().map(|p| p.ready_at).min()
    }

    /// Move every pending response whose data is ready at `clock` into
    /// the response queue, in (`ready_at`, issue order). Runs at the
    /// start of the vault's stage-4 tick, before new issues.
    pub fn release_ready(&mut self, clock: Cycle) {
        while !self.pending.is_empty() && !self.rsp.is_full() {
            let mut best: Option<usize> = None;
            for (i, p) in self.pending.iter().enumerate() {
                if p.ready_at > clock {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(j) => {
                        let pj = &self.pending[j];
                        if (p.ready_at, p.seq) < (pj.ready_at, pj.seq) {
                            Some(i)
                        } else {
                            Some(j)
                        }
                    }
                };
            }
            let Some(i) = best else { break };
            let mut p = self.pending.remove(i);
            p.entry.arrival_cycle = clock;
            let _ = self.rsp.push(p.entry);
        }
    }

    /// True when the addressed command will need a response slot.
    pub fn needs_response(cmd: Command) -> bool {
        cmd.response_command().is_some()
    }

    /// True when every request in the head `window` slots of the request
    /// queue is decoded to `bank` — i.e. the whole per-cycle scan window
    /// is parked behind one blocked bank and a stage-4 walk cannot make
    /// progress. Undecoded entries count as *not* parked (defensive: the
    /// crossbar decodes before enqueueing, but an undecoded entry must
    /// never be fast-forwarded past). Empty queues are trivially parked.
    pub fn rqst_window_parked_on(&self, bank: hmc_types::BankId, window: usize) -> bool {
        let n = window.min(self.rqst.len());
        (0..n).all(|i| {
            self.rqst
                .get(i)
                .map(|e| e.is_decoded() && e.dest_bank == bank)
                .unwrap_or(false)
        })
    }

    /// Execute one request packet against this vault's banks.
    ///
    /// The caller (stage 4) has already verified bank availability and —
    /// for non-posted commands — a free response-queue slot; any owed
    /// response is registered directly in [`Vault::rsp`]. Failures (bad
    /// address, bad command) produce error response entries rather than
    /// simulator errors, mirroring the device's error response packets
    /// (§IV.C). The hot path is allocation-free: read/write payloads
    /// stage through a stack buffer sized for the maximal nine-FLIT
    /// packet.
    ///
    /// `data_ready` is the timing backend's grant for this access: the
    /// cycle the response data becomes available. The classic backend
    /// always grants `data_ready == cycle` (the response registers
    /// immediately); later grants park the response in [`Vault::pending`]
    /// until [`Vault::release_ready`] moves it into the queue.
    pub fn execute(
        &mut self,
        entry: QueueEntry,
        map: &dyn AddressMap,
        device: CubeId,
        cycle: Cycle,
        data_ready: Cycle,
    ) -> Execution {
        let cmd = match entry.packet.cmd() {
            Ok(c) => c,
            Err(_) => {
                self.stats.errors += 1;
                return self.error_response(
                    &entry,
                    ResponseStatus::CommandError,
                    device,
                    cycle,
                    data_ready,
                );
            }
        };
        let addr = match PhysAddr::new(entry.packet.addr()) {
            Ok(a) => a,
            Err(_) => {
                self.stats.errors += 1;
                return self.error_response(
                    &entry,
                    ResponseStatus::AddressError,
                    device,
                    cycle,
                    data_ready,
                );
            }
        };
        let decoded = match map.decode(addr) {
            Ok(d) => d,
            Err(_) => {
                self.stats.errors += 1;
                return self.error_response(
                    &entry,
                    ResponseStatus::AddressError,
                    device,
                    cycle,
                    data_ready,
                );
            }
        };

        let outcome: Result<Option<Packet>, HmcError> = match cmd {
            Command::Rd(bs) => {
                let mut buf = [0u8; MAX_BLOCK_BYTES];
                let buf = &mut buf[..bs.bytes()];
                self.mem.read(decoded, buf).map(|()| {
                    self.stats.reads += 1;
                    Some(
                        Packet::response(
                            Command::RdResponse,
                            entry.packet.tag(),
                            entry.packet.slid(),
                            ResponseStatus::Ok,
                            buf,
                        )
                        .expect("read response construction cannot fail"),
                    )
                })
            }
            Command::Wr(_) | Command::PostedWr(_) => {
                let mut buf = [0u8; MAX_BLOCK_BYTES];
                let n = entry.packet.copy_data_to(&mut buf);
                self.mem.write(decoded, &buf[..n]).map(|()| {
                    self.stats.writes += 1;
                    if cmd.is_posted() {
                        None
                    } else {
                        Some(self.write_response(&entry))
                    }
                })
            }
            Command::TwoAdd8 | Command::PostedTwoAdd8 => {
                let ops = entry.packet.data_words();
                let (op0, op1) = (ops[0], ops[1]);
                self.mem.two_add8(decoded, op0, op1).map(|_| {
                    self.stats.atomics += 1;
                    if cmd.is_posted() {
                        None
                    } else {
                        Some(self.write_response(&entry))
                    }
                })
            }
            Command::Add16 | Command::PostedAdd16 => {
                let ops = entry.packet.data_words();
                let op = (ops[0] as u128) | ((ops[1] as u128) << 64);
                self.mem.add16(decoded, op).map(|_| {
                    self.stats.atomics += 1;
                    if cmd.is_posted() {
                        None
                    } else {
                        Some(self.write_response(&entry))
                    }
                })
            }
            Command::Bwr | Command::PostedBwr => {
                let ops = entry.packet.data_words();
                let (data, mask) = (ops[0], ops[1]);
                self.mem.bit_write(decoded, data, mask).map(|_| {
                    self.stats.atomics += 1;
                    if cmd.is_posted() {
                        None
                    } else {
                        Some(self.write_response(&entry))
                    }
                })
            }
            // MODE accesses are logic-layer operations handled at the
            // crossbar; one arriving here is a protocol violation.
            _ => {
                self.stats.errors += 1;
                return self.error_response(
                    &entry,
                    ResponseStatus::CommandError,
                    device,
                    cycle,
                    data_ready,
                );
            }
        };

        match outcome {
            Ok(None) => {
                self.stats.processed += 1;
                Execution::Done
            }
            Ok(Some(packet)) => {
                self.stats.processed += 1;
                self.register_response(packet, &entry, device, cycle, data_ready);
                Execution::Responded
            }
            Err(_) => {
                self.stats.errors += 1;
                self.error_response(&entry, ResponseStatus::InternalError, device, cycle, data_ready)
            }
        }
    }

    fn write_response(&self, request: &QueueEntry) -> Packet {
        Packet::response(
            Command::WrResponse,
            request.packet.tag(),
            request.packet.slid(),
            ResponseStatus::Ok,
            &[],
        )
        .expect("write response construction cannot fail")
    }

    fn error_response(
        &mut self,
        request: &QueueEntry,
        status: ResponseStatus,
        device: CubeId,
        cycle: Cycle,
        data_ready: Cycle,
    ) -> Execution {
        // Posted requests owe no response even on failure; the error is
        // only visible through traces and the EDR registers.
        let posted = request
            .packet
            .cmd()
            .map(|c| c.is_posted())
            .unwrap_or(false);
        if posted {
            return Execution::Done;
        }
        let packet = Packet::response(
            Command::ErrorResponse,
            request.packet.tag(),
            request.packet.slid(),
            status,
            &[],
        )
        .expect("error response construction cannot fail");
        self.register_response(packet, request, device, cycle, data_ready);
        Execution::RespondedError(status)
    }

    fn register_response(
        &mut self,
        packet: Packet,
        request: &QueueEntry,
        device: CubeId,
        cycle: Cycle,
        data_ready: Cycle,
    ) {
        let mut e = QueueEntry::new(packet, device, request.src_cube, cycle);
        // The response inherits the request's device-entry stamp so
        // host-observed latency spans the whole round trip.
        e.entry_cycle = request.entry_cycle;
        // Responses exit the device on the link the request arrived on,
        // preserving the link-stream association (§III.C).
        e.arrival_link = request.arrival_link;
        if data_ready > cycle {
            // Timed backends: the data lands later; park the finished
            // response until `release_ready` moves it into the queue.
            let seq = self.pending_seq;
            self.pending_seq += 1;
            self.pending.push(PendingRsp {
                ready_at: data_ready,
                seq,
                entry: e,
            });
            return;
        }
        // Stage 4 verified a free slot before executing a command that
        // owes a response, so this cannot overflow in the engine; a
        // direct caller that ignored the contract just loses the entry.
        let _ = self.rsp.push(e);
    }

    /// Drop queue contents and counters; reset banks and the timing
    /// backend (device reset).
    pub fn reset(&mut self) {
        self.rqst.clear();
        self.rsp.clear();
        self.pending.clear();
        self.pending_seq = 0;
        self.mem.reset();
        self.timing.reset();
        if let Some(faults) = &mut self.faults {
            faults.reset();
        }
        self.stats = VaultStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::config::StorageMode;
    use hmc_types::{BlockSize, LowInterleaveMap, MapGeometry};

    fn map() -> LowInterleaveMap {
        LowInterleaveMap::new(MapGeometry {
            block_bytes: 128,
            vaults: 16,
            banks: 8,
            rows: 64,
        })
        .unwrap()
    }

    fn vault() -> Vault {
        Vault::new(
            0,
            4,
            VaultMemory::from_parts(8, 64, 128, 16, StorageMode::Functional),
        )
    }

    fn request(cmd: Command, addr: u64, tag: u16, data: &[u8]) -> QueueEntry {
        let p = Packet::request(cmd, 0, addr, tag, 2, data).unwrap();
        let mut e = QueueEntry::new(p, 6, 0, 0);
        e.arrival_link = 2;
        e
    }

    /// Pop the response `execute` just registered in the vault queue.
    fn take_rsp(v: &mut Vault) -> QueueEntry {
        v.rsp.pop().expect("a response entry was registered")
    }

    #[test]
    fn window_parking_requires_every_slot_on_the_blocked_bank() {
        let mut v = vault();
        assert!(v.rqst_window_parked_on(3, 8), "empty queue is parked");
        let mut a = request(Command::Rd(BlockSize::B64), 0, 1, &[]);
        a.dest_vault = 0;
        a.dest_bank = 3;
        let mut b = request(Command::Rd(BlockSize::B64), 0, 2, &[]);
        b.dest_vault = 0;
        b.dest_bank = 3;
        v.rqst.push(a).unwrap();
        v.rqst.push(b).unwrap();
        assert!(v.rqst_window_parked_on(3, 8));
        assert!(!v.rqst_window_parked_on(4, 8), "different blocked bank");
        // A window shorter than the queue only inspects the head slots.
        let mut c = request(Command::Rd(BlockSize::B64), 0, 3, &[]);
        c.dest_vault = 0;
        c.dest_bank = 5;
        v.rqst.push(c).unwrap();
        assert!(v.rqst_window_parked_on(3, 2));
        assert!(!v.rqst_window_parked_on(3, 3), "entry on bank 5 in window");
        // Undecoded entries are never parked.
        let mut u = v.rqst.pop().unwrap();
        u.dest_vault = crate::queue::UNDECODED;
        u.dest_bank = crate::queue::UNDECODED;
        v.rqst.push_front(u);
        assert!(!v.rqst_window_parked_on(3, 1));
    }

    #[test]
    fn write_then_read_roundtrip_through_execution() {
        let mut v = vault();
        let m = map();
        let data = [0x5au8; 64];
        // Vault 0 addresses: low-interleave places vault bits just above
        // the 128-byte offset, so address 0 targets vault 0, bank 0.
        let exec = v.execute(request(Command::Wr(BlockSize::B64), 0, 1, &data), &m, 0, 5, 5);
        assert_eq!(exec, Execution::Responded);
        let e = take_rsp(&mut v);
        assert_eq!(e.packet.cmd().unwrap(), Command::WrResponse);
        assert_eq!(e.packet.tag(), 1);
        assert_eq!(e.packet.errstat().unwrap(), ResponseStatus::Ok);
        assert_eq!(e.src_cube, 0);
        assert_eq!(e.dest_cube, 6, "response returns to the host");
        assert_eq!(e.arrival_link, 2);
        let exec = v.execute(request(Command::Rd(BlockSize::B64), 0, 2, &[]), &m, 0, 6, 6);
        assert_eq!(exec, Execution::Responded);
        let e = take_rsp(&mut v);
        assert_eq!(e.packet.cmd().unwrap(), Command::RdResponse);
        assert_eq!(e.packet.data_as_bytes(), data.to_vec());
        assert_eq!(e.packet.response_slid(), 2, "SLID echoed");
        assert_eq!(v.stats.processed, 2);
        assert_eq!(v.stats.reads, 1);
        assert_eq!(v.stats.writes, 1);
    }

    #[test]
    fn posted_writes_complete_silently() {
        let mut v = vault();
        let m = map();
        let exec = v.execute(
            request(Command::PostedWr(BlockSize::B32), 0, 3, &[1u8; 32]),
            &m,
            0,
            0,
            0,
        );
        assert_eq!(exec, Execution::Done, "posted write must not respond");
        assert!(v.rsp.is_empty());
        assert_eq!(v.stats.writes, 1);
    }

    #[test]
    fn two_add8_adds_both_words() {
        let mut v = vault();
        let m = map();
        let mut payload = [0u8; 16];
        payload[..8].copy_from_slice(&10u64.to_le_bytes());
        payload[8..].copy_from_slice(&20u64.to_le_bytes());
        v.execute(request(Command::TwoAdd8, 0, 1, &payload), &m, 0, 0, 0);
        v.execute(request(Command::TwoAdd8, 0, 2, &payload), &m, 0, 0, 0);
        v.rsp.clear();
        let exec = v.execute(request(Command::Rd(BlockSize::B16), 0, 3, &[]), &m, 0, 0, 0);
        assert_eq!(exec, Execution::Responded);
        let bytes = take_rsp(&mut v).packet.data_as_bytes();
        assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), 20);
        assert_eq!(u64::from_le_bytes(bytes[8..].try_into().unwrap()), 40);
        assert_eq!(v.stats.atomics, 2);
    }

    #[test]
    fn add16_carries_across_words() {
        let mut v = vault();
        let m = map();
        // Seed memory with u64::MAX in the low word so +1 carries.
        let mut seed = [0u8; 16];
        seed[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        v.execute(request(Command::Wr(BlockSize::B16), 0, 1, &seed), &m, 0, 0, 0);
        let mut op = [0u8; 16];
        op[0] = 1;
        v.execute(request(Command::Add16, 0, 2, &op), &m, 0, 0, 0);
        v.rsp.clear();
        let exec = v.execute(request(Command::Rd(BlockSize::B16), 0, 3, &[]), &m, 0, 0, 0);
        assert_eq!(exec, Execution::Responded);
        let bytes = take_rsp(&mut v).packet.data_as_bytes();
        let val = u128::from_le_bytes(bytes.try_into().unwrap());
        assert_eq!(val, 1u128 << 64);
    }

    #[test]
    fn bwr_applies_mask() {
        let mut v = vault();
        let m = map();
        let mut seed = [0u8; 16];
        seed[..8].copy_from_slice(&0xffff_ffff_ffff_ffffu64.to_le_bytes());
        v.execute(request(Command::Wr(BlockSize::B16), 0, 1, &seed), &m, 0, 0, 0);
        let mut op = [0u8; 16];
        op[..8].copy_from_slice(&0u64.to_le_bytes()); // data
        op[8..].copy_from_slice(&0x0000_0000_ffff_ffffu64.to_le_bytes()); // mask
        v.execute(request(Command::Bwr, 0, 2, &op), &m, 0, 0, 0);
        v.rsp.clear();
        let exec = v.execute(request(Command::Rd(BlockSize::B16), 0, 3, &[]), &m, 0, 0, 0);
        assert_eq!(exec, Execution::Responded);
        let bytes = take_rsp(&mut v).packet.data_as_bytes();
        assert_eq!(
            u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            0xffff_ffff_0000_0000
        );
    }

    #[test]
    fn out_of_capacity_address_yields_error_response() {
        let mut v = vault();
        let m = map();
        // Beyond the 16-vault x 8-bank x 64-row x 128-byte capacity.
        let over = m.geometry().capacity_bytes();
        let exec = v.execute(request(Command::Rd(BlockSize::B16), over, 7, &[]), &m, 0, 0, 0);
        assert_eq!(
            exec,
            Execution::RespondedError(ResponseStatus::AddressError)
        );
        let e = take_rsp(&mut v);
        assert_eq!(e.packet.cmd().unwrap(), Command::ErrorResponse);
        assert_eq!(e.packet.errstat().unwrap(), ResponseStatus::AddressError);
        assert_eq!(e.packet.tag(), 7);
        assert!(e.packet.dinv());
        assert_eq!(v.stats.errors, 1);
        assert_eq!(v.stats.processed, 0);
    }

    #[test]
    fn mode_commands_at_a_vault_are_command_errors() {
        let mut v = vault();
        let m = map();
        let exec = v.execute(request(Command::ModeRead, 0, 1, &[]), &m, 0, 0, 0);
        assert_eq!(
            exec,
            Execution::RespondedError(ResponseStatus::CommandError)
        );
        let e = take_rsp(&mut v);
        assert_eq!(e.packet.errstat().unwrap(), ResponseStatus::CommandError);
    }

    #[test]
    fn posted_failures_stay_silent() {
        let mut v = vault();
        let m = map();
        let over = m.geometry().capacity_bytes();
        let exec = v.execute(
            request(Command::PostedWr(BlockSize::B16), over, 1, &[0u8; 16]),
            &m,
            0,
            0,
            0,
        );
        assert_eq!(exec, Execution::Done, "posted failure must be silent");
        assert!(v.rsp.is_empty());
        assert_eq!(v.stats.errors, 1);
    }

    #[test]
    fn reset_restores_fresh_vault() {
        let mut v = vault();
        let m = map();
        v.execute(request(Command::Wr(BlockSize::B16), 0, 1, &[1; 16]), &m, 0, 0, 0);
        v.reset();
        assert_eq!(v.stats, VaultStats::default());
        let exec = v.execute(request(Command::Rd(BlockSize::B16), 0, 2, &[]), &m, 0, 0, 0);
        assert_eq!(exec, Execution::Responded);
        assert_eq!(take_rsp(&mut v).packet.data_as_bytes(), vec![0u8; 16]);
    }

    #[test]
    fn delayed_data_parks_then_releases_in_ready_order() {
        let mut v = vault();
        let m = map();
        // Grant data at cycle 20: the response parks in `pending`.
        let exec = v.execute(request(Command::Rd(BlockSize::B16), 0, 1, &[]), &m, 0, 10, 20);
        assert_eq!(exec, Execution::Responded);
        assert!(v.rsp.is_empty());
        assert_eq!(v.pending.len(), 1);
        assert_eq!(v.pending_min_ready(), Some(20));
        // A later issue with an earlier ready time releases first.
        v.execute(request(Command::Rd(BlockSize::B16), 0, 2, &[]), &m, 0, 11, 15);
        assert!(!v.rsp_capacity_full());
        v.release_ready(14);
        assert!(v.rsp.is_empty(), "nothing ready before its cycle");
        v.release_ready(25);
        assert_eq!(v.rsp.len(), 2);
        let first = v.rsp.pop().unwrap();
        assert_eq!(first.packet.tag(), 2, "earlier ready_at releases first");
        assert_eq!(first.arrival_cycle, 25, "arrival restamped at release");
        assert_eq!(first.entry_cycle, 0, "latency origin preserved");
        assert_eq!(v.rsp.pop().unwrap().packet.tag(), 1);
        assert!(v.pending.is_empty());
    }

    #[test]
    fn capacity_counts_pending_and_queued_responses() {
        let mut v = vault(); // depth 4
        let m = map();
        for tag in 0..3 {
            v.execute(
                request(Command::Rd(BlockSize::B16), 0, tag, &[]),
                &m,
                0,
                0,
                100,
            );
        }
        v.execute(request(Command::Rd(BlockSize::B16), 0, 9, &[]), &m, 0, 0, 0);
        assert_eq!(v.pending.len(), 3);
        assert_eq!(v.rsp.len(), 1);
        assert!(v.rsp_capacity_full());
    }

    #[test]
    fn needs_response_tracks_command_class() {
        assert!(Vault::needs_response(Command::Rd(BlockSize::B64)));
        assert!(Vault::needs_response(Command::Wr(BlockSize::B64)));
        assert!(!Vault::needs_response(Command::PostedWr(BlockSize::B64)));
        assert!(!Vault::needs_response(Command::Null));
    }
}
