//! Inter-cube routing.
//!
//! The HMC link structure lets packets traverse chained devices toward
//! cubes they are not directly attached to (paper §III.A). HMC-Sim routes
//! hop-by-hop: each device consults a next-hop table derived from the
//! configured topology by breadth-first search, so packets take shortest
//! paths and deliberately misconfigured topologies surface as unroutable
//! destinations (error responses, §IV requirement 2).

use std::collections::VecDeque;

use hmc_types::{CubeId, LinkId};

use crate::device::Device;
use crate::link::Endpoint;

/// Per-device next-hop table: `next_hop[dev][target] = link`.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// Indexed `[device][target_cube] -> Option<LinkId>`.
    next_hop: Vec<Vec<Option<LinkId>>>,
    num_targets: usize,
}

impl RouteTable {
    /// Build routes over the devices' current link wiring. `num_cubes` is
    /// the total ID space (devices + hosts).
    pub fn build(devices: &[Device], num_cubes: usize) -> Self {
        let n = devices.len();
        let mut next_hop = vec![vec![None; num_cubes]; n];

        // Adjacency: for each device, (link, remote cube) pairs.
        // Device-device edges are walkable; host edges terminate.
        for target in 0..num_cubes as u16 {
            let target = target as CubeId;
            // Multi-source BFS from every device adjacent to `target`
            // (or from `target` itself when it is a device), expanding
            // outward and recording the link that leads back toward it.
            let mut dist = vec![usize::MAX; n];
            let mut queue = VecDeque::new();

            if (target as usize) < n {
                dist[target as usize] = 0;
                queue.push_back(target as usize);
            } else {
                // Host target: devices with a direct host link are the
                // frontier at distance 1.
                for (di, dev) in devices.iter().enumerate() {
                    for link in &dev.links {
                        if link.remote == Endpoint::Host(target) {
                            if dist[di] != usize::MAX {
                                continue;
                            }
                            dist[di] = 1;
                            next_hop[di][target as usize] = Some(link.id);
                            queue.push_back(di);
                        }
                    }
                }
            }

            while let Some(cur) = queue.pop_front() {
                // Expand to neighbours: a neighbour reaches `target`
                // through its link facing `cur`.
                for (ni, ndev) in devices.iter().enumerate() {
                    if dist[ni] != usize::MAX {
                        continue;
                    }
                    let mut found = None;
                    for link in &ndev.links {
                        if let Endpoint::Device(c, _) = link.remote {
                            if c as usize == cur {
                                found = Some(link.id);
                                break;
                            }
                        }
                    }
                    if let Some(l) = found {
                        dist[ni] = dist[cur] + 1;
                        next_hop[ni][target as usize] = Some(l);
                        queue.push_back(ni);
                    }
                }
            }
        }

        RouteTable {
            next_hop,
            num_targets: num_cubes,
        }
    }

    /// The link device `dev` should use toward `target`, or `None` if the
    /// target is unreachable (misroute) or is the device itself.
    pub fn next_hop(&self, dev: CubeId, target: CubeId) -> Option<LinkId> {
        if dev == target {
            return None;
        }
        self.next_hop
            .get(dev as usize)
            .and_then(|row| row.get(target as usize))
            .copied()
            .flatten()
    }

    /// Number of cube IDs the table covers.
    pub fn num_targets(&self) -> usize {
        self.num_targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::DeviceConfig;

    fn devices(n: usize) -> Vec<Device> {
        (0..n)
            .map(|i| Device::new(i as CubeId, &DeviceConfig::small()))
            .collect()
    }

    fn wire(devs: &mut [Device], a: usize, la: u8, b: usize, lb: u8) {
        devs[a].links[la as usize].remote = Endpoint::Device(b as CubeId, lb);
        devs[b].links[lb as usize].remote = Endpoint::Device(a as CubeId, la);
    }

    fn host(devs: &mut [Device], d: usize, l: u8, h: CubeId) {
        devs[d].links[l as usize].remote = Endpoint::Host(h);
    }

    #[test]
    fn direct_host_link_is_one_hop() {
        let mut devs = devices(1);
        host(&mut devs, 0, 0, 1);
        let rt = RouteTable::build(&devs, 2);
        assert_eq!(rt.next_hop(0, 1), Some(0));
    }

    #[test]
    fn chain_routes_hop_by_hop() {
        // host(4) - dev0 - dev1 - dev2 - dev3
        let mut devs = devices(4);
        host(&mut devs, 0, 0, 4);
        wire(&mut devs, 0, 1, 1, 0);
        wire(&mut devs, 1, 1, 2, 0);
        wire(&mut devs, 2, 1, 3, 0);
        let rt = RouteTable::build(&devs, 5);
        // Requests: host→dev3 path enters dev0; dev0 forwards on link 1.
        assert_eq!(rt.next_hop(0, 3), Some(1));
        assert_eq!(rt.next_hop(1, 3), Some(1));
        assert_eq!(rt.next_hop(2, 3), Some(1));
        // Responses: dev3 back to host 4.
        assert_eq!(rt.next_hop(3, 4), Some(0));
        assert_eq!(rt.next_hop(1, 4), Some(0));
        assert_eq!(rt.next_hop(0, 4), Some(0));
    }

    #[test]
    fn ring_takes_the_shortest_direction() {
        // 4-device ring: 0-1-2-3-0, host on dev 0.
        let mut devs = devices(4);
        host(&mut devs, 0, 0, 4);
        wire(&mut devs, 0, 1, 1, 0);
        wire(&mut devs, 1, 1, 2, 0);
        wire(&mut devs, 2, 1, 3, 0);
        wire(&mut devs, 3, 1, 0, 2);
        let rt = RouteTable::build(&devs, 5);
        // dev0 → dev3 directly via link 2 (one hop, not around the ring).
        assert_eq!(rt.next_hop(0, 3), Some(2));
        assert_eq!(rt.next_hop(0, 1), Some(1));
    }

    #[test]
    fn unreachable_targets_have_no_route() {
        let mut devs = devices(2);
        host(&mut devs, 0, 0, 2);
        // dev1 is never wired.
        let rt = RouteTable::build(&devs, 3);
        assert_eq!(rt.next_hop(0, 1), None, "no path to the unwired device");
        assert_eq!(rt.next_hop(1, 2), None, "unwired device reaches nothing");
    }

    #[test]
    fn self_route_is_none() {
        let devs = devices(1);
        let rt = RouteTable::build(&devs, 2);
        assert_eq!(rt.next_hop(0, 0), None);
    }

    #[test]
    fn multiple_hosts_route_independently() {
        let mut devs = devices(2);
        host(&mut devs, 0, 0, 2);
        host(&mut devs, 1, 0, 3);
        wire(&mut devs, 0, 1, 1, 1);
        let rt = RouteTable::build(&devs, 4);
        assert_eq!(rt.next_hop(0, 2), Some(0));
        assert_eq!(rt.next_hop(0, 3), Some(1), "host 3 is through dev 1");
        assert_eq!(rt.next_hop(1, 2), Some(1));
        assert_eq!(rt.next_hop(1, 3), Some(0));
    }
}
