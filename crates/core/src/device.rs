//! The HMC device structure.
//!
//! "Devices are analogous to a single Hybrid Memory Cube device package.
//! … The device structure contains three sub-structures: Links, Crossbar
//! Units and Quad Units \[plus\] any device-specific configuration
//! registers" (paper §IV.A). Below the quads sit the vaults, banks and
//! DRAMs, mirrored here by the `vaults` block whose [`Vault`]s own their
//! [`hmc_mem::VaultMemory`] bank stacks.
//!
//! The C implementation allocates each structure type "as a single block,
//! while hierarchical pointers are initialized to point within this
//! well-aligned allocation" (§IV.A). The Rust port keeps each structure
//! class in one contiguous `Vec` per device and links levels by index,
//! preserving the same allocation behaviour with safe ownership.

use hmc_mem::VaultMemory;
use hmc_types::{CubeId, DeviceConfig, LinkId, VaultId};

use crate::link::Link;
use crate::noc::NocState;
use crate::quad::Quad;
use crate::register::RegisterFile;
use crate::vault::Vault;
use crate::xbar::Crossbar;

/// One simulated HMC device package.
#[derive(Debug)]
pub struct Device {
    /// Cube ID of this device (0-based within the simulation object).
    pub id: CubeId,
    /// External links, one crossbar unit each.
    pub links: Vec<Link>,
    /// Crossbar units (request + response queues per link).
    pub xbars: Vec<Crossbar>,
    /// Quad units (locality domains of four vaults).
    pub quads: Vec<Quad>,
    /// Vault controllers with their bank stacks.
    pub vaults: Vec<Vault>,
    /// The device register file.
    pub registers: RegisterFile,
    /// Buffered intra-cube fabric state (ring/mesh). `None` means the
    /// paper's idealized crossbar: stage 2 and stage 5 push directly and
    /// no NoC sub-stage runs — the pre-NoC engine, bit for bit.
    pub noc: Option<NocState>,
}

impl Device {
    /// Build a device in its reset state from a validated configuration.
    pub fn new(id: CubeId, config: &DeviceConfig) -> Self {
        let links = (0..config.num_links)
            .map(|l| Link::new(l, config.xbar_depth))
            .collect();
        let xbars = (0..config.num_links)
            .map(|l| Crossbar::new(l, config.xbar_depth))
            .collect();
        let quads = (0..config.num_quads()).map(Quad::new).collect();
        let vaults = (0..config.num_vaults)
            .map(|v| Vault::new(v, config.vault_depth, VaultMemory::new(config)))
            .collect();
        let registers = RegisterFile::new(
            config.num_links,
            config.capacity_bytes >> 30,
            config.num_vaults,
        );
        Device {
            id,
            links,
            xbars,
            quads,
            vaults,
            registers,
            noc: None,
        }
    }

    /// True when any link connects to a host — a "root" device in the
    /// paper's stage-ordering terminology (§IV.C).
    pub fn is_root(&self) -> bool {
        self.links.iter().any(|l| l.is_host_link())
    }

    /// Indices of links connected to hosts.
    pub fn host_links(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| l.is_host_link())
            .map(|l| l.id)
            .collect()
    }

    /// The quad that owns `vault`.
    pub fn quad_of(&self, vault: VaultId) -> u8 {
        Quad::of_vault(vault)
    }

    /// Total packets resident in all device queues (drain checks),
    /// including packets in flight between quads on a buffered NoC.
    pub fn total_occupancy(&self) -> usize {
        self.xbars.iter().map(|x| x.occupancy()).sum::<usize>()
            + self
                .vaults
                .iter()
                .map(|v| v.rqst.len() + v.rsp.len() + v.pending.len())
                .sum::<usize>()
            + self.noc.as_ref().map_or(0, |n| n.occupancy())
    }

    /// Return the device to its reset state: queues emptied, registers at
    /// power-on values, banks cleared, link tokens refilled. Topology
    /// wiring is preserved.
    pub fn reset(&mut self) {
        for x in &mut self.xbars {
            x.clear();
        }
        for v in &mut self.vaults {
            v.reset();
        }
        for l in &mut self.links {
            l.reset_tokens();
        }
        if let Some(n) = &mut self.noc {
            n.clear();
        }
        self.registers.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Endpoint;

    #[test]
    fn four_link_device_structure_matches_figure_2() {
        // Fig. 2 / §IV.A example: four links, four quads, sixteen vaults.
        let cfg = DeviceConfig::small();
        let d = Device::new(0, &cfg);
        assert_eq!(d.links.len(), 4);
        assert_eq!(d.xbars.len(), 4);
        assert_eq!(d.quads.len(), 4);
        assert_eq!(d.vaults.len(), 16);
        for (i, q) in d.quads.iter().enumerate() {
            assert_eq!(q.id as usize, i);
            for v in q.vaults {
                assert!((v as usize) < d.vaults.len());
            }
        }
        for v in &d.vaults {
            assert_eq!(v.mem.num_banks(), cfg.banks_per_vault);
        }
    }

    #[test]
    fn eight_link_device_doubles_the_hierarchy() {
        let cfg = DeviceConfig::paper_8link_16bank_8gb();
        let d = Device::new(1, &cfg);
        assert_eq!(d.links.len(), 8);
        assert_eq!(d.quads.len(), 8);
        assert_eq!(d.vaults.len(), 32);
        assert_eq!(d.vaults[0].mem.num_banks(), 16);
    }

    #[test]
    fn fresh_device_is_not_root() {
        let d = Device::new(0, &DeviceConfig::small());
        assert!(!d.is_root());
        assert!(d.host_links().is_empty());
    }

    #[test]
    fn root_detection_follows_link_wiring() {
        let mut d = Device::new(0, &DeviceConfig::small());
        d.links[2].remote = Endpoint::Host(4);
        assert!(d.is_root());
        assert_eq!(d.host_links(), vec![2]);
    }

    #[test]
    fn occupancy_starts_empty_and_reset_clears() {
        let cfg = DeviceConfig::small();
        let mut d = Device::new(0, &cfg);
        assert_eq!(d.total_occupancy(), 0);
        // Occupy a couple of queues directly.
        use crate::queue::QueueEntry;
        use hmc_types::{BlockSize, Command, Packet};
        let p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 0, 0, &[]).unwrap();
        d.xbars[0].rqst.push(QueueEntry::new(p.clone(), 4, 0, 0)).unwrap();
        d.vaults[3].rqst.push(QueueEntry::new(p, 4, 0, 0)).unwrap();
        assert_eq!(d.total_occupancy(), 2);
        d.reset();
        assert_eq!(d.total_occupancy(), 0);
    }

    #[test]
    fn queue_depths_come_from_config() {
        let cfg = DeviceConfig::small().with_queue_depths(128, 64);
        let d = Device::new(0, &cfg);
        assert_eq!(d.xbars[0].rqst.depth(), 128);
        assert_eq!(d.vaults[0].rqst.depth(), 64);
    }
}
