//! Link-level error simulation.
//!
//! HMC-Sim's packet handling is designed to support "functional
//! simulation, error simulation and performance simulation" (paper §IV,
//! requirement 5), and the packet tails carry the retry pointers (FRP /
//! RRP) and CRC the specification's link-retry protocol uses.
//!
//! This module models lossy SERDES links: each packet crossing a
//! host-to-device link is independently corrupted with a configurable
//! probability. The receiving crossbar detects the corruption (the CRC
//! check the real logic layer performs), raises a
//! [`LinkRetry`](hmc_trace::EventKind::LinkRetry) trace event, and holds
//! the packet for a retransmission penalty before processing the clean
//! retransmission — the observable timing behaviour of the spec's
//! IRTRY/FRP retry protocol without modelling the bit-level exchange.

use hmc_types::Cycle;

/// Error-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a packet is corrupted in link transit (0.0–1.0).
    pub packet_error_rate: f64,
    /// Retransmission penalty in cycles charged per detected corruption.
    pub retry_cycles: Cycle,
    /// Deterministic seed for the corruption stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            packet_error_rate: 1e-3,
            retry_cycles: 8,
            seed: 0x5eed_cafe,
        }
    }
}

/// Live error-injection state and statistics.
#[derive(Debug, Clone)]
pub struct FaultState {
    /// The active configuration.
    pub config: FaultConfig,
    rng: u64,
    /// Packets corrupted in transit so far.
    pub injected: u64,
    /// Corruptions detected and retried by crossbars so far.
    pub detected: u64,
}

impl FaultState {
    /// Initialize from a configuration.
    ///
    /// # Panics
    /// Panics if the error rate is outside `[0, 1]` or non-finite.
    pub fn new(config: FaultConfig) -> Self {
        assert!(
            config.packet_error_rate.is_finite()
                && (0.0..=1.0).contains(&config.packet_error_rate),
            "packet error rate must be a probability"
        );
        FaultState {
            config,
            rng: config.seed | 1,
            injected: 0,
            detected: 0,
        }
    }

    /// SplitMix64 step — deterministic, seedable, cheap.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Whether a uniform `draw` falls inside probability `rate`. A unit
    /// rate is special-cased to always hit: the scaled threshold
    /// saturates at `u64::MAX`, and the strict compare below would then
    /// miss the one draw in 2^64 where the RNG emits `u64::MAX` itself.
    fn hits(rate: f64, draw: u64) -> bool {
        if rate >= 1.0 {
            return true;
        }
        draw < (rate * (u64::MAX as f64)) as u64
    }

    /// Roll the dice for one link transit; true = corrupted.
    pub fn roll(&mut self) -> bool {
        let draw = self.next_u64();
        let hit = Self::hits(self.config.packet_error_rate, draw);
        if hit {
            self.injected += 1;
        }
        hit
    }

    /// Record a crossbar-side detection.
    pub fn record_detection(&mut self) {
        self.detected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let mut f = FaultState::new(FaultConfig {
            packet_error_rate: 0.0,
            ..FaultConfig::default()
        });
        assert!((0..10_000).all(|_| !f.roll()));
        assert_eq!(f.injected, 0);
    }

    #[test]
    fn unit_rate_always_fires() {
        let mut f = FaultState::new(FaultConfig {
            packet_error_rate: 1.0,
            ..FaultConfig::default()
        });
        assert!((0..1_000).all(|_| f.roll()));
        assert_eq!(f.injected, 1_000);
    }

    #[test]
    fn unit_rate_fires_even_on_a_max_draw() {
        // Regression: the threshold for rate 1.0 saturates at u64::MAX,
        // so a strict `<` alone would miss a draw of exactly u64::MAX.
        assert!(FaultState::hits(1.0, u64::MAX));
        assert!(FaultState::hits(1.0, 0));
        // Just under unit rate keeps the strict compare.
        assert!(!FaultState::hits(0.999_999, u64::MAX));
        assert!(!FaultState::hits(0.0, 0));
    }

    #[test]
    fn intermediate_rates_are_roughly_calibrated() {
        let mut f = FaultState::new(FaultConfig {
            packet_error_rate: 0.1,
            ..FaultConfig::default()
        });
        let hits = (0..100_000).filter(|_| f.roll()).count();
        assert!(
            (8_000..12_000).contains(&hits),
            "10% rate produced {hits}/100000"
        );
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let cfg = FaultConfig {
            packet_error_rate: 0.5,
            ..FaultConfig::default()
        };
        let mut a = FaultState::new(cfg);
        let mut b = FaultState::new(cfg);
        for _ in 0..1_000 {
            assert_eq!(a.roll(), b.roll());
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_rate_rejected() {
        FaultState::new(FaultConfig {
            packet_error_rate: 1.5,
            ..FaultConfig::default()
        });
    }
}
