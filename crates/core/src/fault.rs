//! Link-level error simulation: the HMC link-retry protocol.
//!
//! HMC-Sim's packet handling is designed to support "functional
//! simulation, error simulation and performance simulation" (paper §IV,
//! requirement 5), and the packet tails carry the retry pointers (FRP /
//! RRP) and CRC the specification's link-retry protocol uses.
//!
//! This module models lossy SERDES links end to end. Each transmission
//! attempt of a packet crossing a host-to-device link is independently
//! corrupted with a configurable probability; the receiving crossbar
//! detects the corruption (the CRC check the real logic layer performs),
//! raises a [`LinkRetry`](hmc_trace::EventKind::LinkRetry) trace event —
//! the observable face of the spec's StartRetry/IRTRY exchange — and
//! stalls the link head for [`FaultConfig::retry_cycles`] while the peer
//! retransmits in order from its retry buffer. A packet whose every
//! transmission through [`FaultConfig::retry_limit`] retries stays
//! corrupt exhausts the protocol: the link goes down for a
//! [`FaultConfig::retrain_cycles`] retraining window and the request is
//! aborted with a poisoned-`ERRSTAT`
//! ([`ResponseStatus::LinkPoisoned`](hmc_types::ResponseStatus))
//! response, so the host always sees a typed failure rather than a
//! silent drop.
//!
//! Corruption decisions are **stateless hashes** of
//! `(seed, cube, link, send_seq, attempt)` — the same discipline as
//! `hmc_mem::cellfault` — where `send_seq` is the link's monotonic send
//! sequence number. The fault stream is therefore a pure function of the
//! injected workload: bit-identical across thread counts and
//! stepped/fast-forward engine modes, and predictable at issue time
//! ([`predicts_poison`]) by the conformance oracle.

use hmc_types::{Cycle, LinkFaultConfig};

/// Error-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that one transmission attempt is corrupted in link
    /// transit (0.0–1.0). Off by default: error simulation, like every
    /// other injection subsystem, is explicit opt-in.
    pub packet_error_rate: f64,
    /// Retransmission penalty in cycles charged per detected corruption.
    pub retry_cycles: Cycle,
    /// Retransmission attempts after the initial transmission before the
    /// link gives up and poisons the request.
    pub retry_limit: u32,
    /// Cycles the link spends retraining (no packets move) after a
    /// retry exhaustion.
    pub retrain_cycles: Cycle,
    /// Deterministic seed for the corruption stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            packet_error_rate: 0.0,
            retry_cycles: 8,
            retry_limit: 3,
            retrain_cycles: 64,
            seed: 0x5eed_cafe,
        }
    }
}

impl From<LinkFaultConfig> for FaultConfig {
    fn from(c: LinkFaultConfig) -> Self {
        FaultConfig {
            packet_error_rate: c.error_rate(),
            retry_cycles: c.retry_cycles,
            retry_limit: c.retry_limit,
            retrain_cycles: c.retrain_cycles,
            seed: c.seed,
        }
    }
}

/// SplitMix64 finalizer — deterministic, seedable, cheap.
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The uniform draw for one transmission attempt: a pure hash of the
/// stream seed and the transmission's stable identity.
fn transmission_draw(seed: u64, cube: u8, link: u8, send_seq: u64, attempt: u32) -> u64 {
    let mut h = mix(seed | 1);
    h = mix(h ^ ((cube as u64) << 32 | (link as u64)));
    h = mix(h ^ send_seq);
    mix(h ^ (attempt as u64))
}

/// Whether transmission `attempt` (0 = the initial send, `n` = the n-th
/// retransmission) of the packet holding slot `send_seq` in the link's
/// monotonic send order is corrupted under `config`.
///
/// A pure function of its arguments: independent of thread count,
/// engine mode, and simulation history.
pub fn transmission_corrupt(
    config: &FaultConfig,
    cube: u8,
    link: u8,
    send_seq: u64,
    attempt: u32,
) -> bool {
    hits(
        config.packet_error_rate,
        transmission_draw(config.seed, cube, link, send_seq, attempt),
    )
}

/// Whether the packet holding slot `send_seq` in `link`'s send order
/// will exhaust the retry protocol and be poisoned: true iff the
/// initial transmission *and* every one of the `retry_limit` allowed
/// retransmissions is corrupt. The conformance oracle uses this to
/// predict the exact poisoned tag set at issue time.
pub fn predicts_poison(config: &FaultConfig, cube: u8, link: u8, send_seq: u64) -> bool {
    (0..=config.retry_limit).all(|a| transmission_corrupt(config, cube, link, send_seq, a))
}

/// Whether a uniform `draw` falls inside probability `rate`. A unit
/// rate is special-cased to always hit: the scaled threshold
/// saturates at `u64::MAX`, and the strict compare below would then
/// miss the one draw in 2^64 where the RNG emits `u64::MAX` itself.
fn hits(rate: f64, draw: u64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    draw < (rate * (u64::MAX as f64)) as u64
}

/// Live error-injection state and statistics.
#[derive(Debug, Clone)]
pub struct FaultState {
    /// The active configuration.
    pub config: FaultConfig,
    /// Transmission attempts corrupted in transit so far (initial sends
    /// and retransmissions both count).
    pub injected: u64,
    /// Corruptions detected and retried by crossbars so far.
    pub detected: u64,
    /// Requests aborted with a poisoned response after retry exhaustion.
    pub poisoned: u64,
}

impl FaultState {
    /// Initialize from a configuration.
    ///
    /// # Panics
    /// Panics if the error rate is outside `[0, 1]` or non-finite.
    pub fn new(config: FaultConfig) -> Self {
        assert!(
            config.packet_error_rate.is_finite()
                && (0.0..=1.0).contains(&config.packet_error_rate),
            "packet error rate must be a probability"
        );
        FaultState {
            config,
            injected: 0,
            detected: 0,
            poisoned: 0,
        }
    }

    /// Decide the fate of one transmission attempt, counting hits.
    pub fn roll_attempt(&mut self, cube: u8, link: u8, send_seq: u64, attempt: u32) -> bool {
        let hit = transmission_corrupt(&self.config, cube, link, send_seq, attempt);
        if hit {
            self.injected += 1;
        }
        hit
    }

    /// Record a crossbar-side detection.
    pub fn record_detection(&mut self) {
        self.detected += 1;
    }

    /// Record a retry-exhaustion poisoning.
    pub fn record_poison(&mut self) {
        self.poisoned += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rate_is_off() {
        // Error simulation is opt-in, like every other injection
        // subsystem: the default config must inject nothing.
        assert_eq!(FaultConfig::default().packet_error_rate, 0.0);
        let mut f = FaultState::new(FaultConfig::default());
        assert!((0..10_000u64).all(|seq| !f.roll_attempt(0, 0, seq, 0)));
        assert_eq!(f.injected, 0);
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut f = FaultState::new(FaultConfig {
            packet_error_rate: 0.0,
            ..FaultConfig::default()
        });
        assert!((0..10_000u64).all(|seq| !f.roll_attempt(1, 2, seq, 0)));
        assert_eq!(f.injected, 0);
    }

    #[test]
    fn unit_rate_always_fires() {
        let mut f = FaultState::new(FaultConfig {
            packet_error_rate: 1.0,
            ..FaultConfig::default()
        });
        assert!((0..1_000u64).all(|seq| f.roll_attempt(1, 0, seq, 0)));
        assert_eq!(f.injected, 1_000);
    }

    #[test]
    fn unit_rate_fires_even_on_a_max_draw() {
        // Regression: the threshold for rate 1.0 saturates at u64::MAX,
        // so a strict `<` alone would miss a draw of exactly u64::MAX.
        assert!(hits(1.0, u64::MAX));
        assert!(hits(1.0, 0));
        // Just under unit rate keeps the strict compare.
        assert!(!hits(0.999_999, u64::MAX));
        assert!(!hits(0.0, 0));
    }

    #[test]
    fn intermediate_rates_are_roughly_calibrated() {
        let cfg = FaultConfig {
            packet_error_rate: 0.1,
            ..FaultConfig::default()
        };
        let hits = (0..100_000u64)
            .filter(|&seq| transmission_corrupt(&cfg, 1, 0, seq, 0))
            .count();
        assert!(
            (8_000..12_000).contains(&hits),
            "10% rate produced {hits}/100000"
        );
    }

    #[test]
    fn streams_are_pure_functions_of_their_key() {
        let cfg = FaultConfig {
            packet_error_rate: 0.5,
            ..FaultConfig::default()
        };
        for seq in 0..1_000u64 {
            // Same key, same fate — regardless of evaluation order.
            assert_eq!(
                transmission_corrupt(&cfg, 1, 2, seq, 0),
                transmission_corrupt(&cfg, 1, 2, seq, 0),
            );
        }
        // Distinct links, sequence numbers, and attempts decorrelate.
        let by_link: Vec<bool> =
            (0..256u64).map(|s| transmission_corrupt(&cfg, 1, 0, s, 0)).collect();
        let other_link: Vec<bool> =
            (0..256u64).map(|s| transmission_corrupt(&cfg, 1, 1, s, 0)).collect();
        assert_ne!(by_link, other_link);
        let retry: Vec<bool> =
            (0..256u64).map(|s| transmission_corrupt(&cfg, 1, 0, s, 1)).collect();
        assert_ne!(by_link, retry);
        // Different seeds produce different streams.
        let reseeded = FaultConfig { seed: 0xDEAD_BEEF, ..cfg };
        let other: Vec<bool> =
            (0..256u64).map(|s| transmission_corrupt(&reseeded, 1, 0, s, 0)).collect();
        assert_ne!(by_link, other);
    }

    #[test]
    fn poison_prediction_matches_attempt_fates() {
        let cfg = FaultConfig {
            packet_error_rate: 0.6,
            retry_limit: 2,
            ..FaultConfig::default()
        };
        let mut poisoned = 0usize;
        for seq in 0..10_000u64 {
            let all_corrupt =
                (0..=cfg.retry_limit).all(|a| transmission_corrupt(&cfg, 1, 0, seq, a));
            assert_eq!(predicts_poison(&cfg, 1, 0, seq), all_corrupt);
            poisoned += all_corrupt as usize;
        }
        // 0.6^3 ≈ 21.6% of requests should exhaust three attempts.
        assert!((1_500..2_900).contains(&poisoned), "got {poisoned}/10000");
        // Unit rate poisons everything; zero rate nothing.
        let always = FaultConfig { packet_error_rate: 1.0, ..cfg };
        assert!(predicts_poison(&always, 1, 0, 7));
        let never = FaultConfig { packet_error_rate: 0.0, ..cfg };
        assert!(!predicts_poison(&never, 1, 0, 7));
    }

    #[test]
    fn link_fault_config_converts() {
        let lf = LinkFaultConfig::default()
            .with_error_rate_ppm(250_000)
            .with_retry_cycles(4)
            .with_retry_limit(1)
            .with_retrain_cycles(32)
            .with_seed(99);
        let fc = FaultConfig::from(lf);
        assert!((fc.packet_error_rate - 0.25).abs() < 1e-12);
        assert_eq!(fc.retry_cycles, 4);
        assert_eq!(fc.retry_limit, 1);
        assert_eq!(fc.retrain_cycles, 32);
        assert_eq!(fc.seed, 99);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_rate_rejected() {
        FaultState::new(FaultConfig {
            packet_error_rate: 1.5,
            ..FaultConfig::default()
        });
    }
}
