//! Device, vault and bank utilization reporting.
//!
//! The paper's evaluations "elicit device, vault and bank utilization
//! trace data from within a theoretical device" (abstract). This module
//! aggregates the counters the simulator already maintains — per-vault
//! processed operations, per-bank reads/writes/atomics and row-buffer
//! hits/misses, DRAM die touches, resident storage — into one structured
//! report, plus an [`Activity`] summary that feeds
//! the energy model.

use hmc_mem::BankStats;
use hmc_trace::Activity;
use hmc_types::{CubeId, VaultId};

use crate::sim::HmcSim;
use crate::vault::VaultStats;

/// Utilization of one vault: controller stats plus aggregated bank stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaultUtilizationReport {
    /// Vault index.
    pub vault: VaultId,
    /// Vault controller counters.
    pub controller: VaultStats,
    /// Aggregate bank counters (reads/writes/atomics/row hits/misses).
    pub banks: BankStats,
}

/// Utilization of one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceUtilizationReport {
    /// Device cube ID.
    pub cube: CubeId,
    /// Per-vault breakdown.
    pub vaults: Vec<VaultUtilizationReport>,
    /// Host memory resident for this device's banks (functional mode).
    pub resident_bytes: u64,
}

impl DeviceUtilizationReport {
    /// Total operations processed by the device's vaults.
    pub fn total_processed(&self) -> u64 {
        self.vaults.iter().map(|v| v.controller.processed).sum()
    }

    /// Aggregate bank stats across the device.
    pub fn total_banks(&self) -> BankStats {
        let mut t = BankStats::default();
        for v in &self.vaults {
            t.reads += v.banks.reads;
            t.writes += v.banks.writes;
            t.atomics += v.banks.atomics;
            t.row_hits += v.banks.row_hits;
            t.row_misses += v.banks.row_misses;
        }
        t
    }

    /// Row-buffer hit rate across the device (0 when no accesses).
    pub fn row_hit_rate(&self) -> f64 {
        let t = self.total_banks();
        let total = t.row_hits + t.row_misses;
        if total == 0 {
            0.0
        } else {
            t.row_hits as f64 / total as f64
        }
    }

    /// Render a per-vault table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "device {} utilization ({} ops processed, row-hit rate {:.1}%)\n",
            self.cube,
            self.total_processed(),
            self.row_hit_rate() * 100.0
        );
        out.push_str("vault   processed     reads    writes   atomics  row-hit%\n");
        for v in &self.vaults {
            let total_rows = v.banks.row_hits + v.banks.row_misses;
            let hit = if total_rows == 0 {
                0.0
            } else {
                v.banks.row_hits as f64 / total_rows as f64 * 100.0
            };
            out.push_str(&format!(
                "{:>5} {:>11} {:>9} {:>9} {:>9} {:>9.1}\n",
                v.vault,
                v.controller.processed,
                v.controller.reads,
                v.controller.writes,
                v.controller.atomics,
                hit
            ));
        }
        out
    }
}

impl HmcSim {
    /// Utilization reports for every device.
    pub fn utilization(&self) -> Vec<DeviceUtilizationReport> {
        self.devices
            .iter()
            .map(|d| DeviceUtilizationReport {
                cube: d.id,
                vaults: d
                    .vaults
                    .iter()
                    .map(|v| VaultUtilizationReport {
                        vault: v.id,
                        controller: v.stats,
                        banks: v.mem.aggregate_stats(),
                    })
                    .collect(),
                resident_bytes: d.vaults.iter().map(|v| v.mem.resident_bytes()).sum(),
            })
            .collect()
    }

    /// Summarize the whole object's activity for the energy model.
    ///
    /// Wire bytes are derived from per-command FLIT accounting at the
    /// vault level (request + response packets for each processed op) and
    /// are an approximation for multi-hop topologies, which move packets
    /// over several links.
    pub fn activity(&self) -> Activity {
        let mut wire_bytes = 0u64;
        let mut dram_bytes = 0u64;
        let mut row_activations = 0u64;
        let mut packets = 0u64;
        for d in &self.devices {
            for v in &d.vaults {
                let banks = v.mem.aggregate_stats();
                row_activations += banks.row_misses;
                // Controller counters give us op classes; approximate
                // bytes with the dominant 64-byte shape when exact block
                // sizes were mixed (the harness reports exact bytes via
                // hmc_trace::TrafficCounts when it tracks them itself).
                dram_bytes += (banks.reads + banks.writes) * 64 + banks.atomics * 16;
                // Request+response packet pairs for non-posted traffic.
                packets += 2 * v.stats.processed;
                wire_bytes += v.stats.reads * (1 + 5) * 16
                    + v.stats.writes * (5 + 1) * 16
                    + v.stats.atomics * (2 + 1) * 16;
            }
        }
        Activity {
            wire_bytes,
            dram_bytes,
            row_activations,
            packets,
            cycles: self.current_clock(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use hmc_trace::{estimate_energy, EnergyModel};
    use hmc_types::{BlockSize, Command, DeviceConfig, Packet};

    fn run_some_traffic() -> HmcSim {
        let mut s = HmcSim::new(1, DeviceConfig::small().with_queue_depths(32, 16)).unwrap();
        let host = s.host_cube_id(0);
        topology::build_simple(&mut s, host).unwrap();
        for i in 0..32u64 {
            let wr = Packet::request(
                Command::Wr(BlockSize::B64),
                0,
                i * 128,
                (i % 512) as u16,
                (i % 4) as u8,
                &[7u8; 64],
            )
            .unwrap();
            s.send(0, (i % 4) as u8, wr).unwrap();
        }
        for _ in 0..16 {
            s.clock().unwrap();
            for l in 0..4 {
                while s.recv(0, l).is_ok() {}
            }
        }
        s
    }

    #[test]
    fn utilization_accounts_for_every_operation() {
        let s = run_some_traffic();
        let reports = s.utilization();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.total_processed(), 32);
        let banks = r.total_banks();
        assert_eq!(banks.writes, 32);
        assert_eq!(banks.reads, 0);
        // 32 sequential blocks over 16 vaults: two writes per vault.
        for v in &r.vaults {
            assert_eq!(v.controller.processed, 2, "vault {}", v.vault);
        }
        assert!(r.resident_bytes > 0, "functional mode materializes pages");
    }

    #[test]
    fn row_hit_rate_is_bounded() {
        let s = run_some_traffic();
        let r = &s.utilization()[0];
        let rate = r.row_hit_rate();
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn render_produces_a_table() {
        let s = run_some_traffic();
        let text = s.utilization()[0].render();
        assert!(text.contains("device 0 utilization"));
        assert!(text.lines().count() >= 2 + 16, "header + 16 vault rows");
    }

    #[test]
    fn activity_feeds_the_energy_model() {
        let s = run_some_traffic();
        let activity = s.activity();
        assert_eq!(activity.packets, 64, "32 requests + 32 responses");
        assert_eq!(activity.dram_bytes, 32 * 64);
        assert!(activity.wire_bytes > activity.dram_bytes);
        assert!(activity.row_activations > 0);
        let energy = estimate_energy(&activity, &EnergyModel::hmc_gen1(), 1.25);
        assert!(energy.total_pj > 0.0);
        assert!(energy.pj_per_bit > 0.0);
    }

    #[test]
    fn fresh_device_reports_zero() {
        let s = HmcSim::new(1, DeviceConfig::small()).unwrap();
        let r = &s.utilization()[0];
        assert_eq!(r.total_processed(), 0);
        assert_eq!(r.row_hit_rate(), 0.0);
        assert_eq!(s.activity().packets, 0);
    }
}
