//! Out-of-band JTAG / I²C register access.
//!
//! "The second access method provided in the current specification is via
//! a Joint Test Action Group IEEE 1149.1 (JTAG) or Inter-Integrated
//! Circuit (I²C) bus infrastructure. The benefit to this access method is
//! the side-band nature of the bus. It does not interrupt main memory
//! traffic … This interface exists external to the normal HMC-Sim notion
//! of clock domains" (paper §V.D).
//!
//! Accordingly these methods read and write device registers directly —
//! no packets, no queue slots, no clock interaction — while still
//! honouring register access classes.

use hmc_types::{CubeId, Result};

use crate::register::RegClass;
use crate::sim::HmcSim;

impl HmcSim {
    /// Side-band register read: immediate, no bandwidth or clock cost.
    pub fn jtag_reg_read(&self, dev: CubeId, reg: u32) -> Result<u64> {
        self.device(dev)?.registers.read(reg)
    }

    /// Side-band register write: immediate, honouring the register class
    /// (read-only registers still reject writes; RWS registers self-clear
    /// at the next in-band clock edge).
    pub fn jtag_reg_write(&mut self, dev: CubeId, reg: u32, value: u64) -> Result<()> {
        self.device_mut(dev)?.registers.write(reg, value)
    }

    /// Side-band register class query (probing tools).
    pub fn jtag_reg_class(&self, dev: CubeId, reg: u32) -> Result<RegClass> {
        self.device(dev)?.registers.class(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::regs;
    use hmc_types::{DeviceConfig, HmcError};

    fn sim() -> HmcSim {
        HmcSim::new(2, DeviceConfig::small()).unwrap()
    }

    #[test]
    fn jtag_reads_and_writes_without_clocking() {
        let mut s = sim();
        // No topology, no clock: JTAG works regardless (out of band).
        s.jtag_reg_write(0, regs::GC, 0xabcd).unwrap();
        assert_eq!(s.jtag_reg_read(0, regs::GC).unwrap(), 0xabcd);
        assert_eq!(s.current_clock(), 0, "JTAG must not advance the clock");
    }

    #[test]
    fn jtag_respects_register_classes() {
        let mut s = sim();
        assert!(s.jtag_reg_write(0, regs::FEAT, 1).is_err());
        assert_eq!(s.jtag_reg_class(0, regs::FEAT).unwrap(), RegClass::Ro);
        assert_eq!(s.jtag_reg_class(0, regs::EDR0).unwrap(), RegClass::Rws);
    }

    #[test]
    fn jtag_addresses_devices_independently() {
        let mut s = sim();
        s.jtag_reg_write(0, regs::GC, 1).unwrap();
        s.jtag_reg_write(1, regs::GC, 2).unwrap();
        assert_eq!(s.jtag_reg_read(0, regs::GC).unwrap(), 1);
        assert_eq!(s.jtag_reg_read(1, regs::GC).unwrap(), 2);
        assert!(matches!(
            s.jtag_reg_read(2, regs::GC),
            Err(HmcError::OutOfRange { .. })
        ));
    }

    #[test]
    fn rws_written_by_jtag_clears_on_the_next_clock_edge() {
        let mut s = sim();
        for l in 0..4 {
            s.connect_host(0, l, s.host_cube_id(0)).unwrap();
        }
        s.jtag_reg_write(0, regs::EDR1, 0xff).unwrap();
        assert_eq!(s.jtag_reg_read(0, regs::EDR1).unwrap(), 0xff);
        s.clock().unwrap();
        assert_eq!(s.jtag_reg_read(0, regs::EDR1).unwrap(), 0);
    }
}
