//! C-style API facade.
//!
//! The original HMC-Sim "is implemented in ANSI-style C and packaged as a
//! single library object" (paper §V) with four major function classes:
//! device initialization, topology initialization, packet handlers and
//! register interface functions. This module mirrors the Figure 4 calling
//! sequence one-to-one, so code written against the C API translates
//! mechanically:
//!
//! ```text
//! hmcsim_init(&hmc, …)            → hmcsim_init(…) -> HmcSim
//! hmcsim_link_config(&hmc, …)     → hmcsim_link_config(&mut sim, …)
//! hmcsim_build_memrequest(&hmc,…) → hmcsim_build_memrequest(…)
//! hmcsim_send(&hmc, …)            → hmcsim_send(&mut sim, …)
//! hmcsim_recv(&hmc, …)            → hmcsim_recv(&mut sim, …)
//! hmcsim_clock(&hmc)              → hmcsim_clock(&mut sim)
//! hmcsim_free(&hmc)               → drop(sim)
//! ```

use hmc_types::units::GIB;
use hmc_types::{
    BlockSize, Command, CubeId, DeviceConfig, HmcError, LinkId, Packet, Result, StorageMode,
    TimingKind,
};

use crate::builder;
use crate::sim::HmcSim;

/// Link configuration types of `hmcsim_link_config`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkType {
    /// A host-to-device link (`HMC_LINK_HOST_DEV`).
    HostDev,
    /// A device-to-device chaining link (`HMC_LINK_DEV_DEV`).
    DevDev,
}

/// Initialize a simulation object: the `hmcsim_init` equivalent, taking
/// the same positional geometry arguments as the C call in Figure 4.
///
/// `capacity_gb` is per-device capacity in gibibytes. The geometry is
/// validated as a whole; devices are homogeneous (§V.A) and start in
/// their reset state.
#[allow(clippy::too_many_arguments)]
pub fn hmcsim_init(
    num_devs: u8,
    num_links: u8,
    num_vaults: u16,
    queue_depth: usize,
    num_banks: u16,
    num_drams: u16,
    capacity_gb: u64,
    xbar_depth: usize,
) -> Result<HmcSim> {
    let config = DeviceConfig {
        num_links,
        num_vaults,
        banks_per_vault: num_banks,
        drams_per_bank: num_drams,
        capacity_bytes: capacity_gb.checked_mul(GIB).ok_or_else(|| {
            HmcError::InvalidConfig(format!("capacity of {capacity_gb} GiB overflows"))
        })?,
        xbar_depth,
        vault_depth: queue_depth,
        link_speed: hmc_types::LinkSpeed::Gbps10,
        lanes_per_link: if num_links == 8 { 8 } else { 16 },
        block_size: BlockSize::B128,
        storage_mode: StorageMode::Functional,
        timing: TimingKind::Classic,
        interconnect: hmc_types::InterconnectKind::Crossbar,
        arbitration: hmc_types::ArbitrationKind::RoundRobin,
        cell_faults: None,
        link_faults: None,
    };
    HmcSim::new(num_devs, config)
}

/// Configure one link: the `hmcsim_link_config` equivalent.
///
/// For [`LinkType::HostDev`], `src_dev` is the host cube ID and
/// `dest_dev` the device; `dest_link` selects the device-side link
/// (`src_link` is accepted for signature parity and ignored, as hosts
/// have no modeled link block). For [`LinkType::DevDev`], both ends name
/// devices within this object.
pub fn hmcsim_link_config(
    sim: &mut HmcSim,
    src_dev: CubeId,
    dest_dev: CubeId,
    _src_link: LinkId,
    dest_link: LinkId,
    link_type: LinkType,
) -> Result<()> {
    match link_type {
        LinkType::HostDev => sim.connect_host(dest_dev, dest_link, src_dev),
        LinkType::DevDev => sim.connect_devices(src_dev, _src_link, dest_dev, dest_link),
    }
}

/// Build a memory request packet: the `hmcsim_build_memrequest`
/// equivalent. Returns the packet whose head/tail the C API would write
/// into the caller's payload buffer.
pub fn hmcsim_build_memrequest(
    cub: CubeId,
    addr: u64,
    tag: u16,
    cmd: Command,
    link: LinkId,
    payload: &[u8],
) -> Result<Packet> {
    builder::build_mem_request(cmd, cub, addr, tag, link, payload)
}

/// Send a request packet on a host link: the `hmcsim_send` equivalent.
/// Returns `HMC_STALL` (here [`HmcError::Stalled`]) when the crossbar
/// arbitration queue is full.
pub fn hmcsim_send(sim: &mut HmcSim, dev: CubeId, link: LinkId, packet: Packet) -> Result<()> {
    sim.send(dev, link, packet)
}

/// Poll a host link for a response packet: the `hmcsim_recv` equivalent.
pub fn hmcsim_recv(sim: &mut HmcSim, dev: CubeId, link: LinkId) -> Result<Packet> {
    sim.recv(dev, link)
}

/// Advance the simulation one clock cycle: the `hmcsim_clock` equivalent.
pub fn hmcsim_clock(sim: &mut HmcSim) -> Result<()> {
    sim.clock()
}

/// Decode a response packet: the response-decode utility of §V.C.
pub fn hmcsim_decode_memresponse(packet: &Packet) -> Result<builder::ResponseInfo> {
    builder::decode_response(packet)
}

/// Switch the event-driven fast-forward engine mode on or off. An
/// extension beyond the C API's Figure 4 sequence: when enabled, batch
/// clocking jumps across provably quiescent cycles while remaining
/// bit-identical to stepped execution (see
/// [`crate::params::SimParams::fast_forward`]).
pub fn hmcsim_set_fast_forward(sim: &mut HmcSim, enable: bool) {
    sim.set_fast_forward(enable);
}

/// Select the vault timing backend by kind, keeping default DDR
/// parameters. An extension beyond the C API: the C library hard-wires
/// the constant-time conflict model; here it is one of the pluggable
/// [`crate::timing::VaultTiming`] backends.
pub fn hmcsim_set_timing(sim: &mut HmcSim, kind: TimingKind) {
    sim.set_timing(crate::timing::TimingParams::of(kind));
}

/// Side-band JTAG register read (§V.D).
pub fn hmcsim_jtag_reg_read(sim: &HmcSim, dev: CubeId, reg: u32) -> Result<u64> {
    sim.jtag_reg_read(dev, reg)
}

/// Side-band JTAG register write (§V.D).
pub fn hmcsim_jtag_reg_write(sim: &mut HmcSim, dev: CubeId, reg: u32, value: u64) -> Result<()> {
    sim.jtag_reg_write(dev, reg, value)
}

/// Release a simulation object: the `hmcsim_free` equivalent. Rust drops
/// the object automatically; this exists for sequence parity with Fig. 4.
pub fn hmcsim_free(sim: HmcSim) {
    drop(sim);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_calling_sequence_works_end_to_end() {
        // Section A: init the devices.
        let mut hmc = hmcsim_init(1, 4, 16, 4, 8, 16, 2, 8).unwrap();
        let host = hmc.host_cube_id(0);

        // Section B: config the link topology.
        for i in 0..4 {
            hmcsim_link_config(&mut hmc, host, 0, i, i, LinkType::HostDev).unwrap();
        }

        // Section C: build a request packet and send it.
        let packet =
            hmcsim_build_memrequest(0, 0x8000, 5, Command::Rd(BlockSize::B64), 0, &[]).unwrap();
        hmcsim_send(&mut hmc, 0, 0, packet).unwrap();

        // Clock the sim until the response arrives.
        let mut response = None;
        for _ in 0..10 {
            hmcsim_clock(&mut hmc).unwrap();
            if let Ok(p) = hmcsim_recv(&mut hmc, 0, 0) {
                response = Some(p);
                break;
            }
        }
        let response = response.expect("response within ten cycles");
        let info = hmcsim_decode_memresponse(&response).unwrap();
        assert_eq!(info.tag, 5);
        assert!(info.is_ok());
        assert_eq!(info.data.len(), 64);

        // Section A again: free the devices.
        hmcsim_free(hmc);
    }

    #[test]
    fn init_validates_geometry() {
        assert!(hmcsim_init(1, 3, 16, 4, 8, 16, 2, 8).is_err(), "bad links");
        assert!(hmcsim_init(1, 4, 8, 4, 8, 16, 2, 8).is_err(), "bad vaults");
        assert!(hmcsim_init(1, 4, 16, 0, 8, 16, 2, 8).is_err(), "zero queue");
        assert!(hmcsim_init(1, 8, 32, 4, 16, 16, 8, 8).is_ok(), "8-link ok");
    }

    #[test]
    fn dev_dev_link_config() {
        let mut hmc = hmcsim_init(2, 4, 16, 4, 8, 16, 2, 8).unwrap();
        let host = hmc.host_cube_id(0);
        hmcsim_link_config(&mut hmc, host, 0, 0, 0, LinkType::HostDev).unwrap();
        hmcsim_link_config(&mut hmc, 0, 1, 1, 0, LinkType::DevDev).unwrap();
        assert!(hmc.finalize_topology().is_ok());
    }

    #[test]
    fn fast_forward_toggle_reaches_the_params() {
        let mut hmc = hmcsim_init(1, 4, 16, 4, 8, 16, 2, 8).unwrap();
        assert!(!hmc.fast_forward(), "off by default");
        hmcsim_set_fast_forward(&mut hmc, true);
        assert!(hmc.fast_forward());
        // The Figure 4 sequence still works with the mode on.
        let host = hmc.host_cube_id(0);
        for i in 0..4 {
            hmcsim_link_config(&mut hmc, host, 0, i, i, LinkType::HostDev).unwrap();
        }
        let packet =
            hmcsim_build_memrequest(0, 0x4000, 3, Command::Rd(BlockSize::B32), 1, &[]).unwrap();
        hmcsim_send(&mut hmc, 0, 1, packet).unwrap();
        hmc.clock_batch(16).unwrap();
        let response = hmcsim_recv(&mut hmc, 0, 1).expect("response well within the batch");
        assert_eq!(hmcsim_decode_memresponse(&response).unwrap().tag, 3);
        hmcsim_set_fast_forward(&mut hmc, false);
        assert!(!hmc.fast_forward());
    }

    #[test]
    fn timing_backend_toggle_reaches_the_params() {
        let mut hmc = hmcsim_init(1, 4, 16, 4, 8, 16, 2, 8).unwrap();
        assert_eq!(hmc.timing().kind, TimingKind::Classic, "classic by default");
        hmcsim_set_timing(&mut hmc, TimingKind::Ddr);
        assert_eq!(hmc.timing().kind, TimingKind::Ddr);
        // The Figure 4 sequence still completes under the DDR backend.
        let host = hmc.host_cube_id(0);
        for i in 0..4 {
            hmcsim_link_config(&mut hmc, host, 0, i, i, LinkType::HostDev).unwrap();
        }
        let packet =
            hmcsim_build_memrequest(0, 0x4000, 3, Command::Rd(BlockSize::B32), 1, &[]).unwrap();
        hmcsim_send(&mut hmc, 0, 1, packet).unwrap();
        hmc.clock_batch(64).unwrap();
        let response = hmcsim_recv(&mut hmc, 0, 1).expect("response well within the batch");
        assert_eq!(hmcsim_decode_memresponse(&response).unwrap().tag, 3);
        assert_eq!(hmc.stats().row_misses, 1, "first touch activates the row");
    }

    #[test]
    fn jtag_wrappers_delegate() {
        let mut hmc = hmcsim_init(1, 4, 16, 4, 8, 16, 2, 8).unwrap();
        hmcsim_jtag_reg_write(&mut hmc, 0, crate::register::regs::GC, 7).unwrap();
        assert_eq!(
            hmcsim_jtag_reg_read(&hmc, 0, crate::register::regs::GC).unwrap(),
            7
        );
    }
}
