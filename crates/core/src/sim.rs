//! The top-level simulation object.
//!
//! An [`HmcSim`] corresponds to one `hmcsim_t` of the C API: a set of
//! physically homogeneous HMC devices (paper §V.A), the topology wiring
//! between them and their hosts, the address map, the clock, and the
//! tracer. "An application may contain more than one HMC-Sim object in
//! order to simulate architectural characteristics such as non-uniform
//! memory access" (§IV.A) — objects are fully independent values here.

use std::sync::Arc;

use hmc_types::address::AddressMap;
use hmc_types::{CubeId, Cycle, DeviceConfig, HmcError, LinkId, Packet, Result};
use hmc_trace::{TraceEvent, Tracer};

use crate::device::Device;
use crate::engine::EngineScratch;
use crate::link::Endpoint;
use crate::params::SimParams;
use crate::queue::QueueEntry;
use crate::routing::RouteTable;

/// The 3-bit CUB field bounds the ID space shared by devices and hosts.
pub const MAX_CUBES: usize = 8;

/// Whole-simulation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Request packets accepted from hosts.
    pub sent: u64,
    /// Response packets delivered to hosts.
    pub received: u64,
    /// Clock cycles executed.
    pub cycles: u64,
    /// Sends rejected because the link's token pool ran dry (flow-control
    /// back-pressure, as opposed to a full crossbar queue).
    pub token_stalls: u64,
    /// Bank accesses that hit an already-open row (DDR timing backend
    /// only; the classic backend models no row buffer and leaves this 0).
    pub row_hits: u64,
    /// Bank accesses that had to activate a row first (row misses and
    /// row conflicts; DDR timing backend only).
    pub row_misses: u64,
    /// Precharge commands issued (row conflicts and closed-page
    /// auto-precharges; DDR timing backend only).
    pub precharges: u64,
    /// Quad-to-quad segment crossings on a buffered NoC fabric (ring or
    /// mesh; the crossbar fabric never hops and leaves this 0).
    pub noc_hops: u64,
    /// NoC packets held in place by a full segment buffer or a full
    /// delivery queue.
    pub noc_stalls: u64,
    /// NoC packets that were free to move but lost arbitration (their
    /// quad's drain budget was spent on other packets).
    pub noc_arb_losses: u64,
    /// Row activations counted by the cell-fault subsystem (zero unless
    /// [`SimParams::cell_faults`] is set).
    pub hammer_activations: u64,
    /// Victim-row bits flipped by RowHammer threshold crossings.
    pub bit_flips: u64,
    /// TRR targeted refreshes issued in place of disturbances.
    pub trr_refreshes: u64,
    /// Bits decayed by the retention axis (unrefreshed past the horizon).
    pub retention_decays: u64,
    /// Link-retry retransmissions scheduled after a CRC-detected
    /// corruption (zero unless link-error simulation is enabled).
    pub link_retries: u64,
    /// Link retraining windows completed after retry exhaustion took a
    /// link down.
    pub link_retrains: u64,
    /// Responses delivered with a poisoned ERRSTAT because their request
    /// exhausted the link-retry protocol.
    pub poisoned_responses: u64,
}

/// One HMC-Sim simulation object.
pub struct HmcSim {
    pub(crate) config: DeviceConfig,
    pub(crate) params: SimParams,
    pub(crate) devices: Vec<Device>,
    pub(crate) map: Arc<dyn AddressMap>,
    pub(crate) routes: Option<RouteTable>,
    pub(crate) clock: Cycle,
    pub(crate) tracer: Tracer,
    pub(crate) stats: SimStats,
    pub(crate) ac_mode: u64,
    pub(crate) faults: Option<crate::fault::FaultState>,
    pub(crate) scratch: EngineScratch,
    /// Invariant-checker state; `None` until the first hook fires with
    /// [`SimParams::check_invariants`] set (zero-cost when off).
    pub(crate) inv: Option<Box<crate::invariants::InvariantState>>,
    /// The `(timing, refresh)` signature the per-vault timing backends
    /// were last built for; `None` until the first clock. Lets
    /// [`HmcSim::ensure_timing`] skip re-installing boxes on the hot path.
    pub(crate) applied_timing: Option<(crate::timing::TimingParams, Option<crate::params::RefreshParams>)>,
    /// The interconnect parameters the per-device NoC state was last
    /// built for; `None` until the first clock. Lets
    /// [`HmcSim::ensure_noc`] skip rebuilding fabric state on the hot
    /// path (the crossbar default builds none at all).
    pub(crate) applied_noc: Option<crate::noc::NocParams>,
    /// The cell-fault configuration the per-vault injection state was
    /// last built for; `None` until the first clock. Lets
    /// [`HmcSim::ensure_cell_faults`] skip reinstalling state on the hot
    /// path (the `None` default installs none at all).
    pub(crate) applied_cellfaults: Option<Option<hmc_types::CellFaultConfig>>,
    /// The link-fault configuration [`HmcSim::ensure_link_faults`] last
    /// installed; `None` until the first clock. A manually installed
    /// [`HmcSim::enable_fault_injection`] state is left alone unless the
    /// parameter actually changes.
    pub(crate) applied_linkfaults: Option<Option<hmc_types::LinkFaultConfig>>,
}

impl std::fmt::Debug for HmcSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmcSim")
            .field("devices", &self.devices.len())
            .field("clock", &self.clock)
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl HmcSim {
    /// Create `num_devices` homogeneous devices in their reset state.
    ///
    /// The config is validated here, exactly as `hmcsim_init` validates
    /// its geometry arguments before allocating (paper §V.A).
    pub fn new(num_devices: u8, config: DeviceConfig) -> Result<Self> {
        config.validate()?;
        if num_devices == 0 {
            return Err(HmcError::InvalidConfig(
                "at least one device is required".into(),
            ));
        }
        if num_devices as usize >= MAX_CUBES {
            return Err(HmcError::InvalidConfig(format!(
                "{num_devices} devices exceed the 3-bit CUB space \
                 ({MAX_CUBES} IDs shared with hosts)"
            )));
        }
        if config.banks_per_vault > 64 {
            return Err(HmcError::InvalidConfig(
                "banks_per_vault above 64 is not supported by the vault scheduler".into(),
            ));
        }
        let devices = (0..num_devices).map(|i| Device::new(i, &config)).collect();
        let map: Arc<dyn AddressMap> = Arc::new(config.default_map()?);
        // The config's timing backend choice seeds the sim parameters;
        // `with_params`/`with_timing` can still override it before clocking.
        let params = SimParams {
            timing: crate::timing::TimingParams::of(config.timing),
            interconnect: crate::noc::NocParams::of(config.interconnect)
                .with_arbitration(config.arbitration),
            cell_faults: config.cell_faults,
            link_faults: config.link_faults,
            ..SimParams::default()
        };
        Ok(HmcSim {
            config,
            params,
            devices,
            map,
            routes: None,
            clock: 0,
            tracer: Tracer::off(),
            stats: SimStats::default(),
            ac_mode: 0,
            faults: None,
            scratch: EngineScratch::default(),
            inv: None,
            applied_timing: None,
            applied_noc: None,
            applied_cellfaults: None,
            applied_linkfaults: None,
        })
    }

    /// Replace the simulation parameters (builder style, before clocking).
    pub fn with_params(mut self, params: SimParams) -> Self {
        self.params = params;
        self
    }

    /// Set the worker-thread count of the sharded clock engine (builder
    /// style). `1` = serial, `0` = auto-detect, `N > 1` = that many
    /// shards; every setting is bit-identical (see [`SimParams::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.params.threads = threads;
        self
    }

    /// Enable or disable the event-driven fast-forward engine mode
    /// (builder style). Bit-identical to stepped execution — see
    /// [`SimParams::fast_forward`].
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.params.fast_forward = on;
        self
    }

    /// Switch the fast-forward engine mode on a live simulation. Safe at
    /// any clock boundary: the mode only changes how dead cycles are
    /// traversed, never what any cycle does.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.params.fast_forward = on;
    }

    /// True when the fast-forward engine mode is enabled.
    pub fn fast_forward(&self) -> bool {
        self.params.fast_forward
    }

    /// Select the vault timing backend (builder style). See
    /// [`crate::timing::VaultTiming`] for the backend contract.
    pub fn with_timing(mut self, timing: crate::timing::TimingParams) -> Self {
        self.params.timing = timing;
        self
    }

    /// Switch the vault timing backend on a live simulation. The new
    /// backends install at the next clock boundary with power-on bank
    /// state (all rows closed).
    pub fn set_timing(&mut self, timing: crate::timing::TimingParams) {
        self.params.timing = timing;
    }

    /// The active timing backend parameters.
    pub fn timing(&self) -> crate::timing::TimingParams {
        self.params.timing
    }

    /// Select the intra-cube interconnect fabric (builder style). See
    /// [`crate::noc`] for the hop and arbitration model; the crossbar
    /// default leaves the engine's direct paths untouched.
    pub fn with_interconnect(mut self, interconnect: crate::noc::NocParams) -> Self {
        self.params.interconnect = interconnect;
        self
    }

    /// Switch the interconnect fabric on a live simulation. The new
    /// fabric installs at the next clock boundary with empty segment
    /// buffers; packets already queued in crossbars and vaults are
    /// unaffected.
    pub fn set_interconnect(&mut self, interconnect: crate::noc::NocParams) {
        self.params.interconnect = interconnect;
    }

    /// The active interconnect parameters.
    pub fn interconnect(&self) -> crate::noc::NocParams {
        self.params.interconnect
    }

    /// Install per-device NoC fabric state when the interconnect
    /// parameters changed since the last clock. No-op (and no
    /// allocation) on the steady-state hot path; the crossbar fabric
    /// installs `None` so the engine keeps its original direct paths.
    pub(crate) fn ensure_noc(&mut self) {
        let sig = self.params.interconnect;
        if self.applied_noc == Some(sig) {
            return;
        }
        let quads = self.config.num_quads();
        let vaults = self.config.num_vaults;
        for d in &mut self.devices {
            d.noc = crate::noc::NocState::new(&sig, quads, vaults);
        }
        self.applied_noc = Some(sig);
    }

    /// Install per-vault timing backends when the `(timing, refresh)`
    /// parameters changed since the last clock. No-op (and no allocation)
    /// on the steady-state hot path.
    pub(crate) fn ensure_timing(&mut self) {
        let sig = (self.params.timing, self.params.refresh);
        if self.applied_timing == Some(sig) {
            return;
        }
        let banks = self.config.banks_per_vault;
        for d in &mut self.devices {
            for v in &mut d.vaults {
                v.timing =
                    crate::timing::make_timing(self.params.timing, v.id, banks, self.params.refresh);
            }
        }
        self.applied_timing = Some(sig);
    }

    /// Enable cell-level fault injection — RowHammer disturbance and
    /// retention decay — on every vault (builder style). `None` keeps
    /// the array perfect. See [`hmc_mem::cellfault`] for the model and
    /// determinism contract.
    pub fn with_cell_faults(mut self, faults: Option<hmc_types::CellFaultConfig>) -> Self {
        self.params.cell_faults = faults;
        self
    }

    /// Switch cell-fault injection on a live simulation. New state
    /// installs at the next clock boundary with fresh (zero) activation
    /// tracking; already-corrupted data stays corrupted.
    pub fn set_cell_faults(&mut self, faults: Option<hmc_types::CellFaultConfig>) {
        self.params.cell_faults = faults;
    }

    /// The active cell-fault configuration, when set.
    pub fn cell_faults(&self) -> Option<hmc_types::CellFaultConfig> {
        self.params.cell_faults
    }

    /// Enable link-level error simulation — the spec's retry protocol
    /// with retransmission, retry exhaustion, poisoned responses, and
    /// link retraining — from a wire-level configuration (builder
    /// style). `None` keeps links perfect. See [`crate::fault`] for the
    /// model and determinism contract.
    pub fn with_link_faults(mut self, faults: Option<hmc_types::LinkFaultConfig>) -> Self {
        self.params.link_faults = faults;
        self
    }

    /// Switch link-fault injection on a live simulation. The new state
    /// installs at the next clock boundary with fresh counters;
    /// in-flight retry and retraining bookkeeping is preserved.
    pub fn set_link_faults(&mut self, faults: Option<hmc_types::LinkFaultConfig>) {
        self.params.link_faults = faults;
    }

    /// The active link-fault configuration, when set.
    pub fn link_faults(&self) -> Option<hmc_types::LinkFaultConfig> {
        self.params.link_faults
    }

    /// Install per-vault cell-fault state when the configuration changed
    /// since the last clock. No-op (and no allocation) on the steady-
    /// state hot path; the default `None` uninstalls so the engine pays
    /// a single branch per walked packet.
    pub(crate) fn ensure_cell_faults(&mut self) {
        let sig = self.params.cell_faults;
        if self.applied_cellfaults == Some(sig) {
            return;
        }
        let rows = self.config.rows_per_bank();
        let block_bytes = self.config.block_size.bytes() as u32;
        for d in &mut self.devices {
            for v in &mut d.vaults {
                v.faults = sig.map(|cfg| {
                    Box::new(hmc_mem::CellFaultState::new(cfg, v.id, rows, block_bytes))
                });
            }
        }
        self.applied_cellfaults = Some(sig);
    }

    /// Install the link-fault state when [`SimParams::link_faults`]
    /// changed since the last clock. No-op on the steady-state hot path.
    /// A state installed manually through
    /// [`HmcSim::enable_fault_injection`] survives as long as the
    /// parameter never changes (the legacy API predates the config).
    pub(crate) fn ensure_link_faults(&mut self) {
        let sig = self.params.link_faults;
        if self.applied_linkfaults == Some(sig) {
            return;
        }
        match sig {
            Some(cfg) => {
                self.faults = Some(crate::fault::FaultState::new(cfg.into()));
            }
            // Only clear on an actual Some -> None transition so a
            // manually enabled state is not clobbered at first clock.
            None => {
                if self.applied_linkfaults.is_some() {
                    self.faults = None;
                }
            }
        }
        self.applied_linkfaults = Some(sig);
    }

    /// Replace the address map (must match the device geometry).
    pub fn set_address_map(&mut self, map: Box<dyn AddressMap>) -> Result<()> {
        let g = map.geometry();
        if g != self.config.geometry() {
            return Err(HmcError::InvalidConfig(format!(
                "address map geometry {g:?} does not match the device geometry {:?}",
                self.config.geometry()
            )));
        }
        self.map = Arc::from(map);
        Ok(())
    }

    /// Install a tracer (verbosity + sink).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Enable link-level error simulation (§IV requirement 5): packets
    /// crossing host links are corrupted with the configured probability
    /// and recovered by the crossbar retry model.
    pub fn enable_fault_injection(&mut self, config: crate::fault::FaultConfig) {
        self.faults = Some(crate::fault::FaultState::new(config));
    }

    /// Disable error simulation.
    pub fn disable_fault_injection(&mut self) {
        self.faults = None;
    }

    /// Error-simulation statistics, when enabled.
    pub fn fault_state(&self) -> Option<&crate::fault::FaultState> {
        self.faults.as_ref()
    }

    /// Access the tracer (flushing, verbosity changes).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    // -------------------------------------------------------------- access

    /// The shared device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The simulation parameters.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Number of devices in the object.
    pub fn num_devices(&self) -> u8 {
        self.devices.len() as u8
    }

    /// The cube ID of host `k` (host IDs sit above all device IDs in the
    /// shared CUB space, §V.B).
    pub fn host_cube_id(&self, k: u8) -> CubeId {
        self.num_devices() + k
    }

    /// Current clock value.
    pub fn current_clock(&self) -> Cycle {
        self.clock
    }

    /// Whole-simulation counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Immutable device access.
    pub fn device(&self, id: CubeId) -> Result<&Device> {
        self.devices
            .get(id as usize)
            .ok_or_else(|| HmcError::cube_range(id, self.num_devices()))
    }

    /// Mutable device access (tests, fault injection).
    pub fn device_mut(&mut self, id: CubeId) -> Result<&mut Device> {
        let n = self.num_devices();
        self.devices
            .get_mut(id as usize)
            .ok_or_else(|| HmcError::cube_range(id, n))
    }

    /// The active address map.
    pub fn address_map(&self) -> &dyn AddressMap {
        self.map.as_ref()
    }

    /// True when no packet is resident in any queue of any device.
    pub fn is_idle(&self) -> bool {
        self.devices.iter().all(|d| d.total_occupancy() == 0)
    }

    /// Total packets resident across all devices.
    pub fn total_occupancy(&self) -> usize {
        self.devices.iter().map(|d| d.total_occupancy()).sum()
    }

    /// True when the simulation is fully quiescent: no packet resident in
    /// any queue *and* every connected link's token pool is back at its
    /// initial allotment (no FLIT still in transit anywhere).
    ///
    /// This is the condition a serving drain waits for before declaring a
    /// device safe to tear down — stronger than [`HmcSim::is_idle`], which
    /// only checks queue occupancy.
    pub fn is_quiesced(&self) -> bool {
        self.is_idle()
            && self.devices.iter().all(|d| {
                d.links
                    .iter()
                    .filter(|l| l.remote != Endpoint::Unconnected)
                    .all(|l| l.at_initial_tokens())
            })
    }

    /// The active routing table, building it first if the topology has
    /// changed since the last build. Fails if the topology is invalid.
    pub fn route_table(&mut self) -> Result<&RouteTable> {
        self.ensure_routes()?;
        Ok(self.routes.as_ref().expect("ensure_routes built the table"))
    }

    // ------------------------------------------------------------ topology

    /// Connect device `dev` link `link` to host cube `host`.
    ///
    /// Host IDs must lie outside the device ID range (§V.B) and inside the
    /// 3-bit CUB space.
    pub fn connect_host(&mut self, dev: CubeId, link: LinkId, host: CubeId) -> Result<()> {
        let n = self.num_devices();
        if host < n {
            return Err(HmcError::Topology(format!(
                "host cube ID {host} collides with device IDs 0..{n}"
            )));
        }
        if host as usize >= MAX_CUBES {
            return Err(HmcError::Topology(format!(
                "host cube ID {host} exceeds the 3-bit CUB space"
            )));
        }
        let d = self.device_mut(dev)?;
        let l = d
            .links
            .get_mut(link as usize)
            .ok_or_else(|| HmcError::link_range(link, 0))?;
        l.remote = Endpoint::Host(host);
        self.routes = None;
        Ok(())
    }

    /// Chain two devices: `a.link_a <-> b.link_b` (both ends wired).
    ///
    /// Loopbacks are rejected: "the infrastructure does not permit users
    /// to configure links as loopbacks" (§V.B). Both devices must live in
    /// this simulation object.
    pub fn connect_devices(
        &mut self,
        a: CubeId,
        link_a: LinkId,
        b: CubeId,
        link_b: LinkId,
    ) -> Result<()> {
        if a == b {
            return Err(HmcError::Topology(format!(
                "loopback link on device {a} is not permitted"
            )));
        }
        let n = self.num_devices();
        if a >= n || b >= n {
            return Err(HmcError::Topology(format!(
                "devices {a} and {b} must both exist within this HMC-Sim object (0..{n})"
            )));
        }
        let num_links = self.config.num_links;
        if link_a >= num_links || link_b >= num_links {
            return Err(HmcError::link_range(link_a.max(link_b), num_links));
        }
        self.devices[a as usize].links[link_a as usize].remote = Endpoint::Device(b, link_b);
        self.devices[b as usize].links[link_b as usize].remote = Endpoint::Device(a, link_a);
        self.routes = None;
        Ok(())
    }

    /// Disconnect a link (returns it to `Unconnected`).
    pub fn disconnect(&mut self, dev: CubeId, link: LinkId) -> Result<()> {
        let d = self.device_mut(dev)?;
        let l = d
            .links
            .get_mut(link as usize)
            .ok_or_else(|| HmcError::link_range(link, 0))?;
        l.remote = Endpoint::Unconnected;
        self.routes = None;
        Ok(())
    }

    /// Validate the topology and (re)build routes. Called implicitly by
    /// [`HmcSim::send`] and [`HmcSim::clock`]; callable eagerly for early
    /// error reporting.
    pub fn finalize_topology(&mut self) -> Result<()> {
        // "The user must configure at least one device that connects to a
        // host link. Otherwise, the host will have no access to main
        // memory" (§V.B).
        if !self.devices.iter().any(|d| d.is_root()) {
            return Err(HmcError::Topology(
                "no host link configured; the host would have no access to memory".into(),
            ));
        }
        self.routes = Some(RouteTable::build(&self.devices, MAX_CUBES));
        Ok(())
    }

    pub(crate) fn ensure_routes(&mut self) -> Result<()> {
        if self.routes.is_none() {
            self.finalize_topology()?;
        }
        Ok(())
    }

    // ------------------------------------------------------- send / recv

    /// Submit a fully-formed request or flow packet on a host link.
    ///
    /// Returns [`HmcError::Stalled`] when the link's crossbar queue (or
    /// its token pool) has no room — the signal the paper's harness uses
    /// to throttle injection (§VI.A).
    pub fn send(&mut self, dev: CubeId, link: LinkId, packet: Packet) -> Result<()> {
        self.ensure_routes()?;
        // Config-armed link faults must cover sends that precede the
        // first clock edge (the usual inject-then-clock loop shape).
        self.ensure_link_faults();
        let d = self
            .devices
            .get(dev as usize)
            .ok_or_else(|| HmcError::cube_range(dev, self.devices.len() as u8))?;
        let l = d
            .links
            .get(link as usize)
            .ok_or_else(|| HmcError::link_range(link, d.links.len() as u8))?;
        let host = match l.remote {
            Endpoint::Host(h) => h,
            _ => {
                return Err(HmcError::Topology(format!(
                    "link {link} on device {dev} is not a host link"
                )))
            }
        };
        packet.validate()?;
        let cmd = packet.cmd()?;
        if cmd.is_response() {
            return Err(HmcError::InvalidPacket(
                "hosts send request or flow packets, not responses".into(),
            ));
        }
        let flits = packet.lng() as u32;
        let dest = packet.cub();

        let d = &mut self.devices[dev as usize];
        if self.faults.is_some() && d.links[link as usize].retrain_gated(self.clock) {
            // The link is down, retraining after retry exhaustion: no
            // packet enters until the window lapses (same stall signal
            // as flow-control back-pressure, so host throttling loops
            // need no special case).
            return Err(HmcError::Stalled { cube: dev, link });
        }
        if d.xbars[link as usize].rqst.is_full() {
            return Err(HmcError::Stalled { cube: dev, link });
        }
        if !d.links[link as usize].take_tokens(flits) {
            self.stats.token_stalls += 1;
            return Err(HmcError::Stalled { cube: dev, link });
        }
        if self.params.check_invariants {
            self.inv_record_send(dev, link, host, &packet);
        }
        let mut entry = QueueEntry::new(packet, host, dest, self.clock);
        entry.arrival_link = link;
        // Error simulation: the packet may be corrupted in SERDES
        // transit. The link hands out its wire SEQ (stamped into the
        // request tail, re-sealed) and its monotonic send sequence — the
        // stable key under which every transmission attempt's fate is a
        // pure function of the fault seed, making the corruption stream
        // identical across thread counts and engine modes.
        if let Some(faults) = self.faults.as_mut() {
            let (wire, seq) = self.devices[dev as usize].links[link as usize].next_send_seq();
            entry.packet.set_seq(wire);
            entry.packet.seal();
            entry.send_seq = seq;
            entry.corrupt = faults.roll_attempt(dev, link, seq, 0);
        }
        let d = &mut self.devices[dev as usize];
        d.xbars[link as usize]
            .rqst
            .push(entry)
            .expect("fullness checked above");
        self.stats.sent += 1;
        Ok(())
    }

    /// Receive one response packet from a host link, if available.
    pub fn recv(&mut self, dev: CubeId, link: LinkId) -> Result<Packet> {
        self.recv_with_latency(dev, link).map(|(p, _)| p)
    }

    /// Receive one response packet together with its request-to-response
    /// latency in cycles (device-entry to delivery).
    pub fn recv_with_latency(&mut self, dev: CubeId, link: LinkId) -> Result<(Packet, Cycle)> {
        let n = self.devices.len() as u8;
        let d = self
            .devices
            .get_mut(dev as usize)
            .ok_or_else(|| HmcError::cube_range(dev, n))?;
        let l = d
            .links
            .get(link as usize)
            .ok_or_else(|| HmcError::link_range(link, d.links.len() as u8))?;
        if !l.remote.is_host() {
            return Err(HmcError::Topology(format!(
                "link {link} on device {dev} is not a host link"
            )));
        }
        match d.xbars[link as usize].rsp.pop() {
            Some(entry) => {
                self.stats.received += 1;
                if self.params.check_invariants {
                    self.inv_check_recv(dev, link, &entry);
                }
                let latency = self.clock.saturating_sub(entry.entry_cycle);
                Ok((entry.packet, latency))
            }
            None => Err(HmcError::NoResponse { cube: dev, link }),
        }
    }

    // ------------------------------------------------------------- clock

    /// Advance the simulation by one clock cycle: the six sub-cycle
    /// stages of Figure 3 in order (paper §IV.C).
    ///
    /// With [`SimParams::threads`] above one the vault stages run on the
    /// sharded engine; results are bit-identical either way. Prefer
    /// [`HmcSim::clock_batch`] when clocking many cycles between host
    /// interactions — the parallel engine amortizes its worker start-up
    /// over the batch.
    pub fn clock(&mut self) -> Result<()> {
        self.clock_batch(1)
    }

    pub(crate) fn stage6_update_clock(&mut self) {
        use crate::register::regs;
        for d in &mut self.devices {
            d.registers.tick();
            // Mirror live link token counts into the IBTC registers so
            // in-band MODE_READs observe real flow-control state.
            for l in &d.links {
                let _ = d.registers.set_internal(regs::ibtc(l.id), l.tokens as u64);
            }
        }
        // The AC (address configuration) register selects among the
        // specification's default address map modes (§III.B): 0 =
        // low-interleave (default), 1 = bank-first, 2 = linear. Devices
        // are homogeneous, so device 0's AC governs the object; changes
        // take effect at the clock edge for subsequently routed packets.
        let ac = self.devices[0].registers.read(regs::AC).unwrap_or(0);
        if ac != self.ac_mode {
            let geometry = self.config.geometry();
            let new_map: Option<Arc<dyn AddressMap>> = match ac {
                0 => hmc_types::LowInterleaveMap::new(geometry)
                    .ok()
                    .map(|m| Arc::new(m) as Arc<dyn AddressMap>),
                1 => hmc_types::BankFirstMap::new(geometry)
                    .ok()
                    .map(|m| Arc::new(m) as Arc<dyn AddressMap>),
                2 => hmc_types::LinearMap::new(geometry)
                    .ok()
                    .map(|m| Arc::new(m) as Arc<dyn AddressMap>),
                // Unknown modes leave the current map in place.
                _ => None,
            };
            if let Some(map) = new_map {
                self.map = map;
            }
            self.ac_mode = ac;
        }
        self.clock += 1;
        self.stats.cycles += 1;
    }

    // ------------------------------------------------------------- misc

    /// Reset every device to its power-on state and zero the clock.
    /// Topology wiring is preserved.
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.reset();
        }
        self.clock = 0;
        self.stats = SimStats::default();
        self.inv = None;
    }

    pub(crate) fn emit(&mut self, event: TraceEvent) {
        self.tracer.emit(self.clock, event);
    }

    /// Host-side view of free request slots on a host link.
    pub fn free_request_slots(&self, dev: CubeId, link: LinkId) -> Result<usize> {
        let d = self.device(dev)?;
        let x = d
            .xbars
            .get(link as usize)
            .ok_or_else(|| HmcError::link_range(link, d.links.len() as u8))?;
        Ok(x.rqst.free_slots())
    }

    /// Pending responses available on a host link.
    pub fn pending_responses(&self, dev: CubeId, link: LinkId) -> Result<usize> {
        let d = self.device(dev)?;
        let x = d
            .xbars
            .get(link as usize)
            .ok_or_else(|| HmcError::link_range(link, d.links.len() as u8))?;
        Ok(x.rsp.len())
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::{BlockSize, Command};

    fn sim() -> HmcSim {
        let mut s = HmcSim::new(1, DeviceConfig::small()).unwrap();
        for l in 0..4 {
            s.connect_host(0, l, s.host_cube_id(0)).unwrap();
        }
        s
    }

    fn read_packet(addr: u64, tag: u16, link: LinkId) -> Packet {
        Packet::request(Command::Rd(BlockSize::B64), 0, addr, tag, link, &[]).unwrap()
    }

    #[test]
    fn init_validates_config_and_count() {
        assert!(HmcSim::new(0, DeviceConfig::small()).is_err());
        assert!(HmcSim::new(8, DeviceConfig::small()).is_err());
        let mut bad = DeviceConfig::small();
        bad.num_links = 5;
        assert!(HmcSim::new(1, bad).is_err());
        assert!(HmcSim::new(2, DeviceConfig::small()).is_ok());
    }

    #[test]
    fn host_ids_sit_above_devices() {
        let s = HmcSim::new(3, DeviceConfig::small()).unwrap();
        assert_eq!(s.host_cube_id(0), 3);
        assert_eq!(s.host_cube_id(1), 4);
    }

    #[test]
    fn host_id_collision_rejected() {
        let mut s = HmcSim::new(2, DeviceConfig::small()).unwrap();
        assert!(s.connect_host(0, 0, 1).is_err(), "1 is a device ID");
        assert!(s.connect_host(0, 0, 2).is_ok());
        assert!(s.connect_host(0, 0, 8).is_err(), "beyond CUB space");
    }

    #[test]
    fn loopback_links_rejected() {
        let mut s = HmcSim::new(2, DeviceConfig::small()).unwrap();
        assert!(matches!(
            s.connect_devices(0, 0, 0, 1),
            Err(HmcError::Topology(_))
        ));
    }

    #[test]
    fn chaining_requires_both_devices_in_object() {
        let mut s = HmcSim::new(2, DeviceConfig::small()).unwrap();
        assert!(s.connect_devices(0, 0, 2, 0).is_err());
        assert!(s.connect_devices(0, 1, 1, 1).is_ok());
        // Both ends wired.
        assert_eq!(
            s.device(0).unwrap().links[1].remote,
            Endpoint::Device(1, 1)
        );
        assert_eq!(
            s.device(1).unwrap().links[1].remote,
            Endpoint::Device(0, 1)
        );
    }

    #[test]
    fn hostless_topology_rejected_at_clock() {
        let mut s = HmcSim::new(2, DeviceConfig::small()).unwrap();
        s.connect_devices(0, 0, 1, 0).unwrap();
        assert!(matches!(s.clock(), Err(HmcError::Topology(_))));
    }

    #[test]
    fn send_requires_a_host_link() {
        let mut s = HmcSim::new(2, DeviceConfig::small()).unwrap();
        s.connect_host(0, 0, s.host_cube_id(0)).unwrap();
        s.connect_devices(0, 1, 1, 0).unwrap();
        assert!(s.send(0, 0, read_packet(0, 1, 0)).is_ok());
        assert!(matches!(
            s.send(0, 1, read_packet(0, 2, 1)),
            Err(HmcError::Topology(_))
        ));
        assert!(matches!(
            s.send(1, 2, read_packet(0, 3, 2)),
            Err(HmcError::Topology(_))
        ));
    }

    #[test]
    fn send_rejects_response_packets_and_bad_crc() {
        let mut s = sim();
        let resp = Packet::response(
            Command::RdResponse,
            1,
            0,
            hmc_types::ResponseStatus::Ok,
            &[0u8; 16],
        )
        .unwrap();
        assert!(s.send(0, 0, resp).is_err());
        let mut p = read_packet(0, 1, 0);
        p.set_crc(p.crc() ^ 1);
        assert!(matches!(s.send(0, 0, p), Err(HmcError::InvalidPacket(_))));
    }

    #[test]
    fn send_stalls_when_the_xbar_queue_fills() {
        let mut s = sim(); // xbar depth 8
        for tag in 0..8 {
            s.send(0, 0, read_packet(0, tag, 0)).unwrap();
        }
        let err = s.send(0, 0, read_packet(0, 99, 0)).unwrap_err();
        assert!(err.is_stall());
        assert_eq!(s.stats().sent, 8);
        // Other links are unaffected.
        assert!(s.send(0, 1, read_packet(0, 100, 1)).is_ok());
    }

    #[test]
    fn recv_on_empty_link_reports_no_response() {
        let mut s = sim();
        assert!(matches!(
            s.recv(0, 0),
            Err(HmcError::NoResponse { cube: 0, link: 0 })
        ));
    }

    #[test]
    fn clock_advances_and_counts() {
        let mut s = sim();
        s.clock().unwrap();
        s.clock().unwrap();
        assert_eq!(s.current_clock(), 2);
        assert_eq!(s.stats().cycles, 2);
    }

    #[test]
    fn reset_preserves_wiring_but_clears_state() {
        let mut s = sim();
        s.send(0, 0, read_packet(0, 1, 0)).unwrap();
        s.clock().unwrap();
        s.reset();
        assert_eq!(s.current_clock(), 0);
        assert!(s.is_idle());
        // Wiring preserved: sends still work.
        assert!(s.send(0, 0, read_packet(0, 2, 0)).is_ok());
    }

    #[test]
    fn address_map_swap_requires_matching_geometry() {
        use hmc_types::{BankFirstMap, MapGeometry};
        let mut s = sim();
        let ok = BankFirstMap::new(s.config().geometry()).unwrap();
        assert!(s.set_address_map(Box::new(ok)).is_ok());
        let bad = BankFirstMap::new(MapGeometry {
            block_bytes: 64,
            vaults: 16,
            banks: 8,
            rows: 16,
        })
        .unwrap();
        assert!(s.set_address_map(Box::new(bad)).is_err());
    }

    #[test]
    fn occupancy_tracking() {
        let mut s = sim();
        assert!(s.is_idle());
        s.send(0, 0, read_packet(0, 1, 0)).unwrap();
        assert_eq!(s.total_occupancy(), 1);
        assert!(!s.is_idle());
    }
}
