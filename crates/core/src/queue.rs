//! Packet queues.
//!
//! "All the queuing structures present in the HMC-Sim structure hierarchy
//! share the same software representation. Each queue contains one or more
//! queue slots … in order to act as a registered input or output logic
//! stage" (paper §IV.A). The C implementation scans fixed slot arrays with
//! valid bits; this port keeps the slot *semantics* (fixed depth ≥ 1, FIFO
//! arrival order, one packet per slot) in a ring buffer so a clock tick
//! costs O(occupied slots), which the 33.5-million-request Table I runs
//! require.

use std::collections::VecDeque;

use hmc_types::{BankId, CubeId, Cycle, LinkId, Packet, VaultId};

/// Sentinel for "not yet decoded" vault/bank coordinates.
pub const UNDECODED: u16 = u16::MAX;

/// A packet occupying a queue slot, with the simulator-side metadata that
/// the C implementation keeps alongside each slot.
#[derive(Debug, Clone)]
pub struct QueueEntry {
    /// The packet itself (always sized for the maximal nine-FLIT packet).
    pub packet: Packet,
    /// Cycle at which the packet entered the *device* (latency tracking).
    pub entry_cycle: Cycle,
    /// Cycle at which the packet entered *this queue*.
    pub arrival_cycle: Cycle,
    /// Link on which the packet first entered the current device.
    pub arrival_link: LinkId,
    /// Cube that originated the packet (the host for requests; the
    /// device for responses).
    pub src_cube: CubeId,
    /// Final destination cube (device for requests, host for responses).
    pub dest_cube: CubeId,
    /// Chaining hops taken so far (zombie detection, §V.B).
    pub hops: u32,
    /// Decoded destination vault ([`UNDECODED`] until the crossbar
    /// resolves it; flow/mode packets never resolve one).
    pub dest_vault: VaultId,
    /// Decoded destination bank ([`UNDECODED`] until resolved).
    pub dest_bank: BankId,
    /// Decoded destination DRAM row (meaningful once `dest_vault` is
    /// resolved; the DDR timing backend keys row-buffer state on it).
    pub dest_row: u64,
    /// Corrupted in link transit (error simulation); cleared when the
    /// receiving crossbar detects it and models the retransmission.
    pub corrupt: bool,
    /// Cycle until which the packet is held for link retransmission.
    pub retry_until: Cycle,
    /// Transmission attempts so far: 0 until the first corruption is
    /// detected, then incremented per detection. A packet whose attempt
    /// count exceeds the configured retry limit while still corrupt is
    /// aborted with a poisoned response.
    pub attempt: u32,
    /// The link's monotonic send-sequence slot this packet occupied at
    /// injection — the stable key of its deterministic corruption
    /// stream.
    pub send_seq: u64,
}

impl QueueEntry {
    /// Wrap a packet with fresh metadata.
    pub fn new(packet: Packet, src_cube: CubeId, dest_cube: CubeId, cycle: Cycle) -> Self {
        QueueEntry {
            packet,
            entry_cycle: cycle,
            arrival_cycle: cycle,
            arrival_link: 0,
            src_cube,
            dest_cube,
            hops: 0,
            dest_vault: UNDECODED,
            dest_bank: UNDECODED,
            dest_row: 0,
            corrupt: false,
            retry_until: 0,
            attempt: 0,
            send_seq: 0,
        }
    }

    /// True once the crossbar has resolved vault/bank coordinates.
    pub fn is_decoded(&self) -> bool {
        self.dest_vault != UNDECODED
    }

    /// True while the entry is held for link retransmission at `clock`:
    /// the crossbar already detected a corruption and armed
    /// `retry_until`, and the retry timer has not yet expired. The gate
    /// holds regardless of whether the in-flight retransmission is
    /// itself fated to arrive corrupt (`corrupt` pre-decides the next
    /// attempt's fate; it is only *observable* once the timer expires
    /// and the walk re-checks the head). An undetected corruption
    /// (`corrupt` with a lapsed timer) is *not* gated — its detection
    /// is itself an observable state change the crossbar walk must
    /// perform. Shared by the stepped walk (which breaks the link on a
    /// gated head) and the fast-forward horizon (which treats the gated
    /// span as dead time).
    pub fn retry_gated(&self, clock: Cycle) -> bool {
        self.retry_until > clock
    }
}

/// A fixed-depth FIFO of queue slots.
#[derive(Debug)]
pub struct PacketQueue {
    depth: usize,
    slots: VecDeque<QueueEntry>,
}

impl PacketQueue {
    /// Create a queue of `depth` slots.
    ///
    /// # Panics
    /// Panics if `depth` is zero — "there must exist at least one queue
    /// slot for each logical queue representation" (§IV.A).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "queues must have at least one slot");
        PacketQueue {
            depth,
            slots: VecDeque::with_capacity(depth),
        }
    }

    /// Configured slot count.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot is valid.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when every slot is valid (arrivals must stall).
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.depth
    }

    /// Free slots remaining.
    pub fn free_slots(&self) -> usize {
        self.depth - self.slots.len()
    }

    /// Enqueue at the tail; returns the entry back on overflow so the
    /// caller can leave it in its upstream queue (a stall).
    ///
    /// The large `Err` payload is deliberate: a rejected entry is the
    /// common stall path and must hand the packet back without boxing.
    #[allow(clippy::result_large_err)]
    pub fn push(&mut self, entry: QueueEntry) -> Result<(), QueueEntry> {
        if self.is_full() {
            return Err(entry);
        }
        self.slots.push_back(entry);
        Ok(())
    }

    /// Dequeue from the head.
    pub fn pop(&mut self) -> Option<QueueEntry> {
        self.slots.pop_front()
    }

    /// Peek at the head without removing.
    pub fn front(&self) -> Option<&QueueEntry> {
        self.slots.front()
    }

    /// Peek at slot `i` (0 = head).
    pub fn get(&self, i: usize) -> Option<&QueueEntry> {
        self.slots.get(i)
    }

    /// Mutable peek at slot `i` (0 = head).
    pub fn get_mut(&mut self, i: usize) -> Option<&mut QueueEntry> {
        self.slots.get_mut(i)
    }

    /// Remove slot `i` (0 = head), preserving the order of the rest.
    /// Used by the crossbar's pass-ahead walk, where a stalled packet may
    /// be passed by later packets bound elsewhere (§III.C weak ordering).
    pub fn remove(&mut self, i: usize) -> Option<QueueEntry> {
        self.slots.remove(i)
    }

    /// Re-insert an entry at the head (an entry popped for processing
    /// that must stall keeps its queue position).
    pub fn push_front(&mut self, entry: QueueEntry) {
        assert!(
            self.slots.len() < self.depth,
            "push_front into a full queue"
        );
        self.slots.push_front(entry);
    }

    /// Iterate entries head-to-tail.
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        self.slots.iter()
    }

    /// Total FLITs resident across all occupied slots. Token-conservation
    /// checks compare this against the FLITs outstanding on the feeding
    /// link.
    pub fn resident_flits(&self) -> u32 {
        self.slots.iter().map(|e| e.packet.lng() as u32).sum()
    }

    /// Drop every entry (device reset).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::{BlockSize, Command};

    fn entry(tag: u16) -> QueueEntry {
        let p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, tag, 0, &[]).unwrap();
        QueueEntry::new(p, 5, 0, 0)
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = PacketQueue::new(4);
        for t in 0..4 {
            q.push(entry(t)).unwrap();
        }
        for t in 0..4 {
            assert_eq!(q.pop().unwrap().packet.tag(), t);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_returns_the_entry() {
        let mut q = PacketQueue::new(2);
        q.push(entry(0)).unwrap();
        q.push(entry(1)).unwrap();
        assert!(q.is_full());
        let back = q.push(entry(2)).unwrap_err();
        assert_eq!(back.packet.tag(), 2, "rejected entry comes back intact");
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_depth_rejected() {
        PacketQueue::new(0);
    }

    #[test]
    fn single_slot_queue_works() {
        // The minimum legal queue: one slot (§IV.A).
        let mut q = PacketQueue::new(1);
        q.push(entry(9)).unwrap();
        assert!(q.is_full());
        assert_eq!(q.pop().unwrap().packet.tag(), 9);
        assert!(q.is_empty());
    }

    #[test]
    fn remove_preserves_order_of_rest() {
        let mut q = PacketQueue::new(4);
        for t in 0..4 {
            q.push(entry(t)).unwrap();
        }
        let removed = q.remove(1).unwrap();
        assert_eq!(removed.packet.tag(), 1);
        let rest: Vec<u16> = std::iter::from_fn(|| q.pop())
            .map(|e| e.packet.tag())
            .collect();
        assert_eq!(rest, vec![0, 2, 3]);
    }

    #[test]
    fn push_front_restores_head_position() {
        let mut q = PacketQueue::new(4);
        q.push(entry(0)).unwrap();
        q.push(entry(1)).unwrap();
        let head = q.pop().unwrap();
        q.push_front(head);
        assert_eq!(q.front().unwrap().packet.tag(), 0);
    }

    #[test]
    fn free_slot_accounting() {
        let mut q = PacketQueue::new(3);
        assert_eq!(q.free_slots(), 3);
        q.push(entry(0)).unwrap();
        assert_eq!(q.free_slots(), 2);
        q.pop();
        assert_eq!(q.free_slots(), 3);
    }

    #[test]
    fn entry_metadata_defaults() {
        let e = entry(3);
        assert_eq!(e.src_cube, 5);
        assert_eq!(e.hops, 0);
        assert!(!e.is_decoded());
        assert_eq!(e.dest_vault, UNDECODED);
    }

    #[test]
    fn retry_gating_tracks_timer_and_corruption() {
        let mut e = entry(1);
        assert!(!e.retry_gated(0), "fresh entries are not gated");
        e.retry_until = 10;
        assert!(e.retry_gated(5));
        assert!(e.retry_gated(9));
        assert!(!e.retry_gated(10), "timer expiry cycle is live");
        e.corrupt = true;
        assert!(
            e.retry_gated(5),
            "an armed timer gates even when the in-flight retransmission is fated corrupt"
        );
        assert!(
            !e.retry_gated(10),
            "undetected corruption with a lapsed timer is live work"
        );
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = PacketQueue::new(4);
        q.push(entry(0)).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.free_slots(), 4);
    }

    #[test]
    fn get_and_iter_view_slots_in_order() {
        let mut q = PacketQueue::new(4);
        for t in 0..3 {
            q.push(entry(t)).unwrap();
        }
        assert_eq!(q.get(0).unwrap().packet.tag(), 0);
        assert_eq!(q.get(2).unwrap().packet.tag(), 2);
        assert!(q.get(3).is_none());
        let tags: Vec<u16> = q.iter().map(|e| e.packet.tag()).collect();
        assert_eq!(tags, vec![0, 1, 2]);
    }
}
