//! Topology presets: the four device organizations of the paper's
//! Figure 1 — simple, ring, mesh and 2D torus — plus linear chains.
//!
//! "The HMC specification provides a novel ability to configure memory
//! devices in a traditional network topology such as a mesh, torus or
//! crossbar" (paper §III.A). These builders wire an [`HmcSim`]'s devices
//! and host links accordingly; arbitrary topologies remain expressible
//! through [`HmcSim::connect_host`] / [`HmcSim::connect_devices`]
//! directly, including deliberately broken ones (§IV requirement 2).

use hmc_types::{CubeId, HmcError, LinkId, Result};

use crate::sim::HmcSim;

/// Figure 1 "Simple": every link of every device attaches to the host.
///
/// With one device this is the canonical single-cube configuration used
/// for the paper's §VI evaluation.
pub fn build_simple(sim: &mut HmcSim, host: CubeId) -> Result<()> {
    let links = sim.config().num_links;
    for dev in 0..sim.num_devices() {
        for link in 0..links {
            sim.connect_host(dev, link, host)?;
        }
    }
    sim.finalize_topology()
}

/// A linear chain: `host — dev0 — dev1 — … — devN`.
///
/// Link 0 of device 0 carries the host; each `dev_i` chains to `dev_{i+1}`
/// via link 1 → link 0.
pub fn build_chain(sim: &mut HmcSim, host: CubeId) -> Result<()> {
    let n = sim.num_devices();
    sim.connect_host(0, 0, host)?;
    for d in 0..n.saturating_sub(1) {
        sim.connect_devices(d, 1, d + 1, 0)?;
    }
    sim.finalize_topology()
}

/// Figure 1 "Ring": devices in a cycle, host attached to device 0.
///
/// Links 1 and 2 of each device carry the ring (link 1 = clockwise
/// neighbour, link 2 = counter-clockwise); link 0 of device 0 carries the
/// host. Requires at least three devices for a proper ring (two devices
/// would need a double edge; use [`build_chain`] instead).
pub fn build_ring(sim: &mut HmcSim, host: CubeId) -> Result<()> {
    let n = sim.num_devices();
    if n < 3 {
        return Err(HmcError::Topology(format!(
            "a ring needs at least 3 devices, got {n}"
        )));
    }
    sim.connect_host(0, 0, host)?;
    for d in 0..n {
        let next = (d + 1) % n;
        sim.connect_devices(d, 1, next, 2)?;
    }
    sim.finalize_topology()
}

/// Figure 1 "Mesh": a `width × height` grid, host attached to the
/// north-west corner device.
///
/// Neighbour links use a fixed compass assignment (0 = west/host,
/// 1 = east, 2 = north, 3 = south). Interior nodes of a 4-link device use
/// all four links; the corner device keeps link 0 free for the host.
pub fn build_mesh(sim: &mut HmcSim, width: u8, height: u8, host: CubeId) -> Result<()> {
    grid(sim, width, height, host, false)
}

/// Figure 1 "2D Torus": a grid with wrap-around links in both dimensions.
///
/// Every node has four neighbour links, so torus topologies require
/// 8-link devices: links 0–3 carry the compass neighbours and link 4 of
/// device 0 carries the host. A 2×2 torus is legal and doubles the
/// physical links between each neighbour pair (wrap edge + direct edge) —
/// the largest square torus the 3-bit CUB space admits.
pub fn build_torus(sim: &mut HmcSim, width: u8, height: u8, host: CubeId) -> Result<()> {
    grid(sim, width, height, host, true)
}

fn grid(sim: &mut HmcSim, width: u8, height: u8, host: CubeId, wrap: bool) -> Result<()> {
    let n = sim.num_devices() as usize;
    if width == 0 || height == 0 || (width as usize) * (height as usize) != n {
        return Err(HmcError::Topology(format!(
            "{width}x{height} grid does not match {n} devices"
        )));
    }
    if wrap && (width < 2 || height < 2) {
        return Err(HmcError::Topology(
            "a torus needs both dimensions >= 2".into(),
        ));
    }
    let links = sim.config().num_links;
    let host_link: LinkId = if wrap { 4 } else { 0 };
    if wrap && links < 5 {
        return Err(HmcError::Topology(
            "a 2D torus uses four neighbour links plus a host link; use an 8-link device".into(),
        ));
    }
    let at = |x: u8, y: u8| -> CubeId { y * width + x };
    // Compass link assignment: 0 = west, 1 = east, 2 = north, 3 = south.
    const WEST: LinkId = 0;
    const EAST: LinkId = 1;
    const NORTH: LinkId = 2;
    const SOUTH: LinkId = 3;
    for y in 0..height {
        for x in 0..width {
            // East edges (wire once per pair, from the western node).
            if x + 1 < width {
                sim.connect_devices(at(x, y), EAST, at(x + 1, y), WEST)?;
            } else if wrap {
                sim.connect_devices(at(x, y), EAST, at(0, y), WEST)?;
            }
            // South edges.
            if y + 1 < height {
                sim.connect_devices(at(x, y), SOUTH, at(x, y + 1), NORTH)?;
            } else if wrap {
                sim.connect_devices(at(x, y), SOUTH, at(x, 0), NORTH)?;
            }
        }
    }
    sim.connect_host(at(0, 0), host_link, host)?;
    sim.finalize_topology()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Endpoint;
    use hmc_types::DeviceConfig;

    fn sim(n: u8) -> HmcSim {
        HmcSim::new(n, DeviceConfig::small()).unwrap()
    }

    fn sim8(n: u8) -> HmcSim {
        HmcSim::new(n, DeviceConfig::paper_8link_8bank_4gb().with_queue_depths(8, 4)).unwrap()
    }

    #[test]
    fn simple_topology_wires_every_link_to_the_host() {
        let mut s = sim(1);
        let host = s.host_cube_id(0);
        build_simple(&mut s, host).unwrap();
        for l in 0..4 {
            assert_eq!(s.device(0).unwrap().links[l].remote, Endpoint::Host(host));
        }
        assert!(s.device(0).unwrap().is_root());
    }

    #[test]
    fn chain_wires_hops_in_sequence() {
        let mut s = sim(4);
        let host = s.host_cube_id(0);
        build_chain(&mut s, host).unwrap();
        assert_eq!(s.device(0).unwrap().links[0].remote, Endpoint::Host(host));
        assert_eq!(
            s.device(0).unwrap().links[1].remote,
            Endpoint::Device(1, 0)
        );
        assert_eq!(
            s.device(2).unwrap().links[1].remote,
            Endpoint::Device(3, 0)
        );
        assert!(!s.device(3).unwrap().is_root());
    }

    #[test]
    fn ring_closes_the_cycle() {
        let mut s = sim(4);
        let host = s.host_cube_id(0);
        build_ring(&mut s, host).unwrap();
        assert_eq!(
            s.device(3).unwrap().links[1].remote,
            Endpoint::Device(0, 2),
            "last device wraps to the first"
        );
        assert_eq!(s.device(0).unwrap().links[0].remote, Endpoint::Host(host));
    }

    #[test]
    fn ring_requires_three_devices() {
        let mut s = sim(2);
        let host = s.host_cube_id(0);
        assert!(matches!(
            build_ring(&mut s, host),
            Err(HmcError::Topology(_))
        ));
    }

    #[test]
    fn mesh_wires_a_2x2_grid() {
        let mut s = sim(4);
        let host = s.host_cube_id(0);
        build_mesh(&mut s, 2, 2, host).unwrap();
        // dev0 east -> dev1 west; dev0 south -> dev2 north.
        assert_eq!(
            s.device(0).unwrap().links[1].remote,
            Endpoint::Device(1, 0)
        );
        assert_eq!(
            s.device(0).unwrap().links[3].remote,
            Endpoint::Device(2, 2)
        );
        // Corner keeps link 0 for the host.
        assert_eq!(s.device(0).unwrap().links[0].remote, Endpoint::Host(host));
        // dev3 is interior-ish: east/south unconnected on a 2x2.
        assert_eq!(s.device(3).unwrap().links[1].remote, Endpoint::Unconnected);
    }

    #[test]
    fn mesh_dimension_mismatch_rejected() {
        let mut s = sim(4);
        let host = s.host_cube_id(0);
        assert!(build_mesh(&mut s, 3, 2, host).is_err());
        assert!(build_mesh(&mut s, 0, 4, host).is_err());
    }

    #[test]
    fn torus_requires_eight_link_devices() {
        let mut s = sim(4);
        let host = s.host_cube_id(0);
        assert!(matches!(
            build_torus(&mut s, 2, 2, host),
            Err(HmcError::Topology(_))
        ));
    }

    #[test]
    fn two_by_two_torus_doubles_links_on_eight_link_devices() {
        let mut s = sim8(4);
        let host = s.host_cube_id(0);
        build_torus(&mut s, 2, 2, host).unwrap();
        // Every device uses its four compass links.
        for d in 0..4 {
            let dev = s.device(d).unwrap();
            for l in 0..4 {
                assert!(
                    matches!(dev.links[l].remote, Endpoint::Device(..)),
                    "device {d} link {l} must be wired"
                );
            }
        }
        // Host hangs off link 4 of device 0.
        assert_eq!(s.device(0).unwrap().links[4].remote, Endpoint::Host(host));
        // dev0's east direct edge and west wrap edge both reach dev1.
        assert_eq!(s.device(0).unwrap().links[1].remote, Endpoint::Device(1, 0));
        assert_eq!(s.device(0).unwrap().links[0].remote, Endpoint::Device(1, 1));
    }

    #[test]
    fn torus_rejects_degenerate_dimensions() {
        let mut s = sim8(2);
        let host = s.host_cube_id(0);
        assert!(matches!(
            build_torus(&mut s, 2, 1, host),
            Err(HmcError::Topology(_))
        ));
    }

    #[test]
    fn mesh_routes_reach_all_devices() {
        let mut s = sim(6);
        let host = s.host_cube_id(0);
        build_mesh(&mut s, 3, 2, host).unwrap();
        // After finalize, every device should be able to route to the host.
        s.finalize_topology().unwrap();
        // Reach: send a probe through the public API later; here just
        // verify structure: every device has at least one connected link.
        for d in 0..6 {
            assert!(
                s.device(d)
                    .unwrap()
                    .links
                    .iter()
                    .any(|l| l.remote != Endpoint::Unconnected),
                "device {d} must be wired"
            );
        }
    }
}
