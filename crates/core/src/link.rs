//! Device links.
//!
//! "Links are analogous to an HMC physical device link. Per the current
//! specification, device links may connect a host and an HMC device or two
//! HMC devices (chaining). … Each link contains a reference to its closest
//! quad unit and the source and destination device identifiers (including
//! host devices)" (paper §IV.A).

use hmc_types::{CubeId, LinkId, QuadId};

/// What sits at the far end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Nothing attached; packets cannot use the link.
    Unconnected,
    /// A host processor with the given cube ID (hosts are identified by
    /// cube IDs greater than any device, §V.B).
    Host(CubeId),
    /// Another HMC device: `(cube, link)` names the peer link so forwarded
    /// packets land in the correct crossbar queue.
    Device(CubeId, LinkId),
}

impl Endpoint {
    /// True when the far end is a host processor.
    pub fn is_host(&self) -> bool {
        matches!(self, Endpoint::Host(_))
    }

    /// True when the far end is another device (a chaining link).
    pub fn is_device(&self) -> bool {
        matches!(self, Endpoint::Device(..))
    }

    /// The cube at the far end, if any.
    pub fn cube(&self) -> Option<CubeId> {
        match self {
            Endpoint::Unconnected => None,
            Endpoint::Host(c) => Some(*c),
            Endpoint::Device(c, _) => Some(*c),
        }
    }
}

/// One bidirectional external link of a device.
#[derive(Debug, Clone)]
pub struct Link {
    /// Link index on this device.
    pub id: LinkId,
    /// The closest quad unit ("each link is physically closest to the
    /// respectively numbered quad unit", §IV.A): quad index == link index.
    pub quad: QuadId,
    /// The far-end endpoint.
    pub remote: Endpoint,
    /// Flow-control tokens available to senders into this link's crossbar
    /// input buffer, in FLITs (IBTC semantics). Senders consume a packet's
    /// FLIT count; tokens return when the crossbar retires the packet.
    pub tokens: u32,
    /// Initial token allotment (for reset).
    pub initial_tokens: u32,
    /// FLIT-beats owed from oversized packets under the serialized-link
    /// model (`SimParams::link_flits_per_cycle`); the link stalls until
    /// the debt drains.
    pub flit_debt: u32,
    /// Monotonic count of request packets sent into this link — the
    /// stable per-link sequence that keys the deterministic link-fault
    /// corruption stream. Never resets (unlike the 3-bit wire SEQ).
    pub send_seq: u64,
    /// 3-bit wire SEQ counter stamped into request tails at send; wraps
    /// modulo 8 and restarts after a link retraining, as the spec's
    /// retry protocol requires.
    pub wire_seq: u8,
    /// Cycle until which the link is down, retraining after a retry
    /// exhaustion. While `retrain_until > clock` the crossbar walk for
    /// this link is gated; the first walk after expiry records the
    /// completed retraining and restarts the wire SEQ.
    pub retrain_until: hmc_types::Cycle,
    /// True while a retraining window is pending its completion record
    /// (set at link-down, cleared when the post-expiry walk emits the
    /// `LinkRetrain` event).
    pub retraining: bool,
}

impl Link {
    /// A fresh, unconnected link. Tokens cover the crossbar queue in
    /// maximal nine-FLIT packets.
    pub fn new(id: LinkId, xbar_depth: usize) -> Self {
        let tokens = (xbar_depth * hmc_types::MAX_PACKET_FLITS) as u32;
        Link {
            id,
            quad: id,
            remote: Endpoint::Unconnected,
            tokens,
            initial_tokens: tokens,
            flit_debt: 0,
            send_seq: 0,
            wire_seq: 0,
            retrain_until: 0,
            retraining: false,
        }
    }

    /// Take the next wire SEQ value (3-bit, wrapping) and advance the
    /// monotonic send counter; returns `(wire_seq, send_seq)` for the
    /// packet being sent.
    pub fn next_send_seq(&mut self) -> (u8, u64) {
        let wire = self.wire_seq;
        self.wire_seq = (self.wire_seq + 1) & 0x7;
        let seq = self.send_seq;
        self.send_seq += 1;
        (wire, seq)
    }

    /// True while the link is down retraining at `clock`.
    pub fn retrain_gated(&self, clock: hmc_types::Cycle) -> bool {
        self.retrain_until > clock
    }

    /// True when this link connects to a host.
    pub fn is_host_link(&self) -> bool {
        self.remote.is_host()
    }

    /// True when this link chains to another device.
    pub fn is_pass_through(&self) -> bool {
        self.remote.is_device()
    }

    /// Consume `flits` tokens; false (and unchanged) if insufficient.
    pub fn take_tokens(&mut self, flits: u32) -> bool {
        if self.tokens >= flits {
            self.tokens -= flits;
            true
        } else {
            false
        }
    }

    /// Return `flits` tokens (TRET processing), saturating at the initial
    /// allotment.
    pub fn return_tokens(&mut self, flits: u32) {
        self.tokens = (self.tokens + flits).min(self.initial_tokens);
    }

    /// True when the token pool is back to its initial allotment — i.e.
    /// every FLIT ever taken for this link has been returned. A quiesced
    /// simulation must satisfy this on every connected link (token
    /// conservation; checked by the invariant sweep and the soak tests).
    pub fn at_initial_tokens(&self) -> bool {
        self.tokens == self.initial_tokens
    }

    /// Restore the reset state (connectivity is preserved; tokens refill,
    /// retry/retrain bookkeeping clears).
    pub fn reset_tokens(&mut self) {
        self.tokens = self.initial_tokens;
        self.flit_debt = 0;
        self.send_seq = 0;
        self.wire_seq = 0;
        self.retrain_until = 0;
        self.retraining = false;
    }

    /// Whole cycles the crossbar walk for this link is guaranteed to be
    /// skipped outright while accumulated FLIT debt pays down at
    /// `flits_per_cycle` beats per cycle (the `debt >= budget` branch of
    /// the stepped walk). The first cycle with sub-budget debt runs the
    /// walk and is therefore not counted.
    pub fn debt_dead_cycles(&self, flits_per_cycle: usize) -> u64 {
        self.flit_debt as u64 / flits_per_cycle.max(1) as u64
    }

    /// Pay down `cycles` cycles' worth of FLIT debt, exactly as that many
    /// stepped walks would have: full-budget decrements while the debt
    /// covers the budget, then a zeroing write on the first sub-budget
    /// cycle (the stepped walk's trailing `drained - budget` store with
    /// nothing drained). Used by fast-forward jumps over dead cycles.
    pub fn decay_flit_debt(&mut self, cycles: u64, flits_per_cycle: usize) {
        let paid = (flits_per_cycle.max(1) as u64).saturating_mul(cycles);
        self.flit_debt = (self.flit_debt as u64).saturating_sub(paid) as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_classification() {
        assert!(Endpoint::Host(5).is_host());
        assert!(!Endpoint::Host(5).is_device());
        assert!(Endpoint::Device(1, 2).is_device());
        assert!(!Endpoint::Unconnected.is_host());
        assert_eq!(Endpoint::Host(5).cube(), Some(5));
        assert_eq!(Endpoint::Device(1, 2).cube(), Some(1));
        assert_eq!(Endpoint::Unconnected.cube(), None);
    }

    #[test]
    fn links_pair_with_their_quad() {
        // §IV.A: link i is physically closest to quad i.
        for id in 0..8 {
            assert_eq!(Link::new(id, 8).quad, id);
        }
    }

    #[test]
    fn fresh_links_are_unconnected() {
        let l = Link::new(0, 8);
        assert!(!l.is_host_link());
        assert!(!l.is_pass_through());
    }

    #[test]
    fn token_pool_covers_the_crossbar_queue() {
        let l = Link::new(0, 128);
        assert_eq!(l.tokens, 128 * 9);
    }

    #[test]
    fn token_take_and_return() {
        let mut l = Link::new(0, 2); // 18 tokens
        assert!(l.take_tokens(9));
        assert!(l.take_tokens(9));
        assert!(!l.take_tokens(1), "pool exhausted");
        assert_eq!(l.tokens, 0);
        l.return_tokens(9);
        assert_eq!(l.tokens, 9);
        l.return_tokens(100);
        assert_eq!(l.tokens, 18, "saturates at the initial allotment");
    }

    #[test]
    fn debt_dead_cycles_count_full_budget_skips() {
        let mut l = Link::new(0, 4);
        assert_eq!(l.debt_dead_cycles(2), 0, "no debt, no dead cycles");
        l.flit_debt = 5;
        // Cycles 1 and 2 are skipped (5 -> 3 -> 1); cycle 3 walks with a
        // partial budget, so only two cycles are provably dead.
        assert_eq!(l.debt_dead_cycles(2), 2);
        assert_eq!(l.debt_dead_cycles(0), 5, "zero budget clamps to one beat");
    }

    #[test]
    fn debt_decay_matches_the_stepped_walk() {
        // Stepped reference: debt -= f while debt >= f, then one walk
        // with partial budget zeroes it.
        let stepped = |mut debt: u32, f: u32, cycles: u64| -> u32 {
            for _ in 0..cycles {
                if debt >= f {
                    debt -= f;
                } else {
                    debt = 0; // walk ran; trailing store zeroes sub-budget debt
                }
            }
            debt
        };
        for debt in [0u32, 1, 2, 5, 9, 17] {
            for f in [1usize, 2, 3, 9] {
                for cycles in [0u64, 1, 2, 3, 10] {
                    let mut l = Link::new(0, 4);
                    l.flit_debt = debt;
                    l.decay_flit_debt(cycles, f);
                    assert_eq!(
                        l.flit_debt,
                        stepped(debt, f as u32, cycles),
                        "debt={debt} f={f} cycles={cycles}"
                    );
                }
            }
        }
    }

    #[test]
    fn reset_refills_tokens_and_keeps_wiring() {
        let mut l = Link::new(3, 4);
        l.remote = Endpoint::Device(2, 1);
        l.take_tokens(5);
        l.next_send_seq();
        l.retrain_until = 99;
        l.retraining = true;
        l.reset_tokens();
        assert_eq!(l.tokens, l.initial_tokens);
        assert_eq!(l.remote, Endpoint::Device(2, 1));
        assert_eq!(l.send_seq, 0);
        assert_eq!(l.wire_seq, 0);
        assert!(!l.retrain_gated(0));
        assert!(!l.retraining);
    }

    #[test]
    fn send_seq_wraps_on_the_wire_but_not_in_the_key() {
        let mut l = Link::new(0, 4);
        for i in 0..20u64 {
            let (wire, seq) = l.next_send_seq();
            assert_eq!(wire as u64, i & 7, "wire SEQ is 3-bit");
            assert_eq!(seq, i, "monotonic sequence never wraps");
        }
    }

    #[test]
    fn retrain_gate_tracks_the_window() {
        let mut l = Link::new(0, 4);
        assert!(!l.retrain_gated(0));
        l.retrain_until = 10;
        assert!(l.retrain_gated(9));
        assert!(!l.retrain_gated(10), "expiry cycle is live");
    }
}
