//! The six sub-cycle clock stages (paper §IV.C, Figure 3).
//!
//! One call to [`HmcSim::clock`](crate::sim::HmcSim::clock) progresses the
//! devices by a single leading and trailing clock edge. Internally the
//! cycle decomposes into six sub-cycle operations, executed in this strict
//! order:
//!
//! 1. process child-device link crossbar transactions;
//! 2. process root-device link crossbar request transactions;
//! 3. recognize bank conflicts on vault request queues (trace only);
//! 4. process vault queue memory request transactions;
//! 5. register response packets with crossbar response queues (root
//!    devices first, then children);
//! 6. update the internal clock value.
//!
//! "Request and response packets are only progressed by a single internal
//! stage per sub-cycle operation" — a packet cannot jump from the crossbar
//! interface to a memory bank inside one sub-cycle; it moves crossbar →
//! vault queue in stage 1/2 and vault queue → bank in stage 4.
//!
//! This module owns the stages that touch shared device state: the
//! crossbar walks of stages 1 and 2, the crossbar half of stage 5, and
//! the helpers they share. The per-vault stages (3, 4, and the vault
//! half of 5) live in [`crate::engine`], which runs them either inline
//! (serial) or sharded across worker threads.

use hmc_trace::{EventKind, TraceEvent};
use hmc_types::packet::ResponseStatus;
use hmc_types::{Command, CubeId, LinkId, Packet, PhysAddr, QuadId, VaultId};

use crate::link::Endpoint;
use crate::noc::{NocClass, NocDest, NocEvent};
use crate::quad::Quad;
use crate::queue::{QueueEntry, UNDECODED};
use crate::sim::HmcSim;

impl HmcSim {
    /// Stage 1: crossbar transactions on child devices (devices without a
    /// host link).
    pub(crate) fn stage1_child_xbar_requests(&mut self) {
        for di in 0..self.devices.len() {
            if !self.devices[di].is_root() {
                self.process_xbar_requests(di);
            }
        }
    }

    /// Stage 2: crossbar request transactions on root devices (devices
    /// connected directly to a host interface).
    pub(crate) fn stage2_root_xbar_requests(&mut self) {
        for di in 0..self.devices.len() {
            if self.devices[di].is_root() {
                self.process_xbar_requests(di);
            }
        }
    }

    /// The shared crossbar walk of stages 1 and 2: route each link's
    /// queued request packets to local vaults or across chained links,
    /// honouring pass-ahead weak ordering (a stalled packet may be passed
    /// by later packets bound for other vaults or cubes, never by packets
    /// of its own stream, §III.C).
    fn process_xbar_requests(&mut self, di: usize) {
        let dev_id = di as CubeId;
        let num_links = self.config.num_links as usize;
        let max_drain = self.params.xbar_drain_per_cycle;

        // Optional SERDES serialization: each link direction moves at
        // most this many FLITs per cycle when configured. A zero budget
        // could never drain a packet, so it is clamped to one beat.
        let flit_budget = self.params.link_flits_per_cycle.map(|f| f.max(1));

        // Deferred chain-forwards stage in a reusable buffer (capacity
        // retained across cycles — the steady-state walk allocates
        // nothing).
        let mut forwards = std::mem::take(&mut self.scratch.forwards);

        for l in 0..num_links {
            // Link-retry protocol: a link that exhausted its retries is
            // down, retraining — nothing moves until the window lapses,
            // and the first walk afterward records the completed
            // retraining and restarts the wire SEQ counter.
            if self.faults.is_some() {
                if self.devices[di].links[l].retrain_gated(self.clock) {
                    continue;
                }
                if self.devices[di].links[l].retraining {
                    let link = &mut self.devices[di].links[l];
                    link.retraining = false;
                    link.wire_seq = 0;
                    self.stats.link_retrains += 1;
                    self.emit(TraceEvent::LinkRetrain {
                        cube: dev_id,
                        link: l as LinkId,
                    });
                }
            }
            // Resolve this link's FLIT budget, paying down debt from
            // earlier oversized packets first.
            let budget = if let Some(f) = flit_budget {
                let debt = self.devices[di].links[l].flit_debt as usize;
                if debt >= f {
                    self.devices[di].links[l].flit_debt = (debt - f) as u32;
                    continue;
                }
                f - debt
            } else {
                usize::MAX
            };
            let mut drained = 0usize;
            let mut drained_flits = 0usize;
            let mut idx = 0usize;
            // Vaults whose queues stalled a packet this walk: later
            // packets for the same vault may not pass (stream order).
            let mut blocked_vaults: u64 = 0;
            // Remote cubes whose forward path stalled this walk.
            let mut blocked_cubes: u8 = 0;
            // Buffered-NoC injection stalled this walk: every cross-quad
            // packet on this link injects at the same quad, so one full
            // buffer blocks them all (stream order).
            let mut noc_blocked = false;
            // Free-slot snapshot of remote crossbar queues we forward
            // into, so capacity claimed by this walk is not double-booked.
            let mut remote_free: [[Option<usize>; 8]; 8] = [[None; 8]; 8];
            debug_assert!(forwards.is_empty());

            loop {
                if drained >= max_drain {
                    break;
                }
                if drained_flits >= budget {
                    break;
                }
                if idx >= self.devices[di].xbars[l].rqst.len() {
                    break;
                }

                let (cmd_res, dest, tag, addr, flits, hops, decoded_vault, decoded_bank, decoded_row) = {
                    let e = self.devices[di].xbars[l].rqst.get(idx).expect("idx checked");
                    (
                        e.packet.cmd(),
                        e.dest_cube,
                        e.packet.tag(),
                        e.packet.addr(),
                        e.packet.lng() as u32,
                        e.hops,
                        e.dest_vault,
                        e.dest_bank,
                        e.dest_row,
                    )
                };

                // Error simulation: the crossbar's CRC check catches
                // packets corrupted in link transit. A detected
                // corruption triggers the StartRetry/IRTRY exchange —
                // the packet (and its stream) holds in place while the
                // peer retransmits in order from its retry buffer — and
                // a packet that exhausts the attempt cap is aborted with
                // a poisoned response while the link goes down to
                // retrain.
                if self.faults.is_some() {
                    let (corrupt, gated, posted) = {
                        let e = self.devices[di].xbars[l].rqst.get(idx).expect("idx checked");
                        (
                            e.corrupt,
                            e.retry_gated(self.clock),
                            e.packet.cmd().map(|c| c.is_posted()).unwrap_or(false),
                        )
                    };
                    if gated {
                        // Retransmission in flight: the packet (and, to
                        // preserve stream order, everything behind it on
                        // this link) waits. Same gate the fast-forward
                        // horizon models via `QueueEntry::retry_gated`.
                        break;
                    }
                    if corrupt {
                        let cfg = self.faults.as_ref().expect("checked").config;
                        let clock = self.clock;
                        let (next_attempt, send_seq) = {
                            let e =
                                self.devices[di].xbars[l].rqst.get(idx).expect("idx checked");
                            (e.attempt + 1, e.send_seq)
                        };
                        // Retry exhaustion with no response slot free:
                        // hold everything as-is (no counters, no events)
                        // and rerun the abort next cycle. Checked before
                        // the detection is recorded so a deferred abort
                        // never double-counts.
                        if next_attempt > cfg.retry_limit
                            && !posted
                            && self.devices[di].xbars[l].rsp.is_full()
                        {
                            break;
                        }
                        self.faults.as_mut().expect("checked").record_detection();
                        if next_attempt <= cfg.retry_limit {
                            // Schedule the in-order retransmission and
                            // pre-decide its fate from the stateless
                            // corruption stream (observable only once
                            // the retry timer lapses).
                            let refate = self.faults.as_mut().expect("checked").roll_attempt(
                                dev_id,
                                l as LinkId,
                                send_seq,
                                next_attempt,
                            );
                            let e = self.devices[di].xbars[l]
                                .rqst
                                .get_mut(idx)
                                .expect("idx checked");
                            e.attempt = next_attempt;
                            e.corrupt = refate;
                            e.retry_until = clock + cfg.retry_cycles;
                            self.stats.link_retries += 1;
                            self.emit(TraceEvent::LinkRetry {
                                cube: dev_id,
                                link: l as LinkId,
                                tag,
                            });
                            // The IRTRY exchange retransmits from the
                            // error point onward: everything behind the
                            // corrupted packet holds too, exactly as the
                            // `retry_gated` check does on later cycles.
                            break;
                        }
                        // Retry exhaustion: abort with a poisoned
                        // response and take the link down. Delivery is
                        // guaranteed — the full-response-queue case broke
                        // out above before anything mutated.
                        let entry =
                            self.devices[di].xbars[l].rqst.remove(idx).expect("present");
                        self.return_link_tokens(di, l, flits);
                        self.faults.as_mut().expect("checked").record_poison();
                        self.emit(TraceEvent::LinkDown {
                            cube: dev_id,
                            link: l as LinkId,
                            tag,
                            attempts: next_attempt,
                        });
                        self.poison_response(di, l, entry);
                        let link = &mut self.devices[di].links[l];
                        link.retrain_until = clock + cfg.retrain_cycles;
                        link.retraining = true;
                        drained_flits += flits as usize;
                        // The link is down: nothing else moves on it
                        // this cycle (`drained` needs no bump — the walk
                        // ends here).
                        break;
                    }
                }

                let cmd = match cmd_res {
                    Ok(c) => c,
                    Err(_) => {
                        let entry = self.devices[di].xbars[l].rqst.remove(idx).expect("present");
                        self.return_link_tokens(di, l, flits);
                        self.xbar_error_response(di, l, entry, ResponseStatus::CommandError);
                        drained += 1;
                    drained_flits += flits as usize;
                        continue;
                    }
                };

                // Flow-control packets retire at the crossbar.
                if cmd.is_flow() {
                    let entry = self.devices[di].xbars[l].rqst.remove(idx).expect("present");
                    self.return_link_tokens(di, l, flits);
                    self.process_flow_packet(di, l, cmd, &entry);
                    drained += 1;
                    drained_flits += flits as usize;
                    continue;
                }

                // ---- packets for other cubes: chaining forward ----
                if dest != dev_id {
                    if blocked_cubes & (1u8 << (dest & 0x7)) != 0 {
                        idx += 1;
                        continue;
                    }
                    if hops + 1 > self.params.hop_budget {
                        let entry = self.devices[di].xbars[l].rqst.remove(idx).expect("present");
                        self.return_link_tokens(di, l, flits);
                        self.emit(TraceEvent::Zombie {
                            cube: dev_id,
                            tag,
                            hops: hops + 1,
                        });
                        self.xbar_error_response(di, l, entry, ResponseStatus::Zombie);
                        drained += 1;
                    drained_flits += flits as usize;
                        continue;
                    }
                    let next = self
                        .routes
                        .as_ref()
                        .expect("routes built before clocking")
                        .next_hop(dev_id, dest);
                    let (r, rl) = match next.map(|n| self.devices[di].links[n as usize].remote) {
                        Some(Endpoint::Device(r, rl)) => (r as usize, rl as usize),
                        _ => {
                            // No route, or the route terminates at a host:
                            // requests cannot be delivered to hosts.
                            let entry =
                                self.devices[di].xbars[l].rqst.remove(idx).expect("present");
                            self.return_link_tokens(di, l, flits);
                            self.emit(TraceEvent::Misroute {
                                cube: dev_id,
                                link: l as LinkId,
                                dest_cube: dest,
                                tag,
                            });
                            self.xbar_error_response(di, l, entry, ResponseStatus::Misroute);
                            drained += 1;
                    drained_flits += flits as usize;
                            continue;
                        }
                    };
                    let free = match &mut remote_free[r][rl] {
                        Some(f) => f,
                        slot @ None => {
                            *slot = Some(self.devices[r].xbars[rl].rqst.free_slots());
                            slot.as_mut().expect("just set")
                        }
                    };
                    if *free == 0 {
                        blocked_cubes |= 1u8 << (dest & 0x7);
                        idx += 1;
                        continue;
                    }
                    *free -= 1;
                    let mut entry = self.devices[di].xbars[l].rqst.remove(idx).expect("present");
                    self.return_link_tokens(di, l, flits);
                    entry.hops += 1;
                    entry.arrival_cycle = self.clock;
                    entry.arrival_link = rl as LinkId;
                    let next_link = next.expect("matched Device endpoint");
                    self.emit(TraceEvent::Forwarded {
                        cube: dev_id,
                        link: next_link,
                        next_cube: r as CubeId,
                        dest_cube: dest,
                        tag,
                    });
                    forwards.push((entry, r, rl));
                    drained += 1;
                    drained_flits += flits as usize;
                    continue;
                }

                // ---- MODE register accesses: logic-layer operations ----
                if cmd.is_mode() {
                    if self.devices[di].xbars[l].rsp.is_full() {
                        idx += 1;
                        continue;
                    }
                    let entry = self.devices[di].xbars[l].rqst.remove(idx).expect("present");
                    self.return_link_tokens(di, l, flits);
                    self.execute_mode_access(di, l, cmd, entry);
                    drained += 1;
                    drained_flits += flits as usize;
                    continue;
                }

                // ---- memory requests for this device ----
                let (vault, bank, row) = if decoded_vault != UNDECODED {
                    (decoded_vault, decoded_bank, decoded_row)
                } else {
                    match PhysAddr::new(addr).and_then(|a| self.map.decode(a)) {
                        Ok(d) => (d.vault, d.bank, d.row),
                        Err(_) => {
                            let entry =
                                self.devices[di].xbars[l].rqst.remove(idx).expect("present");
                            self.return_link_tokens(di, l, flits);
                            self.xbar_error_response(di, l, entry, ResponseStatus::AddressError);
                            drained += 1;
                    drained_flits += flits as usize;
                            continue;
                        }
                    }
                };
                // Buffered NoC fabrics carry cross-quad requests through
                // per-quad segment buffers; local requests (and every
                // request under the crossbar fabric) take the original
                // direct push.
                let dest_quad = Quad::of_vault(vault);
                let via_noc = (l as QuadId) != dest_quad && self.devices[di].noc.is_some();
                if via_noc {
                    if noc_blocked {
                        idx += 1;
                        continue;
                    }
                    if !self.devices[di]
                        .noc
                        .as_ref()
                        .expect("via_noc")
                        .has_room(l as QuadId, NocClass::Request)
                    {
                        self.stats.noc_stalls += 1;
                        self.emit(TraceEvent::NocStall {
                            cube: dev_id,
                            quad: l as QuadId,
                            tag,
                        });
                        noc_blocked = true;
                        idx += 1;
                        continue;
                    }
                } else {
                    if blocked_vaults & (1u64 << (vault & 0x3f)) != 0 {
                        idx += 1;
                        continue;
                    }
                    if self.devices[di].vaults[vault as usize].rqst.is_full() {
                        self.emit(TraceEvent::XbarRqstStall {
                            cube: dev_id,
                            link: l as LinkId,
                            vault,
                            tag,
                        });
                        blocked_vaults |= 1u64 << (vault & 0x3f);
                        idx += 1;
                        continue;
                    }
                }

                let mut entry = self.devices[di].xbars[l].rqst.remove(idx).expect("present");
                self.return_link_tokens(di, l, flits);
                entry.dest_vault = vault;
                entry.dest_bank = bank;
                entry.dest_row = row;
                entry.arrival_cycle = self.clock;
                // "Higher latencies are detected due to the physical
                // locality of the queue versus the destination vault"
                // (§IV.C): the arrival link's quad is not the vault's.
                let arrival_quad = entry.arrival_link; // quad index == link index
                if arrival_quad != dest_quad {
                    self.emit(TraceEvent::RouteLatency {
                        cube: dev_id,
                        link: l as LinkId,
                        arrival_quad,
                        dest_quad,
                        vault,
                        tag,
                    });
                }
                if via_noc {
                    self.devices[di].noc.as_mut().expect("via_noc").inject(
                        l as QuadId,
                        NocDest::ToVault(vault),
                        entry,
                        self.clock,
                    );
                } else {
                    self.devices[di].vaults[vault as usize]
                        .rqst
                        .push(entry)
                        .expect("fullness checked above");
                }
                drained += 1;
                    drained_flits += flits as usize;
            }

            if flit_budget.is_some() {
                // Oversized final packets leave a beat debt for later
                // cycles so long-run throughput honours the line rate.
                self.devices[di].links[l].flit_debt =
                    drained_flits.saturating_sub(budget) as u32;
            }
            for (entry, r, rl) in forwards.drain(..) {
                self.devices[r].xbars[rl]
                    .rqst
                    .push(entry)
                    .expect("capacity reserved in snapshot");
            }
        }

        self.scratch.forwards = forwards;
    }

    /// Move responses already in crossbar response queues one step: to a
    /// host-deliverable position, across a chained link, or to the egress
    /// crossbar within this device.
    pub(crate) fn forward_xbar_responses(&mut self, di: usize) {
        let dev_id = di as CubeId;
        let num_links = self.config.num_links as usize;
        let max_drain = self.params.xbar_drain_per_cycle;

        for l in 0..num_links {
            let mut idx = 0usize;
            let mut moved = 0usize;
            loop {
                if moved >= max_drain {
                    break;
                }
                if idx >= self.devices[di].xbars[l].rsp.len() {
                    break;
                }
                let (dest, tag, arrived) = {
                    let e = self.devices[di].xbars[l].rsp.get(idx).expect("idx checked");
                    (e.dest_cube, e.packet.tag(), e.arrival_cycle)
                };
                // One internal stage per sub-cycle (§IV.C): an entry that
                // already moved this cycle (re-routed from another link or
                // forwarded from another device) waits for the next edge.
                if arrived >= self.clock {
                    idx += 1;
                    continue;
                }
                // Deliverable where it sits: host attached to this link.
                if self.devices[di].links[l].remote == Endpoint::Host(dest) {
                    idx += 1;
                    continue;
                }
                let next = self
                    .routes
                    .as_ref()
                    .expect("routes built before clocking")
                    .next_hop(dev_id, dest);
                let Some(e_link) = next else {
                    // Zombie response: its host is unreachable.
                    let entry = self.devices[di].xbars[l].rsp.remove(idx).expect("present");
                    self.emit(TraceEvent::Misroute {
                        cube: dev_id,
                        link: l as LinkId,
                        dest_cube: dest,
                        tag: entry.packet.tag(),
                    });
                    moved += 1;
                    continue;
                };
                let e_link = e_link as usize;
                if e_link == l {
                    // This link faces the right direction: cross it.
                    match self.devices[di].links[l].remote {
                        Endpoint::Device(r, rl) => {
                            let (r, rl) = (r as usize, rl as usize);
                            if self.devices[r].xbars[rl].rsp.is_full() {
                                self.emit(TraceEvent::XbarRspStall {
                                    cube: dev_id,
                                    link: l as LinkId,
                                    tag,
                                });
                                idx += 1;
                                continue;
                            }
                            let mut entry =
                                self.devices[di].xbars[l].rsp.remove(idx).expect("present");
                            entry.arrival_cycle = self.clock;
                            entry.arrival_link = rl as LinkId;
                            entry.hops += 1;
                            self.devices[r].xbars[rl]
                                .rsp
                                .push(entry)
                                .expect("fullness checked");
                            moved += 1;
                        }
                        _ => {
                            // Route says "this link" but it's a host link
                            // for a different host, or unconnected.
                            let entry =
                                self.devices[di].xbars[l].rsp.remove(idx).expect("present");
                            self.emit(TraceEvent::Misroute {
                                cube: dev_id,
                                link: l as LinkId,
                                dest_cube: entry.dest_cube,
                                tag: entry.packet.tag(),
                            });
                            moved += 1;
                        }
                    }
                } else {
                    // Re-route within the device to the egress crossbar.
                    if self.devices[di].xbars[e_link].rsp.is_full() {
                        self.emit(TraceEvent::XbarRspStall {
                            cube: dev_id,
                            link: e_link as LinkId,
                            tag,
                        });
                        idx += 1;
                        continue;
                    }
                    let mut entry = self.devices[di].xbars[l].rsp.remove(idx).expect("present");
                    entry.arrival_cycle = self.clock;
                    self.devices[di].xbars[e_link]
                        .rsp
                        .push(entry)
                        .expect("fullness checked");
                    moved += 1;
                }
            }
        }
    }

    /// The crossbar half of stage 5 for one vault: commit the egress
    /// plan computed by [`crate::engine::plan_vault_drain`], moving up to
    /// one plan's worth of responses from the vault response queue into
    /// crossbar response queues. Crossbar capacity is checked here, at
    /// commit time, in root-first device order — exactly where and when
    /// the serial engine checked it.
    pub(crate) fn commit_vault_drain(&mut self, di: usize, vi: usize, plan: &[Option<LinkId>]) {
        let dev_id = di as CubeId;
        for &egress in plan {
            let Some(e_link) = egress else {
                // Unreachable host: retire the response as misrouted.
                let Some(entry) = self.devices[di].vaults[vi].rsp.pop() else {
                    break;
                };
                self.emit(TraceEvent::Misroute {
                    cube: dev_id,
                    link: entry.arrival_link,
                    dest_cube: entry.dest_cube,
                    tag: entry.packet.tag(),
                });
                continue;
            };
            let e_link = e_link as usize;
            // Buffered NoC fabrics carry cross-quad responses through the
            // vault's quad segment; same-quad responses (and everything
            // under the crossbar fabric) push directly.
            let vault_quad = Quad::of_vault(vi as VaultId);
            let via_noc =
                (e_link as QuadId) != vault_quad && self.devices[di].noc.is_some();
            if via_noc {
                if !self
                    .devices[di]
                    .noc
                    .as_ref()
                    .expect("via_noc")
                    .has_room(vault_quad, NocClass::Response)
                {
                    let tag = self.devices[di].vaults[vi]
                        .rsp
                        .front()
                        .map(|e| e.packet.tag())
                        .unwrap_or(0);
                    self.stats.noc_stalls += 1;
                    self.emit(TraceEvent::NocStall {
                        cube: dev_id,
                        quad: vault_quad,
                        tag,
                    });
                    break; // FIFO head-of-line: keep response order
                }
                let Some(entry) = self.devices[di].vaults[vi].rsp.pop() else {
                    break;
                };
                let clock = self.clock;
                self.devices[di].noc.as_mut().expect("via_noc").inject(
                    vault_quad,
                    NocDest::ToLink(e_link as LinkId),
                    entry,
                    clock,
                );
                continue;
            }
            if self.devices[di].xbars[e_link].rsp.is_full() {
                let tag = self.devices[di].vaults[vi]
                    .rsp
                    .front()
                    .map(|e| e.packet.tag())
                    .unwrap_or(0);
                self.emit(TraceEvent::XbarRspStall {
                    cube: dev_id,
                    link: e_link as LinkId,
                    tag,
                });
                break; // FIFO head-of-line: keep response order
            }
            let Some(mut entry) = self.devices[di].vaults[vi].rsp.pop() else {
                break;
            };
            entry.arrival_cycle = self.clock;
            self.devices[di].xbars[e_link]
                .rsp
                .push(entry)
                .expect("fullness checked");
        }
    }

    /// The NoC sub-stage: advance each buffered fabric one segment step,
    /// delivering arrived cross-quad requests into vault request queues
    /// and arrived cross-quad responses into egress crossbar response
    /// queues. Runs on the main thread between stage 2 and the vault
    /// phase in both the serial and sharded engines — NoC state never
    /// crosses a thread boundary, so every thread count is bit-identical
    /// by construction. No-op (one branch) under the crossbar fabric.
    // The delivery closures echo `PacketQueue::push`'s refused-entry
    // return, which carries the same large-variant trade-off.
    #[allow(clippy::result_large_err)]
    pub(crate) fn noc_advance(&mut self, di: usize) {
        let dev_id = di as CubeId;
        let clock = self.clock;
        let record_hops = self.tracer.enabled(EventKind::NocHop);
        let record_stalls = self.tracer.enabled(EventKind::NocStall);
        let crate::device::Device {
            noc, vaults, xbars, ..
        } = &mut self.devices[di];
        let Some(noc) = noc.as_mut() else {
            return;
        };
        let delta = noc.advance(
            clock,
            |v, e| vaults[v as usize].rqst.push(e),
            |l, e| xbars[l as usize].rsp.push(e),
            record_hops,
            record_stalls,
        );
        self.stats.noc_hops += delta.hops;
        self.stats.noc_stalls += delta.stalls;
        self.stats.noc_arb_losses += delta.arb_losses;
        if record_hops || record_stalls {
            while let Some(ev) = self
                .devices[di]
                .noc
                .as_mut()
                .expect("checked above")
                .pop_event()
            {
                match ev {
                    NocEvent::Hop {
                        from_quad,
                        to_quad,
                        tag,
                    } => self.emit(TraceEvent::NocHop {
                        cube: dev_id,
                        from_quad,
                        to_quad,
                        tag,
                    }),
                    NocEvent::Stall { quad, tag } => self.emit(TraceEvent::NocStall {
                        cube: dev_id,
                        quad,
                        tag,
                    }),
                }
            }
        }
    }

    // ----------------------------------------------------------- helpers

    /// Count an error response in the device's global error register
    /// (RO from the host's perspective; updated device-side).
    fn bump_error_register(&mut self, di: usize) {
        self.bump_error_register_by(di, 1);
    }

    /// Apply `n` error-register increments at once (the sharded engine
    /// stages per-device counts during the vault phase; saturating adds
    /// commute, so a single add of the staged count is exact).
    pub(crate) fn bump_error_register_by(&mut self, di: usize, n: u64) {
        use crate::register::regs;
        let count = self.devices[di].registers.read(regs::ERR).unwrap_or(0);
        let _ = self.devices[di]
            .registers
            .set_internal(regs::ERR, count.saturating_add(n));
    }

    /// Return link-layer flow-control tokens when a packet retires from a
    /// host link's crossbar queue.
    fn return_link_tokens(&mut self, di: usize, l: usize, flits: u32) {
        let is_host = self.devices[di].links[l].is_host_link();
        self.devices[di].links[l].return_tokens(flits);
        if is_host && self.tracer.enabled(EventKind::TokenReturn) {
            self.emit(TraceEvent::TokenReturn {
                cube: di as CubeId,
                link: l as LinkId,
                tokens: flits as u8,
            });
        }
    }

    /// Retire a flow-control packet at the crossbar (§IV requirement 5:
    /// all packet variations are supported).
    fn process_flow_packet(&mut self, di: usize, l: usize, cmd: Command, entry: &QueueEntry) {
        match cmd {
            Command::Tret | Command::Pret => {
                let rtc = entry.packet.rtc() as u32;
                self.devices[di].links[l].return_tokens(rtc);
                self.emit(TraceEvent::TokenReturn {
                    cube: di as CubeId,
                    link: l as LinkId,
                    tokens: entry.packet.rtc(),
                });
            }
            // NULL packets are discarded; IRTRY retires link retry state,
            // which this model treats as a no-op.
            _ => {}
        }
    }

    /// Execute an in-band MODE_READ / MODE_WRITE register access at the
    /// crossbar logic layer and enqueue the response (§V.D).
    fn execute_mode_access(&mut self, di: usize, l: usize, cmd: Command, entry: QueueEntry) {
        let dev_id = di as CubeId;
        let reg = entry.packet.addr() as u32;
        let tag = entry.packet.tag();
        let slid = entry.packet.slid();
        let write = cmd == Command::ModeWrite;

        let result: Result<Packet, ResponseStatus> = if write {
            let value = entry.packet.data_words().first().copied().unwrap_or(0);
            match self.devices[di].registers.write(reg, value) {
                Ok(()) => Ok(Packet::response(
                    Command::ModeWriteResponse,
                    tag,
                    slid,
                    ResponseStatus::Ok,
                    &[],
                )
                .expect("mode write response construction cannot fail")),
                Err(hmc_types::HmcError::RegisterAccess(msg)) if msg.contains("read-only") => {
                    Err(ResponseStatus::CommandError)
                }
                Err(_) => Err(ResponseStatus::AddressError),
            }
        } else {
            match self.devices[di].registers.read(reg) {
                Ok(v) => {
                    let mut data = [0u8; 16];
                    data[..8].copy_from_slice(&v.to_le_bytes());
                    Ok(Packet::response(
                        Command::ModeReadResponse,
                        tag,
                        slid,
                        ResponseStatus::Ok,
                        &data,
                    )
                    .expect("mode read response construction cannot fail"))
                }
                Err(_) => Err(ResponseStatus::AddressError),
            }
        };

        self.emit(TraceEvent::ModeAccess {
            cube: dev_id,
            reg,
            write,
            tag,
        });

        let packet = match result {
            Ok(p) => p,
            Err(status) => {
                self.emit(TraceEvent::ErrorResponse {
                    cube: dev_id,
                    tag,
                    status: status.encode(),
                });
                Packet::response(Command::ErrorResponse, tag, slid, status, &[])
                    .expect("error response construction cannot fail")
            }
        };
        let mut resp = QueueEntry::new(packet, dev_id, entry.src_cube, self.clock);
        resp.entry_cycle = entry.entry_cycle;
        resp.arrival_link = entry.arrival_link;
        self.devices[di].xbars[l]
            .rsp
            .push(resp)
            .expect("response slot checked by caller");
    }

    /// Generate an error response for a request that failed at the
    /// crossbar (bad command, bad address, misroute, zombie). Posted
    /// requests fail silently; full response queues drop the error (the
    /// condition is still traced).
    fn xbar_error_response(
        &mut self,
        di: usize,
        l: usize,
        entry: QueueEntry,
        status: ResponseStatus,
    ) {
        let posted = entry.packet.cmd().map(|c| c.is_posted()).unwrap_or(false);
        let tag = entry.packet.tag();
        self.emit(TraceEvent::ErrorResponse {
            cube: di as CubeId,
            tag,
            status: status.encode(),
        });
        self.bump_error_register(di);
        if posted {
            return;
        }
        let packet = Packet::response(
            Command::ErrorResponse,
            tag,
            entry.packet.slid(),
            status,
            &[],
        )
        .expect("error response construction cannot fail");
        let mut resp = QueueEntry::new(packet, di as CubeId, entry.src_cube, self.clock);
        resp.entry_cycle = entry.entry_cycle;
        resp.arrival_link = entry.arrival_link;
        // Best effort: if the response queue is full the error is dropped;
        // the trace event above still records the failure.
        let _ = self.devices[di].xbars[l].rsp.push(resp);
    }

    /// Generate the poisoned response for a request that exhausted the
    /// link-retry protocol. Unlike [`Self::xbar_error_response`] this
    /// path never drops: the caller verified a response slot is free
    /// before retiring the request, so every non-posted request ends in
    /// exactly one clean or poisoned response. Posted requests fail
    /// silently (they carry no response by definition).
    fn poison_response(&mut self, di: usize, l: usize, entry: QueueEntry) {
        let posted = entry.packet.cmd().map(|c| c.is_posted()).unwrap_or(false);
        let tag = entry.packet.tag();
        self.bump_error_register(di);
        if posted {
            return;
        }
        self.emit(TraceEvent::PoisonedResponse {
            cube: di as CubeId,
            link: l as LinkId,
            tag,
        });
        self.stats.poisoned_responses += 1;
        let packet = Packet::response(
            Command::ErrorResponse,
            tag,
            entry.packet.slid(),
            ResponseStatus::LinkPoisoned,
            &[],
        )
        .expect("poisoned response construction cannot fail");
        let mut resp = QueueEntry::new(packet, di as CubeId, entry.src_cube, self.clock);
        resp.entry_cycle = entry.entry_cycle;
        resp.arrival_link = entry.arrival_link;
        self.devices[di].xbars[l]
            .rsp
            .push(resp)
            .expect("poison slot checked by caller");
    }
}
