//! Quad units.
//!
//! "Quad units map directly to the notion of a quadrant, or locality domain
//! on an HMC device. Each quad unit is closely related to four vaults in
//! both four and eight link configurations. Each quad unit also contains a
//! pointer to the closest vault unit structures" (paper §IV.A). The Rust
//! port replaces pointers with vault indices into the device's contiguous
//! vault block.

use hmc_types::config::VAULTS_PER_QUAD;
use hmc_types::{QuadId, VaultId};

/// A locality domain of four vaults, co-located with one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quad {
    /// Quad index (equals the closest link's index).
    pub id: QuadId,
    /// The four vaults this quad owns: `4*id .. 4*id+4`.
    pub vaults: [VaultId; VAULTS_PER_QUAD as usize],
}

impl Quad {
    /// Build quad `id` with its canonical vault block.
    pub fn new(id: QuadId) -> Self {
        let base = id as VaultId * VAULTS_PER_QUAD;
        Quad {
            id,
            vaults: [base, base + 1, base + 2, base + 3],
        }
    }

    /// True if `vault` belongs to this quad.
    pub fn owns(&self, vault: VaultId) -> bool {
        self.vaults.contains(&vault)
    }

    /// The quad that owns `vault` on any device.
    pub fn of_vault(vault: VaultId) -> QuadId {
        (vault / VAULTS_PER_QUAD) as QuadId
    }

    /// The contiguous flat-index range of this quad's vaults, for walks
    /// that scan a device quad by quad (e.g. the fast-forward quiescence
    /// horizon) while preserving flat vault order.
    pub fn vault_range(&self) -> std::ops::Range<usize> {
        let base = self.vaults[0] as usize;
        base..base + VAULTS_PER_QUAD as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quads_own_contiguous_vault_blocks() {
        let q0 = Quad::new(0);
        assert_eq!(q0.vaults, [0, 1, 2, 3]);
        let q3 = Quad::new(3);
        assert_eq!(q3.vaults, [12, 13, 14, 15]);
        let q7 = Quad::new(7);
        assert_eq!(q7.vaults, [28, 29, 30, 31]);
    }

    #[test]
    fn ownership_queries() {
        let q2 = Quad::new(2);
        assert!(q2.owns(8));
        assert!(q2.owns(11));
        assert!(!q2.owns(12));
        assert!(!q2.owns(7));
    }

    #[test]
    fn vault_ranges_tile_the_flat_index() {
        let mut next = 0usize;
        for quad in 0..8u8 {
            let r = Quad::new(quad).vault_range();
            assert_eq!(r.start, next, "ranges are contiguous");
            assert_eq!(r.len(), VAULTS_PER_QUAD as usize);
            next = r.end;
        }
        assert_eq!(next, 32);
    }

    #[test]
    fn vault_to_quad_inverse() {
        for quad in 0..8u8 {
            let q = Quad::new(quad);
            for v in q.vaults {
                assert_eq!(Quad::of_vault(v), quad);
            }
        }
    }
}
