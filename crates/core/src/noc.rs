//! Intra-cube network-on-chip between quad segments.
//!
//! The paper's logic layer is an idealized full crossbar: stage 2 hands a
//! request from any link directly to any vault queue in one sub-cycle,
//! and stage 5 hands vault responses straight back to any egress
//! crossbar. Hadidi et al. (PAPERS.md) show the intra-HMC network often
//! bounds real cube performance, so this module generalizes that hop
//! into a configurable fabric: packets whose arrival quad differs from
//! their destination quad traverse per-quad bounded segment buffers, one
//! quad-to-quad hop per cycle, under a pluggable arbitration policy.
//!
//! # Model
//!
//! * The **crossbar** fabric is the absence of NoC state
//!   ([`NocState::new`] returns `None`): the engine's original direct
//!   push paths run untouched, keeping the default bit-identical to the
//!   pre-NoC engine by construction.
//! * **Ring** and **mesh** fabrics instantiate one bounded FIFO buffer
//!   per quad *per traffic class* ([`NocClass`]): requests and
//!   responses ride separate virtual-channel planes. Stage 2 injects
//!   cross-quad requests at the arrival link's quad; stage 5 injects
//!   cross-quad responses at the vault's quad. A dedicated serial
//!   sub-stage ([`NocState::advance`], run between stage 2 and the
//!   vault phase) moves each buffered packet at most one segment per
//!   cycle toward its destination quad, then delivers it into the vault
//!   request queue (requests) or egress crossbar response queue
//!   (responses) once it arrives.
//! * Routing is deterministic and minimal per fabric ([`Interconnect`]),
//!   so a (source quad, destination) pair always takes the same path.
//!   Combined with per-destination FIFO order inside every buffer (an
//!   entry may not overtake an earlier entry bound for the same
//!   destination), per-stream packet order is preserved end to end —
//!   the property the conformance oracle checks.
//! * Arbitration ([`ArbitrationKind`]) decides which buffered packets
//!   move when more want to than the per-quad drain budget allows;
//!   losers are counted in `SimStats::noc_arb_losses`. Full segment or
//!   delivery queues stall the packet in place (`noc_stalls`,
//!   `NocStall` trace events); successful segment crossings count as
//!   hops (`noc_hops`, `NocHop` events).
//!
//! # Deadlock freedom
//!
//! Two mechanisms make the buffered fabrics deadlock-free under any
//! closed-loop load, as long as the host drains its responses:
//!
//! 1. **Virtual-channel planes.** Requests and responses never share a
//!    buffer, so the classic request–reply protocol deadlock (full
//!    buffers block response injection, vault response queues fill,
//!    vaults stall, vault request queues fill, request deliveries
//!    stall — a closed cycle) cannot form. The dependency chain is
//!    acyclic: request plane → vault → response plane → egress
//!    crossbar → host.
//! 2. **Cycle rotation.** Within one plane, through-traffic can still
//!    fill a cycle of segment buffers end to end (trivially the whole
//!    ring; a pair of interior mesh quads exchanging opposite-direction
//!    streams). When an entire advance pass moves nothing in a plane
//!    yet packets sit stalled on full segment buffers, the blocked
//!    packets necessarily contain such a cycle, and
//!    [`NocState::advance`] rotates it one step: every member packet
//!    simultaneously takes the slot its successor vacates, so progress
//!    resumes without any buffer ever exceeding its depth. A rotated
//!    packet logs both the stall it suffered and the hop the rotation
//!    granted in the same cycle.
//!
//! Because all NoC state lives on the [`crate::Device`] and the advance
//! sub-stage runs on the main thread in both the serial and sharded
//! engines, determinism across thread counts holds by construction. The
//! fast-forward engine treats any non-empty NoC as live: the quiescent
//! horizon collapses to zero while packets are in flight between quads.

use std::collections::VecDeque;

use hmc_types::{ArbitrationKind, Cycle, InterconnectKind, LinkId, QuadId, VaultId};

use crate::quad::Quad;
use crate::queue::QueueEntry;

/// Routing contract a non-crossbar fabric implements: a deterministic,
/// loop-free, minimal next-hop function over quad segments.
///
/// Implementations must satisfy, for every `from != dest`:
///
/// * progress: following `next_hop` repeatedly reaches `dest` in exactly
///   `hops(from, dest)` steps (no loops, no dead ends);
/// * minimality: `hops` is the shortest segment distance the fabric's
///   wiring admits;
/// * determinism: the path depends only on `(from, dest)`, never on
///   buffer occupancy — required for per-stream order preservation.
pub trait Interconnect {
    /// Number of quad segments in the fabric.
    fn num_quads(&self) -> u8;

    /// The quad one segment closer to `dest` from `from`.
    ///
    /// Must not be called with `from == dest` (a delivered packet has no
    /// next hop); implementations may panic on that input.
    fn next_hop(&self, from: QuadId, dest: QuadId) -> QuadId;

    /// Total quad-to-quad segments on the route from `from` to `dest`
    /// (zero when they are equal).
    fn hops(&self, from: QuadId, dest: QuadId) -> u32;
}

/// Unidirectional ring of quad segments: quad `q` forwards only to
/// `(q + 1) mod Q`, so the distance from `p` to `q` is `(q - p) mod Q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingTopology {
    quads: u8,
}

impl RingTopology {
    /// A ring over `quads` segments (at least one).
    pub fn new(quads: u8) -> RingTopology {
        assert!(quads >= 1, "ring needs at least one quad");
        RingTopology { quads }
    }
}

impl Interconnect for RingTopology {
    fn num_quads(&self) -> u8 {
        self.quads
    }

    fn next_hop(&self, from: QuadId, dest: QuadId) -> QuadId {
        debug_assert_ne!(from, dest, "delivered packets have no next hop");
        (from + 1) % self.quads
    }

    fn hops(&self, from: QuadId, dest: QuadId) -> u32 {
        let q = self.quads as u32;
        (dest as u32 + q - from as u32) % q
    }
}

/// 2D mesh of quad segments with deterministic XY routing: packets
/// correct their column first, then their row, taking minimal
/// Manhattan-distance hops. Quad `q` sits at row `q / cols`, column
/// `q % cols`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshTopology {
    rows: u8,
    cols: u8,
}

impl MeshTopology {
    /// A mesh with the given geometry (`rows * cols` quads, both ≥ 1).
    pub fn new(rows: u8, cols: u8) -> MeshTopology {
        assert!(rows >= 1 && cols >= 1, "mesh needs at least one quad");
        MeshTopology { rows, cols }
    }

    /// The canonical geometry for a device with `quads` quad units: two
    /// rows when that divides evenly with at least two columns (2×2 for
    /// four quads, 2×4 for eight), otherwise a 1×Q degenerate line.
    pub fn for_quads(quads: u8) -> MeshTopology {
        if quads >= 4 && quads.is_multiple_of(2) {
            MeshTopology::new(2, quads / 2)
        } else {
            MeshTopology::new(1, quads)
        }
    }

    fn coords(&self, q: QuadId) -> (u8, u8) {
        (q / self.cols, q % self.cols)
    }
}

impl Interconnect for MeshTopology {
    fn num_quads(&self) -> u8 {
        self.rows * self.cols
    }

    fn next_hop(&self, from: QuadId, dest: QuadId) -> QuadId {
        debug_assert_ne!(from, dest, "delivered packets have no next hop");
        let (fr, fc) = self.coords(from);
        let (_, dc) = self.coords(dest);
        if fc != dc {
            // X first: step along the row toward the destination column.
            let nc = if dc > fc { fc + 1 } else { fc - 1 };
            fr * self.cols + nc
        } else {
            // Column correct: step along the column toward the row.
            let (dr, _) = self.coords(dest);
            let nr = if dr > fr { fr + 1 } else { fr - 1 };
            nr * self.cols + fc
        }
    }

    fn hops(&self, from: QuadId, dest: QuadId) -> u32 {
        let (fr, fc) = self.coords(from);
        let (dr, dc) = self.coords(dest);
        (fr.abs_diff(dr) + fc.abs_diff(dc)) as u32
    }
}

/// Runtime fabric dispatch for the two buffered topologies (the crossbar
/// has no `NocState` at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Unidirectional ring.
    Ring(RingTopology),
    /// 2D mesh with XY routing.
    Mesh(MeshTopology),
}

impl Interconnect for Topology {
    fn num_quads(&self) -> u8 {
        match self {
            Topology::Ring(t) => t.num_quads(),
            Topology::Mesh(t) => t.num_quads(),
        }
    }

    fn next_hop(&self, from: QuadId, dest: QuadId) -> QuadId {
        match self {
            Topology::Ring(t) => t.next_hop(from, dest),
            Topology::Mesh(t) => t.next_hop(from, dest),
        }
    }

    fn hops(&self, from: QuadId, dest: QuadId) -> u32 {
        match self {
            Topology::Ring(t) => t.hops(from, dest),
            Topology::Mesh(t) => t.hops(from, dest),
        }
    }
}

/// Interconnect scenario parameters, carried in
/// [`crate::SimParams::interconnect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocParams {
    /// Which fabric carries cross-quad packets.
    pub kind: InterconnectKind,
    /// How a quad segment orders its buffered packets.
    pub arbitration: ArbitrationKind,
    /// Capacity of each per-quad segment buffer (ring/mesh only).
    pub buffer_depth: u16,
    /// Packets a quad segment may move (forward or deliver) per cycle.
    pub quad_drain: u16,
}

impl Default for NocParams {
    fn default() -> NocParams {
        NocParams {
            kind: InterconnectKind::Crossbar,
            arbitration: ArbitrationKind::RoundRobin,
            buffer_depth: 16,
            quad_drain: 4,
        }
    }
}

impl NocParams {
    /// Parameters for `kind` with the default arbitration, depth, and
    /// drain budget.
    pub fn of(kind: InterconnectKind) -> NocParams {
        NocParams {
            kind,
            ..NocParams::default()
        }
    }

    /// Same parameters with a different arbitration policy.
    pub fn with_arbitration(mut self, arbitration: ArbitrationKind) -> NocParams {
        self.arbitration = arbitration;
        self
    }
}

/// Traffic class of a buffered packet. Each class rides its own
/// virtual-channel plane of segment buffers so that response delivery
/// can never be starved by request congestion — the separation that
/// rules out request–reply protocol deadlock (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocClass {
    /// Host requests heading to a vault ([`NocDest::ToVault`]).
    Request,
    /// Vault responses heading to an egress link ([`NocDest::ToLink`]).
    Response,
}

impl NocClass {
    /// Both planes, in the order [`NocState::advance`] processes them.
    pub const ALL: [NocClass; 2] = [NocClass::Request, NocClass::Response];

    fn index(self) -> usize {
        match self {
            NocClass::Request => 0,
            NocClass::Response => 1,
        }
    }
}

/// Where a buffered packet is ultimately headed within the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocDest {
    /// A request bound for a vault's request queue.
    ToVault(VaultId),
    /// A response bound for an egress crossbar's response queue.
    ToLink(LinkId),
}

impl NocDest {
    /// The virtual-channel plane this destination's traffic rides.
    pub fn class(self) -> NocClass {
        match self {
            NocDest::ToVault(_) => NocClass::Request,
            NocDest::ToLink(_) => NocClass::Response,
        }
    }

    /// The quad segment hosting the destination (quad id == link index;
    /// vaults map through [`Quad::of_vault`]).
    pub fn quad(self) -> QuadId {
        match self {
            NocDest::ToVault(v) => Quad::of_vault(v),
            NocDest::ToLink(l) => l,
        }
    }

    /// A dense small index for per-destination order bookkeeping:
    /// vaults first, then links after `num_vaults`.
    fn order_key(self, num_vaults: u16) -> u32 {
        match self {
            NocDest::ToVault(v) => v as u32,
            NocDest::ToLink(l) => num_vaults as u32 + l as u32,
        }
    }
}

/// One packet in flight between quads.
#[derive(Debug, Clone)]
pub struct NocEntry {
    /// The queued packet, exactly as the crossbar paths carry it.
    pub entry: QueueEntry,
    /// Final destination within the device.
    pub dest: NocDest,
    /// Clock of the last segment move (or injection): a packet whose
    /// `moved_at` equals the current clock already took its hop this
    /// cycle and waits for the next edge — the NoC's copy of the
    /// engine's one-stage-per-sub-cycle rule.
    pub moved_at: Cycle,
}

/// Per-cycle counter deltas from one [`NocState::advance`] call, merged
/// into `SimStats` by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocDelta {
    /// Successful quad-to-quad segment crossings.
    pub hops: u64,
    /// Packets held in place by a full segment buffer or a full
    /// delivery queue.
    pub stalls: u64,
    /// Packets that were free to move but lost arbitration (drain
    /// budget exhausted).
    pub arb_losses: u64,
}

/// A trace-worthy occurrence staged during [`NocState::advance`]; the
/// engine drains these into full `TraceEvent`s (the NoC itself does not
/// know its cube id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocEvent {
    /// A packet crossed one segment.
    Hop {
        /// Segment it left.
        from_quad: QuadId,
        /// Segment it entered.
        to_quad: QuadId,
        /// Packet tag.
        tag: u16,
    },
    /// A packet could not move into a full segment or delivery queue.
    Stall {
        /// Segment holding the packet.
        quad: QuadId,
        /// Packet tag.
        tag: u16,
    },
}

/// Buffered-fabric state for one device: per-quad, per-class segment
/// FIFOs plus arbitration bookkeeping. Lives as `Device::noc`; `None`
/// there means the crossbar fabric (no buffering, original engine
/// paths).
#[derive(Debug)]
pub struct NocState {
    topology: Topology,
    arbitration: ArbitrationKind,
    buffer_depth: usize,
    quad_drain: usize,
    num_vaults: u16,
    num_quads: usize,
    /// One bounded FIFO per quad segment per traffic class, plane-major
    /// (`class.index() * num_quads + quad`), preallocated to
    /// `buffer_depth` so the steady state never allocates.
    buffers: Vec<VecDeque<NocEntry>>,
    /// Round-robin scan origin per buffer (pre-compaction index space).
    rr_next: Vec<usize>,
    /// Scratch: candidate scan order for one quad (indices).
    scratch_order: Vec<u32>,
    /// Scratch: positions moved out of the current quad this cycle.
    scratch_moved: Vec<u32>,
    /// Events staged by `advance`, drained by the engine afterwards.
    events: Vec<NocEvent>,
}

impl NocState {
    /// Build fabric state for a device with `num_quads` quad segments
    /// and `num_vaults` vaults. Returns `None` for the crossbar fabric:
    /// its absence *is* the crossbar, leaving the engine's direct push
    /// paths (and their bit-exact behaviour) untouched.
    pub fn new(params: &NocParams, num_quads: u8, num_vaults: u16) -> Option<NocState> {
        let topology = match params.kind {
            InterconnectKind::Crossbar => return None,
            InterconnectKind::Ring => Topology::Ring(RingTopology::new(num_quads)),
            InterconnectKind::Mesh => Topology::Mesh(MeshTopology::for_quads(num_quads)),
        };
        let depth = (params.buffer_depth as usize).max(1);
        Some(NocState {
            topology,
            arbitration: params.arbitration,
            buffer_depth: depth,
            quad_drain: (params.quad_drain as usize).max(1),
            num_vaults,
            num_quads: num_quads as usize,
            buffers: (0..2 * num_quads as usize)
                .map(|_| VecDeque::with_capacity(depth))
                .collect(),
            rr_next: vec![0; 2 * num_quads as usize],
            scratch_order: Vec::with_capacity(depth),
            scratch_moved: Vec::with_capacity(depth),
            events: Vec::new(),
        })
    }

    /// The fabric this state implements.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The arbitration policy in force.
    pub fn arbitration(&self) -> ArbitrationKind {
        self.arbitration
    }

    /// Total packets currently buffered between quads. Non-zero means
    /// the device is live: drain loops must keep clocking and the
    /// fast-forward horizon must collapse to zero.
    pub fn occupancy(&self) -> usize {
        self.buffers.iter().map(|b| b.len()).sum()
    }

    /// Drop all in-flight packets and bookkeeping (device reset).
    pub fn clear(&mut self) {
        for b in &mut self.buffers {
            b.clear();
        }
        for r in &mut self.rr_next {
            *r = 0;
        }
        self.events.clear();
    }

    /// Whether quad `q`'s segment buffer for `class` traffic can accept
    /// another injection.
    pub fn has_room(&self, quad: QuadId, class: NocClass) -> bool {
        self.buffers[class.index() * self.num_quads + quad as usize].len() < self.buffer_depth
    }

    /// Inject a packet at `quad` bound for `dest`, onto the plane of
    /// `dest`'s traffic class. The caller must have checked
    /// [`NocState::has_room`]; the packet may first move at the next
    /// clock edge (`moved_at = clock`).
    pub fn inject(&mut self, quad: QuadId, dest: NocDest, entry: QueueEntry, clock: Cycle) {
        debug_assert!(
            self.has_room(quad, dest.class()),
            "caller checks has_room before inject"
        );
        debug_assert_ne!(dest.quad(), quad, "local traffic bypasses the NoC");
        self.buffers[dest.class().index() * self.num_quads + quad as usize].push_back(NocEntry {
            entry,
            dest,
            moved_at: clock,
        });
    }

    /// Pop the next staged trace event, oldest first.
    pub fn pop_event(&mut self) -> Option<NocEvent> {
        if self.events.is_empty() {
            None
        } else {
            Some(self.events.remove(0))
        }
    }

    /// Iterate over every buffered packet (invariant sweeps).
    pub fn entries(&self) -> impl Iterator<Item = &NocEntry> {
        self.buffers.iter().flat_map(|b| b.iter())
    }

    /// Run one NoC sub-cycle. For each virtual-channel plane (requests,
    /// then responses) and each quad segment in index order, move up to
    /// `quad_drain` packets one step — forwarding to the next segment
    /// on their route, or delivering packets that have reached their
    /// destination quad through `deliver_vault` / `deliver_link` (each
    /// returns the packet back on a full target queue). Each plane has
    /// its own drain budget per quad, modelling separate physical
    /// channels.
    ///
    /// Per-destination FIFO order is enforced: a packet may move only if
    /// no earlier-positioned packet with the same destination is still
    /// in its buffer. With deterministic routing this preserves global
    /// per-stream order regardless of arbitration policy.
    ///
    /// If a plane's pass moves nothing while packets sit stalled on
    /// full segment buffers, the cycle-rotation escape runs (see the
    /// module docs) so a plane full of through-traffic can never wedge.
    ///
    /// `record_hops` / `record_stalls` gate event staging so disabled
    /// tracers pay nothing; counter deltas are always returned.
    pub fn advance<FV, FL>(
        &mut self,
        clock: Cycle,
        mut deliver_vault: FV,
        mut deliver_link: FL,
        record_hops: bool,
        record_stalls: bool,
    ) -> NocDelta
    where
        FV: FnMut(VaultId, QueueEntry) -> Result<(), QueueEntry>,
        FL: FnMut(LinkId, QueueEntry) -> Result<(), QueueEntry>,
    {
        let mut delta = NocDelta::default();
        let num_quads = self.num_quads;
        for class in NocClass::ALL {
            let base = class.index() * num_quads;
            let mut plane_moves = 0u64;
            let mut plane_fwd_stalls = 0u64;
            for q in 0..num_quads {
                let bi = base + q;
                let len = self.buffers[bi].len();
                if len == 0 {
                    continue;
                }
                self.build_scan_order(bi, len, q as QuadId);
                let order = std::mem::take(&mut self.scratch_order);
                let mut moved = std::mem::take(&mut self.scratch_moved);
                moved.clear();
                let mut budget = self.quad_drain;
                let mut last_winner: Option<u32> = None;
                for &iu in order.iter() {
                    let i = iu as usize;
                    let (dest, moved_at, tag) = {
                        let e = &self.buffers[bi][i];
                        (e.dest, e.moved_at, e.entry.packet.tag())
                    };
                    // One segment per cycle: skip packets that hopped
                    // into this buffer during this very advance call
                    // (or were injected this cycle).
                    if moved_at >= clock {
                        continue;
                    }
                    // Per-destination FIFO: an earlier same-destination
                    // packet still present holds this one in place.
                    let key = dest.order_key(self.num_vaults);
                    let held = (0..i).any(|j| {
                        !moved.contains(&(j as u32))
                            && self.buffers[bi][j].dest.order_key(self.num_vaults) == key
                    });
                    if held {
                        continue;
                    }
                    if budget == 0 {
                        delta.arb_losses += 1;
                        continue;
                    }
                    let dest_quad = dest.quad();
                    if dest_quad == q as QuadId {
                        // Arrived: deliver into the vault request queue
                        // or the egress crossbar response queue.
                        let mut e = self.buffers[bi][i].entry.clone();
                        e.arrival_cycle = clock;
                        let res = match dest {
                            NocDest::ToVault(v) => deliver_vault(v, e),
                            NocDest::ToLink(l) => deliver_link(l, e),
                        };
                        match res {
                            Ok(()) => {
                                budget -= 1;
                                moved.push(iu);
                                last_winner = Some(iu);
                                plane_moves += 1;
                            }
                            Err(_) => {
                                delta.stalls += 1;
                                if record_stalls {
                                    self.events.push(NocEvent::Stall {
                                        quad: q as QuadId,
                                        tag,
                                    });
                                }
                            }
                        }
                    } else {
                        let next = self.topology.next_hop(q as QuadId, dest_quad) as usize;
                        debug_assert_ne!(next, q, "next_hop must make progress");
                        if self.buffers[base + next].len() >= self.buffer_depth {
                            delta.stalls += 1;
                            plane_fwd_stalls += 1;
                            if record_stalls {
                                self.events.push(NocEvent::Stall {
                                    quad: q as QuadId,
                                    tag,
                                });
                            }
                            continue;
                        }
                        let mut e = self.buffers[bi][i].clone();
                        e.moved_at = clock;
                        self.buffers[base + next].push_back(e);
                        budget -= 1;
                        moved.push(iu);
                        last_winner = Some(iu);
                        plane_moves += 1;
                        delta.hops += 1;
                        if record_hops {
                            self.events.push(NocEvent::Hop {
                                from_quad: q as QuadId,
                                to_quad: next as QuadId,
                                tag,
                            });
                        }
                    }
                }
                // Compact the quad's buffer, highest index first so
                // earlier removals do not shift later ones, so
                // subsequent quads see true occupancy when forwarding
                // into this buffer.
                moved.sort_unstable();
                for &iu in moved.iter().rev() {
                    self.buffers[bi].remove(iu as usize);
                }
                if let Some(w) = last_winner {
                    self.rr_next[bi] = (w as usize + 1) % len.max(1);
                }
                self.scratch_order = order;
                self.scratch_moved = moved;
            }
            if plane_moves == 0 && plane_fwd_stalls > 0 {
                delta.hops += self.rotate(class, clock, record_hops);
            }
        }
        delta
    }

    /// Deadlock escape for one virtual-channel plane (see the module
    /// docs): when an entire advance pass moved nothing in the plane
    /// yet packets were stalled on full segment buffers, every chain of
    /// full-buffer waits over the finitely many quads either reaches a
    /// buffer whose movable packets all wait on delivery queues (engine
    /// backpressure, resolved outside the fabric) or closes on itself.
    /// Each closed cycle found is rotated one step: every member packet
    /// simultaneously takes the slot its successor vacates, so no
    /// buffer ever exceeds `buffer_depth`. Returns the hops taken.
    fn rotate(&mut self, class: NocClass, clock: Cycle, record_hops: bool) -> u64 {
        let nq = self.num_quads;
        let base = class.index() * nq;
        // The packet each quad would move if its next segment had room:
        // the first (index order) entry that is aged, not FIFO-held,
        // and not yet at its destination quad. In a zero-move pass such
        // an entry is necessarily stalled on a full next buffer.
        let mut cand: Vec<Option<(usize, QuadId)>> = vec![None; nq];
        for (q, slot) in cand.iter_mut().enumerate() {
            let b = &self.buffers[base + q];
            for i in 0..b.len() {
                let e = &b[i];
                if e.moved_at >= clock {
                    continue;
                }
                let dest_quad = e.dest.quad();
                if dest_quad == q as QuadId {
                    continue;
                }
                let key = e.dest.order_key(self.num_vaults);
                if (0..i).any(|j| b[j].dest.order_key(self.num_vaults) == key) {
                    continue;
                }
                let next = self.topology.next_hop(q as QuadId, dest_quad);
                if self.buffers[base + next as usize].len() >= self.buffer_depth {
                    *slot = Some((i, next));
                }
                break;
            }
        }
        // Walk the wait-for edges quad → next(candidate) to find
        // cycles; rotate each disjoint cycle found once.
        let mut hops = 0u64;
        let mut state = vec![0u8; nq]; // 0 unvisited, 1 on path, 2 done
        for start in 0..nq {
            if state[start] != 0 {
                continue;
            }
            let mut path: Vec<usize> = Vec::new();
            let mut q = start;
            let cycle_head = loop {
                if state[q] == 1 {
                    break Some(q);
                }
                if state[q] == 2 || cand[q].is_none() {
                    break None;
                }
                state[q] = 1;
                path.push(q);
                q = cand[q].expect("checked above").1 as usize;
            };
            if let Some(head) = cycle_head {
                let pos = path.iter().position(|&p| p == head).expect("head is on path");
                let mut moving = Vec::with_capacity(path.len() - pos);
                for &p in &path[pos..] {
                    let (i, next) = cand[p].expect("cycle members have candidates");
                    let mut e = self.buffers[base + p].remove(i).expect("candidate index valid");
                    e.moved_at = clock;
                    moving.push((p, next, e));
                }
                for (p, next, e) in moving {
                    let tag = e.entry.packet.tag();
                    self.buffers[base + next as usize].push_back(e);
                    hops += 1;
                    if record_hops {
                        self.events.push(NocEvent::Hop {
                            from_quad: p as QuadId,
                            to_quad: next,
                            tag,
                        });
                    }
                }
            }
            for &p in &path {
                state[p] = 2;
            }
            if state[q] == 0 {
                state[q] = 2;
            }
        }
        hops
    }

    /// Fill `scratch_order` with the indices of buffer `bi` (quad
    /// `quad`'s segment on one plane) in the order the arbitration
    /// policy scans them.
    fn build_scan_order(&mut self, bi: usize, len: usize, quad: QuadId) {
        self.scratch_order.clear();
        match self.arbitration {
            ArbitrationKind::RoundRobin => {
                let start = self.rr_next[bi] % len;
                for k in 0..len {
                    self.scratch_order.push(((start + k) % len) as u32);
                }
            }
            ArbitrationKind::OldestFirst => {
                self.scratch_order.extend(0..len as u32);
                let buf = &self.buffers[bi];
                self.scratch_order
                    .sort_by_key(|&i| (buf[i as usize].entry.entry_cycle, i));
            }
            ArbitrationKind::LocalityAware => {
                for i in 0..len as u32 {
                    if self.buffers[bi][i as usize].dest.quad() == quad {
                        self.scratch_order.push(i);
                    }
                }
                for i in 0..len as u32 {
                    if self.buffers[bi][i as usize].dest.quad() != quad {
                        self.scratch_order.push(i);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
// Delivery closures echo `PacketQueue::push`'s refused-entry return,
// which carries the same large-variant trade-off.
#[allow(clippy::result_large_err)]
mod tests {
    use super::*;

    #[test]
    fn ring_routes_are_minimal_and_loop_free() {
        for quads in [1u8, 2, 4, 8] {
            let ring = RingTopology::new(quads);
            for from in 0..quads {
                for dest in 0..quads {
                    if from == dest {
                        assert_eq!(ring.hops(from, dest), 0);
                        continue;
                    }
                    let mut cur = from;
                    let mut steps = 0u32;
                    while cur != dest {
                        cur = ring.next_hop(cur, dest);
                        steps += 1;
                        assert!(steps <= quads as u32, "ring path loops");
                    }
                    assert_eq!(steps, ring.hops(from, dest));
                }
            }
        }
    }

    #[test]
    fn mesh_routes_are_minimal_and_loop_free() {
        for quads in [1u8, 2, 4, 6, 8] {
            let mesh = MeshTopology::for_quads(quads);
            assert_eq!(mesh.num_quads(), quads);
            for from in 0..quads {
                for dest in 0..quads {
                    if from == dest {
                        assert_eq!(mesh.hops(from, dest), 0);
                        continue;
                    }
                    let mut cur = from;
                    let mut steps = 0u32;
                    while cur != dest {
                        cur = mesh.next_hop(cur, dest);
                        steps += 1;
                        assert!(steps <= quads as u32, "mesh path loops");
                    }
                    assert_eq!(steps, mesh.hops(from, dest));
                }
            }
        }
    }

    #[test]
    fn mesh_geometry_prefers_two_rows() {
        assert_eq!(MeshTopology::for_quads(4), MeshTopology::new(2, 2));
        assert_eq!(MeshTopology::for_quads(8), MeshTopology::new(2, 4));
        assert_eq!(MeshTopology::for_quads(2), MeshTopology::new(1, 2));
        assert_eq!(MeshTopology::for_quads(3), MeshTopology::new(1, 3));
    }

    #[test]
    fn crossbar_params_build_no_state() {
        assert!(NocState::new(&NocParams::default(), 4, 16).is_none());
        assert!(NocState::new(&NocParams::of(InterconnectKind::Ring), 4, 16).is_some());
        assert!(NocState::new(&NocParams::of(InterconnectKind::Mesh), 4, 16).is_some());
    }

    fn test_entry(tag: u16) -> QueueEntry {
        use hmc_types::{Command, Packet};
        let p =
            Packet::request(Command::Rd(hmc_types::BlockSize::B32), 0, 0, tag, 0, &[]).unwrap();
        QueueEntry::new(p, 9, 0, 0)
    }

    #[test]
    fn ring_packet_hops_toward_its_quad_and_delivers() {
        let params = NocParams::of(InterconnectKind::Ring);
        let mut noc = NocState::new(&params, 4, 16).unwrap();
        // Vault 12 lives in quad 3; inject at quad 0 => three hops.
        assert!(noc.has_room(0, NocClass::Request));
        noc.inject(0, NocDest::ToVault(12), test_entry(7), 0);
        assert_eq!(noc.occupancy(), 1);

        let mut delivered = Vec::new();
        let mut hops = 0u64;
        for clock in 1..=4u64 {
            let d = noc.advance(
                clock,
                |v, e| {
                    delivered.push((v, e.packet.tag()));
                    Ok(())
                },
                |_, _| panic!("no responses in this test"),
                true,
                true,
            );
            hops += d.hops;
            assert_eq!(d.stalls, 0);
            assert_eq!(d.arb_losses, 0);
        }
        assert_eq!(hops, 3);
        assert_eq!(delivered, vec![(12u16, 7u16)]);
        assert_eq!(noc.occupancy(), 0);
        // Three hop events were staged (plus none for the delivery).
        let mut hop_events = 0;
        while let Some(ev) = noc.pop_event() {
            if matches!(ev, NocEvent::Hop { .. }) {
                hop_events += 1;
            }
        }
        assert_eq!(hop_events, 3);
    }

    #[test]
    fn full_delivery_queue_stalls_packet_in_place() {
        let params = NocParams::of(InterconnectKind::Ring);
        let mut noc = NocState::new(&params, 4, 16).unwrap();
        // Quad 1 is one hop from quad 0.
        noc.inject(0, NocDest::ToVault(4), test_entry(1), 0);
        let d = noc.advance(1, |_, _| Ok(()), |_, _| unreachable!(), false, false);
        assert_eq!(d.hops, 1);
        assert_eq!(noc.occupancy(), 1);
        // Delivery refused: the packet stays buffered at its quad.
        let mut refused = |_: VaultId, e: QueueEntry| -> Result<(), QueueEntry> { Err(e) };
        let d = noc.advance(2, &mut refused, |_, _| unreachable!(), false, false);
        assert_eq!(d.stalls, 1);
        assert_eq!(noc.occupancy(), 1);
        // Accept it now.
        let d = noc.advance(3, |_, _| Ok(()), |_, _| unreachable!(), false, false);
        assert_eq!(d.stalls, 0);
        assert_eq!(noc.occupancy(), 0);
        let _ = d;
    }

    #[test]
    fn same_destination_packets_never_reorder() {
        // Two packets to the same vault injected in order must deliver
        // in order under every arbitration policy.
        for arb in ArbitrationKind::ALL {
            let params = NocParams::of(InterconnectKind::Ring).with_arbitration(arb);
            let mut noc = NocState::new(&params, 4, 16).unwrap();
            noc.inject(0, NocDest::ToVault(8), test_entry(1), 0);
            noc.inject(0, NocDest::ToVault(8), test_entry(2), 0);
            let mut delivered = Vec::new();
            for clock in 1..=8u64 {
                noc.advance(
                    clock,
                    |_, e| {
                        delivered.push(e.packet.tag());
                        Ok(())
                    },
                    |_, _| unreachable!(),
                    false,
                    false,
                );
            }
            assert_eq!(delivered, vec![1, 2], "{} reordered", arb.name());
        }
    }

    #[test]
    fn drain_budget_counts_arbitration_losses() {
        let mut params = NocParams::of(InterconnectKind::Ring);
        params.quad_drain = 1;
        let mut noc = NocState::new(&params, 4, 16).unwrap();
        // Three packets to three different vaults in quad 1: one moves,
        // two lose arbitration.
        noc.inject(0, NocDest::ToVault(4), test_entry(1), 0);
        noc.inject(0, NocDest::ToVault(5), test_entry(2), 0);
        noc.inject(0, NocDest::ToVault(6), test_entry(3), 0);
        let d = noc.advance(1, |_, _| unreachable!(), |_, _| unreachable!(), false, false);
        assert_eq!(d.hops, 1);
        assert_eq!(d.arb_losses, 2);
    }

    #[test]
    fn full_segment_buffer_refuses_injection() {
        let mut params = NocParams::of(InterconnectKind::Ring);
        params.buffer_depth = 2;
        let mut noc = NocState::new(&params, 4, 16).unwrap();
        noc.inject(0, NocDest::ToVault(4), test_entry(1), 0);
        noc.inject(0, NocDest::ToVault(5), test_entry(2), 0);
        assert!(!noc.has_room(0, NocClass::Request));
        assert!(noc.has_room(1, NocClass::Request));
        // The response plane is a separate virtual channel: a request
        // plane packed to the brim never blocks response injection.
        assert!(noc.has_room(0, NocClass::Response));
    }

    #[test]
    fn responses_bypass_a_congested_request_plane() {
        let mut params = NocParams::of(InterconnectKind::Ring);
        params.buffer_depth = 2;
        let mut noc = NocState::new(&params, 4, 16).unwrap();
        // Fill quad 0's request plane with packets whose deliveries
        // will be refused (vault queues "full"), then inject a response
        // at the same quad: it must still route and deliver.
        noc.inject(0, NocDest::ToVault(4), test_entry(1), 0);
        noc.inject(0, NocDest::ToVault(5), test_entry(2), 0);
        noc.inject(0, NocDest::ToLink(2), test_entry(9), 0);
        let mut delivered = Vec::new();
        for clock in 1..=4u64 {
            noc.advance(
                clock,
                |_, e| Err(e), // vaults refuse everything
                |l, e| {
                    delivered.push((l, e.packet.tag()));
                    Ok(())
                },
                false,
                false,
            );
        }
        assert_eq!(delivered, vec![(2u8, 9u16)]);
    }

    #[test]
    fn full_ring_of_through_traffic_rotates_and_drains() {
        // Every request-plane buffer completely full of cross-quad
        // traffic: no segment has room, so without the rotation escape
        // the ring would wedge forever. With it, the cycle rotates one
        // step per stuck cycle and everything eventually delivers.
        for arb in ArbitrationKind::ALL {
            let mut params = NocParams::of(InterconnectKind::Ring).with_arbitration(arb);
            params.buffer_depth = 2;
            let mut noc = NocState::new(&params, 4, 16).unwrap();
            let mut tag = 0u16;
            for q in 0..4u8 {
                for k in 0..2u16 {
                    // Dest quads q+2 and q+3: all traffic is cross-quad.
                    let dq = (q + 2 + k as u8 % 2) % 4;
                    noc.inject(q, NocDest::ToVault(VaultId::from(dq) * 4), test_entry(tag), 0);
                    tag += 1;
                }
            }
            assert_eq!(noc.occupancy(), 8);
            let mut delivered = 0;
            for clock in 1..=64u64 {
                noc.advance(
                    clock,
                    |_, _| {
                        delivered += 1;
                        Ok(())
                    },
                    |_, _| unreachable!("request-plane only"),
                    false,
                    false,
                );
            }
            assert_eq!(delivered, 8, "{} wedged", arb.name());
            assert_eq!(noc.occupancy(), 0);
        }
    }

    #[test]
    fn opposed_mesh_streams_rotate_through_full_buffers() {
        // 2x4 mesh: quads 1 and 2 (interior, row 0) each full of
        // through-traffic headed the opposite way — the bidirectional
        // wedge a shared per-node buffer admits. Rotation exchanges the
        // two heads so both streams keep moving.
        let mut params = NocParams::of(InterconnectKind::Mesh);
        params.buffer_depth = 2;
        let mut noc = NocState::new(&params, 8, 32).unwrap();
        // Quad 1 wants quad 3 (east, via 2); quad 2 wants quad 0 (west, via 1).
        noc.inject(1, NocDest::ToVault(12), test_entry(1), 0);
        noc.inject(1, NocDest::ToVault(13), test_entry(2), 0);
        noc.inject(2, NocDest::ToVault(0), test_entry(3), 0);
        noc.inject(2, NocDest::ToVault(1), test_entry(4), 0);
        let mut delivered = 0;
        for clock in 1..=16u64 {
            noc.advance(
                clock,
                |_, _| {
                    delivered += 1;
                    Ok(())
                },
                |_, _| unreachable!(),
                false,
                false,
            );
        }
        assert_eq!(delivered, 4, "opposed streams wedged");
        assert_eq!(noc.occupancy(), 0);
    }

    #[test]
    fn clear_empties_all_buffers() {
        let params = NocParams::of(InterconnectKind::Mesh);
        let mut noc = NocState::new(&params, 4, 16).unwrap();
        noc.inject(0, NocDest::ToVault(12), test_entry(1), 0);
        noc.inject(2, NocDest::ToLink(1), test_entry(2), 0);
        assert_eq!(noc.occupancy(), 2);
        assert_eq!(noc.entries().count(), 2);
        noc.clear();
        assert_eq!(noc.occupancy(), 0);
    }

    #[test]
    fn locality_aware_prefers_local_deliveries() {
        // 2x2 mesh, drain 1. Quad 1 receives a through-packet from quad
        // 0 (bound for quad 3 via XY) and a local delivery from quad 3
        // in the same cycle; locality-aware spends the budget on the
        // local one, the through-packet loses arbitration.
        let mut params = NocParams::of(InterconnectKind::Mesh)
            .with_arbitration(ArbitrationKind::LocalityAware);
        params.quad_drain = 1;
        let mut noc = NocState::new(&params, 4, 16).unwrap();
        noc.inject(0, NocDest::ToVault(13), test_entry(1), 0); // quad 3, via quad 1
        noc.inject(3, NocDest::ToVault(4), test_entry(2), 0); // quad 1, via quad 1
        let d = noc.advance(1, |_, _| unreachable!(), |_, _| unreachable!(), false, false);
        assert_eq!(d.hops, 2, "both packets hop into quad 1");
        let mut delivered = Vec::new();
        let d = noc.advance(
            2,
            |_, e| {
                delivered.push(e.packet.tag());
                Ok(())
            },
            |_, _| unreachable!(),
            false,
            false,
        );
        assert_eq!(delivered, vec![2], "local delivery should win the budget");
        assert_eq!(d.arb_losses, 1, "the through-packet lost arbitration");
    }
}
