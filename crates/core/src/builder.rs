//! Request building and response decoding helpers.
//!
//! "The API provides two functions to assist with encoding and decoding
//! request and response packets, respectively" (paper §V.C). The builder
//! mirrors `hmcsim_build_memrequest` from the Figure 4 calling sequence;
//! the decoder correlates response packets — which "may arrive out of
//! order" — back to tags, status and payload for the calling application.

use hmc_types::packet::ResponseStatus;
use hmc_types::{Command, CubeId, Cycle, HmcError, LinkId, Packet, Result};

/// A decoded response packet, ready for host-side correlation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseInfo {
    /// The response command (RD_RS / WR_RS / MD_RD_RS / MD_WR_RS / ERROR).
    pub cmd: Command,
    /// The correlation tag echoed from the request.
    pub tag: u16,
    /// Completion status.
    pub status: ResponseStatus,
    /// True when the payload must not be trusted.
    pub data_invalid: bool,
    /// The payload (empty for write/mode-write/error responses).
    pub data: Vec<u8>,
    /// The link the original request entered on (SLID echo).
    pub slid: LinkId,
}

impl ResponseInfo {
    /// True when the response signals success.
    pub fn is_ok(&self) -> bool {
        self.status.is_ok()
    }
}

/// Build a fully formed, compliant memory request packet — the
/// `hmcsim_build_memrequest` equivalent.
///
/// `payload` must match the command class: empty for reads and MODE_READ,
/// the block size for writes, exactly 16 bytes for atomics and MODE_WRITE.
pub fn build_mem_request(
    cmd: Command,
    cub: CubeId,
    addr: u64,
    tag: u16,
    link: LinkId,
    payload: &[u8],
) -> Result<Packet> {
    Packet::request(cmd, cub, addr, tag, link, payload)
}

/// Decode a response packet into [`ResponseInfo`].
pub fn decode_response(packet: &Packet) -> Result<ResponseInfo> {
    let cmd = packet.cmd()?;
    if !cmd.is_response() {
        return Err(HmcError::InvalidPacket(format!(
            "{} is not a response command",
            cmd.mnemonic()
        )));
    }
    Ok(ResponseInfo {
        cmd,
        tag: packet.tag(),
        status: packet.errstat()?,
        data_invalid: packet.dinv(),
        data: packet.data_as_bytes(),
        slid: packet.response_slid(),
    })
}

/// A received response paired with its observed latency — what
/// [`HmcSim::recv_with_latency`](crate::sim::HmcSim::recv_with_latency)
/// yields after decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedResponse {
    /// The decoded response.
    pub info: ResponseInfo,
    /// Cycles from device entry to host delivery.
    pub latency: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::BlockSize;

    #[test]
    fn build_matches_packet_request() {
        let a = build_mem_request(Command::Rd(BlockSize::B64), 1, 0x40, 7, 2, &[]).unwrap();
        let b = Packet::request(Command::Rd(BlockSize::B64), 1, 0x40, 7, 2, &[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn decode_read_response() {
        let data: Vec<u8> = (0..32).collect();
        let p = Packet::response(Command::RdResponse, 42, 3, ResponseStatus::Ok, &data).unwrap();
        let info = decode_response(&p).unwrap();
        assert_eq!(info.cmd, Command::RdResponse);
        assert_eq!(info.tag, 42);
        assert_eq!(info.slid, 3);
        assert!(info.is_ok());
        assert!(!info.data_invalid);
        assert_eq!(info.data, data);
    }

    #[test]
    fn decode_error_response() {
        let p = Packet::response(
            Command::ErrorResponse,
            9,
            0,
            ResponseStatus::AddressError,
            &[],
        )
        .unwrap();
        let info = decode_response(&p).unwrap();
        assert!(!info.is_ok());
        assert!(info.data_invalid);
        assert_eq!(info.status, ResponseStatus::AddressError);
        assert!(info.data.is_empty());
    }

    #[test]
    fn decode_rejects_request_packets() {
        let p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 0, 0, &[]).unwrap();
        assert!(decode_response(&p).is_err());
    }
}
