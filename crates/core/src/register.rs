//! Device configuration, status and control registers.
//!
//! "The HMC-Sim device representation contains storage for all internal
//! device configuration, read and status registers found within the HMC
//! device specification. … There are registers that can be read and
//! written (RW), registers that are read-only (RO) and registers that are
//! self-clearing after being written to (RWS)" (paper §IV.D).
//!
//! "Register indexing on physical HMC devices is not purely linear and
//! does not begin at zero. As such, we have implemented a series of macros
//! that translate HMC device register index formats to a linear format"
//! (§IV.D) — here [`RegisterFile::linear_index`] performs that
//! translation, with the registers stored in one contiguous `Vec`.

use hmc_types::{HmcError, Result};

/// Register access classes (paper §IV.D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegClass {
    /// Readable and writable.
    Rw,
    /// Read-only; in-band and JTAG writes are rejected.
    Ro,
    /// Self-clearing after being written: the written value is visible
    /// until the next clock edge, then reverts to zero.
    Rws,
}

/// HMC register indices (hexadecimal device format, non-linear).
///
/// Link-indexed registers (LC / LRLL / LR / IBTC) step by `0x1000` per
/// link. (The classic 4-link format steps by `0x10000`, but that stride
/// collides with the EDR block once links 4–7 exist, so this
/// implementation uses a denser per-link bank that stays unique for
/// 8-link devices.)
pub mod regs {
    /// Error detect register 0 (RWS).
    pub const EDR0: u32 = 0x2b0000;
    /// Error detect register 1 (RWS).
    pub const EDR1: u32 = 0x2b0001;
    /// Error detect register 2 (RWS).
    pub const EDR2: u32 = 0x2b0002;
    /// Error detect register 3 (RWS).
    pub const EDR3: u32 = 0x2b0003;
    /// Global error status (RO).
    pub const ERR: u32 = 0x2b0004;
    /// Global configuration (RW).
    pub const GC: u32 = 0x280000;
    /// Link configuration for link `l` (RW).
    pub const fn lc(l: u8) -> u32 {
        0x240000 + (l as u32) * 0x1000
    }
    /// Link run-length limit for link `l` (RW).
    pub const fn lrll(l: u8) -> u32 {
        0x240003 + (l as u32) * 0x1000
    }
    /// Link retry state for link `l` (RW).
    pub const fn lr(l: u8) -> u32 {
        0x240011 + (l as u32) * 0x1000
    }
    /// Input-buffer token count for link `l` (RW).
    pub const fn ibtc(l: u8) -> u32 {
        0x040000 + (l as u32) * 0x1000
    }
    /// Global retry limit (RW).
    pub const GRL: u32 = 0x2c0000;
    /// Address configuration (RW).
    pub const AC: u32 = 0x2c0003;
    /// Vault control (RW).
    pub const VCR: u32 = 0x108000;
    /// Feature register (RO): capacity and link count, set at init.
    pub const FEAT: u32 = 0x2c0007;
    /// Revision and vendor ID (RO).
    pub const RVID: u32 = 0x2c0008;
}

/// Power-on RVID value: 'H''C' plus revision 1.
pub const RVID_RESET: u64 = 0x4843_0001;

/// Encode the FEAT register from device geometry: capacity (GB) in the low
/// byte, link count in bits 8..16, vault count in bits 16..24.
pub fn encode_feat(capacity_gb: u64, num_links: u8, num_vaults: u16) -> u64 {
    capacity_gb | ((num_links as u64) << 8) | ((num_vaults as u64) << 16)
}

#[derive(Debug, Clone)]
struct Register {
    index: u32,
    class: RegClass,
    value: u64,
    reset_value: u64,
    /// RWS: written this cycle, clears at the next clock edge.
    pending_clear: bool,
}

/// The register file of one device: contiguous storage, non-linear lookup.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    regs: Vec<Register>,
}

impl RegisterFile {
    /// Build the register file for a device with `num_links` links.
    pub fn new(num_links: u8, capacity_gb: u64, num_vaults: u16) -> Self {
        let mut regs = Vec::new();
        let mut push = |index: u32, class: RegClass, reset: u64| {
            regs.push(Register {
                index,
                class,
                value: reset,
                reset_value: reset,
                pending_clear: false,
            });
        };
        push(regs::EDR0, RegClass::Rws, 0);
        push(regs::EDR1, RegClass::Rws, 0);
        push(regs::EDR2, RegClass::Rws, 0);
        push(regs::EDR3, RegClass::Rws, 0);
        push(regs::ERR, RegClass::Ro, 0);
        push(regs::GC, RegClass::Rw, 0);
        push(regs::GRL, RegClass::Rw, 0);
        push(regs::AC, RegClass::Rw, 0);
        push(regs::VCR, RegClass::Rw, 0);
        push(
            regs::FEAT,
            RegClass::Ro,
            encode_feat(capacity_gb, num_links, num_vaults),
        );
        push(regs::RVID, RegClass::Ro, RVID_RESET);
        for l in 0..num_links {
            push(regs::lc(l), RegClass::Rw, 0);
            push(regs::lrll(l), RegClass::Rw, 0);
            push(regs::lr(l), RegClass::Rw, 0);
            push(regs::ibtc(l), RegClass::Rw, 0);
        }
        // Keep storage sorted by device index so linear translation is a
        // binary search over one well-aligned block.
        regs.sort_by_key(|r| r.index);
        RegisterFile { regs }
    }

    /// Number of registers present.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when the file holds no registers (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Translate a device register index to its linear storage position.
    pub fn linear_index(&self, index: u32) -> Result<usize> {
        self.regs
            .binary_search_by_key(&index, |r| r.index)
            .map_err(|_| {
                HmcError::RegisterAccess(format!("unknown register index {index:#08x}"))
            })
    }

    /// The access class of a register.
    pub fn class(&self, index: u32) -> Result<RegClass> {
        Ok(self.regs[self.linear_index(index)?].class)
    }

    /// Read a register's current value.
    pub fn read(&self, index: u32) -> Result<u64> {
        Ok(self.regs[self.linear_index(index)?].value)
    }

    /// Write a register, honouring its class: RO writes are rejected; RWS
    /// writes take effect and self-clear at the next clock edge.
    pub fn write(&mut self, index: u32, value: u64) -> Result<()> {
        let i = self.linear_index(index)?;
        let reg = &mut self.regs[i];
        match reg.class {
            RegClass::Ro => Err(HmcError::RegisterAccess(format!(
                "register {index:#08x} is read-only"
            ))),
            RegClass::Rw => {
                reg.value = value;
                Ok(())
            }
            RegClass::Rws => {
                reg.value = value;
                reg.pending_clear = true;
                Ok(())
            }
        }
    }

    /// Internal: set a RO register (device-side status updates).
    pub(crate) fn set_internal(&mut self, index: u32, value: u64) -> Result<()> {
        let i = self.linear_index(index)?;
        self.regs[i].value = value;
        Ok(())
    }

    /// Clock edge: self-clear RWS registers written since the last edge.
    pub fn tick(&mut self) {
        for r in &mut self.regs {
            if r.pending_clear {
                r.value = 0;
                r.pending_clear = false;
            }
        }
    }

    /// Restore all registers to their power-on values.
    pub fn reset(&mut self) {
        for r in &mut self.regs {
            r.value = r.reset_value;
            r.pending_clear = false;
        }
    }

    /// Iterate `(device_index, class, value)` in linear order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, RegClass, u64)> + '_ {
        self.regs.iter().map(|r| (r.index, r.class, r.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> RegisterFile {
        RegisterFile::new(4, 2, 16)
    }

    #[test]
    fn four_link_device_has_expected_register_count() {
        // 11 globals + 4 per-link banks of 4.
        assert_eq!(file().len(), 11 + 16);
        // 8-link devices grow the per-link banks.
        assert_eq!(RegisterFile::new(8, 8, 32).len(), 11 + 32);
    }

    #[test]
    fn linear_translation_is_dense_and_ordered() {
        let f = file();
        let mut positions: Vec<usize> = f
            .iter()
            .map(|(idx, _, _)| f.linear_index(idx).unwrap())
            .collect();
        positions.sort_unstable();
        let expect: Vec<usize> = (0..f.len()).collect();
        assert_eq!(positions, expect, "every register maps to a unique slot");
    }

    #[test]
    fn unknown_index_rejected() {
        let f = file();
        assert!(matches!(
            f.read(0xdead_beef),
            Err(HmcError::RegisterAccess(_))
        ));
        assert!(f.linear_index(regs::lc(7)).is_err(), "LC7 absent on 4-link");
    }

    #[test]
    fn rw_registers_read_back_writes() {
        let mut f = file();
        f.write(regs::GC, 0x1234).unwrap();
        assert_eq!(f.read(regs::GC).unwrap(), 0x1234);
        f.write(regs::lc(2), 7).unwrap();
        assert_eq!(f.read(regs::lc(2)).unwrap(), 7);
        f.tick();
        assert_eq!(f.read(regs::GC).unwrap(), 0x1234, "RW survives the edge");
    }

    #[test]
    fn ro_registers_reject_writes() {
        let mut f = file();
        assert!(f.write(regs::ERR, 1).is_err());
        assert!(f.write(regs::FEAT, 1).is_err());
        assert!(f.write(regs::RVID, 1).is_err());
    }

    #[test]
    fn rws_registers_self_clear_on_the_next_edge() {
        let mut f = file();
        f.write(regs::EDR0, 0xff).unwrap();
        assert_eq!(f.read(regs::EDR0).unwrap(), 0xff, "visible until the edge");
        f.tick();
        assert_eq!(f.read(regs::EDR0).unwrap(), 0, "self-cleared");
        f.tick();
        assert_eq!(f.read(regs::EDR0).unwrap(), 0);
    }

    #[test]
    fn feat_encodes_geometry() {
        let f = RegisterFile::new(8, 8, 32);
        let feat = f.read(regs::FEAT).unwrap();
        assert_eq!(feat & 0xff, 8, "capacity GB");
        assert_eq!((feat >> 8) & 0xff, 8, "links");
        assert_eq!((feat >> 16) & 0xff, 32, "vaults");
        assert_eq!(f.read(regs::RVID).unwrap(), RVID_RESET);
    }

    #[test]
    fn internal_updates_can_set_ro_registers() {
        let mut f = file();
        f.set_internal(regs::ERR, 0b10).unwrap();
        assert_eq!(f.read(regs::ERR).unwrap(), 0b10);
    }

    #[test]
    fn reset_restores_power_on_values() {
        let mut f = file();
        f.write(regs::GC, 99).unwrap();
        f.set_internal(regs::ERR, 5).unwrap();
        f.reset();
        assert_eq!(f.read(regs::GC).unwrap(), 0);
        assert_eq!(f.read(regs::ERR).unwrap(), 0);
        assert_eq!(f.read(regs::RVID).unwrap(), RVID_RESET);
    }

    #[test]
    fn class_lookup() {
        let f = file();
        assert_eq!(f.class(regs::GC).unwrap(), RegClass::Rw);
        assert_eq!(f.class(regs::ERR).unwrap(), RegClass::Ro);
        assert_eq!(f.class(regs::EDR3).unwrap(), RegClass::Rws);
    }
}
