//! The sharded clock engine.
//!
//! The six sub-cycle stages of paper §IV.C interact with shared device
//! state (links, crossbars, registers) in stages 1, 2, the crossbar half
//! of 5, and 6 — those always run on the calling thread. Stages 3
//! (bank-conflict recognition), 4 (vault processing), and the per-vault
//! half of stage 5 (response egress selection) touch only one vault's
//! queues plus read-only routing state, so they are embarrassingly
//! parallel per vault. This module partitions the vaults of all devices
//! into contiguous shards over the flat vault index and runs the vault
//! phase of each shard on a worker thread (`std::thread::scope`),
//! merging per-shard results in vault-index order.
//!
//! **Determinism.** The parallel engine is bit-identical to the serial
//! one by construction, not by testing alone:
//!
//! * vault work never reads or writes another vault's state, so the
//!   per-vault results are independent of shard scheduling;
//! * trace events are staged into per-shard [`EventStage`] buffers and
//!   flushed at one merge point in flat vault order — all stage-3
//!   conflicts first, then all stage-4 completions, exactly the serial
//!   emission order;
//! * the shared halves of stage 5 commit the workers' *egress plans*
//!   serially in the paper's root-first device order, so crossbar
//!   capacity is claimed in the same sequence as the serial engine;
//! * error-register bumps are staged as per-device counts and applied
//!   at the merge point (saturating adds commute).
//!
//! **Zero-allocation hot path.** Every per-cycle buffer (event stages,
//! drain plans, forward staging, the vault shells that ferry vault
//! ownership to workers) lives in [`EngineScratch`] or inside the
//! long-lived shard jobs and is reused with retained capacity; the
//! steady-state serial `clock()` performs no heap allocation. The
//! parallel path additionally pays one channel hand-off per shard per
//! cycle (the bounded rendezvous buffers are preallocated).

use std::sync::mpsc::sync_channel;
use std::sync::Arc;

use hmc_trace::{EventKind, EventStage, TraceEvent};
use hmc_types::address::AddressMap;
use hmc_types::{CubeId, Cycle, LinkId, Result, VaultId};

use crate::link::Endpoint;
use crate::params::{ConflictPolicy, RefreshParams};
use crate::queue::{QueueEntry, UNDECODED};
use crate::routing::RouteTable;
use crate::sim::{HmcSim, MAX_CUBES};
use crate::timing::RowOutcome;
use crate::vault::{Execution, Vault};

/// Links per device are bounded by the specification's four- and
/// eight-link configurations.
pub(crate) const MAX_LINKS: usize = 8;

/// Read-only per-cycle inputs shared by every shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CycleInputs {
    clock: Cycle,
    conflicts_enabled: bool,
    /// Row-buffer trace events (RowHit/RowMiss/Precharge) are enabled on
    /// the sink; the `SimStats` row counters bump regardless.
    row_events: bool,
    window: usize,
    banks: u16,
    policy: ConflictPolicy,
    refresh: Option<RefreshParams>,
    rsp_drain: usize,
    /// RowHammerFlip/TargetedRefresh trace events are enabled on the
    /// sink; the `SimStats` fault counters bump regardless.
    fault_events: bool,
}

impl Default for CycleInputs {
    fn default() -> Self {
        CycleInputs {
            clock: 0,
            conflicts_enabled: false,
            row_events: false,
            window: 1,
            banks: 0,
            policy: ConflictPolicy::SkipConflicting,
            refresh: None,
            rsp_drain: 1,
            fault_events: false,
        }
    }
}

/// Reusable per-simulation scratch buffers (owned by [`HmcSim`]).
#[derive(Debug, Default)]
pub(crate) struct EngineScratch {
    /// Stage-3 conflict events, staged in flat vault order.
    pub(crate) conflicts: EventStage,
    /// Stage-4 completion/stall/error events, staged in flat vault order.
    pub(crate) completions: EventStage,
    /// Stage-5 egress plans, flat in vault order.
    pub(crate) plans: Vec<Option<LinkId>>,
    /// One planned-entry count per vault, flat vault order.
    pub(crate) plan_counts: Vec<u32>,
    /// Per flat vault: `(offset, len)` into `plans`.
    pub(crate) plan_index: Vec<(u32, u32)>,
    /// Per-device error-register bumps staged during the vault phase.
    pub(crate) err_bumps: [u64; MAX_CUBES],
    /// Row-buffer outcome counts staged during the vault phase:
    /// `[hits, misses, precharges]` (all zero under the classic backend).
    pub(crate) row_counts: [u64; 3],
    /// Cell-fault counts staged during the vault phase:
    /// `[activations, bit flips, TRR refreshes, retention decays]`
    /// (all zero unless cell faults are configured).
    pub(crate) fault_counts: [u64; 4],
    /// Per-device vault shells: empty `Vec`s that swap with
    /// `Device::vaults` so vault ownership can move to workers and back
    /// without reallocating.
    pub(crate) shells: Vec<Vec<Vault>>,
    /// Stage-1/2 deferred chain-forward staging.
    pub(crate) forwards: Vec<(QueueEntry, usize, usize)>,
}

impl EngineScratch {
    fn reset_cycle(&mut self) {
        self.conflicts.clear();
        self.completions.clear();
        self.plans.clear();
        self.plan_counts.clear();
        self.err_bumps = [0; MAX_CUBES];
        self.row_counts = [0; 3];
        self.fault_counts = [0; 4];
    }
}

/// A contiguous run of one device's vaults owned by a shard job while
/// the vault phase runs.
#[derive(Debug)]
struct Piece {
    dev: usize,
    first_vault: usize,
    vaults: Vec<Vault>,
}

/// Everything one worker needs for one cycle's vault phase. Jobs own
/// their data (vaults move in and out each cycle), so the channel
/// hand-off carries no borrows of the simulation object and the main
/// thread keeps full access to links/crossbars/registers between the
/// send and receive points.
struct ShardJob {
    pieces: Vec<Piece>,
    conflicts: EventStage,
    completions: EventStage,
    plans: Vec<Option<LinkId>>,
    plan_counts: Vec<u32>,
    err_bumps: [u64; MAX_CUBES],
    row_counts: [u64; 3],
    fault_counts: [u64; 4],
    inputs: CycleInputs,
    map: Arc<dyn AddressMap>,
    routes: RouteTable,
    remotes: [[Endpoint; MAX_LINKS]; MAX_CUBES],
}

/// Run the vault phase for every vault a job owns, in flat vault order.
fn run_shard(job: &mut ShardJob) {
    job.conflicts.clear();
    job.completions.clear();
    job.plans.clear();
    job.plan_counts.clear();
    job.err_bumps = [0; MAX_CUBES];
    job.row_counts = [0; 3];
    job.fault_counts = [0; 4];
    let inputs = job.inputs;
    for piece in &mut job.pieces {
        let dev_id = piece.dev as CubeId;
        let remotes = &job.remotes[piece.dev];
        for (k, vault) in piece.vaults.iter_mut().enumerate() {
            tick_vault(
                vault,
                dev_id,
                piece.first_vault + k,
                &inputs,
                job.map.as_ref(),
                &mut job.conflicts,
                &mut job.completions,
                &mut job.err_bumps,
                &mut job.row_counts,
                &mut job.fault_counts,
            );
            plan_vault_drain(
                vault,
                dev_id,
                &inputs,
                &job.routes,
                remotes,
                &mut job.plans,
                &mut job.plan_counts,
            );
        }
    }
}

/// Stages 3 and 4 for one vault: bank-conflict recognition over the
/// spatial window (trace only, §IV.C.3), then the windowed request walk
/// (§IV.C.4). Identical code serves the serial and parallel engines;
/// trace events and error-register bumps are staged, not emitted.
///
/// Timing decisions inside the walk are delegated to the vault's
/// [`crate::timing::VaultTiming`] backend: a bank that already issued
/// this cycle (classic) or is paying DDR command spacing answers
/// `blocked_until(..) != None` and its packet stalls exactly like the
/// original `used`-bitmask check; an admitted packet's grant carries the
/// data-ready cycle (`execute` parks late data in `Vault::pending`) and
/// the row-buffer outcome (staged as RowHit/RowMiss/Precharge events and
/// counted into `row_counts`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn tick_vault(
    vault: &mut Vault,
    dev_id: CubeId,
    vi: usize,
    inputs: &CycleInputs,
    map: &dyn AddressMap,
    conflicts: &mut EventStage,
    completions: &mut EventStage,
    err_bumps: &mut [u64; MAX_CUBES],
    row_counts: &mut [u64; 3],
    fault_counts: &mut [u64; 4],
) {
    // Release pending responses whose data became ready, before the walk
    // (their freed capacity admits new requests this cycle).
    if !vault.pending.is_empty() {
        vault.release_ready(inputs.clock);
    }

    // ---- stage 3: recognize bank conflicts (no state modified) ----
    if inputs.conflicts_enabled {
        let mut seen: u64 = 0;
        for idx in 0..inputs.window.min(vault.rqst.len()) {
            let e = vault.rqst.get(idx).expect("idx bounded");
            let bank = e.dest_bank;
            if bank == UNDECODED {
                continue;
            }
            let bit = 1u64 << (bank & 0x3f);
            if seen & bit != 0 {
                conflicts.stage(TraceEvent::BankConflict {
                    cube: dev_id,
                    vault: vault.id,
                    bank,
                    addr: e.packet.addr(),
                    tag: e.packet.tag(),
                });
            } else {
                seen |= bit;
            }
        }
    }

    // ---- stage 4: windowed request walk ----
    let mut blocked: u64 = 0;
    // A bank under periodic refresh is out of service for the whole
    // cycle (optional extension; None = paper model).
    if let Some(r) = inputs.refresh {
        if let Some(b) = r.bank_under_refresh(inputs.clock, vi as u16, inputs.banks) {
            blocked |= 1u64 << (b & 0x3f);
        }
    }
    let mut idx = 0usize;
    let mut scanned = 0usize;
    loop {
        if scanned >= inputs.window {
            break;
        }
        // Packets are removed mid-walk, so bounds are rechecked every
        // iteration.
        let (bank, row, cmd_res) = {
            if idx >= vault.rqst.len() {
                break;
            }
            let e = vault.rqst.get(idx).expect("idx checked");
            (e.dest_bank, e.dest_row, e.packet.cmd())
        };
        scanned += 1;
        let bit = 1u64 << (bank & 0x3f);
        if (blocked & bit != 0)
            || vault
                .timing
                .blocked_until(bank, row, inputs.clock)
                .is_some()
        {
            // The bank is held — refresh or response-stall for the rest
            // of the cycle, or the timing backend (already issued this
            // cycle under classic; paying command spacing under DDR).
            // Window conflicts are traced by stage 3. The bank bit is
            // latched so no younger packet to the same bank can overtake
            // a timing-stalled elder this cycle: `blocked_until` is
            // row-dependent under DDR (a row hit would be admissible
            // while a row conflict waits out tRAS), and per-(link,
            // vault, bank) delivery order must hold regardless.
            blocked |= bit;
            if inputs.policy == ConflictPolicy::StallQueue {
                break;
            }
            idx += 1;
            continue;
        }
        let cmd = cmd_res.ok();
        let needs_rsp = cmd.map(Vault::needs_response).unwrap_or(true);
        if needs_rsp && vault.rsp_capacity_full() {
            let tag = vault.rqst.get(idx).expect("idx checked").packet.tag();
            completions.stage(TraceEvent::VaultRspStall {
                cube: dev_id,
                vault: vi as VaultId,
                tag,
            });
            blocked |= bit;
            if inputs.policy == ConflictPolicy::StallQueue {
                break;
            }
            idx += 1;
            continue;
        }

        let entry = vault.rqst.remove(idx).expect("idx checked");
        let tag = entry.packet.tag();
        let bytes = entry.packet.data_bytes() as u32;
        let grant = vault.timing.try_issue(bank, row, inputs.clock);
        match grant.outcome {
            RowOutcome::None => {}
            RowOutcome::Hit => row_counts[0] += 1,
            RowOutcome::Miss => row_counts[1] += 1,
            RowOutcome::Conflict => row_counts[1] += 1,
        }
        if grant.pre_cycle.is_some() {
            row_counts[2] += 1;
        }
        // ---- cell-fault hook: retention decay before the access reads
        // data, then hammer accounting on every row activation (any
        // non-Hit outcome opens the row; classic's None counts too).
        // Flip decisions are stateless hashes, so staging order here
        // matches the serial engine by the same argument as row_counts.
        if vault.faults.is_some() {
            let Vault {
                faults, mem, timing, ..
            } = &mut *vault;
            let f = faults.as_mut().expect("checked above");
            let decayed = f.on_access(bank, row, inputs.clock, mem);
            fault_counts[3] += decayed;
            if grant.outcome != RowOutcome::Hit {
                let out = f.on_activation(bank, row, inputs.clock, mem);
                fault_counts[0] += 1;
                fault_counts[1] += out.flip_count;
                if out.trr {
                    fault_counts[2] += 1;
                    if let Some(until) = out.park_until {
                        timing.park_bank(bank, until);
                    }
                    if inputs.fault_events {
                        completions.stage(TraceEvent::TargetedRefresh {
                            cube: dev_id,
                            vault: vi as VaultId,
                            bank,
                            row,
                        });
                    }
                }
                if inputs.fault_events {
                    for (victim, bits) in out.flips {
                        if bits > 0 {
                            completions.stage(TraceEvent::RowHammerFlip {
                                cube: dev_id,
                                vault: vi as VaultId,
                                bank,
                                row: victim,
                                bits: bits as u64,
                            });
                        }
                    }
                }
            }
        }
        if inputs.row_events && grant.outcome != RowOutcome::None {
            if grant.pre_cycle.is_some() {
                completions.stage(TraceEvent::Precharge {
                    cube: dev_id,
                    vault: vi as VaultId,
                    bank,
                    tag,
                });
            }
            completions.stage(match grant.outcome {
                RowOutcome::Hit => TraceEvent::RowHit {
                    cube: dev_id,
                    vault: vi as VaultId,
                    bank,
                    row,
                    tag,
                },
                _ => TraceEvent::RowMiss {
                    cube: dev_id,
                    vault: vi as VaultId,
                    bank,
                    row,
                    tag,
                },
            });
        }
        match vault.execute(entry, map, dev_id, inputs.clock, grant.data_ready) {
            Execution::Done | Execution::Responded => {}
            Execution::RespondedError(status) => {
                completions.stage(TraceEvent::ErrorResponse {
                    cube: dev_id,
                    tag,
                    status: status.encode(),
                });
                err_bumps[dev_id as usize] += 1;
            }
        }
        match cmd {
            Some(hmc_types::Command::Rd(bs)) => completions.stage(TraceEvent::ReadComplete {
                cube: dev_id,
                vault: vi as VaultId,
                bank,
                bytes: bs.bytes() as u32,
                tag,
            }),
            Some(c) if c.is_write() => completions.stage(TraceEvent::WriteComplete {
                cube: dev_id,
                vault: vi as VaultId,
                bank,
                bytes,
                tag,
            }),
            Some(c) if c.is_atomic() => completions.stage(TraceEvent::AtomicComplete {
                cube: dev_id,
                vault: vi as VaultId,
                bank,
                tag,
            }),
            _ => {}
        }
    }
}

/// The per-vault half of stage 5: choose the egress crossbar for up to
/// `rsp_drain` head entries of the vault response queue. Pure routing —
/// the commit (capacity checks and the actual moves) replays the plan
/// serially on the main thread so crossbar slots are claimed in the
/// serial engine's order.
pub(crate) fn plan_vault_drain(
    vault: &Vault,
    dev_id: CubeId,
    inputs: &CycleInputs,
    routes: &RouteTable,
    remotes: &[Endpoint; MAX_LINKS],
    plans: &mut Vec<Option<LinkId>>,
    plan_counts: &mut Vec<u32>,
) {
    let n = inputs.rsp_drain.min(vault.rsp.len());
    for idx in 0..n {
        let e = vault.rsp.get(idx).expect("idx bounded");
        // Prefer the link the request arrived on when it reaches the
        // destination host directly (SLID association).
        let direct = (e.arrival_link as usize) < MAX_LINKS
            && remotes[e.arrival_link as usize] == Endpoint::Host(e.dest_cube);
        let egress = if direct {
            Some(e.arrival_link)
        } else {
            routes.next_hop(dev_id, e.dest_cube)
        };
        plans.push(egress);
    }
    plan_counts.push(n as u32);
}

impl HmcSim {
    /// Snapshot the per-cycle read-only inputs of the vault phase.
    fn cycle_inputs(&self) -> CycleInputs {
        CycleInputs {
            clock: self.clock,
            conflicts_enabled: self.tracer.enabled(EventKind::BankConflict),
            row_events: self.tracer.enabled(EventKind::RowHit),
            window: self.params.window_for(self.config.banks_per_vault),
            banks: self.config.banks_per_vault,
            policy: self.params.conflict_policy,
            refresh: self.params.refresh,
            rsp_drain: self.params.rsp_drain_per_cycle,
            fault_events: self.tracer.enabled(EventKind::RowHammerFlip)
                || self.tracer.enabled(EventKind::TargetedRefresh),
        }
    }

    /// Advance the simulation by `cycles` clock cycles.
    ///
    /// Results are bit-identical to calling [`HmcSim::clock`] `cycles`
    /// times regardless of [`crate::params::SimParams::threads`] and
    /// [`crate::params::SimParams::fast_forward`]; batching exists so the
    /// parallel engine can amortize its per-batch worker spawn over many
    /// cycles, and so the fast-forward engine has a span of cycles to
    /// jump across.
    pub fn clock_batch(&mut self, cycles: u64) -> Result<()> {
        self.ensure_routes()?;
        self.ensure_timing();
        self.ensure_noc();
        self.ensure_cell_faults();
        self.ensure_link_faults();
        let total_vaults: usize = self.devices.iter().map(|d| d.vaults.len()).sum();
        let shards = self.params.resolved_threads().min(total_vaults).max(1);
        if shards <= 1 {
            if self.params.fast_forward {
                let mut done = 0u64;
                while done < cycles {
                    let dead = self.quiescent_horizon(cycles - done);
                    if dead > 0 {
                        self.fast_forward_jump(dead);
                        done += dead;
                    } else {
                        self.clock_cycle_serial();
                        done += 1;
                    }
                }
            } else {
                for _ in 0..cycles {
                    self.clock_cycle_serial();
                }
            }
            return Ok(());
        }
        self.clock_batch_parallel(cycles, shards);
        Ok(())
    }

    /// The number of upcoming cycles — capped at `max` — during which
    /// every stage of every device is provably quiescent: no queue walk
    /// would move, mutate, or retire a packet, and no trace event would
    /// be emitted. Zero means the next cycle may do observable work and
    /// must run stepped.
    ///
    /// A cycle is *dead* exactly when, for every device:
    ///
    /// * each non-empty crossbar request queue is gated for the whole
    ///   cycle — its link's FLIT debt covers the cycle's beat budget
    ///   (walk skipped outright) or its head entry is held by a link
    ///   retransmission timer (walk breaks at the head) — and the gate
    ///   provably holds until a computable future cycle;
    /// * each crossbar response queue holds only entries parked in
    ///   host-deliverable position (waiting on a host `recv`, which only
    ///   the host can trigger);
    /// * each vault response queue is empty (any entry would be planned
    ///   and committed by stage 5) and no pending response's data-ready
    ///   edge has arrived;
    /// * every entry in each non-empty vault request queue's scan window
    ///   is provably held — by the bank this vault currently holds under
    ///   refresh, or by the vault's timing backend
    ///   ([`crate::timing::VaultTiming::blocked_until`]: always live for
    ///   the classic backend, exact tRP/tRAS/tCCD/refresh edges for DDR)
    ///   — and, when bank-conflict tracing is enabled, the window holds
    ///   at most one entry, because stage 3 re-emits `BankConflict` every
    ///   cycle for same-bank window pairs.
    ///
    /// The returned horizon is the minimum over all gates' wake-up edges
    /// (debt paydown completion, retry-timer expiry, the next
    /// [`RefreshParams::window_edge_after`], timing-backend retry edges,
    /// pending data-ready cycles), clamped to `max` and to the remaining
    /// `u64` clock range. Everything the walks *would* do in dead cycles
    /// (FLIT-debt decay) is replayed exactly by
    /// [`HmcSim::fast_forward_jump`].
    pub(crate) fn quiescent_horizon(&self, max: u64) -> u64 {
        let max = max.min(u64::MAX - self.clock);
        if max == 0 {
            return 0;
        }
        let mut horizon = max;
        let flit_budget = self.params.link_flits_per_cycle.map(|f| f.max(1));
        let faults_on = self.faults.is_some();
        let conflicts_enabled = self.tracer.enabled(EventKind::BankConflict);
        let window = self.params.window_for(self.config.banks_per_vault);
        let banks = self.config.banks_per_vault;
        let num_links = self.config.num_links as usize;

        for dev in &self.devices {
            // Packets in flight between quads on a buffered NoC move (or
            // at least contend) every cycle: the device is live until the
            // fabric drains. The crossbar default has no NoC state, so
            // this costs one branch.
            if dev.noc.as_ref().is_some_and(|n| n.occupancy() > 0) {
                return 0;
            }
            for l in 0..num_links {
                let xbar = &dev.xbars[l];
                // A link down for retraining skips its request walk
                // outright until the window lapses — and the first walk
                // after expiry records the completed retraining (the
                // `LinkRetrain` event), which is observable work.
                if faults_on && dev.links[l].retraining {
                    let until = dev.links[l].retrain_until;
                    if until <= self.clock {
                        return 0;
                    }
                    horizon = horizon.min(until - self.clock);
                } else if !xbar.rqst.is_empty() {
                    let debt_dead = flit_budget
                        .map(|f| dev.links[l].debt_dead_cycles(f))
                        .unwrap_or(0);
                    let retry_dead = if faults_on {
                        match xbar.rqst.front() {
                            Some(e) if e.retry_gated(self.clock) => e.retry_until - self.clock,
                            _ => 0,
                        }
                    } else {
                        0
                    };
                    // Debt gating skips the walk outright; once the debt
                    // is sub-budget the walk runs and breaks on the
                    // retry-gated head (zeroing the residual debt), so
                    // the link sleeps until the *later* of the two edges.
                    let dead = debt_dead.max(retry_dead);
                    if dead == 0 {
                        return 0;
                    }
                    horizon = horizon.min(dead);
                }
                if !xbar.rsp.is_empty() {
                    let remote = dev.links[l].remote;
                    if !xbar.rsp_all_parked(|e| remote == Endpoint::Host(e.dest_cube)) {
                        return 0;
                    }
                }
            }
            for quad in &dev.quads {
                for vi in quad.vault_range() {
                    let vault = &dev.vaults[vi];
                    if !vault.rsp.is_empty() {
                        return 0;
                    }
                    // Pending responses wake the vault exactly when the
                    // earliest data-ready edge arrives (DDR backend; the
                    // classic backend keeps `pending` empty).
                    if let Some(ready) = vault.pending_min_ready() {
                        if ready <= self.clock {
                            return 0;
                        }
                        horizon = horizon.min(ready - self.clock);
                    }
                    if vault.rqst.is_empty() {
                        continue;
                    }
                    if conflicts_enabled && window.min(vault.rqst.len()) > 1 {
                        // Stage 3 would re-emit BankConflict each cycle.
                        return 0;
                    }
                    // Every entry the stage-4 walk would scan must be
                    // provably held, either by this vault's refreshed
                    // bank (until the refresh window edge) or by the
                    // timing backend (until its exact retry edge). The
                    // classic backend never blocks between cycles, which
                    // reduces this to the original requirement: the whole
                    // window parked on the bank under refresh.
                    let refreshed_bank = self
                        .params
                        .refresh
                        .and_then(|r| r.bank_under_refresh(self.clock, vi as u16, banks));
                    for i in 0..window.min(vault.rqst.len()) {
                        let e = vault.rqst.get(i).expect("i bounded");
                        if !e.is_decoded() {
                            // Defensive: never fast-forward past an
                            // undecoded entry.
                            return 0;
                        }
                        let refreshed = refreshed_bank == Some(e.dest_bank);
                        let timing_edge =
                            vault
                                .timing
                                .blocked_until(e.dest_bank, e.dest_row, self.clock);
                        if !refreshed && timing_edge.is_none() {
                            // Issuable now (or a per-cycle VaultRspStall
                            // event would fire): the cycle is live.
                            return 0;
                        }
                        let mut edge = timing_edge.unwrap_or(0);
                        if refreshed {
                            edge = edge.max(
                                self.params
                                    .refresh
                                    .expect("refreshed_bank implies refresh")
                                    .window_edge_after(self.clock),
                            );
                        }
                        let dead = edge.saturating_sub(self.clock);
                        if dead == 0 {
                            return 0;
                        }
                        horizon = horizon.min(dead);
                    }
                }
            }
        }
        horizon
    }

    /// Jump the clock across `dead` cycles proven quiescent by
    /// [`HmcSim::quiescent_horizon`], reproducing exactly the state a
    /// stepped engine would reach:
    ///
    /// * FLIT debt decays by `dead` cycles' worth of beat budget
    ///   ([`crate::link::Link::decay_flit_debt`] mirrors the stepped
    ///   walk's decrement-then-zero sequence);
    /// * stage 6 runs once — its per-cycle effects are idempotent across
    ///   dead cycles (the register tick only clears already-cleared RWS
    ///   state, the IBTC mirror rewrites unchanged token counts, and an
    ///   AC map swap can only trigger on the first edge since no register
    ///   writes happen mid-jump) — and the clock/cycle counters advance
    ///   by the full jump;
    /// * when invariant checking is on, the sweep runs once per jump
    ///   rather than once per skipped cycle: on a clean run both schedules
    ///   observe zero violations, and a violating state is caught at the
    ///   jump edge (see DESIGN.md on the per-jump checking policy).
    pub(crate) fn fast_forward_jump(&mut self, dead: u64) {
        debug_assert!(dead >= 1, "zero-length jumps must run stepped");
        if let Some(f) = self.params.link_flits_per_cycle.map(|f| f.max(1)) {
            for dev in &mut self.devices {
                for link in &mut dev.links {
                    // A retraining link's walk is skipped before its
                    // debt paydown, so its debt stays frozen until the
                    // window lapses; decaying it here would diverge
                    // from the stepped engine.
                    if link.flit_debt > 0 && !link.retraining {
                        link.decay_flit_debt(dead, f);
                    }
                }
            }
        }
        self.stage6_update_clock();
        self.clock += dead - 1;
        self.stats.cycles += dead - 1;
        if self.params.check_invariants {
            self.inv_check_cycle();
        }
    }

    /// One serial cycle: the same vault-phase code as the parallel
    /// engine, run inline as a single shard.
    pub(crate) fn clock_cycle_serial(&mut self) {
        self.stage1_child_xbar_requests();
        self.stage2_root_xbar_requests();
        // NoC sub-stage (buffered fabrics only): move in-flight packets
        // one segment and deliver arrivals before the vault phase reads
        // its queues.
        for di in 0..self.devices.len() {
            self.noc_advance(di);
        }

        let inputs = self.cycle_inputs();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.reset_cycle();

        // ---- vault phase: stages 3, 4, and the stage-5 plans ----
        {
            let map = self.map.as_ref();
            let routes = self.routes.as_ref().expect("routes built before clocking");
            for (di, dev) in self.devices.iter_mut().enumerate() {
                let dev_id = di as CubeId;
                let mut remotes = [Endpoint::Unconnected; MAX_LINKS];
                for (li, l) in dev.links.iter().enumerate().take(MAX_LINKS) {
                    remotes[li] = l.remote;
                }
                for (vi, vault) in dev.vaults.iter_mut().enumerate() {
                    tick_vault(
                        vault,
                        dev_id,
                        vi,
                        &inputs,
                        map,
                        &mut scratch.conflicts,
                        &mut scratch.completions,
                        &mut scratch.err_bumps,
                        &mut scratch.row_counts,
                        &mut scratch.fault_counts,
                    );
                    plan_vault_drain(
                        vault,
                        dev_id,
                        &inputs,
                        routes,
                        &remotes,
                        &mut scratch.plans,
                        &mut scratch.plan_counts,
                    );
                }
            }
        }

        // ---- merge: conflicts, then completions, then register bumps ----
        scratch.conflicts.flush_into(&mut self.tracer, self.clock);
        scratch.completions.flush_into(&mut self.tracer, self.clock);
        for di in 0..self.devices.len() {
            if scratch.err_bumps[di] > 0 {
                self.bump_error_register_by(di, scratch.err_bumps[di]);
            }
        }
        self.stats.row_hits += scratch.row_counts[0];
        self.stats.row_misses += scratch.row_counts[1];
        self.stats.precharges += scratch.row_counts[2];
        self.stats.hammer_activations += scratch.fault_counts[0];
        self.stats.bit_flips += scratch.fault_counts[1];
        self.stats.trr_refreshes += scratch.fault_counts[2];
        self.stats.retention_decays += scratch.fault_counts[3];

        // ---- stage 5: roots first, then children (§IV.C.5) ----
        let total_vaults: usize = self.devices.iter().map(|d| d.vaults.len()).sum();
        scratch.plan_index.resize(total_vaults, (0, 0));
        let mut off = 0u32;
        for (flat, &count) in scratch.plan_counts.iter().enumerate() {
            scratch.plan_index[flat] = (off, count);
            off += count;
        }
        let vpd = self.devices[0].vaults.len();
        for root_pass in [true, false] {
            for di in 0..self.devices.len() {
                if self.devices[di].is_root() != root_pass {
                    continue;
                }
                self.forward_xbar_responses(di);
                for vi in 0..self.devices[di].vaults.len() {
                    let (start, len) = scratch.plan_index[di * vpd + vi];
                    let plan = &scratch.plans[start as usize..(start + len) as usize];
                    self.commit_vault_drain(di, vi, plan);
                }
            }
        }

        self.scratch = scratch;
        self.stage6_update_clock();
        if self.params.check_invariants {
            self.inv_check_cycle();
        }
    }

    /// The parallel batch engine: one `thread::scope` hosts `shards`
    /// persistent workers for the whole batch; each cycle, vault
    /// ownership ping-pongs to the workers through bounded channels and
    /// the results merge back in shard (= flat vault) order.
    fn clock_batch_parallel(&mut self, cycles: u64, shards: usize) {
        let nd = self.devices.len();
        let vpd = self.devices[0].vaults.len();
        let total = nd * vpd;

        // Contiguous, balanced shard ranges over the flat vault index.
        let base = total / shards;
        let extra = total % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for w in 0..shards {
            let len = base + usize::from(w < extra);
            ranges.push((start, start + len));
            start += len;
        }

        // Static routing snapshots shared with workers (owned copies, so
        // jobs carry no borrows of `self`). Topology cannot change while
        // clocking; the address map is refreshed every cycle because the
        // AC register may swap it at a stage-6 edge mid-batch.
        let routes = self.routes.as_ref().expect("routes built").clone();
        let mut remotes = [[Endpoint::Unconnected; MAX_LINKS]; MAX_CUBES];
        for (di, d) in self.devices.iter().enumerate() {
            for (li, l) in d.links.iter().enumerate().take(MAX_LINKS) {
                remotes[di][li] = l.remote;
            }
        }

        // Flat vault index -> (shard, piece) for the distribute step, and
        // (offset, len) plan slices for the commit step.
        let mut piece_of = vec![(0u32, 0u32); total];
        let mut held: Vec<Option<ShardJob>> = Vec::with_capacity(shards);
        for (w, &(s, e)) in ranges.iter().enumerate() {
            let mut pieces = Vec::new();
            let mut f = s;
            while f < e {
                let di = f / vpd;
                let vi = f % vpd;
                let n = (e - f).min(vpd - vi);
                for k in 0..n {
                    piece_of[f + k] = (w as u32, pieces.len() as u32);
                }
                pieces.push(Piece {
                    dev: di,
                    first_vault: vi,
                    vaults: Vec::with_capacity(n),
                });
                f += n;
            }
            held.push(Some(ShardJob {
                pieces,
                conflicts: EventStage::new(),
                completions: EventStage::new(),
                plans: Vec::new(),
                plan_counts: Vec::new(),
                err_bumps: [0; MAX_CUBES],
                row_counts: [0; 3],
                fault_counts: [0; 4],
                inputs: CycleInputs::default(),
                map: self.map.clone(),
                routes: routes.clone(),
                remotes,
            }));
        }
        let mut plan_index = vec![(0u32, 0u32, 0u32); total];
        self.scratch.shells.resize_with(nd, Vec::new);

        std::thread::scope(|s| {
            let mut to_worker = Vec::with_capacity(shards);
            let mut from_worker = Vec::with_capacity(shards);
            for _ in 0..shards {
                let (jtx, jrx) = sync_channel::<ShardJob>(1);
                let (rtx, rrx) = sync_channel::<ShardJob>(1);
                to_worker.push(jtx);
                from_worker.push(rrx);
                s.spawn(move || {
                    while let Ok(mut job) = jrx.recv() {
                        run_shard(&mut job);
                        if rtx.send(job).is_err() {
                            break;
                        }
                    }
                });
            }

            let mut done = 0u64;
            while done < cycles {
                // Fast-forward composes with sharding: the horizon scan
                // and jump run on the coordinating thread while workers
                // stay parked on their channel `recv`; stepped cycles
                // resume the ping-pong unchanged.
                if self.params.fast_forward {
                    let dead = self.quiescent_horizon(cycles - done);
                    if dead > 0 {
                        self.fast_forward_jump(dead);
                        done += dead;
                        continue;
                    }
                }
                self.stage1_child_xbar_requests();
                self.stage2_root_xbar_requests();
                // NoC sub-stage on the coordinating thread, before vault
                // ownership moves to the workers: fabric state never
                // crosses a thread boundary, so the shard count cannot
                // perturb it.
                for di in 0..nd {
                    self.noc_advance(di);
                }
                let inputs = self.cycle_inputs();

                // Move every vault out of its device and into its
                // shard's job (shells and piece buffers retain capacity
                // across cycles, so this is swap + moves, no allocation).
                {
                    let devices = &mut self.devices;
                    let shells = &mut self.scratch.shells;
                    for (di, dev) in devices.iter_mut().enumerate() {
                        std::mem::swap(&mut dev.vaults, &mut shells[di]);
                    }
                    for (di, shell) in shells.iter_mut().enumerate() {
                        for (vi, v) in shell.drain(..).enumerate() {
                            let (w, p) = piece_of[di * vpd + vi];
                            held[w as usize]
                                .as_mut()
                                .expect("job held between cycles")
                                .pieces[p as usize]
                                .vaults
                                .push(v);
                        }
                    }
                }

                for (w, tx) in to_worker.iter().enumerate() {
                    let mut job = held[w].take().expect("job held between cycles");
                    job.inputs = inputs;
                    job.map = self.map.clone();
                    tx.send(job).expect("worker alive for the batch");
                }
                for (w, rx) in from_worker.iter().enumerate() {
                    held[w] = Some(rx.recv().expect("worker alive for the batch"));
                }

                // Restore vault ownership in flat order (shards and the
                // pieces within them ascend, so each device's vaults
                // return in index order).
                for job in held.iter_mut().map(|j| j.as_mut().expect("held")) {
                    for piece in &mut job.pieces {
                        for v in piece.vaults.drain(..) {
                            self.devices[piece.dev].vaults.push(v);
                        }
                    }
                }

                // Merge in shard order: all conflicts, then all
                // completions — the serial emission order.
                let clock = self.clock;
                for job in held.iter_mut().map(|j| j.as_mut().expect("held")) {
                    job.conflicts.flush_into(&mut self.tracer, clock);
                }
                for job in held.iter_mut().map(|j| j.as_mut().expect("held")) {
                    job.completions.flush_into(&mut self.tracer, clock);
                }
                for job in held.iter().map(|j| j.as_ref().expect("held")) {
                    for (di, &n) in job.err_bumps.iter().enumerate().take(nd) {
                        if n > 0 {
                            self.bump_error_register_by(di, n);
                        }
                    }
                    self.stats.row_hits += job.row_counts[0];
                    self.stats.row_misses += job.row_counts[1];
                    self.stats.precharges += job.row_counts[2];
                    self.stats.hammer_activations += job.fault_counts[0];
                    self.stats.bit_flips += job.fault_counts[1];
                    self.stats.trr_refreshes += job.fault_counts[2];
                    self.stats.retention_decays += job.fault_counts[3];
                }

                // Stage 5: commit the workers' egress plans serially in
                // root-first device order.
                for (w, job) in held.iter().enumerate() {
                    let job = job.as_ref().expect("held");
                    let (start_flat, _) = ranges[w];
                    let mut off = 0u32;
                    for (k, &count) in job.plan_counts.iter().enumerate() {
                        plan_index[start_flat + k] = (w as u32, off, count);
                        off += count;
                    }
                }
                for root_pass in [true, false] {
                    for di in 0..nd {
                        if self.devices[di].is_root() != root_pass {
                            continue;
                        }
                        self.forward_xbar_responses(di);
                        for vi in 0..vpd {
                            let (w, start, len) = plan_index[di * vpd + vi];
                            let job = held[w as usize].as_ref().expect("held");
                            let plan =
                                &job.plans[start as usize..(start + len) as usize];
                            self.commit_vault_drain(di, vi, plan);
                        }
                    }
                }

                self.stage6_update_clock();
                if self.params.check_invariants {
                    self.inv_check_cycle();
                }
                done += 1;
            }
            drop(to_worker); // workers observe the hangup and exit
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::fault::FaultConfig;
    use crate::noc::NocParams;
    use crate::params::{RefreshParams, SimParams};
    use crate::queue::QueueEntry;
    use crate::sim::HmcSim;
    use crate::timing::TimingParams;
    use hmc_types::{
        ArbitrationKind, BlockSize, Command, DdrTimings, DeviceConfig, InterconnectKind, LinkId,
        Packet, TimingKind,
    };

    fn sim_with(params: SimParams) -> HmcSim {
        let mut s = HmcSim::new(1, DeviceConfig::small())
            .unwrap()
            .with_params(params);
        for l in 0..4 {
            s.connect_host(0, l, s.host_cube_id(0)).unwrap();
        }
        s
    }

    fn ff_params() -> SimParams {
        SimParams {
            fast_forward: true,
            ..SimParams::default()
        }
    }

    fn read_packet(addr: u64, tag: u16, link: LinkId) -> Packet {
        Packet::request(Command::Rd(BlockSize::B64), 0, addr, tag, link, &[]).unwrap()
    }

    /// Drive `sim` through the same bursty schedule every differential
    /// test uses: `bursts` rounds of (send `k` reads, batch-clock a long
    /// mostly-dead gap, drain all responses). Returns every received
    /// (tag, latency) in drain order plus the final (clock, cycles).
    fn bursty_run(sim: &mut HmcSim, bursts: u64, k: u16, gap: u64) -> (Vec<(u16, u64)>, u64, u64) {
        let mut got = Vec::new();
        let mut tag = 0u16;
        for burst in 0..bursts {
            for i in 0..k {
                let link = (i % 4) as LinkId;
                let addr = (burst * 0x9e37 + i as u64 * 0x1_0000) % (1 << 30);
                // A stalled send (full queue, dry tokens, or a link down
                // retraining) clocks one cycle and retries — the same
                // deterministic throttling a real host loop performs.
                let mut tries = 0u32;
                loop {
                    match sim.send(0, link, read_packet(addr, tag, link)) {
                        Ok(()) => break,
                        Err(e) if e.is_stall() => {
                            sim.clock_batch(1).unwrap();
                            tries += 1;
                            assert!(tries < 100_000, "send stalled forever");
                        }
                        Err(e) => panic!("send failed: {e:?}"),
                    }
                }
                tag += 1;
            }
            sim.clock_batch(gap).unwrap();
            for link in 0..4 {
                while let Ok((p, lat)) = sim.recv_with_latency(0, link) {
                    got.push((p.tag(), lat));
                }
            }
        }
        (got, sim.current_clock(), sim.stats().cycles)
    }

    #[test]
    fn empty_sim_fast_forwards_whole_batches() {
        let mut s = sim_with(ff_params());
        s.clock_batch(10_000).unwrap();
        assert_eq!(s.current_clock(), 10_000);
        assert_eq!(s.stats().cycles, 10_000);
        // The horizon itself reports the full remaining span.
        assert_eq!(s.quiescent_horizon(500), 500);
        assert_eq!(s.quiescent_horizon(0), 0, "zero span never jumps");
    }

    #[test]
    fn any_live_stage_forces_stepping() {
        let mut s = sim_with(ff_params());
        s.send(0, 0, read_packet(0, 1, 0)).unwrap();
        assert_eq!(
            s.quiescent_horizon(100),
            0,
            "a pending crossbar request is live"
        );
    }

    #[test]
    fn link_debt_gates_the_jump_by_exact_paydown() {
        let mut s = sim_with(SimParams {
            link_flits_per_cycle: Some(2),
            ..ff_params()
        });
        s.send(0, 0, read_packet(0, 1, 0)).unwrap();
        s.devices[0].links[0].flit_debt = 7;
        // 7 FLITs at 2/cycle: cycles 1..=3 are full-budget skips, the
        // fourth cycle walks with the 1-FLIT remainder.
        assert_eq!(s.quiescent_horizon(100), 3);
        s.devices[0].links[0].flit_debt = 1;
        assert_eq!(s.quiescent_horizon(100), 0, "sub-budget debt walks now");
    }

    #[test]
    fn refresh_parked_window_jumps_to_the_window_edge() {
        let refresh = RefreshParams {
            interval: 100,
            duration: 10,
        };
        let mut s = sim_with(SimParams {
            refresh: Some(refresh),
            ..ff_params()
        });
        let vault = 3u16;
        let banks = s.config.banks_per_vault;
        let bank = refresh
            .bank_under_refresh(0, vault, banks)
            .expect("cycle 0 is inside the first window");
        let mut e = QueueEntry::new(read_packet(0, 9, 0), 1, 0, 0);
        e.dest_vault = vault;
        e.dest_bank = bank;
        s.devices[0].vaults[vault as usize].rqst.push(e).unwrap();

        // Entire (single-entry) window parked on the refreshed bank:
        // dead until the window edge at cycle 10.
        assert_eq!(s.quiescent_horizon(100), 10);

        // A request for any other bank is serviceable immediately.
        let other = (bank + 1) % banks;
        s.devices[0].vaults[vault as usize]
            .rqst
            .get_mut(0)
            .unwrap()
            .dest_bank = other;
        assert_eq!(s.quiescent_horizon(100), 0);

        // Without refresh configured a pending vault request is live.
        s.params.refresh = None;
        s.devices[0].vaults[vault as usize]
            .rqst
            .get_mut(0)
            .unwrap()
            .dest_bank = bank;
        assert_eq!(s.quiescent_horizon(100), 0);
    }

    #[test]
    fn retry_timer_blocks_until_its_expiry_cycle() {
        let mut s = sim_with(ff_params());
        s.enable_fault_injection(FaultConfig {
            packet_error_rate: 0.0,
            retry_cycles: 8,
            ..FaultConfig::default()
        });
        s.send(0, 0, read_packet(0, 1, 0)).unwrap();
        {
            let e = s.devices[0].xbars[0].rqst.get_mut(0).unwrap();
            e.retry_until = 5;
        }
        // Clock 0: gated for exactly 5 cycles; the expiry cycle itself
        // must run stepped (the walk moves the packet that cycle).
        assert_eq!(s.quiescent_horizon(100), 5);
        s.fast_forward_jump(5);
        assert_eq!(s.current_clock(), 5);
        assert_eq!(
            s.quiescent_horizon(100),
            0,
            "the retry fires on the jump-target cycle"
        );
        // An armed timer gates even when the in-flight retransmission is
        // fated to arrive corrupt: the next detection only becomes
        // observable at the timer's expiry.
        {
            let e = s.devices[0].xbars[0].rqst.get_mut(0).unwrap();
            e.retry_until = 50;
            e.corrupt = true;
        }
        assert_eq!(s.quiescent_horizon(100), 45);
        // An undetected corruption with a lapsed timer is live work (the
        // walk performs the detection that cycle).
        s.devices[0].xbars[0].rqst.get_mut(0).unwrap().retry_until = 0;
        assert_eq!(s.quiescent_horizon(100), 0);
    }

    #[test]
    fn retraining_link_sleeps_until_its_window_lapses() {
        let mut s = sim_with(ff_params());
        s.enable_fault_injection(FaultConfig::default());
        s.clock_batch(1).unwrap();
        {
            let link = &mut s.devices[0].links[0];
            link.retrain_until = 40;
            link.retraining = true;
        }
        // Down until cycle 40; the expiry walk records the completed
        // retraining (LinkRetrain), so the horizon stops just short.
        assert_eq!(s.quiescent_horizon(100), 39);
        assert!(
            matches!(
                s.send(0, 0, read_packet(0, 1, 0)),
                Err(hmc_types::HmcError::Stalled { cube: 0, link: 0 })
            ),
            "a retraining link rejects host sends"
        );
        s.clock_batch(39).unwrap();
        assert_eq!(
            s.quiescent_horizon(100),
            0,
            "the pending retraining record is observable work"
        );
        s.clock_batch(1).unwrap();
        assert_eq!(s.stats().link_retrains, 1);
        assert!(!s.devices[0].links[0].retraining);
        assert!(s.send(0, 0, read_packet(0, 1, 0)).is_ok());
    }

    #[test]
    fn horizon_clamps_at_clock_overflow_proximity() {
        let mut s = sim_with(ff_params());
        s.clock = u64::MAX - 5;
        assert_eq!(s.quiescent_horizon(1_000), 5);
        s.fast_forward_jump(5);
        assert_eq!(s.clock, u64::MAX, "jump lands exactly on the ceiling");
        assert_eq!(s.quiescent_horizon(1_000), 0, "no headroom left");
    }

    #[test]
    fn fast_forward_matches_stepped_on_bursty_traffic() {
        let params = SimParams {
            refresh: Some(RefreshParams {
                interval: 64,
                duration: 6,
            }),
            link_flits_per_cycle: Some(4),
            ..SimParams::default()
        };
        let mut stepped = sim_with(params);
        let mut fast = sim_with(SimParams {
            fast_forward: true,
            ..params
        });
        let a = bursty_run(&mut stepped, 6, 12, 400);
        let b = bursty_run(&mut fast, 6, 12, 400);
        assert_eq!(a, b, "fast-forward must be bit-identical to stepped");
    }

    #[test]
    fn sharded_fast_forward_matches_serial_stepped() {
        let params = SimParams {
            refresh: Some(RefreshParams {
                interval: 64,
                duration: 6,
            }),
            ..SimParams::default()
        };
        let mut serial = sim_with(params);
        let mut sharded_ff = sim_with(SimParams {
            fast_forward: true,
            threads: 4,
            ..params
        });
        let a = bursty_run(&mut serial, 5, 16, 300);
        let b = bursty_run(&mut sharded_ff, 5, 16, 300);
        assert_eq!(a, b, "fast-forward composes with the sharded engine");
    }

    #[test]
    fn ddr_timing_edges_gate_the_horizon_exactly() {
        let t = DdrTimings::default();
        let mut s = sim_with(SimParams {
            timing: TimingParams::of(TimingKind::Ddr),
            ..ff_params()
        });
        s.ensure_timing();
        let vault = 2usize;
        // Open row 0 on bank 1 at cycle 0: a miss, ACT at 0, and the
        // bank accepts its next column access at tRCD + tCCD.
        let _ = s.devices[0].vaults[vault].timing.try_issue(1, 0, 0);

        // A same-row request is held by exactly the bank-ready edge.
        let mut e = QueueEntry::new(read_packet(0, 7, 0), 1, 0, 0);
        e.dest_vault = vault as u16;
        e.dest_bank = 1;
        e.dest_row = 0;
        s.devices[0].vaults[vault].rqst.push(e).unwrap();
        let ready = t.t_rcd + t.t_ccd;
        assert_eq!(s.quiescent_horizon(1_000), ready);

        // A row conflict additionally waits out tRAS from the ACT: the
        // first jump lands on the ready edge, the second exactly on the
        // tRAS expiry, where the cycle goes live (PRE can fire).
        s.devices[0].vaults[vault].rqst.get_mut(0).unwrap().dest_row = 3;
        assert_eq!(s.quiescent_horizon(1_000), ready);
        s.fast_forward_jump(ready);
        assert_eq!(s.quiescent_horizon(1_000), t.t_ras - ready);
        s.fast_forward_jump(t.t_ras - ready);
        assert_eq!(s.current_clock(), t.t_ras);
        assert_eq!(
            s.quiescent_horizon(1_000),
            0,
            "the conflict issues at the tRAS edge"
        );
    }

    #[test]
    fn ddr_refresh_boundary_is_a_fast_forward_edge() {
        let refresh = RefreshParams {
            interval: 100,
            duration: 10,
        };
        let mut s = sim_with(SimParams {
            timing: TimingParams::of(TimingKind::Ddr),
            refresh: Some(refresh),
            ..ff_params()
        });
        s.ensure_timing();
        let vault = 3u16;
        let banks = s.config.banks_per_vault;
        let bank = refresh
            .bank_under_refresh(0, vault, banks)
            .expect("cycle 0 is inside the first window");
        let mut e = QueueEntry::new(read_packet(0, 9, 0), 1, 0, 0);
        e.dest_vault = vault;
        e.dest_bank = bank;
        e.dest_row = 0;
        s.devices[0].vaults[vault as usize].rqst.push(e).unwrap();
        // The stage-4 refresh bit and the DDR shadow state agree: the
        // bank is parked until the window edge, and the horizon lands
        // exactly there.
        assert_eq!(s.quiescent_horizon(1_000), 10);
        s.fast_forward_jump(10);
        assert_eq!(s.quiescent_horizon(1_000), 0, "live at the window edge");
    }

    #[test]
    fn ddr_fast_forward_matches_stepped_on_bursty_traffic() {
        let params = SimParams {
            timing: TimingParams::of(TimingKind::Ddr),
            refresh: Some(RefreshParams {
                interval: 64,
                duration: 6,
            }),
            link_flits_per_cycle: Some(4),
            ..SimParams::default()
        };
        let mut stepped = sim_with(params);
        let mut fast = sim_with(SimParams {
            fast_forward: true,
            ..params
        });
        let a = bursty_run(&mut stepped, 6, 12, 400);
        let b = bursty_run(&mut fast, 6, 12, 400);
        assert_eq!(a, b, "DDR fast-forward must be bit-identical to stepped");
        let s = stepped.stats();
        assert!(
            s.row_hits + s.row_misses > 0,
            "the schedule must actually exercise the row-buffer model"
        );
    }

    #[test]
    fn ddr_sharded_fast_forward_matches_serial_stepped() {
        let params = SimParams {
            timing: TimingParams::of(TimingKind::Ddr),
            refresh: Some(RefreshParams {
                interval: 64,
                duration: 6,
            }),
            ..SimParams::default()
        };
        let mut serial = sim_with(params);
        let mut sharded_ff = sim_with(SimParams {
            fast_forward: true,
            threads: 4,
            ..params
        });
        let a = bursty_run(&mut serial, 5, 16, 300);
        let b = bursty_run(&mut sharded_ff, 5, 16, 300);
        assert_eq!(a, b, "DDR fast-forward composes with the sharded engine");
    }

    #[test]
    fn faulty_links_stay_bit_identical_under_fast_forward() {
        let faults = FaultConfig {
            packet_error_rate: 0.3,
            retry_cycles: 11,
            seed: 0xDEAD_BEEF,
            ..FaultConfig::default()
        };
        let mut stepped = sim_with(SimParams::default());
        let mut fast = sim_with(ff_params());
        stepped.enable_fault_injection(faults);
        fast.enable_fault_injection(faults);
        let a = bursty_run(&mut stepped, 6, 8, 250);
        let b = bursty_run(&mut fast, 6, 8, 250);
        assert_eq!(a, b, "retry timers must fire identically across jumps");
        assert!(
            stepped.fault_state().unwrap().detected > 0,
            "the schedule must actually exercise retries"
        );
    }

    fn noc_params(kind: InterconnectKind, arb: ArbitrationKind) -> SimParams {
        SimParams {
            interconnect: NocParams::of(kind).with_arbitration(arb),
            ..SimParams::default()
        }
    }

    #[test]
    fn ring_noc_delivers_everything_the_crossbar_does() {
        let mut xbar = sim_with(SimParams::default());
        let mut ring = sim_with(noc_params(
            InterconnectKind::Ring,
            ArbitrationKind::RoundRobin,
        ));
        let (a, ..) = bursty_run(&mut xbar, 4, 12, 250);
        let (b, ..) = bursty_run(&mut ring, 4, 12, 250);
        let mut ta: Vec<u16> = a.iter().map(|&(t, _)| t).collect();
        let mut tb: Vec<u16> = b.iter().map(|&(t, _)| t).collect();
        ta.sort_unstable();
        tb.sort_unstable();
        assert_eq!(ta, tb, "every request completes on the ring fabric");
        assert!(ring.stats().noc_hops > 0, "cross-quad traffic must hop");
        assert_eq!(xbar.stats().noc_hops, 0, "crossbar never enters the NoC");
    }

    #[test]
    fn ring_fast_forward_matches_stepped() {
        let ring = noc_params(InterconnectKind::Ring, ArbitrationKind::RoundRobin);
        let mut stepped = sim_with(ring);
        let mut fast = sim_with(SimParams {
            fast_forward: true,
            ..ring
        });
        let a = bursty_run(&mut stepped, 5, 12, 300);
        let b = bursty_run(&mut fast, 5, 12, 300);
        assert_eq!(a, b, "jumps must account for in-flight ring hops");
        assert!(stepped.stats().noc_hops > 0);
    }

    #[test]
    fn mesh_fast_forward_matches_stepped() {
        let mesh = noc_params(InterconnectKind::Mesh, ArbitrationKind::OldestFirst);
        let mut stepped = sim_with(mesh);
        let mut fast = sim_with(SimParams {
            fast_forward: true,
            ..mesh
        });
        let a = bursty_run(&mut stepped, 5, 12, 300);
        let b = bursty_run(&mut fast, 5, 12, 300);
        assert_eq!(a, b, "jumps must account for in-flight mesh hops");
        assert!(stepped.stats().noc_hops > 0);
    }

    #[test]
    fn noc_fabrics_stay_deterministic_across_thread_counts() {
        for kind in [InterconnectKind::Ring, InterconnectKind::Mesh] {
            let params = noc_params(kind, ArbitrationKind::RoundRobin);
            let mut serial = sim_with(params);
            let baseline = bursty_run(&mut serial, 4, 12, 250);
            for threads in [2, 4, 8] {
                let mut sharded = sim_with(SimParams { threads, ..params });
                let run = bursty_run(&mut sharded, 4, 12, 250);
                assert_eq!(
                    baseline, run,
                    "{} fabric must be bit-identical with {threads} threads",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn arbitration_policies_survive_fast_forward_bit_identically() {
        for arb in [
            ArbitrationKind::RoundRobin,
            ArbitrationKind::OldestFirst,
            ArbitrationKind::LocalityAware,
        ] {
            let params = noc_params(InterconnectKind::Mesh, arb);
            let mut stepped = sim_with(params);
            let mut fast = sim_with(SimParams {
                fast_forward: true,
                ..params
            });
            let a = bursty_run(&mut stepped, 4, 12, 250);
            let b = bursty_run(&mut fast, 4, 12, 250);
            assert_eq!(a, b, "{} must not depend on jump placement", arb.name());
        }
    }

    #[test]
    fn in_flight_noc_hops_force_stepping() {
        let mut s = sim_with(SimParams {
            fast_forward: true,
            interconnect: NocParams::of(InterconnectKind::Ring),
            ..SimParams::default()
        });
        // Block-stride addresses walk the vault field, so link 0 sends to
        // vaults outside its local quad; after one cycle stage 2 has
        // injected into the NoC but nothing hops until the next cycle.
        for i in 0..8u16 {
            s.send(0, 0, read_packet(u64::from(i) * 0x80, i, 0)).unwrap();
        }
        s.clock().unwrap();
        let occ = s.devices[0].noc.as_ref().unwrap().occupancy();
        assert!(occ > 0, "the schedule must leave packets in flight");
        assert_eq!(s.quiescent_horizon(100), 0, "in-flight hops are live work");
    }

}
