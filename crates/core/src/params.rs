//! Tunable simulation parameters.
//!
//! The HMC specification deliberately leaves the crossbar and vault
//! queueing mechanisms "defined in an ambiguous manner such that
//! implementers may tailor the device to specific requirements" (paper
//! §IV, requirement 3). [`SimParams`] collects the knobs our
//! implementation exposes over that latitude; the defaults reproduce the
//! behaviour used for the paper-shape experiments, and the ablation
//! benches sweep them.

use hmc_types::{CellFaultConfig, LinkFaultConfig};

use crate::noc::NocParams;
use crate::timing::TimingParams;

/// How a vault reacts to a bank conflict inside its per-cycle window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Skip the conflicting packet and keep scanning the window — the
    /// weak-ordering reordering the spec allows vaults ("local vaults may
    /// also reorder queued packets in order to make most efficient use of
    /// bandwidth", §III.C). Same-bank order is still preserved.
    SkipConflicting,
    /// Stop processing the vault for the rest of the cycle at the first
    /// conflict — a strictly in-order vault controller.
    StallQueue,
}

/// Periodic DRAM refresh modelling: every `interval` cycles, each vault
/// takes one bank (rotating, staggered across vaults) out of service for
/// `duration` cycles — the classic per-bank refresh penalty real DRAM
/// stacks pay and the paper's constant-time model omits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshParams {
    /// Cycles between the starts of consecutive refresh windows.
    pub interval: u64,
    /// Cycles a bank stays out of service per window.
    pub duration: u64,
}

impl RefreshParams {
    /// The bank a vault has under refresh at `cycle`, if any. Windows
    /// rotate through the banks and are staggered across vaults so the
    /// whole device never pauses at once.
    pub fn bank_under_refresh(&self, cycle: u64, vault: u16, banks: u16) -> Option<u16> {
        if self.interval == 0 || banks == 0 {
            return None;
        }
        if cycle % self.interval < self.duration.min(self.interval) {
            let window = cycle / self.interval;
            Some(((window + vault as u64) % banks as u64) as u16)
        } else {
            None
        }
    }

    /// The first cycle strictly after `cycle` at which the refresh
    /// schedule changes state: the end of an in-progress window, or the
    /// start of the next window (which also rotates the refreshed bank
    /// when windows run back-to-back, `duration >= interval`). The
    /// fast-forward horizon uses this as the wake-up edge for vaults
    /// parked behind a bank under refresh. Saturates at `u64::MAX` near
    /// clock overflow; a zero interval (refresh inert) never produces an
    /// edge.
    pub fn window_edge_after(&self, cycle: u64) -> u64 {
        if self.interval == 0 {
            return u64::MAX;
        }
        let start = (cycle / self.interval) * self.interval;
        let dur = self.duration.min(self.interval);
        if cycle - start < dur {
            if dur == self.interval {
                start.saturating_add(self.interval)
            } else {
                start.saturating_add(dur)
            }
        } else {
            start.saturating_add(self.interval)
        }
    }
}

/// Per-simulation tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimParams {
    /// Maximum request packets one link's crossbar moves per cycle
    /// (toward vaults or across chained links).
    pub xbar_drain_per_cycle: usize,
    /// Spatial window (in queue slots) a vault scans per cycle for
    /// processable packets and conflict recognition. `None` means one
    /// window per bank (`banks_per_vault` slots).
    pub vault_window: Option<usize>,
    /// Maximum response packets one vault registers with crossbar
    /// response queues per cycle.
    pub rsp_drain_per_cycle: usize,
    /// Chaining hops after which a packet is retired as a zombie
    /// (loopback protection, §V.B).
    pub hop_budget: u32,
    /// Optional SERDES serialization model: FLITs one link direction can
    /// accept per cycle. `None` (default) matches the paper's model,
    /// which arbitrates packets, not link beats; `Some(1)` corresponds to
    /// a full-width 10 Gbps link at a 1.25 GHz logic clock. Zero is
    /// clamped to one beat (a zero budget could never move a packet).
    pub link_flits_per_cycle: Option<usize>,
    /// Vault behaviour on bank conflicts.
    pub conflict_policy: ConflictPolicy,
    /// Optional periodic DRAM refresh (`None` = the paper's model).
    pub refresh: Option<RefreshParams>,
    /// Worker threads for the sharded clock engine. `1` (the default)
    /// runs the fully serial engine; `0` resolves to the machine's
    /// available parallelism; `N > 1` shards vault processing across `N`
    /// scoped threads. All settings produce bit-identical simulations.
    pub threads: usize,
    /// Run the protocol invariant checker every cycle: queue-slot
    /// validity, per-link token conservation, tag uniqueness while in
    /// flight, CRC validity of egress packets, and per-stream order
    /// preservation. `false` (the default) costs a single branch per
    /// cycle and keeps the hot path allocation-free; violations found
    /// while `true` are recorded on the simulation object (see
    /// `HmcSim::invariant_violations`).
    pub check_invariants: bool,
    /// Event-driven fast-forward: before each cycle the engine computes a
    /// quiescence horizon — the earliest cycle at which any queue could
    /// make observable progress (queue-head ready times, refresh window
    /// edges, retry timers, FLIT-debt paydown) — and jumps the clock
    /// straight to it when every stage is provably dead in between,
    /// falling back to stepped execution otherwise. Bit-identical to the
    /// stepped engine (state, stats, trace events) by construction;
    /// `false` (the default) preserves the fully stepped behaviour.
    pub fast_forward: bool,
    /// Vault timing backend: the paper's constant-time conflict window
    /// (the default, bit-identical to the pre-trait engine) or the
    /// cycle-accurate DDR state machine. See `crate::timing`.
    pub timing: TimingParams,
    /// Intra-cube interconnect between quads: the paper's idealized full
    /// crossbar (the default, bit-identical to the pre-NoC engine) or a
    /// buffered ring/mesh fabric with pluggable arbitration. See
    /// `crate::noc`.
    pub interconnect: NocParams,
    /// Cell-level fault injection: RowHammer disturbance and retention
    /// decay in the DRAM array, with optional mitigation. `None` (the
    /// default) keeps the array perfect and the fault path a single
    /// branch per vault access. See `hmc_mem::cellfault`.
    pub cell_faults: Option<CellFaultConfig>,
    /// Link-level fault injection: SERDES transmission corruption
    /// driving the spec's link-retry protocol, with retry exhaustion
    /// escalating to poisoned responses and link retraining. `None`
    /// (the default) keeps the links perfect and the retry path a
    /// single branch per crossbar walk. See `crate::fault`.
    pub link_faults: Option<LinkFaultConfig>,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            // Calibrated so that link count and bank count both shape
            // throughput, as in the paper's Table I: the per-link crossbar
            // drain binds when banks are plentiful (link speedup) and the
            // per-vault conflict window binds when they are not (bank
            // speedup).
            xbar_drain_per_cycle: 32,
            vault_window: None,
            rsp_drain_per_cycle: 64,
            hop_budget: 16,
            link_flits_per_cycle: None,
            conflict_policy: ConflictPolicy::SkipConflicting,
            refresh: None,
            threads: 1,
            check_invariants: false,
            fast_forward: false,
            timing: TimingParams::default(),
            interconnect: NocParams::default(),
            cell_faults: None,
            link_faults: None,
        }
    }
}

impl SimParams {
    /// Resolve the vault window for a device with `banks` banks per vault.
    pub fn window_for(&self, banks: u16) -> usize {
        self.vault_window.unwrap_or(banks as usize).max(1)
    }

    /// Resolve the worker-thread count: `0` means auto-detect from the
    /// machine's available parallelism, anything else is taken as-is.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = SimParams::default();
        assert!(p.xbar_drain_per_cycle >= 1);
        assert!(p.rsp_drain_per_cycle >= 1);
        assert!(p.hop_budget >= 2);
        assert_eq!(p.conflict_policy, ConflictPolicy::SkipConflicting);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn thread_resolution() {
        let p = SimParams::default();
        assert_eq!(p.resolved_threads(), 1);
        let p = SimParams {
            threads: 4,
            ..SimParams::default()
        };
        assert_eq!(p.resolved_threads(), 4);
        let p = SimParams {
            threads: 0,
            ..SimParams::default()
        };
        assert!(p.resolved_threads() >= 1);
    }

    #[test]
    fn window_defaults_to_bank_count() {
        let p = SimParams::default();
        assert_eq!(p.window_for(8), 8);
        assert_eq!(p.window_for(16), 16);
    }

    #[test]
    fn explicit_window_overrides() {
        let p = SimParams {
            vault_window: Some(4),
            ..SimParams::default()
        };
        assert_eq!(p.window_for(16), 4);
    }

    #[test]
    fn refresh_windows_rotate_and_stagger() {
        let r = RefreshParams {
            interval: 100,
            duration: 10,
        };
        // In-window at cycle 5, out at cycle 50.
        assert_eq!(r.bank_under_refresh(5, 0, 8), Some(0));
        assert_eq!(r.bank_under_refresh(50, 0, 8), None);
        // Next window refreshes the next bank.
        assert_eq!(r.bank_under_refresh(105, 0, 8), Some(1));
        // Vault stagger: vault 3 is three banks ahead.
        assert_eq!(r.bank_under_refresh(5, 3, 8), Some(3));
        // Wraps around the bank count.
        assert_eq!(r.bank_under_refresh(5, 9, 8), Some(1));
    }

    #[test]
    fn degenerate_refresh_is_inert() {
        let r = RefreshParams {
            interval: 0,
            duration: 10,
        };
        assert_eq!(r.bank_under_refresh(5, 0, 8), None);
        let r = RefreshParams {
            interval: 100,
            duration: 0,
        };
        assert_eq!(r.bank_under_refresh(5, 0, 8), None);
    }

    #[test]
    fn window_edges_bracket_refresh_windows() {
        let r = RefreshParams {
            interval: 100,
            duration: 10,
        };
        // In-window: the edge is the window's end.
        assert_eq!(r.window_edge_after(0), 10);
        assert_eq!(r.window_edge_after(9), 10);
        // Out-of-window: the edge is the next window's start.
        assert_eq!(r.window_edge_after(10), 100);
        assert_eq!(r.window_edge_after(99), 100);
        assert_eq!(r.window_edge_after(100), 110);
        // Edges are always strictly in the future, so fast-forward jumps
        // make progress.
        for cycle in 0..350 {
            assert!(r.window_edge_after(cycle) > cycle, "cycle {cycle}");
        }
    }

    #[test]
    fn back_to_back_windows_rotate_at_interval_boundaries() {
        // duration >= interval: the device is always in-window; the only
        // edge is the bank rotation at each interval boundary.
        let r = RefreshParams {
            interval: 50,
            duration: 50,
        };
        assert_eq!(r.window_edge_after(0), 50);
        assert_eq!(r.window_edge_after(49), 50);
        assert_eq!(r.window_edge_after(50), 100);
        let r = RefreshParams {
            interval: 50,
            duration: 120,
        };
        assert_eq!(r.window_edge_after(10), 50, "duration clamps to interval");
    }

    #[test]
    fn window_edge_saturates_near_clock_overflow() {
        let r = RefreshParams {
            interval: u64::MAX,
            duration: u64::MAX,
        };
        // start = 0, dur == interval: edge saturates instead of wrapping.
        assert_eq!(r.window_edge_after(5), u64::MAX);
        let r = RefreshParams {
            interval: 1 << 62,
            duration: 1 << 62,
        };
        let near_max = u64::MAX - 10;
        let edge = r.window_edge_after(near_max);
        assert!(edge >= near_max, "no wrap-around");
        // Inert refresh never produces an edge.
        let r = RefreshParams {
            interval: 0,
            duration: 9,
        };
        assert_eq!(r.window_edge_after(123), u64::MAX);
    }

    #[test]
    fn fast_forward_defaults_off() {
        assert!(!SimParams::default().fast_forward);
    }

    #[test]
    fn window_is_never_zero() {
        let p = SimParams {
            vault_window: Some(0),
            ..SimParams::default()
        };
        assert_eq!(p.window_for(8), 1);
    }
}
