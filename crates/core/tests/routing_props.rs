//! Routing properties over the Figure 1 topology presets.
//!
//! For every (source device, destination cube) pair on small chain, ring,
//! mesh, and torus instances, the route table's hop-by-hop paths must be
//! loop-free and minimal — the same length as a breadth-first shortest
//! path computed independently from the link wiring. BFS-built tables make
//! this sound like a tautology, but the property pins the whole pipeline:
//! builder wiring, endpoint bookkeeping, and table indexing, any of which
//! a refactor could silently break.

use std::collections::VecDeque;

use hmc_core::{topology, Endpoint, HmcSim};
use hmc_types::{CubeId, DeviceConfig};

/// All device-device and device-host edges as an adjacency list over cube
/// IDs (hosts included), rebuilt here from the wiring so the reference
/// distances share nothing with `RouteTable`'s own BFS.
fn adjacency(sim: &HmcSim, num_cubes: usize) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); num_cubes];
    for dev in 0..sim.num_devices() {
        let d = sim.device(dev).unwrap();
        for link in &d.links {
            let peer = match link.remote {
                Endpoint::Device(c, _) => c as usize,
                Endpoint::Host(h) => h as usize,
                Endpoint::Unconnected => continue,
            };
            if !adj[dev as usize].contains(&peer) {
                adj[dev as usize].push(peer);
            }
            if !adj[peer].contains(&(dev as usize)) {
                adj[peer].push(dev as usize);
            }
        }
    }
    adj
}

fn bfs_distances(adj: &[Vec<usize>], from: usize) -> Vec<Option<usize>> {
    let mut dist = vec![None; adj.len()];
    dist[from] = Some(0);
    let mut queue = VecDeque::from([from]);
    while let Some(cur) = queue.pop_front() {
        for &next in &adj[cur] {
            if dist[next].is_none() {
                dist[next] = Some(dist[cur].unwrap() + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

/// Follow next-hop links from `source` toward `target`, asserting
/// loop-freedom, and return the hop count.
fn walk(sim: &mut HmcSim, source: CubeId, target: CubeId, label: &str) -> usize {
    let num_devices = sim.num_devices();
    let mut cur = source;
    let mut hops = 0usize;
    let mut visited = vec![false; num_devices as usize];
    loop {
        assert!(
            !visited[cur as usize],
            "{label}: path {source}->{target} revisits device {cur}"
        );
        visited[cur as usize] = true;
        let link = sim
            .route_table()
            .unwrap()
            .next_hop(cur, target)
            .unwrap_or_else(|| panic!("{label}: no route {cur}->{target}"));
        let remote = sim.device(cur).unwrap().links[link as usize].remote;
        hops += 1;
        match remote {
            Endpoint::Device(c, _) => {
                if c == target {
                    return hops;
                }
                cur = c;
            }
            Endpoint::Host(h) => {
                assert_eq!(h, target, "{label}: hop from {cur} leads to the wrong host");
                return hops;
            }
            Endpoint::Unconnected => {
                panic!("{label}: route {cur}->{target} points at an unconnected link")
            }
        }
        assert!(
            hops <= num_devices as usize + 1,
            "{label}: path {source}->{target} exceeds the device count"
        );
    }
}

/// The property: every routable pair's walked path is loop-free (checked
/// in `walk`) and exactly as long as the independent BFS shortest path.
fn assert_minimal_loop_free_routes(mut sim: HmcSim, label: &str) {
    let n = sim.num_devices() as usize;
    let host = sim.host_cube_id(0) as usize;
    let num_cubes = sim.route_table().unwrap().num_targets();
    assert!(host < num_cubes);
    let adj = adjacency(&sim, num_cubes);

    let mut checked = 0usize;
    for source in 0..n {
        let dist = bfs_distances(&adj, source);
        for target in (0..n).chain([host]) {
            if target == source {
                assert_eq!(
                    sim.route_table().unwrap().next_hop(source as CubeId, target as CubeId),
                    None,
                    "{label}: self-route must be None"
                );
                continue;
            }
            let shortest = dist[target]
                .unwrap_or_else(|| panic!("{label}: {source}->{target} unreachable in wiring"));
            let walked = walk(&mut sim, source as CubeId, target as CubeId, label);
            assert_eq!(
                walked, shortest,
                "{label}: path {source}->{target} is {walked} hops, shortest is {shortest}"
            );
            checked += 1;
        }
    }
    assert!(checked >= n * n, "{label}: property checked too few pairs");
}

fn small_sim(n: u8) -> HmcSim {
    HmcSim::new(n, DeviceConfig::small()).unwrap()
}

fn eight_link_sim(n: u8) -> HmcSim {
    HmcSim::new(
        n,
        DeviceConfig::paper_8link_8bank_4gb().with_queue_depths(8, 4),
    )
    .unwrap()
}

#[test]
fn chain_routes_are_loop_free_and_minimal() {
    for n in [1u8, 2, 3, 4, 6] {
        let mut sim = small_sim(n);
        let host = sim.host_cube_id(0);
        topology::build_chain(&mut sim, host).unwrap();
        assert_minimal_loop_free_routes(sim, &format!("chain[{n}]"));
    }
}

#[test]
fn ring_routes_are_loop_free_and_minimal() {
    // Odd and even rings: even rings have equal-length two-way ties the
    // table must break consistently; odd rings have a strict shorter way.
    for n in [3u8, 4, 5, 6] {
        let mut sim = small_sim(n);
        let host = sim.host_cube_id(0);
        topology::build_ring(&mut sim, host).unwrap();
        assert_minimal_loop_free_routes(sim, &format!("ring[{n}]"));
    }
}

#[test]
fn mesh_routes_are_loop_free_and_minimal() {
    for (w, h) in [(2u8, 2u8), (3, 2), (2, 3), (3, 1), (1, 4)] {
        let mut sim = small_sim(w * h);
        let host = sim.host_cube_id(0);
        topology::build_mesh(&mut sim, w, h, host).unwrap();
        assert_minimal_loop_free_routes(sim, &format!("mesh[{w}x{h}]"));
    }
}

#[test]
fn torus_routes_are_loop_free_and_minimal() {
    // 2x2 is the largest square torus the 3-bit CUB space admits; also
    // check the rectangular 2x3 (6 devices + host = 7 cubes).
    for (w, h) in [(2u8, 2u8), (3, 2)] {
        let mut sim = eight_link_sim(w * h);
        let host = sim.host_cube_id(0);
        topology::build_torus(&mut sim, w, h, host).unwrap();
        assert_minimal_loop_free_routes(sim, &format!("torus[{w}x{h}]"));
    }
}

#[test]
fn the_simple_topology_is_all_single_hop() {
    let mut sim = small_sim(1);
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    assert_eq!(sim.route_table().unwrap().next_hop(0, host), Some(0));
    assert_minimal_loop_free_routes(sim, "simple[1]");
}
