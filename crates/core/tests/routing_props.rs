//! Routing properties over the Figure 1 topology presets and the
//! intra-cube NoC fabrics.
//!
//! For every (source device, destination cube) pair on small chain, ring,
//! mesh, and torus instances, the route table's hop-by-hop paths must be
//! loop-free and minimal — the same length as a breadth-first shortest
//! path computed independently from the link wiring. BFS-built tables make
//! this sound like a tautology, but the property pins the whole pipeline:
//! builder wiring, endpoint bookkeeping, and table indexing, any of which
//! a refactor could silently break.
//!
//! The proptests at the bottom check the same contract one level down,
//! for the intra-cube quad fabrics ([`hmc_core::noc`]): ring and mesh
//! next-hop routes are loop-free and exactly as long as an independent
//! BFS over the fabric wiring, and a buffered [`NocState`] drains from
//! *any* reachable buffer state — including completely full planes and
//! transiently refusing delivery queues — in bounded time (the
//! deadlock-freedom claim the virtual-channel planes and the rotation
//! escape exist to uphold).

// The NoC delivery closures echo `PacketQueue::push`'s refused-entry
// return, which carries the same large-variant trade-off.
#![allow(clippy::result_large_err)]

use std::collections::VecDeque;

use hmc_core::noc::{NocClass, NocDest};
use hmc_core::{
    topology, Endpoint, HmcSim, Interconnect, MeshTopology, NocParams, NocState, QueueEntry,
    RingTopology,
};
use hmc_types::config::VAULTS_PER_QUAD;
use hmc_types::{
    ArbitrationKind, BlockSize, Command, CubeId, DeviceConfig, InterconnectKind, Packet,
};
use proptest::prelude::*;

/// All device-device and device-host edges as an adjacency list over cube
/// IDs (hosts included), rebuilt here from the wiring so the reference
/// distances share nothing with `RouteTable`'s own BFS.
fn adjacency(sim: &HmcSim, num_cubes: usize) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); num_cubes];
    for dev in 0..sim.num_devices() {
        let d = sim.device(dev).unwrap();
        for link in &d.links {
            let peer = match link.remote {
                Endpoint::Device(c, _) => c as usize,
                Endpoint::Host(h) => h as usize,
                Endpoint::Unconnected => continue,
            };
            if !adj[dev as usize].contains(&peer) {
                adj[dev as usize].push(peer);
            }
            if !adj[peer].contains(&(dev as usize)) {
                adj[peer].push(dev as usize);
            }
        }
    }
    adj
}

fn bfs_distances(adj: &[Vec<usize>], from: usize) -> Vec<Option<usize>> {
    let mut dist = vec![None; adj.len()];
    dist[from] = Some(0);
    let mut queue = VecDeque::from([from]);
    while let Some(cur) = queue.pop_front() {
        for &next in &adj[cur] {
            if dist[next].is_none() {
                dist[next] = Some(dist[cur].unwrap() + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

/// Follow next-hop links from `source` toward `target`, asserting
/// loop-freedom, and return the hop count.
fn walk(sim: &mut HmcSim, source: CubeId, target: CubeId, label: &str) -> usize {
    let num_devices = sim.num_devices();
    let mut cur = source;
    let mut hops = 0usize;
    let mut visited = vec![false; num_devices as usize];
    loop {
        assert!(
            !visited[cur as usize],
            "{label}: path {source}->{target} revisits device {cur}"
        );
        visited[cur as usize] = true;
        let link = sim
            .route_table()
            .unwrap()
            .next_hop(cur, target)
            .unwrap_or_else(|| panic!("{label}: no route {cur}->{target}"));
        let remote = sim.device(cur).unwrap().links[link as usize].remote;
        hops += 1;
        match remote {
            Endpoint::Device(c, _) => {
                if c == target {
                    return hops;
                }
                cur = c;
            }
            Endpoint::Host(h) => {
                assert_eq!(h, target, "{label}: hop from {cur} leads to the wrong host");
                return hops;
            }
            Endpoint::Unconnected => {
                panic!("{label}: route {cur}->{target} points at an unconnected link")
            }
        }
        assert!(
            hops <= num_devices as usize + 1,
            "{label}: path {source}->{target} exceeds the device count"
        );
    }
}

/// The property: every routable pair's walked path is loop-free (checked
/// in `walk`) and exactly as long as the independent BFS shortest path.
fn assert_minimal_loop_free_routes(mut sim: HmcSim, label: &str) {
    let n = sim.num_devices() as usize;
    let host = sim.host_cube_id(0) as usize;
    let num_cubes = sim.route_table().unwrap().num_targets();
    assert!(host < num_cubes);
    let adj = adjacency(&sim, num_cubes);

    let mut checked = 0usize;
    for source in 0..n {
        let dist = bfs_distances(&adj, source);
        for target in (0..n).chain([host]) {
            if target == source {
                assert_eq!(
                    sim.route_table().unwrap().next_hop(source as CubeId, target as CubeId),
                    None,
                    "{label}: self-route must be None"
                );
                continue;
            }
            let shortest = dist[target]
                .unwrap_or_else(|| panic!("{label}: {source}->{target} unreachable in wiring"));
            let walked = walk(&mut sim, source as CubeId, target as CubeId, label);
            assert_eq!(
                walked, shortest,
                "{label}: path {source}->{target} is {walked} hops, shortest is {shortest}"
            );
            checked += 1;
        }
    }
    assert!(checked >= n * n, "{label}: property checked too few pairs");
}

fn small_sim(n: u8) -> HmcSim {
    HmcSim::new(n, DeviceConfig::small()).unwrap()
}

fn eight_link_sim(n: u8) -> HmcSim {
    HmcSim::new(
        n,
        DeviceConfig::paper_8link_8bank_4gb().with_queue_depths(8, 4),
    )
    .unwrap()
}

#[test]
fn chain_routes_are_loop_free_and_minimal() {
    for n in [1u8, 2, 3, 4, 6] {
        let mut sim = small_sim(n);
        let host = sim.host_cube_id(0);
        topology::build_chain(&mut sim, host).unwrap();
        assert_minimal_loop_free_routes(sim, &format!("chain[{n}]"));
    }
}

#[test]
fn ring_routes_are_loop_free_and_minimal() {
    // Odd and even rings: even rings have equal-length two-way ties the
    // table must break consistently; odd rings have a strict shorter way.
    for n in [3u8, 4, 5, 6] {
        let mut sim = small_sim(n);
        let host = sim.host_cube_id(0);
        topology::build_ring(&mut sim, host).unwrap();
        assert_minimal_loop_free_routes(sim, &format!("ring[{n}]"));
    }
}

#[test]
fn mesh_routes_are_loop_free_and_minimal() {
    for (w, h) in [(2u8, 2u8), (3, 2), (2, 3), (3, 1), (1, 4)] {
        let mut sim = small_sim(w * h);
        let host = sim.host_cube_id(0);
        topology::build_mesh(&mut sim, w, h, host).unwrap();
        assert_minimal_loop_free_routes(sim, &format!("mesh[{w}x{h}]"));
    }
}

#[test]
fn torus_routes_are_loop_free_and_minimal() {
    // 2x2 is the largest square torus the 3-bit CUB space admits; also
    // check the rectangular 2x3 (6 devices + host = 7 cubes).
    for (w, h) in [(2u8, 2u8), (3, 2)] {
        let mut sim = eight_link_sim(w * h);
        let host = sim.host_cube_id(0);
        topology::build_torus(&mut sim, w, h, host).unwrap();
        assert_minimal_loop_free_routes(sim, &format!("torus[{w}x{h}]"));
    }
}

#[test]
fn the_simple_topology_is_all_single_hop() {
    let mut sim = small_sim(1);
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    assert_eq!(sim.route_table().unwrap().next_hop(0, host), Some(0));
    assert_minimal_loop_free_routes(sim, "simple[1]");
}

// --- Intra-cube NoC fabric properties -----------------------------------

/// Walk `fabric.next_hop` from `from` to `dest`, asserting loop-freedom,
/// and return the hop count.
fn walk_fabric(fabric: &impl Interconnect, from: u8, dest: u8, label: &str) -> u32 {
    let nq = fabric.num_quads();
    let mut visited = vec![false; nq as usize];
    let mut cur = from;
    let mut steps = 0u32;
    while cur != dest {
        assert!(
            !visited[cur as usize],
            "{label}: path {from}->{dest} revisits quad {cur}"
        );
        visited[cur as usize] = true;
        cur = fabric.next_hop(cur, dest);
        steps += 1;
        assert!(steps <= nq as u32, "{label}: path {from}->{dest} exceeds quad count");
    }
    steps
}

/// Every (from, dest) pair: the walked path is loop-free, its length is
/// `hops(from, dest)`, and that length equals the independent BFS
/// shortest distance over `adj` (the wiring the fabric admits).
fn assert_fabric_minimal(fabric: &impl Interconnect, adj: &[Vec<usize>], label: &str) {
    let nq = fabric.num_quads();
    for from in 0..nq {
        let dist = bfs_distances(adj, from as usize);
        for dest in 0..nq {
            let walked = walk_fabric(fabric, from, dest, label);
            assert_eq!(walked, fabric.hops(from, dest), "{label}: hops({from},{dest}) lies");
            let shortest = dist[dest as usize]
                .unwrap_or_else(|| panic!("{label}: {from}->{dest} unreachable in wiring"));
            assert_eq!(
                walked as usize, shortest,
                "{label}: path {from}->{dest} is {walked} hops, shortest is {shortest}"
            );
        }
    }
}

/// A request/response packet for fabric tests; `cycle` seeds
/// `entry_cycle` so OldestFirst arbitration sees distinct ages.
fn fabric_entry(tag: u16, cycle: u64) -> QueueEntry {
    let p = Packet::request(Command::Rd(BlockSize::B32), 0, 0, tag % 512, 0, &[]).unwrap();
    QueueEntry::new(p, 0, 0, cycle)
}

proptest! {
    /// Unidirectional ring routes match a directed BFS over the only
    /// wiring the ring admits (quad q forwards to q+1 mod Q alone).
    #[test]
    fn ring_fabric_routes_are_loop_free_and_minimal(quads in 1u8..=32) {
        let ring = RingTopology::new(quads);
        let adj: Vec<Vec<usize>> = (0..quads as usize)
            .map(|q| vec![(q + 1) % quads as usize])
            .collect();
        assert_fabric_minimal(&ring, &adj, &format!("noc-ring[{quads}]"));
    }

    /// XY-routed mesh routes match an undirected BFS over the grid's
    /// neighbor wiring, for every geometry the constructor accepts.
    #[test]
    fn mesh_fabric_routes_are_loop_free_and_minimal(rows in 1u8..=4, cols in 1u8..=8) {
        let mesh = MeshTopology::new(rows, cols);
        let nq = (rows * cols) as usize;
        let mut adj = vec![Vec::new(); nq];
        for r in 0..rows as usize {
            for c in 0..cols as usize {
                let q = r * cols as usize + c;
                if c + 1 < cols as usize {
                    adj[q].push(q + 1);
                    adj[q + 1].push(q);
                }
                if r + 1 < rows as usize {
                    adj[q].push(q + cols as usize);
                    adj[q + cols as usize].push(q);
                }
            }
        }
        assert_fabric_minimal(&mesh, &adj, &format!("noc-mesh[{rows}x{cols}]"));
    }

    /// Deadlock freedom: from any reachable buffer state — up to and
    /// including every segment buffer of both planes packed full of
    /// through-traffic — a buffered fabric whose delivery queues accept
    /// (after an optional transient refusal window) drains to zero
    /// occupancy in bounded time, delivering every packet to the vault
    /// or link it was injected for.
    #[test]
    fn buffered_fabrics_drain_from_any_full_state(
        (kind, quads) in prop_oneof![
            (Just(InterconnectKind::Ring), 2u8..=8),
            (Just(InterconnectKind::Mesh), 2u8..=8),
        ],
        arbitration in prop_oneof![
            Just(ArbitrationKind::RoundRobin),
            Just(ArbitrationKind::OldestFirst),
            Just(ArbitrationKind::LocalityAware),
        ],
        buffer_depth in 1u16..=3,
        quad_drain in 1u16..=4,
        refuse_cycles in 0u64..=6,
        raw_packets in prop::collection::vec((any::<bool>(), 0u8..64, 0u8..64, 0u8..4), 0..96),
    ) {
        let params = NocParams { kind, arbitration, buffer_depth, quad_drain };
        let num_vaults = quads as u16 * VAULTS_PER_QUAD;
        let mut noc = NocState::new(&params, quads, num_vaults)
            .expect("ring/mesh params always build a state");

        // Fill buffers from the raw tuples: remap the destination away
        // from the source quad (local traffic bypasses the NoC) and
        // skip packets whose segment buffer is already full — vecs long
        // enough to pack every buffer of both planes are in range, so
        // the completely-full state is exercised.
        let mut want_vaults: Vec<u16> = Vec::new();
        let mut want_links: Vec<u8> = Vec::new();
        for (i, &(response, src, dst, lane)) in raw_packets.iter().enumerate() {
            let src = src % quads;
            let dest_quad = (src + 1 + dst % (quads - 1)) % quads;
            let dest = if response {
                NocDest::ToLink(dest_quad)
            } else {
                NocDest::ToVault(dest_quad as u16 * VAULTS_PER_QUAD + lane as u16 % VAULTS_PER_QUAD)
            };
            if !noc.has_room(src, dest.class()) {
                continue;
            }
            match dest {
                NocDest::ToVault(v) => want_vaults.push(v),
                NocDest::ToLink(l) => want_links.push(l),
            }
            noc.inject(src, dest, fabric_entry(i as u16, i as u64), 0);
        }
        let injected = noc.occupancy();
        prop_assert_eq!(injected, want_vaults.len() + want_links.len());

        // Worst-case service time is far below this: every packet needs
        // at most `quads` hops, and each cycle with accepting sinks
        // either moves a packet or triggers the rotation escape.
        let bound = refuse_cycles + (injected as u64 + 1) * (quads as u64 + 1) * 4 + 16;
        let mut got_vaults: Vec<u16> = Vec::new();
        let mut got_links: Vec<u8> = Vec::new();
        let mut clock = 0u64;
        while noc.occupancy() > 0 {
            clock += 1;
            prop_assert!(
                clock <= bound,
                "{kind:?}[{quads}]/{arbitration:?} depth {buffer_depth} drain {quad_drain}: \
                 {} of {injected} packets still buffered after {bound} cycles",
                noc.occupancy()
            );
            let accepting = clock > refuse_cycles;
            noc.advance(
                clock,
                |v, e| if accepting { got_vaults.push(v); Ok(()) } else { Err(e) },
                |l, e| if accepting { got_links.push(l); Ok(()) } else { Err(e) },
                false,
                false,
            );
        }

        // Conservation: exactly the injected packets came out, each at
        // its own destination (order across streams is unconstrained).
        got_vaults.sort_unstable();
        want_vaults.sort_unstable();
        prop_assert_eq!(got_vaults, want_vaults);
        got_links.sort_unstable();
        want_links.sort_unstable();
        prop_assert_eq!(got_links, want_links);

        // Drained fabrics accept fresh traffic on both planes again.
        for q in 0..quads {
            prop_assert!(noc.has_room(q, NocClass::Request));
            prop_assert!(noc.has_room(q, NocClass::Response));
        }
    }
}
