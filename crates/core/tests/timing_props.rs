//! Property tests over the DDR vault-timing state machine.
//!
//! Generated command sequences — random (bank, row) accesses with random
//! inter-arrival gaps, under randomly drawn tRCD/tRP/tRAS/tCAS/tCCD
//! constraint sets and both page policies — are driven through
//! [`DdrTiming`] the way the engine drives it: follow `blocked_until`
//! retry edges until admission, then `try_issue`. The grants must then
//! satisfy the DDR command-spacing rules by construction:
//!
//! * ACT to column command ≥ tRCD, PRE to ACT ≥ tRP, ACT to PRE ≥ tRAS,
//!   column to column on one bank ≥ tCCD;
//! * a row is never accessed while its bank is precharged (every access
//!   to a closed bank activates first; hits only ever target the row an
//!   earlier grant left open);
//! * a completed refresh window closes every open row in the bank it
//!   sweeps (the first access after it can never be a row hit), and no
//!   access issues while the bank is parked inside the window.

use proptest::prelude::*;

use hmc_core::timing::{DdrTiming, IssueGrant, RowOutcome, VaultTiming};
use hmc_core::RefreshParams;
use hmc_types::{Cycle, DdrTimings, PagePolicy};

const NBANKS: u16 = 8;

/// One admitted access: where it issued and what the backend granted.
#[derive(Debug, Clone, Copy)]
struct Issued {
    bank: u16,
    row: u64,
    at: Cycle,
    grant: IssueGrant,
}

/// Drive a sequence through the backend exactly as the engine walk
/// does: advance by the requested gap, chase `blocked_until` edges to
/// the admission cycle, then commit. Edge-chasing doubles as the
/// exactness property — every returned edge must be a strict advance
/// and the chain must converge in a few hops (ready-at, then tRAS,
/// then at most a refresh window).
fn drive(
    t: DdrTimings,
    refresh: Option<RefreshParams>,
    seq: &[(u16, u64, u64)],
) -> Vec<Issued> {
    let mut d = DdrTiming::new(t, 0, NBANKS, refresh);
    let mut cycle: Cycle = 0;
    let mut out = Vec::with_capacity(seq.len());
    for &(bank, row, gap) in seq {
        cycle += gap;
        let mut hops = 0;
        while let Some(edge) = d.blocked_until(bank, row, cycle) {
            assert!(edge > cycle, "retry edge {edge} must advance past {cycle}");
            cycle = edge;
            hops += 1;
            assert!(hops <= 4, "retry edges must converge (bank {bank} row {row})");
        }
        let grant = d.try_issue(bank, row, cycle);
        out.push(Issued { bank, row, at: cycle, grant });
    }
    out
}

/// Per-bank spacing bookkeeping while sweeping grants in issue order.
#[derive(Debug, Clone, Copy, Default)]
struct BankTrace {
    last_act: Option<Cycle>,
    last_pre: Option<Cycle>,
    last_rw: Option<Cycle>,
    last_ready: Option<Cycle>,
}

/// Assert every DDR spacing constraint over a grant stream.
fn check_spacing(t: DdrTimings, grants: &[Issued]) {
    let mut banks = [BankTrace::default(); NBANKS as usize];
    for g in grants {
        let b = &mut banks[g.bank as usize];
        let gr = g.grant;
        // A conflict's PRE leads its ACT; closed-page auto-PRE trails
        // the column command. Order the within-grant events accordingly.
        let (leading_pre, trailing_pre) = match gr.outcome {
            RowOutcome::Conflict => (gr.pre_cycle, None),
            _ => (None, gr.pre_cycle),
        };
        if let Some(pre) = leading_pre {
            let act = b.last_act.expect("conflict implies an earlier ACT");
            assert!(pre >= act + t.t_ras, "tRAS: PRE {pre} < ACT {act} + {}", t.t_ras);
            b.last_pre = Some(pre);
        }
        if let Some(act) = gr.act_cycle {
            if let Some(pre) = b.last_pre {
                assert!(act >= pre + t.t_rp, "tRP: ACT {act} < PRE {pre} + {}", t.t_rp);
            }
            assert!(
                gr.rw_cycle >= act + t.t_rcd,
                "tRCD: RW {} < ACT {act} + {}",
                gr.rw_cycle,
                t.t_rcd
            );
            b.last_act = Some(act);
        }
        if let Some(rw) = b.last_rw {
            assert!(
                gr.rw_cycle >= rw + t.t_ccd,
                "tCCD: RW {} < RW {rw} + {}",
                gr.rw_cycle,
                t.t_ccd
            );
        }
        b.last_rw = Some(gr.rw_cycle);
        if let Some(pre) = trailing_pre {
            let act = gr.act_cycle.expect("auto-PRE implies this grant's ACT");
            assert!(pre >= act + t.t_ras, "tRAS: auto-PRE {pre} < ACT {act} + {}", t.t_ras);
            b.last_pre = Some(pre);
        }
        // CAS latency is definitional, and per-bank data readiness is
        // strictly monotone in issue order — the property the vault's
        // pending-release queue (and per-bank delivery order) rests on.
        assert_eq!(gr.data_ready, gr.rw_cycle + t.t_cas, "tCAS");
        if let Some(ready) = b.last_ready {
            assert!(gr.data_ready > ready, "per-bank data_ready must advance");
        }
        b.last_ready = Some(gr.data_ready);
    }
}

fn timings(rcd: u64, rp: u64, ras: u64, cas: u64, ccd: u64, policy: PagePolicy) -> DdrTimings {
    DdrTimings {
        t_rcd: rcd,
        t_rp: rp,
        t_ras: ras,
        t_cas: cas,
        t_ccd: ccd,
        page_policy: policy,
    }
}

/// Refresh windows for `bank` (vault 0) under `r`: window `w` starts at
/// `w * interval`, runs `min(duration, interval)` cycles, and sweeps
/// bank `w % NBANKS`. Independent reimplementation of the backend's
/// schedule, as the oracle for the refresh properties.
fn windows_for_bank(r: RefreshParams, bank: u16, until: Cycle) -> Vec<(Cycle, Cycle)> {
    let dur = r.duration.min(r.interval);
    (0..=until / r.interval)
        .filter(|w| (w % NBANKS as u64) as u16 == bank)
        .map(|w| {
            let start = w * r.interval;
            let end = if dur == r.interval { start + r.interval } else { start + dur };
            (start, end)
        })
        .collect()
}

proptest! {
    #[test]
    fn generated_sequences_never_violate_command_spacing(
        seq in prop::collection::vec((0u16..NBANKS, 0u64..4, 0u64..40), 1..48),
        (rcd, rp, ras) in (1u64..24, 1u64..24, 1u64..48),
        (cas, ccd) in (1u64..24, 1u64..8),
        policy in prop_oneof![Just(PagePolicy::Open), Just(PagePolicy::Closed)],
    ) {
        let t = timings(rcd, rp, ras, cas, ccd, policy);
        check_spacing(t, &drive(t, None, &seq));
    }

    #[test]
    fn a_row_is_never_accessed_while_precharged(
        seq in prop::collection::vec((0u16..NBANKS, 0u64..4, 0u64..40), 1..48),
        (rcd, rp, ras) in (1u64..24, 1u64..24, 1u64..48),
    ) {
        // Open-page, no refresh: bank state is fully determined by the
        // grant stream, so track it independently and demand agreement.
        let t = timings(rcd, rp, ras, 14, 4, PagePolicy::Open);
        let mut open: [Option<u64>; NBANKS as usize] = [None; NBANKS as usize];
        for g in drive(t, None, &seq) {
            let slot = g.bank as usize;
            match open[slot] {
                None => {
                    // Precharged bank: the access must activate, never
                    // hit, never precharge.
                    prop_assert_eq!(g.grant.outcome, RowOutcome::Miss);
                    prop_assert!(g.grant.act_cycle.is_some());
                    prop_assert!(g.grant.pre_cycle.is_none());
                }
                Some(row) if row == g.row => {
                    prop_assert_eq!(g.grant.outcome, RowOutcome::Hit);
                    prop_assert!(g.grant.act_cycle.is_none());
                }
                Some(_) => {
                    prop_assert_eq!(g.grant.outcome, RowOutcome::Conflict);
                    prop_assert!(g.grant.pre_cycle.is_some());
                    prop_assert!(g.grant.act_cycle.is_some());
                }
            }
            open[slot] = Some(g.row);
        }
    }

    #[test]
    fn closed_page_policy_never_leaves_a_row_to_hit(
        seq in prop::collection::vec((0u16..NBANKS, 0u64..4, 0u64..40), 1..48),
        (rcd, rp, ras) in (1u64..24, 1u64..24, 1u64..48),
    ) {
        let t = timings(rcd, rp, ras, 14, 4, PagePolicy::Closed);
        for g in drive(t, None, &seq) {
            prop_assert_eq!(g.grant.outcome, RowOutcome::Miss);
            prop_assert!(g.grant.act_cycle.is_some(), "every access activates");
            prop_assert!(g.grant.pre_cycle.is_some(), "every access auto-precharges");
        }
    }

    #[test]
    fn refresh_closes_all_open_rows(
        seq in prop::collection::vec((0u16..NBANKS, 0u64..4, 0u64..60), 4..48),
        (interval, duration) in (50u64..400, 1u64..50),
    ) {
        let t = timings(8, 8, 20, 8, 2, PagePolicy::Open);
        let r = RefreshParams { interval, duration };
        let grants = drive(t, Some(r), &seq);
        check_spacing(t, &grants);
        let mut last_at: [Option<Cycle>; NBANKS as usize] = [None; NBANKS as usize];
        for g in &grants {
            let slot = g.bank as usize;
            let windows = windows_for_bank(r, g.bank, g.at);
            // The bank is parked for the whole window: nothing issues
            // inside one.
            prop_assert!(
                windows.iter().all(|&(s, e)| g.at < s || g.at >= e),
                "issue at {} inside a refresh window of bank {}",
                g.at,
                g.bank
            );
            // A window completed since the previous access ⇒ whatever
            // row was open is gone, so this access cannot hit.
            let swept = windows
                .iter()
                .any(|&(_, e)| last_at[slot].is_some_and(|p| e > p && e <= g.at));
            if swept {
                prop_assert_ne!(
                    g.grant.outcome,
                    RowOutcome::Hit,
                    "bank {} hit at {} across a refresh window",
                    g.bank,
                    g.at
                );
            }
            last_at[slot] = Some(g.at);
        }
    }
}
