//! End-to-end loopback tests for the serving stack.
//!
//! The load-bearing one is the differential check: a fixed workload run
//! through a real `hmc-serve` server over a Unix-domain socket must
//! produce responses bit-identical (tag, data, ordering, latency) to the
//! in-process `hmc_host` driver on the same seed and preset. The rest
//! cover the concurrency and backpressure contract: concurrent sessions
//! with zero lost or duplicated tags, typed BUSY on full queues, the
//! admission cap, idle reaping, and the graceful drain.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use hmc_core::{topology, HmcSim};
use hmc_host::{run_workload_captured, Host, RunConfig};
use hmc_serve::{
    workload_to_wire, Client, DrainOutcome, Server, ServerConfig, SessionManager, SubmitResult,
};
use hmc_types::{BusyReason, DeviceConfig, Frame, WireErrorCode, WireOp, WireResponse};
use hmc_workloads::WorkloadSpec;

fn socket_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hmc-serve-test-{}-{name}.sock", std::process::id()))
}

fn start_server(name: &str, cfg: ServerConfig) -> (PathBuf, Server) {
    let path = socket_path(name);
    let mut server = Server::new(cfg);
    server.bind_uds(&path).unwrap();
    (path, server)
}

/// Poll a session dry: collect responses until the server reports the
/// session idle with nothing outstanding and nothing left buffered.
fn poll_until_idle(client: &mut Client, session: u64, deadline: Duration) -> Vec<WireResponse> {
    let mut items = Vec::new();
    let until = Instant::now() + deadline;
    loop {
        let poll = client.poll(session, 0).unwrap();
        let empty = poll.items.is_empty();
        items.extend(poll.items);
        if poll.idle && poll.outstanding == 0 && empty {
            return items;
        }
        assert!(Instant::now() < until, "session never went idle");
        if empty {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

#[test]
fn served_responses_are_bit_identical_to_the_in_process_driver() {
    let config = DeviceConfig::small();
    let spec = WorkloadSpec::new("random", 42, 1 << 24, 2_000);

    // In-process reference: the session pump's construction mirrors this
    // exactly (one device, simple topology, host on cube 0).
    let mut sim = HmcSim::new(1, config.clone()).unwrap();
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).unwrap();
    let mut host = Host::attach(&sim, host_id).unwrap();
    let mut reference_workload = spec.clone().build().unwrap();
    let (report, captured) = run_workload_captured(
        &mut sim,
        &mut host,
        reference_workload.as_mut(),
        RunConfig::default(),
    )
    .unwrap();
    assert!(report.completed > 0, "reference run did no work");

    // Served run: same spec, fresh workload, one batch so the inflight
    // queue never runs dry mid-run (the determinism precondition).
    let cfg = ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    };
    let (path, server) = start_server("differential", cfg);
    let flag = server.shutdown_flag();
    let run = std::thread::spawn(move || server.run(Duration::from_secs(30)));

    let mut client = Client::connect_uds(&path).unwrap();
    let mut served_workload = spec.build().unwrap();
    let ops = workload_to_wire(served_workload.as_mut());
    let session = client
        .open_session_preset("small", ops.len() as u32, 0)
        .unwrap();
    match client.submit(session, &ops).unwrap() {
        SubmitResult::Accepted { accepted, .. } => {
            assert_eq!(accepted as usize, ops.len(), "batch must admit whole");
        }
        SubmitResult::Busy { .. } => panic!("fresh session rejected its first batch"),
    }
    let served = poll_until_idle(&mut client, session, Duration::from_secs(30));
    let final_stats = client.close(session).unwrap();

    assert_eq!(
        served.len(),
        captured.len(),
        "served and in-process runs completed different response counts"
    );
    for (i, (wire, reference)) in served.iter().zip(captured.iter()).enumerate() {
        assert_eq!(wire.tag, reference.info.tag, "tag diverged at response {i}");
        assert_eq!(
            wire.data, reference.info.data,
            "data diverged at response {i} (tag {})",
            wire.tag
        );
        assert_eq!(
            wire.latency, reference.latency,
            "latency diverged at response {i} (tag {})",
            wire.tag
        );
        assert_eq!(wire.ok, reference.info.is_ok(), "status diverged at {i}");
    }
    assert_eq!(final_stats.completed, report.completed);
    assert_eq!(final_stats.injected, report.injected);
    assert_eq!(final_stats.orphans, 0);

    flag.store(true, Ordering::Release);
    assert_eq!(run.join().unwrap(), DrainOutcome::Drained);
}

#[test]
fn eight_concurrent_sessions_lose_and_duplicate_nothing() {
    let (path, server) = start_server("concurrent", ServerConfig::default());
    let flag = server.shutdown_flag();
    let run = std::thread::spawn(move || server.run(Duration::from_secs(30)));

    const SESSIONS: usize = 8;
    const REQUESTS: u64 = 400;
    let results: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|i| {
                let path = path.clone();
                scope.spawn(move || {
                    let mut client = Client::connect_uds(&path).unwrap();
                    let mut workload =
                        WorkloadSpec::new("random", 100 + i as u32, 1 << 24, REQUESTS)
                            .build()
                            .unwrap();
                    let ops = workload_to_wire(workload.as_mut());
                    let expected = ops
                        .iter()
                        .filter(|op| op.kind != WireOp::KIND_POSTED_WRITE)
                        .count() as u64;
                    // Default response limit: this test submits everything
                    // before polling, so the buffer must hold the whole run
                    // (a tight bound here would deadlock submit_all by
                    // design — that contract is covered separately).
                    let session = client.open_session_preset("small", 128, 0).unwrap();
                    for chunk in ops.chunks(64) {
                        client.submit_all(session, chunk).unwrap();
                    }
                    let served =
                        poll_until_idle(&mut client, session, Duration::from_secs(30));
                    let stats = client.close(session).unwrap();
                    assert_eq!(stats.outstanding, 0);
                    assert_eq!(stats.orphans, 0);
                    (expected, served.len() as u64, stats.completed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (expected, received, completed)) in results.iter().enumerate() {
        assert_eq!(
            received, expected,
            "session {i} lost or duplicated responses"
        );
        assert_eq!(completed, expected, "session {i} device count mismatch");
    }

    flag.store(true, Ordering::Release);
    assert_eq!(run.join().unwrap(), DrainOutcome::Drained);
}

#[test]
fn a_full_inflight_queue_answers_busy() {
    let cfg = ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    };
    let (mgr, _workers) = SessionManager::start(cfg);
    // A one-deep response buffer pauses the pump almost immediately, so
    // the four-slot inflight queue stays full and BUSY must surface.
    let Frame::SessionOpened { session } = mgr.open_session("small", "", 4, 1) else {
        panic!("open failed");
    };
    let ops: Vec<WireOp> = (0..4)
        .map(|i| WireOp {
            kind: WireOp::KIND_READ,
            addr: i * 64,
            size_bytes: 64,
        })
        .collect();

    let mut saw_busy = false;
    for _ in 0..10_000 {
        match mgr.submit(session, &ops) {
            Frame::BatchAccepted { .. } => {}
            Frame::Busy {
                reason,
                retry_hint_ms,
            } => {
                assert_eq!(BusyReason::from_u8(reason), Some(BusyReason::InflightFull));
                assert!(retry_hint_ms > 0, "BUSY must carry a retry hint");
                saw_busy = true;
                break;
            }
            other => panic!("unexpected reply {other:?}"),
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(saw_busy, "a bounded queue under load never said BUSY");
    mgr.stop_workers();
}

#[test]
fn the_admission_cap_returns_busy_sessions_full() {
    let cfg = ServerConfig {
        max_sessions: 2,
        threads: 1,
        ..ServerConfig::default()
    };
    let (mgr, _workers) = SessionManager::start(cfg);
    let Frame::SessionOpened { session: first } = mgr.open_session("small", "", 0, 0) else {
        panic!("first open failed");
    };
    assert!(matches!(
        mgr.open_session("small", "", 0, 0),
        Frame::SessionOpened { .. }
    ));
    match mgr.open_session("small", "", 0, 0) {
        Frame::Busy { reason, .. } => {
            assert_eq!(BusyReason::from_u8(reason), Some(BusyReason::SessionsFull));
        }
        other => panic!("expected BUSY at the cap, got {other:?}"),
    }
    // Closing one frees the slot.
    assert!(matches!(mgr.close(first), Frame::Closed(_)));
    assert!(matches!(
        mgr.open_session("small", "", 0, 0),
        Frame::SessionOpened { .. }
    ));
    mgr.stop_workers();
}

#[test]
fn idle_sessions_are_reaped_and_busy_ones_spared() {
    let cfg = ServerConfig {
        threads: 1,
        idle_timeout: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    };
    let (mgr, _workers) = SessionManager::start(cfg);
    let Frame::SessionOpened { session: idle } = mgr.open_session("small", "", 0, 0) else {
        panic!("open failed");
    };
    // This one pauses with work still queued (one-deep response buffer),
    // so the reaper must spare it no matter how stale the client is.
    let Frame::SessionOpened { session: busy } = mgr.open_session("small", "", 64, 1) else {
        panic!("open failed");
    };
    let ops: Vec<WireOp> = (0..64)
        .map(|i| WireOp {
            kind: WireOp::KIND_READ,
            addr: i * 64,
            size_bytes: 64,
        })
        .collect();
    assert!(matches!(
        mgr.submit(busy, &ops),
        Frame::BatchAccepted { .. }
    ));

    std::thread::sleep(Duration::from_millis(120));
    assert_eq!(mgr.reap_idle(), 1, "exactly the neglected-and-idle session");
    assert!(matches!(
        mgr.stats(idle),
        Frame::Error { code, .. } if code == WireErrorCode::UnknownSession as u8
    ));
    assert!(matches!(mgr.stats(busy), Frame::Stats(_)));
    mgr.stop_workers();
}

#[test]
fn a_draining_manager_refuses_new_sessions_and_work() {
    let (mgr, _workers) = SessionManager::start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let Frame::SessionOpened { session } = mgr.open_session("small", "", 0, 0) else {
        panic!("open failed");
    };
    mgr.begin_drain();
    assert!(matches!(
        mgr.open_session("small", "", 0, 0),
        Frame::Error { code, .. } if code == WireErrorCode::ShuttingDown as u8
    ));
    let op = WireOp {
        kind: WireOp::KIND_READ,
        addr: 0,
        size_bytes: 64,
    };
    assert!(matches!(
        mgr.submit(session, &[op]),
        Frame::Error { code, .. } if code == WireErrorCode::ShuttingDown as u8
    ));
    // Draining still lets clients collect what is theirs.
    assert!(matches!(mgr.poll(session, 0), Frame::Responses { .. }));
    assert!(mgr.wait_drained(Duration::from_secs(5)));
    mgr.stop_workers();
}

#[test]
fn the_shutdown_frame_triggers_a_clean_drain_with_work_buffered() {
    let (path, server) = start_server("drain", ServerConfig::default());
    let run = std::thread::spawn(move || server.run(Duration::from_secs(30)));

    let mut client = Client::connect_uds(&path).unwrap();
    let mut workload = WorkloadSpec::new("stream", 9, 1 << 22, 500).build().unwrap();
    let ops = workload_to_wire(workload.as_mut());
    let session = client.open_session_preset("small", 0, 0).unwrap();
    client.submit_all(session, &ops).unwrap();

    // Ask for shutdown while the batch is (potentially) still pumping:
    // the drain must finish the work, not abandon it.
    client.shutdown_server().unwrap();
    assert_eq!(run.join().unwrap(), DrainOutcome::Drained);
    assert!(!path.exists(), "socket file must be removed after the drain");
}

#[test]
fn degraded_link_sessions_deliver_poisoned_responses_as_error_frames() {
    use hmc_types::{LinkFaultConfig, ResponseStatus};

    let (path, server) = start_server("degraded", ServerConfig::default());
    let flag = server.shutdown_flag();
    let run = std::thread::spawn(move || server.run(Duration::from_secs(30)));

    // An aggressively lossy link with a tight retry cap: a solid
    // fraction of requests exhaust their retries server-side and must
    // come back as poisoned error frames — never silently succeed,
    // never vanish.
    let config = DeviceConfig::small().with_link_faults(Some(
        LinkFaultConfig::default()
            .with_error_rate_ppm(600_000)
            .with_retry_limit(1)
            .with_retry_cycles(4)
            .with_retrain_cycles(16)
            .with_seed(0xD06_F00D),
    ));
    let json = serde_json::to_string(&config).unwrap();

    let mut client = Client::connect_uds(&path).unwrap();
    let mut workload = WorkloadSpec::new("random", 7, 1 << 24, 400).build().unwrap();
    let ops = workload_to_wire(workload.as_mut());
    let expected = ops
        .iter()
        .filter(|op| op.kind != WireOp::KIND_POSTED_WRITE)
        .count() as u64;
    let session = client.open_session_json(&json, 0, 0).unwrap();
    for chunk in ops.chunks(64) {
        client.submit_all(session, chunk).unwrap();
    }
    let served = poll_until_idle(&mut client, session, Duration::from_secs(30));
    let stats = client.close(session).unwrap();

    assert_eq!(
        served.len() as u64,
        expected,
        "every non-posted op gets exactly one response, poisoned or clean"
    );
    let poisoned: Vec<&WireResponse> = served
        .iter()
        .filter(|r| r.status == ResponseStatus::LinkPoisoned.encode())
        .collect();
    assert!(
        !poisoned.is_empty(),
        "the lossy link must actually poison some responses"
    );
    for r in &poisoned {
        assert!(!r.ok, "poisoned responses are error frames, not successes");
        assert!(r.data.is_empty(), "poisoned frames carry no data");
    }
    assert_eq!(stats.poisoned_responses, poisoned.len() as u64);
    assert!(stats.errors >= stats.poisoned_responses);
    assert!(stats.link_retries > 0, "retries precede every exhaustion");
    assert!(stats.link_retrains > 0, "exhaustion takes the link down");
    assert_eq!(stats.orphans, 0, "poison never strands a tag");

    flag.store(true, Ordering::Release);
    assert_eq!(run.join().unwrap(), DrainOutcome::Drained);
}

#[test]
fn version_mismatch_is_rejected_at_hello() {
    use hmc_serve::{write_frame, FrameReader, ReadOutcome};
    use std::os::unix::net::UnixStream;

    let (path, server) = start_server("version", ServerConfig::default());
    let flag = server.shutdown_flag();
    let run = std::thread::spawn(move || server.run(Duration::from_secs(10)));

    let mut stream = UnixStream::connect(&path).unwrap();
    write_frame(&mut stream, &Frame::Hello { version: 999 }).unwrap();
    let mut reader = FrameReader::new();
    let reply = loop {
        match reader.poll(&mut stream).unwrap() {
            ReadOutcome::Frame(f) => break f,
            ReadOutcome::TimedOut => continue,
            ReadOutcome::Eof => panic!("server hung up without a reply"),
            ReadOutcome::Malformed(reason) => panic!("undecodable reply: {reason}"),
        }
    };
    assert!(matches!(
        reply,
        Frame::Error { code, .. } if code == WireErrorCode::VersionMismatch as u8
    ));

    flag.store(true, Ordering::Release);
    assert_eq!(run.join().unwrap(), DrainOutcome::Drained);
}
