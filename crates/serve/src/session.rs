//! One serving session: a private simulated device plus the host-side
//! state that pumps client-submitted operations through it.
//!
//! Determinism contract: for a fixed op stream, the pump executes the
//! *exact* per-cycle schedule of `hmc_host::run_workload` — inject until
//! stall, clock once, drain — so responses seen through the service are
//! bit-identical (tag, data, per-stream order) to an in-process driver
//! run. That is why the pump clocks one cycle at a time while responses
//! are outstanding: a multi-cycle `clock_batch` would change the drain
//! cadence, and with it the tag-reuse order. Batched advances are
//! reserved for the idle settle phase, where only posted traffic (which
//! carries no tags) is still draining, and for client-scheduled
//! [`SessionOp::Idle`] gaps, whose span is part of the submitted stream
//! and therefore deterministic too. Sessions opened with
//! [`SessionLimits::fast_forward`] arm the engine's event-driven
//! fast-forward mode, which turns those batched advances over dead
//! cycles into O(1) jumps without changing any observable.

use std::collections::VecDeque;

use hmc_core::{topology, HmcSim};
use hmc_host::Host;
use hmc_types::{
    BlockSize, CubeId, DeviceConfig, HmcError, Result, WireOp, WireResponse, WireStats,
};
use hmc_workloads::{MemOp, OpKind, Workload};

/// Per-session limits and pacing, fixed at open time.
#[derive(Debug, Clone, Copy)]
pub struct SessionLimits {
    /// Bound on queued-but-not-yet-injected operations. Submissions past
    /// this bound are rejected with BUSY, never buffered.
    pub inflight_limit: usize,
    /// Bound on buffered completed responses. The pump pauses when the
    /// buffer is full and resumes as the client polls it down.
    pub response_limit: usize,
    /// Cycles one scheduling quantum may execute before the worker yields
    /// the session back to the run queue.
    pub slice_cycles: u64,
    /// Arm the engine's event-driven fast-forward mode for this session's
    /// device. Responses and stats stay bit-identical (the pump's
    /// schedule does not change); batched advances — idle gaps and the
    /// posted-settle phase — get cheap when every stage is quiescent.
    pub fast_forward: bool,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            inflight_limit: 4096,
            response_limit: 8192,
            slice_cycles: 4096,
            fast_forward: false,
        }
    }
}

/// Why the pump stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpOutcome {
    /// Nothing left to do: no queued ops, no outstanding tags, device
    /// quiescent. The session leaves the run queue until new work arrives.
    Idle,
    /// The response buffer reached its bound; pumping resumes after the
    /// client polls responses off.
    Paused,
    /// The slice budget ran out with work remaining; reschedule.
    Working,
}

/// One admitted session operation: a memory op to inject, or a
/// client-scheduled idle gap the device runs through without injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOp {
    /// A memory operation bound for the device.
    Mem(MemOp),
    /// Run the device this many cycles with no injection.
    Idle(u64),
}

/// Convert a wire operation into a [`SessionOp`].
pub fn wire_to_session_op(op: &WireOp) -> Result<SessionOp> {
    if op.kind == WireOp::KIND_IDLE {
        if op.addr == 0 {
            return Err(HmcError::Wire("idle gap of zero cycles".into()));
        }
        return Ok(SessionOp::Idle(op.addr));
    }
    wire_to_memop(op).map(SessionOp::Mem)
}

/// Convert a wire operation into a [`MemOp`]. Idle gaps are not memory
/// operations and are rejected here; use [`wire_to_session_op`] for the
/// full session vocabulary.
pub fn wire_to_memop(op: &WireOp) -> Result<MemOp> {
    let kind = match op.kind {
        WireOp::KIND_READ => OpKind::Read,
        WireOp::KIND_WRITE => OpKind::Write,
        WireOp::KIND_POSTED_WRITE => OpKind::PostedWrite,
        WireOp::KIND_TWO_ADD8 => OpKind::TwoAdd8,
        WireOp::KIND_ADD16 => OpKind::Add16,
        WireOp::KIND_BIT_WRITE => OpKind::BitWrite,
        other => return Err(HmcError::Wire(format!("unknown op kind {other}"))),
    };
    let size = BlockSize::from_bytes(op.size_bytes as usize)
        .map_err(|e| HmcError::Wire(e.to_string()))?;
    Ok(MemOp {
        kind,
        addr: op.addr,
        size,
    })
}

/// Convert a [`MemOp`] into its wire form.
pub fn memop_to_wire(op: &MemOp) -> WireOp {
    let kind = match op.kind {
        OpKind::Read => WireOp::KIND_READ,
        OpKind::Write => WireOp::KIND_WRITE,
        OpKind::PostedWrite => WireOp::KIND_POSTED_WRITE,
        OpKind::TwoAdd8 => WireOp::KIND_TWO_ADD8,
        OpKind::Add16 => WireOp::KIND_ADD16,
        OpKind::BitWrite => WireOp::KIND_BIT_WRITE,
    };
    WireOp {
        kind,
        addr: op.addr,
        size_bytes: op.size.bytes() as u16,
    }
}

/// Convert a whole workload into wire operations (loadgen, tests).
pub fn workload_to_wire(workload: &mut dyn Workload) -> Vec<WireOp> {
    let mut ops = Vec::new();
    while let Some(op) = workload.next_op() {
        ops.push(memop_to_wire(&op));
    }
    ops
}

/// One session's simulation and queues. Owned behind the manager's
/// per-session mutex; all methods take `&mut self`.
pub struct SessionState {
    sim: HmcSim,
    host: Host,
    target: CubeId,
    limits: SessionLimits,
    /// Ops admitted but not yet accepted by the device, in issue order.
    inflight: VecDeque<SessionOp>,
    /// The op currently being retried after a stall (mirror of the
    /// driver's `pending` slot — it must retry *before* newer ops).
    pending: Option<MemOp>,
    /// Completed responses awaiting a client poll.
    responses: VecDeque<WireResponse>,
}

impl SessionState {
    /// Build a fresh single-device session from a validated config.
    pub fn new(config: DeviceConfig, limits: SessionLimits) -> Result<SessionState> {
        config.validate()?;
        let mut sim = HmcSim::new(1, config)?.with_fast_forward(limits.fast_forward);
        let host_id = sim.host_cube_id(0);
        topology::build_simple(&mut sim, host_id)?;
        let host = Host::attach(&sim, host_id)?;
        Ok(SessionState {
            sim,
            host,
            target: 0,
            limits,
            inflight: VecDeque::new(),
            pending: None,
            responses: VecDeque::new(),
        })
    }

    /// The session's limits.
    pub fn limits(&self) -> SessionLimits {
        self.limits
    }

    /// Free slots in the inflight queue.
    pub fn queue_free(&self) -> usize {
        self.limits
            .inflight_limit
            .saturating_sub(self.inflight.len())
    }

    /// Admit a prefix of `ops` bounded by the inflight queue's free space.
    /// Returns how many were admitted (0 means the caller should send
    /// BUSY). Malformed ops fail the whole batch before any admission.
    pub fn submit(&mut self, ops: &[WireOp]) -> Result<usize> {
        let mut decoded = Vec::with_capacity(ops.len());
        for op in ops {
            decoded.push(wire_to_session_op(op)?);
        }
        let take = decoded.len().min(self.queue_free());
        self.inflight.extend(decoded.drain(..take));
        Ok(take)
    }

    /// Move up to `max` buffered responses out, oldest first.
    pub fn take_responses(&mut self, max: usize) -> Vec<WireResponse> {
        let n = self.responses.len().min(max.max(1));
        self.responses.drain(..n).collect()
    }

    /// True when the session still has simulation work to do (pumping
    /// would make progress).
    pub fn has_work(&self) -> bool {
        self.pending.is_some()
            || !self.inflight.is_empty()
            || self.host.outstanding() > 0
            || !self.sim.is_quiesced()
    }

    /// True when the response buffer has reached its bound.
    pub fn paused(&self) -> bool {
        self.responses.len() >= self.limits.response_limit
    }

    /// True when the session is fully drained: nothing queued, nothing
    /// outstanding, device quiescent. (Buffered responses may remain for
    /// the client to poll.)
    pub fn drained(&self) -> bool {
        !self.has_work()
    }

    /// Requests currently awaiting device responses.
    pub fn outstanding(&self) -> usize {
        self.host.outstanding()
    }

    /// Execute one scheduling quantum (at most `limits.slice_cycles`).
    ///
    /// Each iteration replays the driver loop exactly: inject from the
    /// inflight queue until a stall (keeping a stalled op in `pending` so
    /// it retries first), clock one cycle, drain — capturing correlated
    /// responses into the session buffer. Once every tagged response is
    /// home and the queue is dry, residual posted traffic is settled with
    /// batched clock advances (no tags in flight, so cadence is free).
    ///
    /// An [`SessionOp::Idle`] gap at the queue head runs before anything
    /// behind it: the gap models client think time, so ops submitted
    /// after it must wait the full gap out. Gaps advance with batched
    /// clocks (draining responses throughout) — under a fast-forward
    /// session each batch jumps the dead cycles instead of stepping them.
    pub fn pump(&mut self) -> Result<PumpOutcome> {
        let mut budget = self.limits.slice_cycles.max(1);
        while budget > 0 {
            if self.paused() {
                return Ok(PumpOutcome::Paused);
            }
            // Serve an idle gap at the queue head before injecting.
            if self.pending.is_none() {
                if let Some(SessionOp::Idle(gap)) = self.inflight.front_mut() {
                    let advance = (*gap).min(budget);
                    self.sim.clock_batch(advance)?;
                    let responses = &mut self.responses;
                    self.host.drain_with(&mut self.sim, |info, latency| {
                        responses.push_back(WireResponse {
                            tag: info.tag,
                            ok: info.is_ok(),
                            status: info.status.encode(),
                            latency,
                            data: info.data,
                        });
                    })?;
                    *gap -= advance;
                    if *gap == 0 {
                        self.inflight.pop_front();
                    }
                    budget -= advance;
                    continue;
                }
            }
            // Inject until a stall, tag exhaustion, an empty queue, or an
            // idle gap behind the memory ops.
            loop {
                let op = match self.pending.take() {
                    Some(op) => op,
                    None => match self.inflight.front() {
                        Some(SessionOp::Mem(op)) => {
                            let op = *op;
                            self.inflight.pop_front();
                            op
                        }
                        Some(SessionOp::Idle(_)) | None => break,
                    },
                };
                if self.host.try_issue(&mut self.sim, self.target, &op)? {
                    continue;
                }
                self.pending = Some(op);
                break;
            }

            if self.pending.is_none() && self.inflight.is_empty() && self.host.outstanding() == 0
            {
                if self.sim.is_quiesced() {
                    return Ok(PumpOutcome::Idle);
                }
                // Only untagged posted traffic remains; batch-settle it.
                let advance = budget.min(32);
                self.sim.clock_batch(advance)?;
                self.host.drain(&mut self.sim)?;
                budget -= advance;
                continue;
            }

            self.sim.clock()?;
            let responses = &mut self.responses;
            self.host.drain_with(&mut self.sim, |info, latency| {
                responses.push_back(WireResponse {
                    tag: info.tag,
                    ok: info.is_ok(),
                    status: info.status.encode(),
                    latency,
                    data: info.data,
                });
            })?;
            budget -= 1;
        }
        Ok(PumpOutcome::Working)
    }

    /// A point-in-time metrics snapshot.
    pub fn snapshot(&self) -> WireStats {
        let hs = self.host.stats;
        let ss = self.sim.stats();
        WireStats {
            cycles: ss.cycles,
            injected: hs.injected,
            completed: hs.completed,
            posted: hs.posted,
            errors: hs.errors,
            send_stalls: hs.send_stalls,
            tag_stalls: hs.tag_stalls,
            token_stalls: ss.token_stalls,
            orphans: hs.orphans,
            outstanding: self.host.outstanding() as u32,
            queue_occupancy: self.sim.total_occupancy() as u32,
            inflight: (self.inflight.len() + usize::from(self.pending.is_some())) as u32,
            buffered_responses: self.responses.len() as u32,
            mean_latency: self.host.latency.mean(),
            max_latency: self.host.latency.max,
            hammer_activations: ss.hammer_activations,
            bit_flips: ss.bit_flips,
            trr_refreshes: ss.trr_refreshes,
            retention_decays: ss.retention_decays,
            link_retries: ss.link_retries,
            link_retrains: ss.link_retrains,
            poisoned_responses: ss.poisoned_responses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_workloads::WorkloadSpec;

    fn small_session(limits: SessionLimits) -> SessionState {
        SessionState::new(DeviceConfig::small(), limits).unwrap()
    }

    fn pump_to_idle(s: &mut SessionState) {
        for _ in 0..10_000 {
            match s.pump().unwrap() {
                PumpOutcome::Idle => return,
                PumpOutcome::Paused => panic!("unexpected pause"),
                PumpOutcome::Working => {}
            }
        }
        panic!("session never went idle");
    }

    #[test]
    fn op_conversion_roundtrips() {
        for kind in [
            OpKind::Read,
            OpKind::Write,
            OpKind::PostedWrite,
            OpKind::TwoAdd8,
            OpKind::Add16,
            OpKind::BitWrite,
        ] {
            let op = MemOp {
                kind,
                addr: 0x1000,
                size: BlockSize::B64,
            };
            assert_eq!(wire_to_memop(&memop_to_wire(&op)).unwrap(), op);
        }
        assert!(wire_to_memop(&WireOp {
            kind: 99,
            addr: 0,
            size_bytes: 64
        })
        .is_err());
        assert!(wire_to_memop(&WireOp {
            kind: WireOp::KIND_READ,
            addr: 0,
            size_bytes: 17
        })
        .is_err());
    }

    #[test]
    fn a_batch_runs_to_idle_and_answers_everything() {
        let mut s = small_session(SessionLimits::default());
        let mut w = WorkloadSpec::new("random", 5, 1 << 24, 1_000).build().unwrap();
        let ops = workload_to_wire(w.as_mut());
        let expected = ops
            .iter()
            .filter(|o| wire_to_memop(o).unwrap().expects_response())
            .count();
        assert_eq!(s.submit(&ops).unwrap(), ops.len());
        pump_to_idle(&mut s);
        assert_eq!(s.responses.len(), expected);
        assert_eq!(s.outstanding(), 0);
        let snap = s.snapshot();
        assert_eq!(snap.completed as usize, expected);
        assert_eq!(snap.orphans, 0);
        assert!(snap.cycles > 0);
    }

    #[test]
    fn submissions_beyond_the_inflight_bound_are_clipped() {
        let limits = SessionLimits {
            inflight_limit: 16,
            ..SessionLimits::default()
        };
        let mut s = small_session(limits);
        let ops: Vec<WireOp> = (0..40)
            .map(|i| WireOp {
                kind: WireOp::KIND_READ,
                addr: i * 64,
                size_bytes: 64,
            })
            .collect();
        assert_eq!(s.submit(&ops).unwrap(), 16);
        assert_eq!(s.queue_free(), 0);
        assert_eq!(s.submit(&ops).unwrap(), 0, "full queue admits nothing");
        pump_to_idle(&mut s);
        assert_eq!(s.queue_free(), 16);
    }

    #[test]
    fn the_pump_pauses_on_a_full_response_buffer() {
        let limits = SessionLimits {
            response_limit: 8,
            ..SessionLimits::default()
        };
        let mut s = small_session(limits);
        let ops: Vec<WireOp> = (0..64)
            .map(|i| WireOp {
                kind: WireOp::KIND_READ,
                addr: i * 64,
                size_bytes: 64,
            })
            .collect();
        assert_eq!(s.submit(&ops).unwrap(), 64);
        let mut paused = false;
        for _ in 0..10_000 {
            match s.pump().unwrap() {
                PumpOutcome::Paused => {
                    paused = true;
                    break;
                }
                PumpOutcome::Idle => break,
                PumpOutcome::Working => {}
            }
        }
        assert!(paused, "an 8-deep buffer must pause a 64-read batch");
        assert!(s.responses.len() >= 8);
        // Polling responses off unblocks the pump.
        let mut got = s.take_responses(64).len();
        for _ in 0..10_000 {
            match s.pump().unwrap() {
                PumpOutcome::Idle => break,
                _ => got += s.take_responses(64).len(),
            }
        }
        got += s.take_responses(64).len();
        assert_eq!(got, 64);
    }

    #[test]
    fn malformed_ops_fail_the_whole_batch_atomically() {
        let mut s = small_session(SessionLimits::default());
        let ops = [
            WireOp {
                kind: WireOp::KIND_READ,
                addr: 0,
                size_bytes: 64,
            },
            WireOp {
                kind: 200,
                addr: 64,
                size_bytes: 64,
            },
        ];
        assert!(s.submit(&ops).is_err());
        assert_eq!(s.queue_free(), SessionLimits::default().inflight_limit);
        assert!(!s.has_work());
    }

    #[test]
    fn idle_gaps_advance_the_device_without_injection() {
        let mut s = small_session(SessionLimits::default());
        let read = |i: u64| WireOp {
            kind: WireOp::KIND_READ,
            addr: i * 64,
            size_bytes: 64,
        };
        let mut ops: Vec<WireOp> = (0..8).map(read).collect();
        ops.push(WireOp::idle(50_000));
        ops.extend((8..16).map(read));
        assert_eq!(s.submit(&ops).unwrap(), ops.len());
        pump_to_idle(&mut s);
        let snap = s.snapshot();
        assert!(
            snap.cycles >= 50_000,
            "the gap must elapse on the device clock, got {}",
            snap.cycles
        );
        assert_eq!(s.take_responses(100).len(), 16, "gaps answer nothing");
        assert_eq!(snap.completed, 16);
    }

    #[test]
    fn fast_forward_sessions_are_bit_identical_to_stepped() {
        let run = |fast_forward: bool| {
            let mut s = small_session(SessionLimits {
                fast_forward,
                ..SessionLimits::default()
            });
            let mut ops = Vec::new();
            for i in 0u64..24 {
                ops.push(WireOp {
                    kind: if i % 3 == 0 {
                        WireOp::KIND_WRITE
                    } else {
                        WireOp::KIND_READ
                    },
                    addr: i * 128,
                    size_bytes: 64,
                });
                if i % 6 == 5 {
                    ops.push(WireOp::idle(9_000));
                }
            }
            assert_eq!(s.submit(&ops).unwrap(), ops.len());
            pump_to_idle(&mut s);
            let responses = s.take_responses(1_000);
            (responses, s.snapshot())
        };
        let (stepped_rsp, stepped_snap) = run(false);
        let (fast_rsp, fast_snap) = run(true);
        assert_eq!(stepped_rsp, fast_rsp, "responses must match exactly");
        assert_eq!(stepped_snap.cycles, fast_snap.cycles);
        assert_eq!(stepped_snap.completed, fast_snap.completed);
        assert_eq!(stepped_snap.mean_latency, fast_snap.mean_latency);
        assert!(stepped_snap.cycles >= 4 * 9_000, "the gaps elapsed");
    }

    #[test]
    fn zero_cycle_idle_gaps_fail_the_batch() {
        let mut s = small_session(SessionLimits::default());
        let ops = [
            WireOp {
                kind: WireOp::KIND_READ,
                addr: 0,
                size_bytes: 64,
            },
            WireOp::idle(0),
        ];
        assert!(s.submit(&ops).is_err());
        assert!(!s.has_work(), "atomic rejection admits nothing");
        assert!(wire_to_memop(&WireOp::idle(5)).is_err(), "not a memory op");
        assert_eq!(
            wire_to_session_op(&WireOp::idle(5)).unwrap(),
            SessionOp::Idle(5)
        );
    }

    #[test]
    fn hammer_sessions_report_fault_stats_and_trr_suppresses_flips() {
        use hmc_types::{CellFaultConfig, Mitigation};
        let run = |mitigation: Mitigation| {
            let faults = CellFaultConfig::default()
                .with_hammer_threshold(64)
                .with_flip_prob_ppm(1_000_000)
                .with_mitigation(mitigation);
            let config = DeviceConfig::small().with_cell_faults(Some(faults));
            let geometry = config.geometry();
            let mut s = SessionState::new(config, SessionLimits::default()).unwrap();
            let mut w = WorkloadSpec::new("hammer", 1, 1 << 24, 2_000)
                .with_geometry(geometry)
                .build()
                .unwrap();
            let ops = workload_to_wire(w.as_mut());
            assert_eq!(s.submit(&ops).unwrap(), ops.len());
            loop {
                match s.pump().unwrap() {
                    PumpOutcome::Idle => break,
                    _ => {
                        s.take_responses(usize::MAX);
                    }
                }
            }
            s.snapshot()
        };
        let unmitigated = run(Mitigation::None);
        assert!(unmitigated.hammer_activations > 0, "activations must be counted");
        assert!(unmitigated.bit_flips > 0, "hammering must flip bits over the wire");
        let mitigated = run(Mitigation::Trr);
        assert_eq!(mitigated.bit_flips, 0, "TRR at spec threshold must prevent flips");
        assert!(mitigated.trr_refreshes > 0, "TRR must actually fire");
    }

    #[test]
    fn posted_only_batches_quiesce() {
        let mut s = small_session(SessionLimits::default());
        let ops: Vec<WireOp> = (0..32)
            .map(|i| WireOp {
                kind: WireOp::KIND_POSTED_WRITE,
                addr: i * 64,
                size_bytes: 64,
            })
            .collect();
        s.submit(&ops).unwrap();
        pump_to_idle(&mut s);
        assert!(s.take_responses(100).is_empty(), "posted ops answer nothing");
        let snap = s.snapshot();
        assert_eq!(snap.posted, 32);
        assert_eq!(snap.queue_occupancy, 0);
    }
}
