//! `loadgen` — concurrent load generator for `hmc-serve`.
//!
//! ```text
//! loadgen (--socket PATH | --connect ADDR) [--sessions N] [--requests N]
//!         [--workload random|stream|gups|chase|stencil|hotspot|hammer]
//!         [--preset NAME] [--seed S] [--read-pct P] [--block BYTES]
//!         [--batch N] [--poll-max N] [--idle-gap CYCLES]
//!         [--idle-every OPS] [--hot-quad Q] [--hot-pct P]
//!         [--interconnect crossbar|ring|mesh]
//!         [--arbitration round-robin|oldest-first|locality-aware]
//!         [--hammer-threshold N] [--flip-prob PPM] [--retention CYCLES]
//!         [--mitigation none|trr|elevated]
//!         [--json FILE]
//! ```
//!
//! Each session runs on its own thread with its own connection: open a
//! session, submit the workload in batches (BUSY backpressure is polled
//! through, never buffered client-side), poll responses until every
//! expected one arrived, verify zero lost or duplicated tags, snapshot
//! stats, close. The report carries per-session and aggregate simulated
//! throughput plus p50/p95/p99 response latency, as JSON on stdout or to
//! `--json FILE`.
//!
//! `--idle-gap` switches the stream to open-loop arrivals: after every
//! `--idle-every` memory operations an idle-gap op (`WireOp::idle`) is
//! interleaved, telling the session's device to run that many cycles
//! with no injection — a client that thinks between bursts rather than
//! saturating the queue. Against a server in `--fast-forward` mode the
//! dead cycles are jumped instead of stepped, so the same open-loop run
//! finishes in a fraction of the wall time with identical responses;
//! the report's `wall_seconds`/`sim_cycles` pair is the before/after
//! evidence.
//!
//! `--workload hotspot` concentrates `--hot-pct` percent of each
//! session's requests on the vaults of quad `--hot-quad` (via the
//! preset's address geometry). Combined with `--interconnect ring|mesh`
//! — which opens each session from the preset's config with the
//! buffered NoC fabric enabled server-side — cross-quad hops and
//! arbitration pressure show up directly in the latency percentiles.
//!
//! `--workload hammer` runs the geometry-aware double-sided RowHammer
//! stream against one bank of each session's device. Passing any
//! cell-fault flag (`--hammer-threshold`, `--flip-prob`, `--retention`,
//! `--mitigation`) arms injection server-side: the flags ride into the
//! session's `DeviceConfig` JSON, and the closing stats frame reports
//! the device's activation/bit-flip/TRR/retention counters, which the
//! report aggregates — an adversarial end-to-end corruption probe.
//!
//! The link-fault flags (`--link-error-rate PPM`, `--link-retry-limit`,
//! `--retrain-cycles`, `--link-retry-cycles`, `--link-fault-seed`) arm
//! the link-retry protocol the same way: transmission corruption rides
//! into each session's device, retry-exhausted requests come back as
//! poisoned error responses (counted under `errors` and
//! `poisoned_responses`), and the report carries the per-session
//! retry/retrain/poison counters. BUSY backpressure is absorbed with a
//! bounded exponential backoff (`--retry-attempts`, `--retry-base-ms`;
//! jittered per session) and the report counts every retry and the
//! milliseconds spent backing off.

use std::path::PathBuf;
use std::time::Instant;

use hmc_serve::{busy_reason_label, workload_to_wire, Client, RetryPolicy, SubmitResult};
use hmc_trace::{percentile_sorted, LatencyPercentiles};
use hmc_types::{
    ArbitrationKind, BlockSize, CellFaultConfig, DeviceConfig, InterconnectKind, LinkFaultConfig,
    WireOp,
};
use hmc_workloads::WorkloadSpec;
use serde::Serialize;

struct Options {
    socket: Option<PathBuf>,
    connect: Option<String>,
    sessions: usize,
    requests: u64,
    workload: String,
    preset: String,
    seed: u32,
    read_pct: u8,
    block: usize,
    batch: usize,
    poll_max: u32,
    idle_gap: u64,
    idle_every: u64,
    hot_quad: u8,
    hot_pct: u8,
    interconnect: InterconnectKind,
    arbitration: ArbitrationKind,
    cell_faults: Option<CellFaultConfig>,
    link_faults: Option<LinkFaultConfig>,
    retry_attempts: u32,
    retry_base_ms: u64,
    json: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            socket: None,
            connect: None,
            sessions: 4,
            requests: 20_000,
            workload: "random".into(),
            preset: "small".into(),
            seed: 1,
            read_pct: 50,
            block: 64,
            batch: 1024,
            poll_max: 512,
            idle_gap: 0,
            idle_every: 32,
            hot_quad: 0,
            hot_pct: hmc_workloads::DEFAULT_HOT_PCT,
            interconnect: InterconnectKind::Crossbar,
            arbitration: ArbitrationKind::RoundRobin,
            cell_faults: None,
            link_faults: None,
            retry_attempts: RetryPolicy::default().max_attempts,
            retry_base_ms: RetryPolicy::default().base_delay_ms,
            json: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen (--socket PATH | --connect ADDR) [--sessions N] \
         [--requests N] [--workload random|stream|gups|chase|stencil|hotspot|hammer] \
         [--preset 4l8b|4l16b|8l8b|8l16b|small] [--seed S] [--read-pct P] \
         [--block BYTES] [--batch N] [--poll-max N] \
         [--idle-gap CYCLES (0 = closed-loop)] [--idle-every OPS] \
         [--hot-quad Q] [--hot-pct P] [--interconnect crossbar|ring|mesh] \
         [--arbitration round-robin|oldest-first|locality-aware] \
         [--hammer-threshold N] [--flip-prob PPM] [--retention CYCLES] \
         [--mitigation none|trr|elevated] \
         [--link-error-rate PPM] [--link-retry-limit N] [--retrain-cycles N] \
         [--link-retry-cycles N] [--link-fault-seed S] \
         [--retry-attempts N] [--retry-base-ms MS] [--json FILE]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut o = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("loadgen: {flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => o.socket = Some(PathBuf::from(next("--socket"))),
            "--connect" => o.connect = Some(next("--connect")),
            "--sessions" => o.sessions = next("--sessions").parse().unwrap_or_else(|_| usage()),
            "--requests" => o.requests = next("--requests").parse().unwrap_or_else(|_| usage()),
            "--workload" => o.workload = next("--workload"),
            "--preset" => o.preset = next("--preset"),
            "--seed" => o.seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--read-pct" => o.read_pct = next("--read-pct").parse().unwrap_or_else(|_| usage()),
            "--block" => o.block = next("--block").parse().unwrap_or_else(|_| usage()),
            "--batch" => o.batch = next("--batch").parse().unwrap_or_else(|_| usage()),
            "--poll-max" => o.poll_max = next("--poll-max").parse().unwrap_or_else(|_| usage()),
            "--idle-gap" => o.idle_gap = next("--idle-gap").parse().unwrap_or_else(|_| usage()),
            "--idle-every" => {
                o.idle_every = next("--idle-every").parse().unwrap_or_else(|_| usage())
            }
            "--hot-quad" => o.hot_quad = next("--hot-quad").parse().unwrap_or_else(|_| usage()),
            "--hot-pct" => o.hot_pct = next("--hot-pct").parse().unwrap_or_else(|_| usage()),
            "--interconnect" => {
                o.interconnect = InterconnectKind::by_name(&next("--interconnect"))
                    .unwrap_or_else(|| {
                        eprintln!("loadgen: --interconnect needs `crossbar`, `ring`, or `mesh`");
                        usage()
                    })
            }
            "--arbitration" => {
                o.arbitration =
                    ArbitrationKind::by_name(&next("--arbitration")).unwrap_or_else(|| {
                        eprintln!(
                            "loadgen: --arbitration needs `round-robin`, `oldest-first`, \
                             or `locality-aware`"
                        );
                        usage()
                    })
            }
            "--json" => o.json = Some(PathBuf::from(next("--json"))),
            "--retry-attempts" => {
                o.retry_attempts = next("--retry-attempts").parse().unwrap_or_else(|_| usage())
            }
            "--retry-base-ms" => {
                o.retry_base_ms = next("--retry-base-ms").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            flag => {
                let value = args.next();
                let hit = CellFaultConfig::apply_flag(&mut o.cell_faults, flag, value.as_deref())
                    .and_then(|hit| {
                        if hit {
                            Ok(true)
                        } else {
                            LinkFaultConfig::apply_flag(&mut o.link_faults, flag, value.as_deref())
                        }
                    });
                match hit {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("loadgen: unknown argument {flag}");
                        usage()
                    }
                    Err(e) => {
                        eprintln!("loadgen: {e}");
                        usage()
                    }
                }
            }
        }
    }
    if o.socket.is_none() && o.connect.is_none() {
        eprintln!("loadgen: need --socket or --connect");
        usage()
    }
    if o.sessions == 0 || o.batch == 0 {
        eprintln!("loadgen: --sessions and --batch must be nonzero");
        usage()
    }
    if o.idle_gap > 0 && o.idle_every == 0 {
        eprintln!("loadgen: --idle-every must be nonzero with --idle-gap");
        usage()
    }
    o
}

/// One session's results, a plain row for the JSON report.
#[derive(Debug, Clone, Serialize)]
struct SessionReport {
    session: u64,
    requests: u64,
    responses: u64,
    idle_gaps: u64,
    sim_cycles: u64,
    sim_throughput: f64,
    p50_latency: u64,
    p95_latency: u64,
    p99_latency: u64,
    max_latency: u64,
    send_stalls: u64,
    tag_stalls: u64,
    token_stalls: u64,
    busy_rejections: u64,
    backoff_ms: u64,
    errors: u64,
    link_retries: u64,
    link_retrains: u64,
    poisoned_responses: u64,
    hammer_activations: u64,
    bit_flips: u64,
    trr_refreshes: u64,
    retention_decays: u64,
}

/// The whole run, aggregate + per-session rows.
#[derive(Debug, Clone, Serialize)]
struct LoadgenReport {
    sessions: u64,
    workload: String,
    preset: String,
    interconnect: String,
    arbitration: String,
    requests_per_session: u64,
    idle_gap_cycles: u64,
    idle_every_ops: u64,
    total_requests: u64,
    total_responses: u64,
    total_sim_cycles: u64,
    wall_seconds: f64,
    ops_per_second: f64,
    aggregate_p50_latency: u64,
    aggregate_p95_latency: u64,
    aggregate_p99_latency: u64,
    lost_tags: u64,
    duplicated_tags: u64,
    total_hammer_activations: u64,
    total_bit_flips: u64,
    total_trr_refreshes: u64,
    total_retention_decays: u64,
    total_busy_retries: u64,
    total_backoff_ms: u64,
    total_link_retries: u64,
    total_link_retrains: u64,
    total_poisoned_responses: u64,
    per_session: Vec<SessionReport>,
}

struct SessionOutcome {
    report: SessionReport,
    latencies: Vec<u64>,
    lost: u64,
    duplicated: u64,
}

fn drive_session(o: &Options, index: usize) -> Result<SessionOutcome, String> {
    let mut client = match (&o.socket, &o.connect) {
        (Some(path), _) => Client::connect_uds(path),
        (_, Some(addr)) => Client::connect_tcp(addr),
        _ => unreachable!("validated in parse_options"),
    }
    .map_err(|e| format!("session {index}: {e}"))?;

    // A non-default fabric or armed cell faults ride in on the preset's
    // config JSON: the DeviceConfig carries interconnect/arbitration and
    // the fault block, so the server builds the session's device with
    // the buffered NoC and/or injection enabled.
    let session = if o.interconnect == InterconnectKind::Crossbar
        && o.cell_faults.is_none()
        && o.link_faults.is_none()
    {
        client.open_session_preset(&o.preset, 0, 0)
    } else {
        let cfg = DeviceConfig::by_name(&o.preset)
            .ok_or_else(|| format!("session {index}: unknown preset {:?}", o.preset))?
            .with_interconnect(o.interconnect)
            .with_arbitration(o.arbitration)
            .with_cell_faults(o.cell_faults)
            .with_link_faults(o.link_faults);
        let json = serde_json::to_string(&cfg)
            .map_err(|e| format!("session {index}: config json: {e}"))?;
        client.open_session_json(&json, 0, 0)
    }
    .map_err(|e| format!("session {index}: open: {e}"))?;

    // Distinct seeds per session: concurrent identical streams would
    // still be valid, but distinct ones exercise the device mix better.
    let device = DeviceConfig::by_name(&o.preset);
    let capacity = device.as_ref().map(|c| c.capacity_bytes).unwrap_or(1 << 31);
    let block = BlockSize::from_bytes(o.block).map_err(|e| format!("--block: {e}"))?;
    let mut spec = WorkloadSpec::new(
        &o.workload,
        o.seed.wrapping_add(index as u32),
        capacity.min(2 << 30),
        o.requests,
    )
    .with_block(block)
    .with_read_pct(o.read_pct)
    .with_hotspot(o.hot_quad, o.hot_pct);
    // Quad-aware generators need the preset's address geometry.
    if let Some(cfg) = &device {
        spec = spec.with_geometry(cfg.geometry());
    }
    let mut workload = spec.build().map_err(|e| e.to_string())?;
    let mut ops = workload_to_wire(workload.as_mut());
    let mut idle_gaps = 0u64;
    if o.idle_gap > 0 {
        // Open-loop arrivals: a think-time gap after every idle_every
        // memory ops. The gap is part of the submitted stream, so the
        // server runs the identical schedule whether it steps or jumps.
        let mut spaced = Vec::with_capacity(ops.len() + ops.len() / o.idle_every as usize + 1);
        for (i, op) in ops.iter().enumerate() {
            spaced.push(*op);
            if (i as u64 + 1).is_multiple_of(o.idle_every) {
                spaced.push(WireOp::idle(o.idle_gap));
                idle_gaps += 1;
            }
        }
        ops = spaced;
    }
    let expected: u64 = ops
        .iter()
        .filter(|op| {
            op.kind != WireOp::KIND_POSTED_WRITE && op.kind != WireOp::KIND_IDLE
        })
        .count() as u64;

    let mut received = 0u64;
    let mut latencies: Vec<u64> = Vec::with_capacity(expected as usize);
    // Bounded BUSY handling: exponential backoff with per-session jitter,
    // attempts reset on any admission. Polling between attempts keeps the
    // response buffer draining, so backpressure can actually clear.
    let policy = RetryPolicy::default()
        .with_max_attempts(o.retry_attempts)
        .with_base_delay_ms(o.retry_base_ms)
        .with_jitter_seed(index as u64 + 1);
    let mut jitter = policy.jitter_seed;
    let mut consecutive_busy = 0u32;
    let mut busy_rejections = 0u64;
    let mut backoff_ms = 0u64;
    let mut pending_backoff: Option<u64> = None;
    let mut errors = 0u64;
    // Tag-conservation accounting: the server owns tag assignment, but a
    // client can still detect duplication (more responses than requests
    // in any window of 512, the tag space) via per-tag balance.
    let mut tag_seen = vec![0i64; 512];
    let mut duplicated = 0u64;

    let mut rest: &[WireOp] = &ops;
    while !rest.is_empty() || received < expected {
        if !rest.is_empty() {
            let take = rest.len().min(o.batch);
            match client
                .submit(session, &rest[..take])
                .map_err(|e| format!("session {index}: submit: {e}"))?
            {
                SubmitResult::Accepted { accepted, .. } => {
                    rest = &rest[accepted as usize..];
                    consecutive_busy = 0;
                }
                SubmitResult::Busy {
                    reason,
                    retry_hint_ms,
                } => {
                    if consecutive_busy >= policy.max_attempts {
                        return Err(format!(
                            "session {index}: still BUSY ({}) after {} consecutive \
                             submit attempts",
                            busy_reason_label(reason),
                            consecutive_busy
                        ));
                    }
                    let delay = policy.backoff_delay(consecutive_busy, retry_hint_ms, &mut jitter);
                    consecutive_busy += 1;
                    busy_rejections += 1;
                    backoff_ms += delay;
                    pending_backoff = Some(delay);
                }
            }
        }
        let poll = client
            .poll(session, o.poll_max)
            .map_err(|e| format!("session {index}: poll: {e}"))?;
        for r in &poll.items {
            received += 1;
            latencies.push(r.latency);
            if !r.ok {
                errors += 1;
            }
            let slot = &mut tag_seen[(r.tag as usize) % 512];
            *slot += 1;
            // More responses for one tag than total batches could ever
            // re-issue it means duplication; flag gross violations.
            if *slot > (o.requests as i64) {
                duplicated += 1;
            }
        }
        if let Some(delay) = pending_backoff.take() {
            // The poll above already drained what it could; sleep out the
            // backoff period before the next submission attempt.
            std::thread::sleep(std::time::Duration::from_millis(delay));
        } else if poll.items.is_empty() && !rest.is_empty() {
            // Backpressured and nothing to read yet: brief breather.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    let stats = client
        .stats(session)
        .map_err(|e| format!("session {index}: stats: {e}"))?;
    let lost = expected.saturating_sub(received) + stats.orphans;
    let final_stats = client
        .close(session)
        .map_err(|e| format!("session {index}: close: {e}"))?;
    if final_stats.outstanding != 0 {
        return Err(format!(
            "session {index}: closed with {} outstanding",
            final_stats.outstanding
        ));
    }

    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let report = SessionReport {
        session,
        requests: ops.iter().filter(|op| op.kind != WireOp::KIND_IDLE).count() as u64,
        responses: received,
        idle_gaps,
        sim_cycles: final_stats.cycles,
        sim_throughput: if final_stats.cycles > 0 {
            final_stats.injected as f64 / final_stats.cycles as f64
        } else {
            0.0
        },
        p50_latency: percentile_sorted(&sorted, 50.0),
        p95_latency: percentile_sorted(&sorted, 95.0),
        p99_latency: percentile_sorted(&sorted, 99.0),
        max_latency: final_stats.max_latency,
        send_stalls: final_stats.send_stalls,
        tag_stalls: final_stats.tag_stalls,
        token_stalls: final_stats.token_stalls,
        busy_rejections,
        backoff_ms,
        errors,
        link_retries: final_stats.link_retries,
        link_retrains: final_stats.link_retrains,
        poisoned_responses: final_stats.poisoned_responses,
        hammer_activations: final_stats.hammer_activations,
        bit_flips: final_stats.bit_flips,
        trr_refreshes: final_stats.trr_refreshes,
        retention_decays: final_stats.retention_decays,
    };
    Ok(SessionOutcome {
        report,
        latencies,
        lost,
        duplicated,
    })
}

fn main() {
    let o = parse_options();
    let started = Instant::now();

    let outcomes: Vec<Result<SessionOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..o.sessions)
            .map(|i| {
                let o = &o;
                scope.spawn(move || drive_session(o, i))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut failed = false;
    let mut sessions = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(s) => sessions.push(s),
            Err(e) => {
                eprintln!("loadgen: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }

    let mut all_latencies = Vec::new();
    for s in &sessions {
        all_latencies.extend_from_slice(&s.latencies);
    }
    let agg = LatencyPercentiles::from_samples(&mut all_latencies);
    let total_requests: u64 = sessions.iter().map(|s| s.report.requests).sum();
    let total_responses: u64 = sessions.iter().map(|s| s.report.responses).sum();
    let lost_tags: u64 = sessions.iter().map(|s| s.lost).sum();
    let duplicated_tags: u64 = sessions.iter().map(|s| s.duplicated).sum();

    let total_sim_cycles: u64 = sessions.iter().map(|s| s.report.sim_cycles).sum();
    let report = LoadgenReport {
        sessions: o.sessions as u64,
        workload: o.workload.clone(),
        preset: o.preset.clone(),
        interconnect: o.interconnect.name().into(),
        arbitration: o.arbitration.name().into(),
        requests_per_session: o.requests,
        idle_gap_cycles: o.idle_gap,
        idle_every_ops: o.idle_every,
        total_requests,
        total_responses,
        total_sim_cycles,
        wall_seconds,
        ops_per_second: if wall_seconds > 0.0 {
            total_requests as f64 / wall_seconds
        } else {
            0.0
        },
        aggregate_p50_latency: agg.p50,
        aggregate_p95_latency: agg.p95,
        aggregate_p99_latency: agg.p99,
        lost_tags,
        duplicated_tags,
        total_hammer_activations: sessions.iter().map(|s| s.report.hammer_activations).sum(),
        total_bit_flips: sessions.iter().map(|s| s.report.bit_flips).sum(),
        total_trr_refreshes: sessions.iter().map(|s| s.report.trr_refreshes).sum(),
        total_retention_decays: sessions.iter().map(|s| s.report.retention_decays).sum(),
        total_busy_retries: sessions.iter().map(|s| s.report.busy_rejections).sum(),
        total_backoff_ms: sessions.iter().map(|s| s.report.backoff_ms).sum(),
        total_link_retries: sessions.iter().map(|s| s.report.link_retries).sum(),
        total_link_retrains: sessions.iter().map(|s| s.report.link_retrains).sum(),
        total_poisoned_responses: sessions.iter().map(|s| s.report.poisoned_responses).sum(),
        per_session: sessions.iter().map(|s| s.report.clone()).collect(),
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match &o.json {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("loadgen: {}: {e}", path.display());
                std::process::exit(1);
            });
            eprintln!("loadgen: report written to {}", path.display());
        }
        None => println!("{json}"),
    }
    eprintln!(
        "loadgen: {} sessions x {} requests in {:.2}s ({:.0} ops/s), \
         p50/p95/p99 = {}/{}/{} cycles, {} lost, {} duplicated",
        o.sessions,
        o.requests,
        wall_seconds,
        report.ops_per_second,
        agg.p50,
        agg.p95,
        agg.p99,
        lost_tags,
        duplicated_tags
    );
    if report.total_busy_retries > 0 {
        eprintln!(
            "loadgen: backpressure: {} BUSY retries absorbed, {} ms backing off",
            report.total_busy_retries, report.total_backoff_ms
        );
    }
    if o.link_faults.is_some() {
        eprintln!(
            "loadgen: link faults: {} retries, {} retrains, {} poisoned responses",
            report.total_link_retries,
            report.total_link_retrains,
            report.total_poisoned_responses
        );
    }
    if o.cell_faults.is_some() {
        eprintln!(
            "loadgen: cell faults: {} activations, {} bit flips, {} TRR refreshes, \
             {} retention decays",
            report.total_hammer_activations,
            report.total_bit_flips,
            report.total_trr_refreshes,
            report.total_retention_decays
        );
    }
    if lost_tags > 0 || duplicated_tags > 0 {
        eprintln!("loadgen: TAG CONSERVATION VIOLATED");
        std::process::exit(1);
    }
}
