//! `hmc-serve` — the simulation service daemon.
//!
//! ```text
//! hmc-serve [--socket PATH] [--listen ADDR] [--max-sessions N]
//!           [--threads N] [--inflight N] [--responses N] [--slice N]
//!           [--idle-timeout SECS] [--drain-timeout SECS] [--fast-forward]
//!           [--link-error-rate PPM] [--link-retry-limit N]
//!           [--retrain-cycles N] [--link-retry-cycles N]
//!           [--link-fault-seed S]
//! ```
//!
//! The link-fault flags put the whole daemon into degraded-link mode:
//! every session whose config does not arm its own `link_faults` block
//! inherits the server's, so retry-exhausted requests come back to
//! clients as poisoned error frames.
//!
//! At least one of `--socket` (Unix-domain) or `--listen` (TCP) is
//! required. SIGTERM and SIGINT trigger the graceful drain: stop
//! accepting, quiesce every session's device, flush responses, exit 0
//! (1 if the drain window expired with sessions still busy).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hmc_serve::{DrainOutcome, Server, ServerConfig, SessionLimits};
use hmc_types::LinkFaultConfig;

// No libc crate in this workspace: bind the two POSIX symbols the daemon
// needs directly. The handler only sets an atomic flag — the one thing
// that is async-signal-safe — and the accept/read loops poll it.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN_REQUESTED.store(true, Ordering::Release);
}

struct Options {
    socket: Option<PathBuf>,
    listen: Option<String>,
    max_sessions: usize,
    threads: usize,
    inflight: usize,
    responses: usize,
    slice: u64,
    idle_timeout: u64,
    drain_timeout: u64,
    fast_forward: bool,
    link_faults: Option<LinkFaultConfig>,
}

impl Default for Options {
    fn default() -> Self {
        let d = ServerConfig::default();
        let l = SessionLimits::default();
        Options {
            socket: None,
            listen: None,
            max_sessions: d.max_sessions,
            threads: d.threads,
            inflight: l.inflight_limit,
            responses: l.response_limit,
            slice: l.slice_cycles,
            idle_timeout: 300,
            drain_timeout: 30,
            fast_forward: l.fast_forward,
            link_faults: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: hmc-serve [--socket PATH] [--listen ADDR] [--max-sessions N] \
         [--threads N] [--inflight N] [--responses N] [--slice N] \
         [--idle-timeout SECS (0 = never)] [--drain-timeout SECS] \
         [--fast-forward] [--link-error-rate PPM] [--link-retry-limit N] \
         [--retrain-cycles N] [--link-retry-cycles N] [--link-fault-seed S]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut o = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("hmc-serve: {flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => o.socket = Some(PathBuf::from(next("--socket"))),
            "--listen" => o.listen = Some(next("--listen")),
            "--max-sessions" => {
                o.max_sessions = next("--max-sessions").parse().unwrap_or_else(|_| usage())
            }
            "--threads" => o.threads = next("--threads").parse().unwrap_or_else(|_| usage()),
            "--inflight" => o.inflight = next("--inflight").parse().unwrap_or_else(|_| usage()),
            "--responses" => o.responses = next("--responses").parse().unwrap_or_else(|_| usage()),
            "--slice" => o.slice = next("--slice").parse().unwrap_or_else(|_| usage()),
            "--idle-timeout" => {
                o.idle_timeout = next("--idle-timeout").parse().unwrap_or_else(|_| usage())
            }
            "--drain-timeout" => {
                o.drain_timeout = next("--drain-timeout").parse().unwrap_or_else(|_| usage())
            }
            "--fast-forward" => o.fast_forward = true,
            "--help" | "-h" => usage(),
            other => {
                let value = args.next();
                match LinkFaultConfig::apply_flag(&mut o.link_faults, other, value.as_deref()) {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("hmc-serve: unknown argument {other}");
                        usage()
                    }
                    Err(e) => {
                        eprintln!("hmc-serve: {e}");
                        usage()
                    }
                }
            }
        }
    }
    if o.socket.is_none() && o.listen.is_none() {
        eprintln!("hmc-serve: need --socket and/or --listen");
        usage()
    }
    if o.max_sessions == 0 || o.inflight == 0 || o.responses == 0 || o.slice == 0 {
        eprintln!("hmc-serve: --max-sessions/--inflight/--responses/--slice must be nonzero");
        usage()
    }
    o
}

fn main() {
    let o = parse_options();
    let cfg = ServerConfig {
        max_sessions: o.max_sessions,
        threads: o.threads,
        limits: SessionLimits {
            inflight_limit: o.inflight,
            response_limit: o.responses,
            slice_cycles: o.slice,
            fast_forward: o.fast_forward,
        },
        idle_timeout: if o.idle_timeout == 0 {
            None
        } else {
            Some(Duration::from_secs(o.idle_timeout))
        },
        link_faults: o.link_faults,
        ..ServerConfig::default()
    };

    let mut server = Server::new(cfg);
    if let Some(path) = &o.socket {
        server.bind_uds(path).unwrap_or_else(|e| {
            eprintln!("hmc-serve: {e}");
            std::process::exit(2);
        });
        eprintln!("hmc-serve: listening on {}", path.display());
    }
    if let Some(addr) = &o.listen {
        let local = server.bind_tcp(addr).unwrap_or_else(|e| {
            eprintln!("hmc-serve: {e}");
            std::process::exit(2);
        });
        eprintln!("hmc-serve: listening on tcp {local}");
    }

    // Relay SIGTERM/SIGINT into the server's shutdown flag. The static
    // atomic decouples the handler from the server object; a bridge
    // thread forwards it.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    let flag: Arc<AtomicBool> = server.shutdown_flag();
    std::thread::spawn(move || loop {
        if SHUTDOWN_REQUESTED.load(Ordering::Acquire) {
            flag.store(true, Ordering::Release);
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });

    eprintln!(
        "hmc-serve: ready ({} worker(s), {} session cap{})",
        o.threads.max(1),
        o.max_sessions,
        if o.fast_forward { ", fast-forward" } else { "" }
    );
    if let Some(f) = &o.link_faults {
        eprintln!(
            "hmc-serve: degraded-link mode: {} ppm error rate, retry limit {}, \
             retrain {} cycles",
            f.error_rate_ppm, f.retry_limit, f.retrain_cycles
        );
    }
    match server.run(Duration::from_secs(o.drain_timeout)) {
        DrainOutcome::Drained => {
            eprintln!("hmc-serve: drained cleanly");
            std::process::exit(0);
        }
        DrainOutcome::TimedOut => {
            eprintln!("hmc-serve: drain timed out with sessions still busy");
            std::process::exit(1);
        }
    }
}
