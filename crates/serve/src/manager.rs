//! Session lifecycle and the bounded worker pool.
//!
//! The manager owns every live session, admits new ones under a
//! concurrent-session cap, schedules runnable sessions onto a fixed pool
//! of worker threads, reaps sessions idle past their timeout, and
//! coordinates the graceful drain (stop admitting, pump everything to
//! quiescence, then let the server exit 0).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hmc_types::{DeviceConfig, Frame, HmcError, Result, WireErrorCode, WireOp};

use crate::session::{PumpOutcome, SessionLimits, SessionState};

/// Service-level configuration for the daemon and loopback tests.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Admission cap on concurrently open sessions.
    pub max_sessions: usize,
    /// Worker threads pumping sessions.
    pub threads: usize,
    /// Default per-session limits (clients may request smaller bounds).
    pub limits: SessionLimits,
    /// Close sessions untouched for this long; `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Suggested client retry delay carried in BUSY frames.
    pub retry_hint_ms: u32,
    /// Server-wide link-fault default: applied to every opened session
    /// whose own `DeviceConfig` leaves `link_faults` unset (a session
    /// config that arms its own faults wins). `None` leaves links clean.
    pub link_faults: Option<hmc_types::LinkFaultConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            threads: 4,
            limits: SessionLimits::default(),
            idle_timeout: Some(Duration::from_secs(300)),
            retry_hint_ms: 2,
            link_faults: None,
        }
    }
}

struct SessionHandle {
    id: u64,
    state: Mutex<SessionState>,
    /// True while the session sits in the run queue (dedup guard).
    queued: AtomicBool,
    last_touch: Mutex<Instant>,
}

struct Inner {
    cfg: ServerConfig,
    sessions: Mutex<HashMap<u64, Arc<SessionHandle>>>,
    next_id: AtomicU64,
    /// Runnable session IDs; workers block on the condvar.
    run_queue: Mutex<std::collections::VecDeque<u64>>,
    work_ready: Condvar,
    /// Set once: stop admitting sessions and submissions.
    draining: AtomicBool,
    /// Set once: workers exit after the queue runs dry.
    stop: AtomicBool,
}

/// The concurrent session manager. Cheap to clone (`Arc` inside);
/// connection threads and workers share one instance.
#[derive(Clone)]
pub struct SessionManager {
    inner: Arc<Inner>,
}

impl SessionManager {
    /// Start the manager and its worker pool.
    pub fn start(cfg: ServerConfig) -> (SessionManager, Vec<std::thread::JoinHandle<()>>) {
        let mgr = SessionManager {
            inner: Arc::new(Inner {
                cfg,
                sessions: Mutex::new(HashMap::new()),
                next_id: AtomicU64::new(1),
                run_queue: Mutex::new(std::collections::VecDeque::new()),
                work_ready: Condvar::new(),
                draining: AtomicBool::new(false),
                stop: AtomicBool::new(false),
            }),
        };
        let workers = (0..cfg.threads.max(1))
            .map(|i| {
                let m = mgr.clone();
                std::thread::Builder::new()
                    .name(format!("hmc-serve-worker-{i}"))
                    .spawn(move || m.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        (mgr, workers)
    }

    /// The configured admission cap.
    pub fn max_sessions(&self) -> usize {
        self.inner.cfg.max_sessions
    }

    /// Sessions currently open.
    pub fn active_sessions(&self) -> usize {
        self.inner.sessions.lock().unwrap().len()
    }

    /// True once a drain has begun (no new sessions or submissions).
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    fn busy(&self, reason: hmc_types::BusyReason) -> Frame {
        Frame::Busy {
            reason: reason as u8,
            retry_hint_ms: self.inner.cfg.retry_hint_ms,
        }
    }

    fn error(code: WireErrorCode, message: impl Into<String>) -> Frame {
        Frame::Error {
            code: code as u8,
            message: message.into(),
        }
    }

    fn session(&self, id: u64) -> Option<Arc<SessionHandle>> {
        self.inner.sessions.lock().unwrap().get(&id).cloned()
    }

    fn touch(handle: &SessionHandle) {
        *handle.last_touch.lock().unwrap() = Instant::now();
    }

    /// Put a session on the run queue if it is not already there.
    fn schedule(&self, handle: &SessionHandle) {
        if handle.queued.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.run_queue.lock().unwrap().push_back(handle.id);
        self.inner.work_ready.notify_one();
    }

    /// Open a session under the admission cap. `preset` wins over
    /// `config_json`; requested limits are clamped to the server's.
    pub fn open_session(
        &self,
        preset: &str,
        config_json: &str,
        inflight_limit: u32,
        response_limit: u32,
    ) -> Frame {
        if self.draining() {
            return Self::error(WireErrorCode::ShuttingDown, "server is draining");
        }
        let mut config: DeviceConfig = if !preset.is_empty() {
            match DeviceConfig::by_name(preset) {
                Some(c) => c,
                None => {
                    return Self::error(
                        WireErrorCode::BadConfig,
                        format!("unknown preset {preset:?}"),
                    )
                }
            }
        } else if !config_json.is_empty() {
            match serde_json::from_str(config_json) {
                Ok(c) => c,
                Err(e) => {
                    return Self::error(WireErrorCode::BadConfig, format!("config JSON: {e}"))
                }
            }
        } else {
            return Self::error(WireErrorCode::BadConfig, "no preset and no config body");
        };
        if config.link_faults.is_none() {
            // Daemon-wide degraded-link mode: sessions inherit the
            // server's fault block unless they brought their own.
            config.link_faults = self.inner.cfg.link_faults;
        }

        let defaults = self.inner.cfg.limits;
        let clamp = |requested: u32, default: usize| -> usize {
            if requested == 0 {
                default
            } else {
                (requested as usize).min(default)
            }
        };
        let limits = SessionLimits {
            inflight_limit: clamp(inflight_limit, defaults.inflight_limit),
            response_limit: clamp(response_limit, defaults.response_limit),
            slice_cycles: defaults.slice_cycles,
            fast_forward: defaults.fast_forward,
        };

        let state = match SessionState::new(config, limits) {
            Ok(s) => s,
            Err(e) => return Self::error(WireErrorCode::BadConfig, e.to_string()),
        };

        let mut sessions = self.inner.sessions.lock().unwrap();
        if sessions.len() >= self.inner.cfg.max_sessions {
            return self.busy(hmc_types::BusyReason::SessionsFull);
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        sessions.insert(
            id,
            Arc::new(SessionHandle {
                id,
                state: Mutex::new(state),
                queued: AtomicBool::new(false),
                last_touch: Mutex::new(Instant::now()),
            }),
        );
        Frame::SessionOpened { session: id }
    }

    /// Submit a batch; replies BatchAccepted, Busy, or Error.
    pub fn submit(&self, id: u64, ops: &[WireOp]) -> Frame {
        if self.draining() {
            return Self::error(WireErrorCode::ShuttingDown, "server is draining");
        }
        let Some(handle) = self.session(id) else {
            return Self::error(WireErrorCode::UnknownSession, format!("session {id}"));
        };
        Self::touch(&handle);
        let accepted = {
            let mut state = handle.state.lock().unwrap();
            match state.submit(ops) {
                Ok(n) => {
                    if n == 0 && !ops.is_empty() {
                        return self.busy(hmc_types::BusyReason::InflightFull);
                    }
                    let free = state.queue_free() as u32;
                    (n as u32, free)
                }
                Err(e) => return Self::error(WireErrorCode::BadFrame, e.to_string()),
            }
        };
        self.schedule(&handle);
        Frame::BatchAccepted {
            accepted: accepted.0,
            queue_free: accepted.1,
        }
    }

    /// Poll up to `max` responses; replies Responses or Error.
    pub fn poll(&self, id: u64, max: u32) -> Frame {
        let Some(handle) = self.session(id) else {
            return Self::error(WireErrorCode::UnknownSession, format!("session {id}"));
        };
        Self::touch(&handle);
        let (items, outstanding, idle, resume) = {
            let mut state = handle.state.lock().unwrap();
            let was_paused = state.paused();
            let max = if max == 0 { u32::MAX } else { max };
            let items = state.take_responses(max as usize);
            let resume = was_paused && !state.paused() && state.has_work();
            (
                items,
                state.outstanding() as u32,
                state.drained(),
                resume,
            )
        };
        if resume {
            self.schedule(&handle);
        }
        Frame::Responses {
            items,
            outstanding,
            idle,
        }
    }

    /// Snapshot a session's metrics; replies Stats or Error.
    pub fn stats(&self, id: u64) -> Frame {
        let Some(handle) = self.session(id) else {
            return Self::error(WireErrorCode::UnknownSession, format!("session {id}"));
        };
        Self::touch(&handle);
        let snap = handle.state.lock().unwrap().snapshot();
        Frame::Stats(snap)
    }

    /// Close a session, returning its final metrics; replies Closed or
    /// Error.
    pub fn close(&self, id: u64) -> Frame {
        let Some(handle) = self.inner.sessions.lock().unwrap().remove(&id) else {
            return Self::error(WireErrorCode::UnknownSession, format!("session {id}"));
        };
        let snap = handle.state.lock().unwrap().snapshot();
        Frame::Closed(snap)
    }

    /// Close sessions whose last client activity predates the timeout.
    /// Returns how many were reaped. Sessions still pumping work are
    /// spared: the timeout measures client neglect, not device busyness.
    pub fn reap_idle(&self) -> usize {
        let Some(timeout) = self.inner.cfg.idle_timeout else {
            return 0;
        };
        let mut sessions = self.inner.sessions.lock().unwrap();
        let before = sessions.len();
        sessions.retain(|_, handle| {
            let stale = handle
                .last_touch
                .lock()
                .map(|t| t.elapsed() > timeout)
                .unwrap_or(false);
            if !stale {
                return true;
            }
            // A session mid-pump keeps its slot this round.
            match handle.state.try_lock() {
                Ok(state) => state.has_work(),
                Err(_) => true,
            }
        });
        before - sessions.len()
    }

    /// Begin the graceful drain: refuse new sessions and submissions,
    /// and schedule every session so buffered work pumps to quiescence.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
        let handles: Vec<_> = self.inner.sessions.lock().unwrap().values().cloned().collect();
        for handle in handles {
            self.schedule(&handle);
        }
    }

    /// Block until every session is drained (quiescent device, nothing
    /// queued or outstanding) or `timeout` passes. Returns success.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let all_drained = {
                let sessions = self.inner.sessions.lock().unwrap();
                sessions.values().all(|h| match h.state.try_lock() {
                    Ok(state) => state.drained(),
                    Err(_) => false,
                })
            };
            if all_drained {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stop the worker pool. Callers join the handles returned by
    /// [`SessionManager::start`] afterwards.
    pub fn stop_workers(&self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.work_ready.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let id = {
                let mut queue = self.inner.run_queue.lock().unwrap();
                loop {
                    if let Some(id) = queue.pop_front() {
                        break id;
                    }
                    if self.inner.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let (q, _) = self
                        .inner
                        .work_ready
                        .wait_timeout(queue, Duration::from_millis(100))
                        .unwrap();
                    queue = q;
                }
            };
            let Some(handle) = self.session(id) else {
                continue;
            };
            handle.queued.store(false, Ordering::Release);
            let outcome = {
                let mut state = handle.state.lock().unwrap();
                state.pump()
            };
            match outcome {
                Ok(PumpOutcome::Working) => self.schedule(&handle),
                Ok(PumpOutcome::Idle) | Ok(PumpOutcome::Paused) => {}
                Err(e) => {
                    // A broken simulation cannot be pumped further; drop
                    // the session so clients get UnknownSession rather
                    // than a wedged queue.
                    eprintln!("hmc-serve: session {id} failed: {e}");
                    self.inner.sessions.lock().unwrap().remove(&id);
                }
            }
        }
    }

    /// Dispatch one decoded client frame (connection-thread entry point).
    /// `Hello` and `Shutdown` are handled by the server, not here.
    pub fn handle(&self, frame: &Frame) -> Frame {
        match frame {
            Frame::OpenSession {
                preset,
                config_json,
                inflight_limit,
                response_limit,
            } => self.open_session(preset, config_json, *inflight_limit, *response_limit),
            Frame::SubmitBatch { session, ops } => self.submit(*session, ops),
            Frame::Poll { session, max } => self.poll(*session, *max),
            Frame::SnapshotStats { session } => self.stats(*session),
            Frame::CloseSession { session } => self.close(*session),
            other => Self::error(
                WireErrorCode::BadFrame,
                format!("unexpected frame 0x{:02x}", other.opcode()),
            ),
        }
    }
}

/// Convert a manager error frame into an `HmcError` (client-side helper).
pub fn frame_error(frame: &Frame) -> HmcError {
    match frame {
        Frame::Error { code, message } => HmcError::Wire(format!(
            "server error {:?}: {message}",
            WireErrorCode::from_u8(*code)
        )),
        Frame::Busy {
            reason,
            retry_hint_ms,
        } => HmcError::Wire(format!(
            "server busy ({:?}, retry in {retry_hint_ms} ms)",
            hmc_types::BusyReason::from_u8(*reason)
        )),
        other => HmcError::Wire(format!("unexpected reply 0x{:02x}", other.opcode())),
    }
}

/// `Result`-flavored unwrap for client replies that should be `T`.
pub fn expect_frame<T>(frame: Frame, extract: impl FnOnce(&Frame) -> Option<T>) -> Result<T> {
    match extract(&frame) {
        Some(v) => Ok(v),
        None => Err(frame_error(&frame)),
    }
}
