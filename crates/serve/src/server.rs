//! Socket frontends: accept loops, per-connection frame dispatch, and
//! the graceful-drain choreography.
//!
//! Listeners run nonblocking with a short poll interval so the accept
//! loop notices the shutdown flag promptly (a raw SIGTERM handler can
//! only set an atomic — it cannot interrupt a blocking accept portably).
//! Connection threads use socket read timeouts for the same reason.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hmc_types::{Frame, HmcError, Result, WireErrorCode, WIRE_VERSION};

use crate::manager::{ServerConfig, SessionManager};
use crate::proto::{write_frame, FrameReader, ReadOutcome};

const ACCEPT_POLL: Duration = Duration::from_millis(25);
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// How a server run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every session quiesced inside the drain window.
    Drained,
    /// The drain window expired with sessions still busy.
    TimedOut,
}

/// A running service: listeners + manager + worker pool.
pub struct Server {
    mgr: SessionManager,
    workers: Vec<std::thread::JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    uds: Vec<(UnixListener, PathBuf)>,
    tcp: Vec<TcpListener>,
}

impl Server {
    /// Create the service and start its worker pool (no listeners yet).
    pub fn new(cfg: ServerConfig) -> Server {
        let (mgr, workers) = SessionManager::start(cfg);
        Server {
            mgr,
            workers,
            shutdown: Arc::new(AtomicBool::new(false)),
            uds: Vec::new(),
            tcp: Vec::new(),
        }
    }

    /// The session manager (loopback tests drive it directly).
    pub fn manager(&self) -> SessionManager {
        self.mgr.clone()
    }

    /// The flag that stops the accept loop; a signal handler or another
    /// thread sets it to trigger the graceful drain.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Bind a Unix-domain listener. A stale socket file from a previous
    /// run is removed first.
    pub fn bind_uds(&mut self, path: &Path) -> Result<()> {
        if path.exists() {
            std::fs::remove_file(path)
                .map_err(|e| HmcError::Wire(format!("{}: {e}", path.display())))?;
        }
        let listener = UnixListener::bind(path)
            .map_err(|e| HmcError::Wire(format!("bind {}: {e}", path.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| HmcError::Wire(format!("nonblocking: {e}")))?;
        self.uds.push((listener, path.to_path_buf()));
        Ok(())
    }

    /// Bind a TCP listener. Returns the bound address (use port 0 to let
    /// the OS pick).
    pub fn bind_tcp(&mut self, addr: &str) -> Result<std::net::SocketAddr> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| HmcError::Wire(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| HmcError::Wire(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| HmcError::Wire(format!("nonblocking: {e}")))?;
        self.tcp.push(listener);
        Ok(local)
    }

    /// Serve until the shutdown flag is set, then drain gracefully:
    /// stop accepting, pump every session to quiescence (bounded by
    /// `drain_timeout`), stop the workers, and remove socket files.
    ///
    /// Idle-session reaping runs on the accept loop's cadence.
    pub fn run(mut self, drain_timeout: Duration) -> DrainOutcome {
        let live_conns = Arc::new(AtomicUsize::new(0));
        let conn_exit = Arc::new(AtomicBool::new(false));
        let mut reap_tick = 0u32;

        while !self.shutdown.load(Ordering::Acquire) {
            let mut accepted = false;
            for (listener, _) in &self.uds {
                while let Ok((stream, _)) = listener.accept() {
                    accepted = true;
                    self.spawn_conn(UdsOrTcp::Uds(stream), &live_conns, &conn_exit);
                }
            }
            for listener in &self.tcp {
                while let Ok((stream, _)) = listener.accept() {
                    accepted = true;
                    self.spawn_conn(UdsOrTcp::Tcp(stream), &live_conns, &conn_exit);
                }
            }
            if !accepted {
                std::thread::sleep(ACCEPT_POLL);
            }
            reap_tick += 1;
            if reap_tick >= 40 {
                reap_tick = 0;
                let reaped = self.mgr.reap_idle();
                if reaped > 0 {
                    eprintln!("hmc-serve: reaped {reaped} idle session(s)");
                }
            }
        }

        // Graceful drain: stop accepting (listeners drop below), refuse
        // new work, pump buffered work dry, then stop the pool.
        drop(std::mem::take(&mut self.tcp));
        self.mgr.begin_drain();
        let outcome = if self.mgr.wait_drained(drain_timeout) {
            DrainOutcome::Drained
        } else {
            DrainOutcome::TimedOut
        };

        // Give connected clients a moment to poll flushed responses,
        // then retire connection threads.
        conn_exit.store(true, Ordering::Release);
        let conn_deadline = std::time::Instant::now() + Duration::from_secs(2);
        while live_conns.load(Ordering::Acquire) > 0
            && std::time::Instant::now() < conn_deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }

        self.mgr.stop_workers();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        for (listener, path) in self.uds.drain(..) {
            drop(listener);
            let _ = std::fs::remove_file(&path);
        }
        outcome
    }

    fn spawn_conn(
        &self,
        stream: UdsOrTcp,
        live_conns: &Arc<AtomicUsize>,
        conn_exit: &Arc<AtomicBool>,
    ) {
        let mgr = self.mgr.clone();
        let shutdown = self.shutdown.clone();
        let exit = conn_exit.clone();
        let live = live_conns.clone();
        live.fetch_add(1, Ordering::AcqRel);
        let _ = std::thread::Builder::new()
            .name("hmc-serve-conn".into())
            .spawn(move || {
                let _guard = DecrementOnDrop(live);
                if let Err(e) = serve_connection(stream, &mgr, &shutdown, &exit) {
                    // Client protocol violations end the connection only.
                    eprintln!("hmc-serve: connection error: {e}");
                }
            });
    }
}

struct DecrementOnDrop(Arc<AtomicUsize>);
impl Drop for DecrementOnDrop {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

enum UdsOrTcp {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl UdsOrTcp {
    fn prepare(&self) -> std::io::Result<()> {
        match self {
            UdsOrTcp::Uds(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(READ_TIMEOUT))
            }
            UdsOrTcp::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(READ_TIMEOUT))
            }
        }
    }
}

impl Read for UdsOrTcp {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            UdsOrTcp::Uds(s) => s.read(buf),
            UdsOrTcp::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for UdsOrTcp {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            UdsOrTcp::Uds(s) => s.write(buf),
            UdsOrTcp::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            UdsOrTcp::Uds(s) => s.flush(),
            UdsOrTcp::Tcp(s) => s.flush(),
        }
    }
}

/// One connection's request/reply loop. The first frame must be `Hello`
/// with a matching protocol version.
fn serve_connection(
    mut stream: UdsOrTcp,
    mgr: &SessionManager,
    shutdown: &AtomicBool,
    conn_exit: &AtomicBool,
) -> Result<()> {
    stream
        .prepare()
        .map_err(|e| HmcError::Wire(format!("socket options: {e}")))?;
    let mut reader = FrameReader::new();
    let mut greeted = false;
    loop {
        if conn_exit.load(Ordering::Acquire) {
            return Ok(());
        }
        let frame = match reader.poll(&mut stream)? {
            ReadOutcome::Frame(f) => f,
            ReadOutcome::Eof => return Ok(()),
            ReadOutcome::TimedOut => continue,
            ReadOutcome::Malformed(reason) => {
                // The body was garbage but the framing held: answer with
                // a typed error and keep serving the connection.
                let reply = Frame::Error {
                    code: WireErrorCode::BadFrame as u8,
                    message: format!("undecodable frame: {reason}"),
                };
                write_frame(&mut stream, &reply)?;
                continue;
            }
        };
        let reply = match &frame {
            Frame::Hello { version } => {
                if *version != WIRE_VERSION {
                    let reply = Frame::Error {
                        code: WireErrorCode::VersionMismatch as u8,
                        message: format!(
                            "client speaks v{version}, server speaks v{WIRE_VERSION}"
                        ),
                    };
                    write_frame(&mut stream, &reply)?;
                    return Ok(());
                }
                greeted = true;
                Frame::HelloAck {
                    version: WIRE_VERSION,
                    max_sessions: mgr.max_sessions() as u32,
                    active_sessions: mgr.active_sessions() as u32,
                }
            }
            Frame::Shutdown => {
                write_frame(&mut stream, &Frame::ShuttingDown)?;
                shutdown.store(true, Ordering::Release);
                continue;
            }
            _ if !greeted => {
                let reply = Frame::Error {
                    code: WireErrorCode::BadFrame as u8,
                    message: "the first frame must be Hello".into(),
                };
                write_frame(&mut stream, &reply)?;
                return Ok(());
            }
            other => mgr.handle(other),
        };
        write_frame(&mut stream, &reply)?;
    }
}
