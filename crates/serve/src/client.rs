//! Blocking client for the `hmc-serve` wire protocol.
//!
//! One [`Client`] wraps one connection; sessions are cheap handles on
//! the server side, so a client may open several. All calls are
//! synchronous request/reply — the server replies to every frame in
//! order on a given connection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use hmc_types::{
    BusyReason, Frame, HmcError, Result, WireOp, WireResponse, WireStats, WIRE_VERSION,
};

use crate::manager::frame_error;
use crate::proto::{write_frame, FrameReader, ReadOutcome};

/// The server's reply to a submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// A batch prefix was admitted.
    Accepted {
        /// Operations admitted (prefix of the batch).
        accepted: u32,
        /// Inflight-queue slots left after admission.
        queue_free: u32,
    },
    /// Typed backpressure: nothing admitted, retry after the hint.
    Busy {
        /// Why ([`BusyReason`] byte).
        reason: u8,
        /// Suggested retry delay in milliseconds.
        retry_hint_ms: u32,
    },
}

/// One `Poll` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollResult {
    /// Responses returned, oldest first.
    pub items: Vec<WireResponse>,
    /// Requests still awaiting device responses.
    pub outstanding: u32,
    /// True when the session is fully drained server-side.
    pub idle: bool,
}

/// The server's greeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Server protocol version.
    pub version: u16,
    /// Admission cap on concurrent sessions.
    pub max_sessions: u32,
    /// Sessions open at greeting time.
    pub active_sessions: u32,
}

enum Stream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Uds(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Uds(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A blocking protocol client.
pub struct Client {
    stream: Stream,
    reader: FrameReader,
    /// The server's greeting, captured during connect.
    pub server: ServerInfo,
}

impl Client {
    /// Connect over a Unix-domain socket and exchange greetings.
    pub fn connect_uds(path: &Path) -> Result<Client> {
        let stream = UnixStream::connect(path)
            .map_err(|e| HmcError::Wire(format!("connect {}: {e}", path.display())))?;
        Self::finish_connect(Stream::Uds(stream))
    }

    /// Connect over TCP and exchange greetings.
    pub fn connect_tcp(addr: &str) -> Result<Client> {
        let stream =
            TcpStream::connect(addr).map_err(|e| HmcError::Wire(format!("connect {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| HmcError::Wire(format!("nodelay: {e}")))?;
        Self::finish_connect(Stream::Tcp(stream))
    }

    fn finish_connect(stream: Stream) -> Result<Client> {
        let mut client = Client {
            stream,
            reader: FrameReader::new(),
            server: ServerInfo {
                version: 0,
                max_sessions: 0,
                active_sessions: 0,
            },
        };
        let reply = client.roundtrip(&Frame::Hello {
            version: WIRE_VERSION,
        })?;
        match reply {
            Frame::HelloAck {
                version,
                max_sessions,
                active_sessions,
            } => {
                client.server = ServerInfo {
                    version,
                    max_sessions,
                    active_sessions,
                };
                Ok(client)
            }
            other => Err(frame_error(&other)),
        }
    }

    /// Send one frame and block for the reply.
    pub fn roundtrip(&mut self, frame: &Frame) -> Result<Frame> {
        write_frame(&mut self.stream, frame)?;
        loop {
            match self.reader.poll(&mut self.stream)? {
                ReadOutcome::Frame(f) => return Ok(f),
                ReadOutcome::Eof => {
                    return Err(HmcError::Wire("server closed the connection".into()))
                }
                ReadOutcome::TimedOut => continue,
            }
        }
    }

    /// Open a session from a preset name. `0` limits take server defaults.
    pub fn open_session_preset(
        &mut self,
        preset: &str,
        inflight_limit: u32,
        response_limit: u32,
    ) -> Result<u64> {
        self.open_session(preset, "", inflight_limit, response_limit)
    }

    /// Open a session from a `DeviceConfig` JSON document.
    pub fn open_session_json(
        &mut self,
        config_json: &str,
        inflight_limit: u32,
        response_limit: u32,
    ) -> Result<u64> {
        self.open_session("", config_json, inflight_limit, response_limit)
    }

    fn open_session(
        &mut self,
        preset: &str,
        config_json: &str,
        inflight_limit: u32,
        response_limit: u32,
    ) -> Result<u64> {
        let reply = self.roundtrip(&Frame::OpenSession {
            preset: preset.to_string(),
            config_json: config_json.to_string(),
            inflight_limit,
            response_limit,
        })?;
        match reply {
            Frame::SessionOpened { session } => Ok(session),
            other => Err(frame_error(&other)),
        }
    }

    /// Submit a batch of operations. BUSY is a normal return, not an
    /// error — callers poll and retry.
    pub fn submit(&mut self, session: u64, ops: &[WireOp]) -> Result<SubmitResult> {
        let reply = self.roundtrip(&Frame::SubmitBatch {
            session,
            ops: ops.to_vec(),
        })?;
        match reply {
            Frame::BatchAccepted {
                accepted,
                queue_free,
            } => Ok(SubmitResult::Accepted {
                accepted,
                queue_free,
            }),
            Frame::Busy {
                reason,
                retry_hint_ms,
            } => Ok(SubmitResult::Busy {
                reason,
                retry_hint_ms,
            }),
            other => Err(frame_error(&other)),
        }
    }

    /// Submit a whole batch, retrying BUSY with short sleeps and
    /// resubmitting unaccepted suffixes until every op is admitted.
    pub fn submit_all(&mut self, session: u64, ops: &[WireOp]) -> Result<()> {
        let mut rest = ops;
        while !rest.is_empty() {
            match self.submit(session, rest)? {
                SubmitResult::Accepted { accepted, .. } => {
                    rest = &rest[accepted as usize..];
                }
                SubmitResult::Busy { retry_hint_ms, .. } => {
                    std::thread::sleep(std::time::Duration::from_millis(
                        u64::from(retry_hint_ms.clamp(1, 50)),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Poll up to `max` responses (`0` = server default).
    pub fn poll(&mut self, session: u64, max: u32) -> Result<PollResult> {
        let reply = self.roundtrip(&Frame::Poll { session, max })?;
        match reply {
            Frame::Responses {
                items,
                outstanding,
                idle,
            } => Ok(PollResult {
                items,
                outstanding,
                idle,
            }),
            other => Err(frame_error(&other)),
        }
    }

    /// Snapshot the session's metrics.
    pub fn stats(&mut self, session: u64) -> Result<WireStats> {
        match self.roundtrip(&Frame::SnapshotStats { session })? {
            Frame::Stats(s) => Ok(s),
            other => Err(frame_error(&other)),
        }
    }

    /// Close the session, returning its final metrics.
    pub fn close(&mut self, session: u64) -> Result<WireStats> {
        match self.roundtrip(&Frame::CloseSession { session })? {
            Frame::Closed(s) => Ok(s),
            other => Err(frame_error(&other)),
        }
    }

    /// Ask the server to begin its graceful drain.
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.roundtrip(&Frame::Shutdown)? {
            Frame::ShuttingDown => Ok(()),
            other => Err(frame_error(&other)),
        }
    }
}

/// Decode a BUSY reason for reports.
pub fn busy_reason_label(reason: u8) -> &'static str {
    match BusyReason::from_u8(reason) {
        Some(BusyReason::SessionsFull) => "sessions-full",
        Some(BusyReason::InflightFull) => "inflight-full",
        Some(BusyReason::ResponsesFull) => "responses-full",
        None => "unknown",
    }
}
