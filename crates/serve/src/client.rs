//! Blocking client for the `hmc-serve` wire protocol.
//!
//! One [`Client`] wraps one connection; sessions are cheap handles on
//! the server side, so a client may open several. All calls are
//! synchronous request/reply — the server replies to every frame in
//! order on a given connection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use hmc_types::{
    BusyReason, Frame, HmcError, Result, WireOp, WireResponse, WireStats, WIRE_VERSION,
};

use crate::manager::frame_error;
use crate::proto::{write_frame, FrameReader, ReadOutcome};

/// The server's reply to a submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// A batch prefix was admitted.
    Accepted {
        /// Operations admitted (prefix of the batch).
        accepted: u32,
        /// Inflight-queue slots left after admission.
        queue_free: u32,
    },
    /// Typed backpressure: nothing admitted, retry after the hint.
    Busy {
        /// Why ([`BusyReason`] byte).
        reason: u8,
        /// Suggested retry delay in milliseconds.
        retry_hint_ms: u32,
    },
}

/// One `Poll` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollResult {
    /// Responses returned, oldest first.
    pub items: Vec<WireResponse>,
    /// Requests still awaiting device responses.
    pub outstanding: u32,
    /// True when the session is fully drained server-side.
    pub idle: bool,
}

/// The server's greeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Server protocol version.
    pub version: u16,
    /// Admission cap on concurrent sessions.
    pub max_sessions: u32,
    /// Sessions open at greeting time.
    pub active_sessions: u32,
}

enum Stream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Uds(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Uds(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Bounded retry schedule for BUSY backpressure: exponential backoff
/// from `base_delay_ms` doubling per consecutive rejection, capped at
/// `max_delay_ms`, plus deterministic jitter so a fleet of identical
/// clients does not resubmit in lockstep. An `Accepted` reply (even a
/// partial prefix) is progress and resets the attempt counter; only
/// `max_attempts` *consecutive* BUSY replies exhaust the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive BUSY replies tolerated before giving up.
    pub max_attempts: u32,
    /// First backoff delay in milliseconds.
    pub base_delay_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_delay_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 32,
            base_delay_ms: 1,
            max_delay_ms: 64,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Override the consecutive-BUSY cap (`0` is clamped to one attempt).
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Override the first backoff delay.
    pub fn with_base_delay_ms(mut self, ms: u64) -> Self {
        self.base_delay_ms = ms;
        self
    }

    /// Override the backoff ceiling.
    pub fn with_max_delay_ms(mut self, ms: u64) -> Self {
        self.max_delay_ms = ms;
        self
    }

    /// Override the jitter seed (distinct per client keeps a fleet
    /// from thundering back in phase).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The delay before retry number `attempt` (0-based), honouring the
    /// server's `retry_hint_ms` as a floor. `jitter` is the caller-held
    /// stream state, advanced once per call (SplitMix64 — no OS entropy,
    /// so schedules are reproducible).
    pub fn backoff_delay(&self, attempt: u32, hint_ms: u32, jitter: &mut u64) -> u64 {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_ms);
        let base = exp.max(u64::from(hint_ms)).min(self.max_delay_ms).max(1);
        *jitter = jitter.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *jitter;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Full jitter over [base/2, base]: keeps the exponential shape
        // while spreading resubmissions across half a period.
        base / 2 + z % (base / 2 + 1)
    }
}

/// What a bounded submit spent on backpressure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitReport {
    /// BUSY replies absorbed (each one slept a backoff period).
    pub busy_retries: u64,
    /// Milliseconds spent sleeping on backoff.
    pub backoff_ms: u64,
}

/// A blocking protocol client.
pub struct Client {
    stream: Stream,
    reader: FrameReader,
    /// The server's greeting, captured during connect.
    pub server: ServerInfo,
}

impl Client {
    /// Connect over a Unix-domain socket and exchange greetings.
    pub fn connect_uds(path: &Path) -> Result<Client> {
        let stream = UnixStream::connect(path)
            .map_err(|e| HmcError::Wire(format!("connect {}: {e}", path.display())))?;
        Self::finish_connect(Stream::Uds(stream))
    }

    /// Connect over TCP and exchange greetings.
    pub fn connect_tcp(addr: &str) -> Result<Client> {
        let stream =
            TcpStream::connect(addr).map_err(|e| HmcError::Wire(format!("connect {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| HmcError::Wire(format!("nodelay: {e}")))?;
        Self::finish_connect(Stream::Tcp(stream))
    }

    fn finish_connect(stream: Stream) -> Result<Client> {
        let mut client = Client {
            stream,
            reader: FrameReader::new(),
            server: ServerInfo {
                version: 0,
                max_sessions: 0,
                active_sessions: 0,
            },
        };
        let reply = client.roundtrip(&Frame::Hello {
            version: WIRE_VERSION,
        })?;
        match reply {
            Frame::HelloAck {
                version,
                max_sessions,
                active_sessions,
            } => {
                client.server = ServerInfo {
                    version,
                    max_sessions,
                    active_sessions,
                };
                Ok(client)
            }
            other => Err(frame_error(&other)),
        }
    }

    /// Send one frame and block for the reply.
    pub fn roundtrip(&mut self, frame: &Frame) -> Result<Frame> {
        write_frame(&mut self.stream, frame)?;
        loop {
            match self.reader.poll(&mut self.stream)? {
                ReadOutcome::Frame(f) => return Ok(f),
                ReadOutcome::Eof => {
                    return Err(HmcError::Wire("server closed the connection".into()))
                }
                ReadOutcome::TimedOut => continue,
                ReadOutcome::Malformed(reason) => {
                    return Err(HmcError::Wire(format!(
                        "server sent an undecodable frame: {reason}"
                    )))
                }
            }
        }
    }

    /// Open a session from a preset name. `0` limits take server defaults.
    pub fn open_session_preset(
        &mut self,
        preset: &str,
        inflight_limit: u32,
        response_limit: u32,
    ) -> Result<u64> {
        self.open_session(preset, "", inflight_limit, response_limit)
    }

    /// Open a session from a `DeviceConfig` JSON document.
    pub fn open_session_json(
        &mut self,
        config_json: &str,
        inflight_limit: u32,
        response_limit: u32,
    ) -> Result<u64> {
        self.open_session("", config_json, inflight_limit, response_limit)
    }

    fn open_session(
        &mut self,
        preset: &str,
        config_json: &str,
        inflight_limit: u32,
        response_limit: u32,
    ) -> Result<u64> {
        let reply = self.roundtrip(&Frame::OpenSession {
            preset: preset.to_string(),
            config_json: config_json.to_string(),
            inflight_limit,
            response_limit,
        })?;
        match reply {
            Frame::SessionOpened { session } => Ok(session),
            other => Err(frame_error(&other)),
        }
    }

    /// Submit a batch of operations. BUSY is a normal return, not an
    /// error — callers poll and retry.
    pub fn submit(&mut self, session: u64, ops: &[WireOp]) -> Result<SubmitResult> {
        let reply = self.roundtrip(&Frame::SubmitBatch {
            session,
            ops: ops.to_vec(),
        })?;
        match reply {
            Frame::BatchAccepted {
                accepted,
                queue_free,
            } => Ok(SubmitResult::Accepted {
                accepted,
                queue_free,
            }),
            Frame::Busy {
                reason,
                retry_hint_ms,
            } => Ok(SubmitResult::Busy {
                reason,
                retry_hint_ms,
            }),
            other => Err(frame_error(&other)),
        }
    }

    /// Submit a whole batch under the default [`RetryPolicy`],
    /// resubmitting unaccepted suffixes until every op is admitted.
    pub fn submit_all(&mut self, session: u64, ops: &[WireOp]) -> Result<()> {
        self.submit_all_with(session, ops, &RetryPolicy::default())
            .map(|_| ())
    }

    /// Submit a whole batch, absorbing BUSY backpressure with the given
    /// bounded backoff policy. Partial admissions reset the attempt
    /// counter; `policy.max_attempts` *consecutive* BUSY replies fail
    /// with a typed [`HmcError::Wire`] naming the reason and the count.
    pub fn submit_all_with(
        &mut self,
        session: u64,
        ops: &[WireOp],
        policy: &RetryPolicy,
    ) -> Result<SubmitReport> {
        let mut rest = ops;
        let mut report = SubmitReport::default();
        let mut consecutive = 0u32;
        let mut jitter = policy.jitter_seed;
        while !rest.is_empty() {
            match self.submit(session, rest)? {
                SubmitResult::Accepted { accepted, .. } => {
                    rest = &rest[accepted as usize..];
                    consecutive = 0;
                }
                SubmitResult::Busy {
                    reason,
                    retry_hint_ms,
                } => {
                    if consecutive >= policy.max_attempts {
                        return Err(HmcError::Wire(format!(
                            "still BUSY ({}) after {} consecutive submit attempts \
                             ({} ops unadmitted)",
                            busy_reason_label(reason),
                            consecutive,
                            rest.len()
                        )));
                    }
                    let delay = policy.backoff_delay(consecutive, retry_hint_ms, &mut jitter);
                    consecutive += 1;
                    report.busy_retries += 1;
                    report.backoff_ms += delay;
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
            }
        }
        Ok(report)
    }

    /// Poll up to `max` responses (`0` = server default).
    pub fn poll(&mut self, session: u64, max: u32) -> Result<PollResult> {
        let reply = self.roundtrip(&Frame::Poll { session, max })?;
        match reply {
            Frame::Responses {
                items,
                outstanding,
                idle,
            } => Ok(PollResult {
                items,
                outstanding,
                idle,
            }),
            other => Err(frame_error(&other)),
        }
    }

    /// Snapshot the session's metrics.
    pub fn stats(&mut self, session: u64) -> Result<WireStats> {
        match self.roundtrip(&Frame::SnapshotStats { session })? {
            Frame::Stats(s) => Ok(s),
            other => Err(frame_error(&other)),
        }
    }

    /// Close the session, returning its final metrics.
    pub fn close(&mut self, session: u64) -> Result<WireStats> {
        match self.roundtrip(&Frame::CloseSession { session })? {
            Frame::Closed(s) => Ok(s),
            other => Err(frame_error(&other)),
        }
    }

    /// Ask the server to begin its graceful drain.
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.roundtrip(&Frame::Shutdown)? {
            Frame::ShuttingDown => Ok(()),
            other => Err(frame_error(&other)),
        }
    }
}

/// Decode a BUSY reason for reports.
pub fn busy_reason_label(reason: u8) -> &'static str {
    match BusyReason::from_u8(reason) {
        Some(BusyReason::SessionsFull) => "sessions-full",
        Some(BusyReason::InflightFull) => "inflight-full",
        Some(BusyReason::ResponsesFull) => "responses-full",
        None => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = RetryPolicy::default()
            .with_base_delay_ms(1)
            .with_max_delay_ms(64);
        let mut jitter = p.jitter_seed;
        let mut prev_base = 0u64;
        for attempt in 0..12 {
            let d = p.backoff_delay(attempt, 0, &mut jitter);
            let base = (1u64 << attempt.min(16)).min(64);
            assert!(
                d >= base / 2 && d <= base,
                "attempt {attempt}: delay {d} outside [{}, {base}]",
                base / 2
            );
            assert!(base >= prev_base, "exponential shape is monotone");
            prev_base = base;
        }
    }

    #[test]
    fn backoff_respects_the_server_hint_as_a_floor() {
        let p = RetryPolicy::default()
            .with_base_delay_ms(1)
            .with_max_delay_ms(100);
        let mut jitter = 7;
        let d = p.backoff_delay(0, 40, &mut jitter);
        assert!((20..=40).contains(&d), "hinted delay {d} outside [20, 40]");
        // The cap still wins over an absurd hint.
        let d = p.backoff_delay(0, 5_000, &mut jitter);
        assert!(d <= 100, "cap must bound the hint, got {d}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_varies_across_seeds() {
        let p = RetryPolicy::default().with_max_delay_ms(1 << 20);
        let run = |seed: u64| -> Vec<u64> {
            let mut jitter = seed;
            (0..8).map(|a| p.backoff_delay(a, 0, &mut jitter)).collect()
        };
        assert_eq!(run(1), run(1), "same seed, same schedule");
        assert_ne!(run(1), run(2), "distinct seeds de-phase the fleet");
    }

    #[test]
    fn zero_attempt_policies_are_clamped_to_one() {
        assert_eq!(RetryPolicy::default().with_max_attempts(0).max_attempts, 1);
    }
}
