//! # hmc-serve
//!
//! A concurrent simulation service for the HMC-Sim stack. Clients connect
//! over Unix-domain sockets or TCP and speak a length-prefixed binary
//! protocol (`hmc_types::wire`): open a session backed by a private
//! simulated device, submit batches of memory operations, poll completed
//! responses, snapshot metrics, close. A bounded worker pool pumps every
//! session with the exact per-cycle schedule of the in-process driver, so
//! served responses are bit-identical to `hmc_host::run_workload` output —
//! the service adds multi-tenancy and a network boundary, never timing
//! drift.
//!
//! Admission control and backpressure are explicit protocol citizens:
//! a concurrent-session cap, bounded per-session inflight queues (typed
//! BUSY frames instead of unbounded buffering), bounded response buffers
//! that pause the pump until polled, idle-session reaping, and a graceful
//! drain on SIGTERM (stop accepting, quiesce every device, flush
//! responses, exit 0).
//!
//! The `hmc-serve` binary is the daemon; `loadgen` drives N concurrent
//! sessions with `hmc-workloads` traffic and reports throughput and
//! latency percentiles as JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod manager;
pub mod proto;
pub mod server;
pub mod session;

pub use client::{
    busy_reason_label, Client, PollResult, RetryPolicy, ServerInfo, SubmitReport, SubmitResult,
};
pub use manager::{ServerConfig, SessionManager};
pub use proto::{write_frame, FrameReader, ReadOutcome};
pub use server::{DrainOutcome, Server};
pub use session::{
    memop_to_wire, wire_to_memop, wire_to_session_op, workload_to_wire, PumpOutcome,
    SessionLimits, SessionOp, SessionState,
};
