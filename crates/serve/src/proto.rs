//! Stream framing for the wire protocol.
//!
//! `hmc-types::wire` defines the frame data model and its byte codec;
//! this module reads and writes those frames over blocking byte streams.
//! [`FrameReader`] accumulates partial reads so a read timeout (used by
//! server connection threads to poll the shutdown flag) never loses
//! framing mid-frame.

use std::io::{ErrorKind, Read, Write};

use hmc_types::{Frame, HmcError, Result, MAX_FRAME_LEN};

/// The outcome of one [`FrameReader::poll`] call.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame arrived.
    Frame(Frame),
    /// The peer closed the stream cleanly (no partial frame pending).
    Eof,
    /// The read timed out or would block; call again later. Any partial
    /// frame stays buffered.
    TimedOut,
    /// A complete frame arrived but its body would not decode. The bad
    /// bytes are already discarded — the length prefix was sound, so
    /// framing is intact and the connection can keep serving. (A bad
    /// length prefix is a hard [`HmcError::Wire`] error instead: with
    /// the framing itself untrustworthy the stream cannot recover.)
    Malformed(String),
}

/// An incremental length-prefixed frame reader.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to complete one frame from `stream`.
    ///
    /// Blocking semantics follow the stream's own (set a read timeout on
    /// the socket to get periodic [`ReadOutcome::TimedOut`] returns).
    pub fn poll(&mut self, stream: &mut impl Read) -> Result<ReadOutcome> {
        loop {
            match self.try_decode()? {
                Some(Ok(frame)) => return Ok(ReadOutcome::Frame(frame)),
                Some(Err(reason)) => return Ok(ReadOutcome::Malformed(reason)),
                None => {}
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(ReadOutcome::Eof)
                    } else {
                        Err(HmcError::Wire(format!(
                            "peer closed the stream mid-frame ({} bytes buffered)",
                            self.buf.len()
                        )))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(ReadOutcome::TimedOut);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(HmcError::Wire(format!("read failed: {e}"))),
            }
        }
    }

    /// Decode one frame from the buffer if a complete one is present.
    /// `Some(Err(_))` is a complete-but-undecodable body, consumed from
    /// the buffer so the next frame stays aligned.
    fn try_decode(&mut self) -> Result<Option<std::result::Result<Frame, String>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(HmcError::Wire(format!(
                "frame length {len} outside (0, {MAX_FRAME_LEN}]"
            )));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let decoded = Frame::decode_body(&self.buf[4..total]);
        self.buf.drain(..total);
        Ok(Some(decoded.map_err(|e| e.to_string())))
    }
}

/// Write one frame to `stream` (blocking, flushed).
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> Result<()> {
    let bytes = frame.encode_framed();
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .map_err(|e| HmcError::Wire(format!("write failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_through_a_stream() {
        let frames = [
            Frame::Hello { version: 1 },
            Frame::SessionOpened { session: 9 },
            Frame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut stream = Cursor::new(wire);
        let mut reader = FrameReader::new();
        for f in &frames {
            match reader.poll(&mut stream).unwrap() {
                ReadOutcome::Frame(got) => assert_eq!(&got, f),
                other => panic!("{other:?}"),
            }
        }
        assert!(matches!(
            reader.poll(&mut stream).unwrap(),
            ReadOutcome::Eof
        ));
    }

    /// Yields one byte per read, then `WouldBlock` — models a socket with
    /// a read timeout delivering data slowly.
    struct Dribble {
        bytes: Vec<u8>,
        pos: usize,
        served_this_poll: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.served_this_poll || self.pos >= self.bytes.len() {
                self.served_this_poll = false;
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            out[0] = self.bytes[self.pos];
            self.pos += 1;
            self.served_this_poll = true;
            Ok(1)
        }
    }

    #[test]
    fn dribbled_bytes_reassemble_one_frame() {
        let f = Frame::Poll {
            session: 3,
            max: 100,
        };
        let bytes = f.encode_framed();
        let n = bytes.len();
        let mut stream = Dribble {
            bytes,
            pos: 0,
            served_this_poll: false,
        };
        let mut reader = FrameReader::new();
        let mut polls = 0;
        loop {
            match reader.poll(&mut stream).unwrap() {
                ReadOutcome::Frame(got) => {
                    assert_eq!(got, f);
                    assert!(polls >= n - 1, "one poll per byte: {polls} < {}", n - 1);
                    return;
                }
                ReadOutcome::TimedOut => polls += 1,
                ReadOutcome::Eof => panic!("unexpected EOF"),
                ReadOutcome::Malformed(reason) => panic!("undecodable: {reason}"),
            }
            assert!(polls < 10_000, "frame never completed");
        }
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let f = Frame::Hello { version: 1 };
        let bytes = f.encode_framed();
        let mut stream = Cursor::new(bytes[..bytes.len() - 1].to_vec());
        let mut reader = FrameReader::new();
        assert!(reader.poll(&mut stream).is_err());
    }

    #[test]
    fn bit_flipped_bodies_are_typed_and_the_stream_survives() {
        // good frame | corrupted frame | good frame: the reader must
        // yield Frame, Malformed, Frame — one bad body never desyncs
        // the stream or kills the connection.
        let good1 = Frame::Hello { version: 1 };
        let good2 = Frame::Poll { session: 7, max: 3 };
        let mut bad = Frame::SessionOpened { session: 1 }.encode_framed();
        bad[4] ^= 0xff; // flip the opcode byte; length prefix stays sound
        let mut wire = good1.encode_framed();
        wire.extend_from_slice(&bad);
        wire.extend_from_slice(&good2.encode_framed());

        let mut stream = Cursor::new(wire);
        let mut reader = FrameReader::new();
        match reader.poll(&mut stream).unwrap() {
            ReadOutcome::Frame(f) => assert_eq!(f, good1),
            other => panic!("{other:?}"),
        }
        match reader.poll(&mut stream).unwrap() {
            ReadOutcome::Malformed(reason) => {
                assert!(reason.contains("opcode"), "typed reason, got {reason:?}")
            }
            other => panic!("{other:?}"),
        }
        match reader.poll(&mut stream).unwrap() {
            ReadOutcome::Frame(f) => assert_eq!(f, good2),
            other => panic!("{other:?}"),
        }
        assert!(matches!(reader.poll(&mut stream).unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn truncated_bodies_are_malformed_not_fatal() {
        // A length prefix that claims more than the body delivers (the
        // peer lied about the payload, not the framing): decode fails,
        // the bytes drain, and the next frame still arrives.
        let inner = Frame::Poll { session: 9, max: 1 }.encode_framed();
        let mut wire = Vec::new();
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&inner[4..6]); // opcode + 1 byte: too short
        wire.extend_from_slice(&inner);
        let mut stream = Cursor::new(wire);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.poll(&mut stream).unwrap(),
            ReadOutcome::Malformed(_)
        ));
        match reader.poll(&mut stream).unwrap() {
            ReadOutcome::Frame(f) => assert_eq!(f, Frame::Poll { session: 9, max: 1 }),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut reader = FrameReader::new();
        assert!(reader.poll(&mut Cursor::new(wire)).is_err());
        let mut reader = FrameReader::new();
        assert!(reader
            .poll(&mut Cursor::new(0u32.to_le_bytes().to_vec()))
            .is_err());
    }
}
