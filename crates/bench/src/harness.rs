//! Shared experiment setup.

use hmc_core::{topology, HmcSim, NocParams, TimingParams};
use hmc_host::Host;
use hmc_trace::{TraceSink, Tracer, Verbosity};
use hmc_types::{DeviceConfig, StorageMode};
use hmc_workloads::{RandomAccess, PAPER_REQUESTS};

/// Options for building a paper-style single-device experiment.
#[derive(Debug, Clone, Copy)]
pub struct SetupOptions {
    /// Trace verbosity installed on the simulation.
    pub verbosity: Verbosity,
    /// Storage mode (Table I runs use timing-only).
    pub storage: StorageMode,
    /// Worker threads for the sharded clock engine (`1` = serial, `0` =
    /// auto-detect; bit-identical either way).
    pub threads: usize,
    /// Arm the engine's event-driven fast-forward mode
    /// (`SimParams::fast_forward`); bit-identical to stepped execution,
    /// pays off on batch-clocked idle-heavy schedules.
    pub fast_forward: bool,
    /// Vault timing backend (`SimParams::timing`): the paper's
    /// constant-time conflict model by default, or the cycle-accurate
    /// DDR state machine.
    pub timing: TimingParams,
    /// Intra-cube interconnect fabric (`SimParams::interconnect`): the
    /// direct crossbar by default, or a buffered ring/mesh NoC.
    pub interconnect: NocParams,
    /// Cell-level fault injection (`SimParams::cell_faults`): RowHammer
    /// disturbance and retention decay, off by default.
    pub cell_faults: Option<hmc_types::CellFaultConfig>,
    /// Link transmission faults: seeded SERDES corruption with the
    /// retry/retrain/poison protocol, off by default.
    pub link_faults: Option<hmc_types::LinkFaultConfig>,
}

impl Default for SetupOptions {
    fn default() -> Self {
        SetupOptions {
            verbosity: Verbosity::Off,
            storage: StorageMode::TimingOnly,
            threads: 1,
            fast_forward: false,
            timing: TimingParams::default(),
            interconnect: NocParams::default(),
            cell_faults: None,
            link_faults: None,
        }
    }
}

/// Build the paper's single-device experiment: one device of `config`,
/// all links to one host (the "simple" topology), with an optional sink.
pub fn paper_setup(
    config: DeviceConfig,
    opts: SetupOptions,
    sink: Option<Box<dyn TraceSink>>,
) -> (HmcSim, Host) {
    let config = config.with_storage_mode(opts.storage);
    let mut sim = HmcSim::new(1, config)
        .expect("paper configs validate")
        .with_threads(opts.threads)
        .with_fast_forward(opts.fast_forward)
        .with_timing(opts.timing)
        .with_interconnect(opts.interconnect)
        .with_cell_faults(opts.cell_faults)
        .with_link_faults(opts.link_faults);
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).expect("simple topology");
    if let Some(sink) = sink {
        sim.set_tracer(Tracer::new(opts.verbosity, sink));
    }
    let host = Host::attach(&sim, host_id).expect("host links wired");
    (sim, host)
}

/// Request count for a `1/scale` Table I run (`scale == 1` is the paper's
/// full 33,554,432 requests).
pub fn scaled_requests(scale: u64) -> u64 {
    (PAPER_REQUESTS / scale.max(1)).max(1)
}

/// The paper's random-access workload at a given scale, seeded.
pub fn paper_workload(seed: u32, scale: u64) -> RandomAccess {
    RandomAccess::paper_scaled(seed, scale.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_builds_all_four_paper_configs() {
        for (label, cfg) in DeviceConfig::paper_configs() {
            let (sim, host) = paper_setup(cfg.clone(), SetupOptions::default(), None);
            assert_eq!(sim.num_devices(), 1, "{label}");
            assert_eq!(host.ports().len(), cfg.num_links as usize, "{label}");
            assert_eq!(sim.config().storage_mode, StorageMode::TimingOnly);
        }
    }

    #[test]
    fn scaling_arithmetic() {
        assert_eq!(scaled_requests(1), 33_554_432);
        assert_eq!(scaled_requests(16), 2_097_152);
        assert_eq!(scaled_requests(0), 33_554_432);
        assert_eq!(scaled_requests(u64::MAX), 1);
    }
}
