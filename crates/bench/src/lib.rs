//! # hmc-bench
//!
//! The evaluation harness: shared setup code regenerating every table and
//! figure of the HMC-Sim paper (Table I simulated-runtime comparison,
//! Figure 5 per-cycle trace series, the Figure 1 topology walks and the
//! Figure 3 stage schedule), plus parameter-sweep ablations. Binaries live
//! in `src/bin/`, criterion micro/macro benches in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod harness;
pub mod table1;

pub use emit::{compare, measure, BenchRecord, BenchSummary, WorkloadShape, SHAPES};
pub use harness::{paper_setup, scaled_requests, SetupOptions};
pub use table1::{run_table1, run_table1_checked, run_table1_with, table1_speedups, Table1Row};
