//! Parameter sweeps over the queueing latitude the specification leaves
//! to implementers (§IV requirement 3): crossbar depth × vault depth ×
//! vault window, plus crossbar drain rate, against the paper's random
//! access workload. Emits CSV for plotting.
//!
//! Sweep points are independent simulations, so they run concurrently on
//! `std::thread::scope` workers (`--jobs`, default = available cores);
//! each point's simulation is deterministic and the CSV is emitted in
//! sweep order regardless of completion order.
//!
//! Usage:
//!   sweep [--requests N] [--seed S] [--out FILE] [--jobs N] [--fast-forward]
//!         [--timing classic|ddr] [--interconnect crossbar|ring|mesh]
//!         [--arbitration round-robin|oldest-first|locality-aware]
//!         [--hammer-threshold N] [--flip-prob PPM] [--retention CYCLES]
//!         [--mitigation none|trr|elevated]

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicUsize, Ordering};

use hmc_core::{topology, HmcSim, NocParams, SimParams, TimingParams};
use hmc_host::{run_workload, Host, RunConfig};
use hmc_types::{
    ArbitrationKind, BlockSize, CellFaultConfig, DeviceConfig, InterconnectKind,
    LinkFaultConfig, StorageMode,
    TimingKind,
};
use hmc_workloads::RandomAccess;

struct Point {
    xbar_depth: usize,
    vault_depth: usize,
    window: Option<usize>,
    drain: usize,
    cycles: u64,
    throughput: f64,
    mean_latency: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    requests: u64,
    seed: u32,
    xbar_depth: usize,
    vault_depth: usize,
    window: Option<usize>,
    drain: usize,
    fast_forward: bool,
    timing: TimingKind,
    interconnect: NocParams,
    cell_faults: Option<CellFaultConfig>,
    link_faults: Option<LinkFaultConfig>,
) -> Point {
    let cfg = DeviceConfig::paper_4link_8bank_2gb()
        .with_storage_mode(StorageMode::TimingOnly)
        .with_queue_depths(xbar_depth, vault_depth);
    let mut sim = HmcSim::new(1, cfg).unwrap().with_params(SimParams {
        vault_window: window,
        xbar_drain_per_cycle: drain,
        fast_forward,
        timing: TimingParams::of(timing),
        interconnect,
        cell_faults,
        link_faults,
        ..SimParams::default()
    });
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).unwrap();
    let mut host = Host::attach(&sim, host_id).unwrap();
    let mut w = RandomAccess::new(seed, 2 << 30, BlockSize::B64, 50, requests);
    let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    Point {
        xbar_depth,
        vault_depth,
        window,
        drain,
        cycles: report.cycles,
        throughput: report.throughput,
        mean_latency: report.mean_latency,
    }
}

fn main() {
    let mut requests: u64 = 32_768;
    let mut seed: u32 = 1;
    let mut out: Option<String> = None;
    let mut jobs: usize = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut fast_forward = false;
    let mut timing = TimingKind::Classic;
    let mut interconnect = InterconnectKind::Crossbar;
    let mut arbitration = ArbitrationKind::RoundRobin;
    let mut cell_faults = None;
    let mut link_faults = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => requests = args.next().and_then(|v| v.parse().ok()).unwrap_or(32_768),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--out" => out = args.next(),
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&j: &usize| j >= 1)
                    .unwrap_or(jobs)
            }
            "--fast-forward" => fast_forward = true,
            "--timing" => {
                timing = args
                    .next()
                    .and_then(|v| TimingKind::by_name(&v))
                    .unwrap_or_else(|| {
                        eprintln!("sweep: --timing needs `classic` or `ddr`");
                        std::process::exit(2);
                    })
            }
            "--interconnect" => {
                interconnect = args
                    .next()
                    .and_then(|v| InterconnectKind::by_name(&v))
                    .unwrap_or_else(|| {
                        eprintln!("sweep: --interconnect needs `crossbar`, `ring`, or `mesh`");
                        std::process::exit(2);
                    })
            }
            "--arbitration" => {
                arbitration = args
                    .next()
                    .and_then(|v| ArbitrationKind::by_name(&v))
                    .unwrap_or_else(|| {
                        eprintln!(
                            "sweep: --arbitration needs `round-robin`, `oldest-first`, \
                             or `locality-aware`"
                        );
                        std::process::exit(2);
                    })
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: sweep [--requests N] [--seed S] [--out FILE] [--jobs N] \
                     [--fast-forward] [--timing classic|ddr] \
                     [--interconnect crossbar|ring|mesh] \
                     [--arbitration round-robin|oldest-first|locality-aware] \
                     [--hammer-threshold N] [--flip-prob PPM] [--retention CYCLES] \
                     [--mitigation none|trr|elevated] \
                     [--link-error-rate PPM] [--link-retry-limit N] \
                     [--retrain-cycles N] [--link-retry-cycles N] [--link-fault-seed S]"
                );
                return;
            }
            flag => {
                let value = args.next();
                let hit = CellFaultConfig::apply_flag(&mut cell_faults, flag, value.as_deref())
                    .and_then(|hit| {
                        if hit {
                            Ok(true)
                        } else {
                            LinkFaultConfig::apply_flag(&mut link_faults, flag, value.as_deref())
                        }
                    });
                match hit {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("sweep: unknown argument {flag}");
                        std::process::exit(2);
                    }
                    Err(e) => {
                        eprintln!("sweep: {e}");
                        std::process::exit(2);
                    }
                }
            }
        }
    }

    // Enumerate the sweep grid first; each tuple is an independent
    // simulation, so the points run concurrently below.
    let mut grid: Vec<(usize, usize, Option<usize>, usize)> = Vec::new();
    for xbar in [16usize, 32, 64, 128, 256] {
        for vault in [8usize, 16, 32, 64] {
            grid.push((xbar, vault, None, 32));
        }
    }
    for window in [1usize, 2, 4, 8, 16, 32] {
        grid.push((128, 64, Some(window), 32));
    }
    for drain in [1usize, 2, 4, 8, 16, 32, 64] {
        grid.push((128, 64, None, drain));
    }

    // Scoped worker pool over an atomic work-index: results land in their
    // grid slot, so the CSV order is deterministic regardless of which
    // worker finishes first.
    let jobs = jobs.min(grid.len());
    eprintln!("sweeping {} points on {jobs} threads ...", grid.len());
    let mut slots: Vec<Option<Point>> = Vec::new();
    slots.resize_with(grid.len(), || None);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let grid = &grid;
        let cursor = &cursor;
        let mut handles = Vec::new();
        for _ in 0..jobs {
            handles.push(s.spawn(move || {
                let mut local: Vec<(usize, Point)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= grid.len() {
                        break;
                    }
                    let (xbar, vault, window, drain) = grid[i];
                    local.push((
                        i,
                        run_point(
                            requests,
                            seed,
                            xbar,
                            vault,
                            window,
                            drain,
                            fast_forward,
                            timing,
                            NocParams::of(interconnect).with_arbitration(arbitration),
                            cell_faults,
                            link_faults,
                        ),
                    ));
                }
                local
            }));
        }
        for h in handles {
            for (i, p) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(p);
            }
        }
    });
    let points: Vec<Point> = slots
        .into_iter()
        .map(|p| p.expect("every grid point computed"))
        .collect();

    let mut sink: Box<dyn Write> = match &out {
        Some(path) => Box::new(BufWriter::new(File::create(path).expect("create out file"))),
        None => Box::new(std::io::stdout().lock()),
    };
    writeln!(
        sink,
        "xbar_depth,vault_depth,window,drain,cycles,req_per_cycle,mean_latency"
    )
    .unwrap();
    for p in &points {
        writeln!(
            sink,
            "{},{},{},{},{},{:.4},{:.2}",
            p.xbar_depth,
            p.vault_depth,
            p.window.map(|w| w.to_string()).unwrap_or_else(|| "banks".into()),
            p.drain,
            p.cycles,
            p.throughput,
            p.mean_latency
        )
        .unwrap();
    }
    sink.flush().unwrap();
    eprintln!("{} sweep points written", points.len());
}
