//! Parameter sweeps over the queueing latitude the specification leaves
//! to implementers (§IV requirement 3): crossbar depth × vault depth ×
//! vault window, plus crossbar drain rate, against the paper's random
//! access workload. Emits CSV for plotting.
//!
//! Usage:
//!   sweep [--requests N] [--seed S] [--out FILE]

use std::fs::File;
use std::io::{BufWriter, Write};

use hmc_core::{topology, HmcSim, SimParams};
use hmc_host::{run_workload, Host, RunConfig};
use hmc_types::{BlockSize, DeviceConfig, StorageMode};
use hmc_workloads::RandomAccess;

struct Point {
    xbar_depth: usize,
    vault_depth: usize,
    window: Option<usize>,
    drain: usize,
    cycles: u64,
    throughput: f64,
    mean_latency: f64,
}

fn run_point(
    requests: u64,
    seed: u32,
    xbar_depth: usize,
    vault_depth: usize,
    window: Option<usize>,
    drain: usize,
) -> Point {
    let cfg = DeviceConfig::paper_4link_8bank_2gb()
        .with_storage_mode(StorageMode::TimingOnly)
        .with_queue_depths(xbar_depth, vault_depth);
    let mut sim = HmcSim::new(1, cfg).unwrap().with_params(SimParams {
        vault_window: window,
        xbar_drain_per_cycle: drain,
        ..SimParams::default()
    });
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).unwrap();
    let mut host = Host::attach(&sim, host_id).unwrap();
    let mut w = RandomAccess::new(seed, 2 << 30, BlockSize::B64, 50, requests);
    let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    Point {
        xbar_depth,
        vault_depth,
        window,
        drain,
        cycles: report.cycles,
        throughput: report.throughput,
        mean_latency: report.mean_latency,
    }
}

fn main() {
    let mut requests: u64 = 32_768;
    let mut seed: u32 = 1;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => requests = args.next().and_then(|v| v.parse().ok()).unwrap_or(32_768),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--out" => out = args.next(),
            "--help" | "-h" => {
                eprintln!("usage: sweep [--requests N] [--seed S] [--out FILE]");
                return;
            }
            other => {
                eprintln!("sweep: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let mut points = Vec::new();
    eprintln!("sweeping queue depths ...");
    for xbar in [16usize, 32, 64, 128, 256] {
        for vault in [8usize, 16, 32, 64] {
            points.push(run_point(requests, seed, xbar, vault, None, 32));
        }
    }
    eprintln!("sweeping vault windows ...");
    for window in [1usize, 2, 4, 8, 16, 32] {
        points.push(run_point(requests, seed, 128, 64, Some(window), 32));
    }
    eprintln!("sweeping crossbar drain rates ...");
    for drain in [1usize, 2, 4, 8, 16, 32, 64] {
        points.push(run_point(requests, seed, 128, 64, None, drain));
    }

    let mut sink: Box<dyn Write> = match &out {
        Some(path) => Box::new(BufWriter::new(File::create(path).expect("create out file"))),
        None => Box::new(std::io::stdout().lock()),
    };
    writeln!(
        sink,
        "xbar_depth,vault_depth,window,drain,cycles,req_per_cycle,mean_latency"
    )
    .unwrap();
    for p in &points {
        writeln!(
            sink,
            "{},{},{},{},{},{:.4},{:.2}",
            p.xbar_depth,
            p.vault_depth,
            p.window.map(|w| w.to_string()).unwrap_or_else(|| "banks".into()),
            p.drain,
            p.cycles,
            p.throughput,
            p.mean_latency
        )
        .unwrap();
    }
    sink.flush().unwrap();
    eprintln!("{} sweep points written", points.len());
}
