//! `bench_emit` — measure engine throughput and emit `BENCH_*.json`
//! trajectory records.
//!
//! Runs the canonical workload shapes (dense, bursty, sparse) in both
//! engine modes, prints a stepped-vs-fast-forward comparison table, and
//! writes one JSON record per run plus one summary per shape into the
//! output directory. CI archives the files as the performance trajectory.
//!
//! Usage:
//!   bench_emit [--out DIR] [--threads N] [--workload dense|bursty|sparse|all]
//!              [--timing classic|ddr|both] [--min-sparse-speedup X]
//!              [--interconnect crossbar|ring|mesh|all]
//!              [--arbitration round-robin|oldest-first|locality-aware]
//!              [--hammer] [--hammer-threshold N] [--flip-prob PPM]
//!              [--retention CYCLES] [--mitigation none|trr|elevated]
//!              [--link-error-rate PPM] [--link-retry-limit N]
//!              [--retrain-cycles N] [--link-retry-cycles N]
//!              [--link-fault-seed S]
//!
//! `--timing both` emits one record point per vault timing backend, so
//! the archived trajectory tracks both the paper's constant-time model
//! and the DDR state machine. `--interconnect all` likewise emits one
//! point per intra-cube fabric (crossbar, ring, mesh).
//! `--min-sparse-speedup X` exits nonzero if the *classic crossbar*
//! sparse-shape speedup falls below `X` — the CI guard for the
//! fast-forward win (DDR spans are dominated by bank timing and
//! buffered fabrics by hop latency, so the guard does not apply to
//! them).
//!
//! `--hammer` additionally emits `BENCH_hammer_*` records: the
//! double-sided hammer shape run with cell faults off and with
//! injection armed (mitigation stripped), plus a summary pinning the
//! simulated-cycle overhead of the disarmed fault hook at zero — the
//! run exits nonzero if the two spans differ. The cell-fault flags
//! parameterize the armed run.
//!
//! The link-fault flags arm seeded SERDES corruption with the link
//! retry/retrain/poison protocol on the shaped runs, so the trajectory
//! can also track engine throughput under degraded links.

use std::path::PathBuf;

use hmc_bench::emit::{
    compare, hammer_overhead, shape_by_name, write_hammer_summary, write_record, write_summary,
    SHAPES,
};
use hmc_core::NocParams;
use hmc_types::{ArbitrationKind, CellFaultConfig, InterconnectKind, LinkFaultConfig, TimingKind};

fn main() {
    let mut out = PathBuf::from("results");
    let mut threads: usize = 1;
    let mut workload = String::from("all");
    let mut timings: Vec<TimingKind> = vec![TimingKind::Classic];
    let mut fabrics: Vec<InterconnectKind> = vec![InterconnectKind::Crossbar];
    let mut arbitration = ArbitrationKind::RoundRobin;
    let mut min_sparse_speedup: Option<f64> = None;
    let mut hammer = false;
    let mut cell_faults = None;
    let mut link_faults = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path"))),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs an integer"));
            }
            "--workload" => {
                workload = args.next().unwrap_or_else(|| die("--workload needs a name"));
            }
            "--timing" => {
                let v = args.next().unwrap_or_else(|| die("--timing needs a value"));
                timings = match v.as_str() {
                    "both" => TimingKind::ALL.to_vec(),
                    other => vec![TimingKind::by_name(other)
                        .unwrap_or_else(|| die("--timing needs `classic`, `ddr`, or `both`"))],
                };
            }
            "--interconnect" => {
                let v = args.next().unwrap_or_else(|| die("--interconnect needs a value"));
                fabrics = match v.as_str() {
                    "all" => InterconnectKind::ALL.to_vec(),
                    other => vec![InterconnectKind::by_name(other).unwrap_or_else(|| {
                        die("--interconnect needs `crossbar`, `ring`, `mesh`, or `all`")
                    })],
                };
            }
            "--arbitration" => {
                arbitration = args.next().and_then(|v| ArbitrationKind::by_name(&v)).unwrap_or_else(
                    || die("--arbitration needs `round-robin`, `oldest-first`, or `locality-aware`"),
                );
            }
            "--min-sparse-speedup" => {
                min_sparse_speedup = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--min-sparse-speedup needs a number")),
                );
            }
            "--hammer" => hammer = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_emit [--out DIR] [--threads N] \
                     [--workload dense|bursty|sparse|all] \
                     [--timing classic|ddr|both] [--min-sparse-speedup X] \
                     [--interconnect crossbar|ring|mesh|all] \
                     [--arbitration round-robin|oldest-first|locality-aware] \
                     [--hammer] [--hammer-threshold N] [--flip-prob PPM] \
                     [--retention CYCLES] [--mitigation none|trr|elevated] \
                     [--link-error-rate PPM] [--link-retry-limit N] \
                     [--retrain-cycles N] [--link-retry-cycles N] \
                     [--link-fault-seed S]"
                );
                return;
            }
            flag => {
                let value = args.next();
                let hit = CellFaultConfig::apply_flag(&mut cell_faults, flag, value.as_deref())
                    .and_then(|hit| {
                        if hit {
                            Ok(true)
                        } else {
                            LinkFaultConfig::apply_flag(&mut link_faults, flag, value.as_deref())
                        }
                    });
                match hit {
                    Ok(true) => {}
                    Ok(false) => die(&format!("unknown argument {flag}")),
                    Err(e) => die(&e.to_string()),
                }
            }
        }
    }

    let shapes: Vec<_> = if workload == "all" {
        SHAPES.to_vec()
    } else {
        vec![shape_by_name(&workload)
            .unwrap_or_else(|| die(&format!("unknown workload {workload}")))]
    };
    std::fs::create_dir_all(&out).unwrap_or_else(|e| die(&format!("{}: {e}", out.display())));

    println!(
        "{:<8} {:<8} {:<9} {:>16} {:>16} {:>9}  (cycles/sec, {threads} thread{})",
        "workload",
        "timing",
        "fabric",
        "stepped",
        "fast-forward",
        "speedup",
        if threads == 1 { "" } else { "s" }
    );
    let mut failed = false;
    for timing in &timings {
        for fabric in &fabrics {
            let noc = NocParams::of(*fabric).with_arbitration(arbitration);
            for shape in &shapes {
                let (stepped, fast, summary) = compare(*shape, threads, *timing, noc, link_faults);
                println!(
                    "{:<8} {:<8} {:<9} {:>16.3e} {:>16.3e} {:>8.2}x",
                    summary.workload,
                    summary.timing,
                    summary.interconnect,
                    summary.stepped_cycles_per_sec,
                    summary.fast_forward_cycles_per_sec,
                    summary.speedup
                );
                for r in [&stepped, &fast] {
                    let path = write_record(&out, r)
                        .unwrap_or_else(|e| die(&format!("write record: {e}")));
                    eprintln!("bench_emit: wrote {}", path.display());
                }
                let path = write_summary(&out, &summary)
                    .unwrap_or_else(|e| die(&format!("write summary: {e}")));
                eprintln!("bench_emit: wrote {}", path.display());
                if let Some(min) = min_sparse_speedup {
                    if *timing == TimingKind::Classic
                        && *fabric == InterconnectKind::Crossbar
                        && summary.workload == "sparse"
                        && summary.speedup < min
                    {
                        eprintln!(
                            "bench_emit: sparse speedup {:.2}x below required {min}x",
                            summary.speedup
                        );
                        failed = true;
                    }
                }
            }
        }
    }
    if hammer {
        let cfg = cell_faults.unwrap_or_default();
        let (off, on, summary) = hammer_overhead(threads, cfg);
        println!(
            "{:<8} {:<8} {:<9} {:>16.3e} {:>16.3e} {:>8} cycle overhead ({} bit flips armed)",
            "hammer",
            "classic",
            "crossbar",
            summary.off_cycles_per_sec,
            summary.on_cycles_per_sec,
            summary.simulated_cycle_overhead,
            summary.bit_flips_on
        );
        for r in [&off, &on] {
            let path =
                write_record(&out, r).unwrap_or_else(|e| die(&format!("write record: {e}")));
            eprintln!("bench_emit: wrote {}", path.display());
        }
        let path = write_hammer_summary(&out, &summary)
            .unwrap_or_else(|e| die(&format!("write summary: {e}")));
        eprintln!("bench_emit: wrote {}", path.display());
        if summary.simulated_cycle_overhead != 0 {
            eprintln!(
                "bench_emit: disarmed fault hook changed the simulated span by {} cycles",
                summary.simulated_cycle_overhead
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_emit: {msg}");
    std::process::exit(2);
}
