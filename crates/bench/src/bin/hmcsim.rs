//! `hmcsim` — drive an HMC-Sim device from the command line.
//!
//! The downstream-user entry point: pick a device configuration, a
//! workload, and reporting options; get cycles, throughput, latency,
//! utilization, trace statistics and an energy estimate.
//!
//! ```text
//! hmcsim [--config 4l8b|4l16b|8l8b|8l16b|small | --config-file FILE.json]
//!        [--dump-config FILE.json]
//!        [--workload random|stream|gups|chase|stencil|hotspot|hammer]
//!        [--requests N] [--seed S] [--read-pct P] [--block BYTES]
//!        [--error-rate R] [--serialize-flits N] [--threads N]
//!        [--locality] [--stall-queue] [--check] [--fast-forward]
//!        [--timing classic|ddr]
//!        [--interconnect crossbar|ring|mesh]
//!        [--arbitration round-robin|oldest-first|locality-aware]
//!        [--hammer-threshold N] [--flip-prob PPM] [--retention CYCLES]
//!        [--mitigation none|trr|elevated]
//!        [--link-error-rate R] [--link-retry-limit N] [--retrain-cycles N]
//!        [--link-retry-cycles N] [--link-fault-seed S]
//!        [--series FILE] [--trace FILE] [--utilization] [--energy]
//!        [--profile]
//! ```

use std::fs::File;
use std::io::BufWriter;

use hmc_core::{topology, ConflictPolicy, FaultConfig, HmcSim, NocParams, SimParams, TimingParams};
use hmc_host::{run_workload, Host, LinkSelection, RunConfig};
use hmc_trace::{
    estimate_energy, EnergyModel, MultiSink, SeriesCollector, SharedSink, TextSink,
    Tracer, Verbosity,
};
use hmc_types::{
    ArbitrationKind, BlockSize, CellFaultConfig, DeviceConfig, InterconnectKind, LinkFaultConfig,
    StorageMode, TimingKind,
};
use hmc_workloads::{Workload, WorkloadSpec};

struct Options {
    config: DeviceConfig,
    config_name: String,
    workload: String,
    requests: u64,
    seed: u32,
    read_pct: u8,
    block: BlockSize,
    error_rate: f64,
    serialize_flits: Option<usize>,
    threads: usize,
    locality: bool,
    stall_queue: bool,
    series: Option<String>,
    trace: Option<String>,
    utilization: bool,
    energy: bool,
    profile: bool,
    check: bool,
    fast_forward: bool,
    timing: TimingKind,
    interconnect: InterconnectKind,
    arbitration: ArbitrationKind,
    cell_faults: Option<CellFaultConfig>,
    link_faults: Option<LinkFaultConfig>,
    dump_config: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            config: DeviceConfig::paper_4link_8bank_2gb(),
            config_name: "4l8b".into(),
            workload: "random".into(),
            requests: 100_000,
            seed: 1,
            read_pct: 50,
            block: BlockSize::B64,
            error_rate: 0.0,
            serialize_flits: None,
            threads: 1,
            locality: false,
            stall_queue: false,
            series: None,
            trace: None,
            utilization: false,
            energy: false,
            profile: false,
            check: false,
            fast_forward: false,
            timing: TimingKind::Classic,
            interconnect: InterconnectKind::Crossbar,
            arbitration: ArbitrationKind::RoundRobin,
            cell_faults: None,
            link_faults: None,
            dump_config: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: hmcsim [--config 4l8b|4l16b|8l8b|8l16b|small | --config-file F.json] \
         [--dump-config F.json] \
         [--workload random|stream|gups|chase|stencil|hotspot|hammer] [--requests N] \
         [--seed S] [--read-pct P] [--block BYTES] [--error-rate R] \
         [--serialize-flits N] [--threads N] [--locality] [--stall-queue] \
         [--check] [--fast-forward] [--timing classic|ddr] \
         [--interconnect crossbar|ring|mesh] \
         [--arbitration round-robin|oldest-first|locality-aware] \
         [--hammer-threshold N] [--flip-prob PPM] [--retention CYCLES] \
         [--mitigation none|trr|elevated] \
         [--link-error-rate R] [--link-retry-limit N] [--retrain-cycles N] \
         [--link-retry-cycles N] [--link-fault-seed S] [--series FILE] \
         [--trace FILE] [--utilization] [--energy] [--profile]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut o = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("hmcsim: {flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--config-file" => {
                let path = next("--config-file");
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("hmcsim: {path}: {e}");
                    usage()
                });
                o.config = serde_json::from_str(&text).unwrap_or_else(|e| {
                    eprintln!("hmcsim: {path}: {e}");
                    usage()
                });
                if let Err(e) = o.config.validate() {
                    eprintln!("hmcsim: {path}: {e}");
                    usage()
                }
                o.config_name = path;
            }
            "--dump-config" => {
                let path = next("--dump-config");
                o.dump_config = Some(path);
            }
            "--config" => {
                o.config_name = next("--config");
                o.config = DeviceConfig::by_name(&o.config_name).unwrap_or_else(|| {
                    eprintln!("hmcsim: unknown config {}", o.config_name);
                    usage()
                });
            }
            "--workload" => o.workload = next("--workload"),
            "--requests" => o.requests = next("--requests").parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--read-pct" => o.read_pct = next("--read-pct").parse().unwrap_or_else(|_| usage()),
            "--block" => {
                let bytes: usize = next("--block").parse().unwrap_or_else(|_| usage());
                o.block = BlockSize::from_bytes(bytes).unwrap_or_else(|e| {
                    eprintln!("hmcsim: {e}");
                    usage()
                });
            }
            "--error-rate" => {
                o.error_rate = next("--error-rate").parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&o.error_rate) || !o.error_rate.is_finite() {
                    eprintln!("hmcsim: --error-rate must be a probability in [0, 1]");
                    usage()
                }
            }
            "--serialize-flits" => {
                let flits: usize = next("--serialize-flits").parse().unwrap_or_else(|_| usage());
                if flits == 0 {
                    eprintln!("hmcsim: --serialize-flits must be at least 1");
                    usage()
                }
                o.serialize_flits = Some(flits);
            }
            "--threads" => o.threads = next("--threads").parse().unwrap_or_else(|_| usage()),
            "--locality" => o.locality = true,
            "--stall-queue" => o.stall_queue = true,
            "--series" => o.series = Some(next("--series")),
            "--trace" => o.trace = Some(next("--trace")),
            "--utilization" => o.utilization = true,
            "--energy" => o.energy = true,
            "--profile" => o.profile = true,
            "--check" => o.check = true,
            "--fast-forward" => o.fast_forward = true,
            "--timing" => {
                let name = next("--timing");
                o.timing = TimingKind::by_name(&name).unwrap_or_else(|| {
                    eprintln!("hmcsim: --timing needs `classic` or `ddr`, got {name}");
                    usage()
                });
            }
            "--interconnect" => {
                let name = next("--interconnect");
                o.interconnect = InterconnectKind::by_name(&name).unwrap_or_else(|| {
                    eprintln!(
                        "hmcsim: --interconnect needs `crossbar`, `ring`, or `mesh`, got {name}"
                    );
                    usage()
                });
            }
            "--arbitration" => {
                let name = next("--arbitration");
                o.arbitration = ArbitrationKind::by_name(&name).unwrap_or_else(|| {
                    eprintln!(
                        "hmcsim: --arbitration needs `round-robin`, `oldest-first`, \
                         or `locality-aware`, got {name}"
                    );
                    usage()
                });
            }
            "--help" | "-h" => usage(),
            flag => {
                let value = args.next();
                let handled = CellFaultConfig::apply_flag(&mut o.cell_faults, flag, value.as_deref())
                    .and_then(|hit| {
                        if hit {
                            Ok(true)
                        } else {
                            LinkFaultConfig::apply_flag(&mut o.link_faults, flag, value.as_deref())
                        }
                    });
                match handled {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("hmcsim: unknown argument {flag}");
                        usage()
                    }
                    Err(e) => {
                        eprintln!("hmcsim: {e}");
                        usage()
                    }
                }
            }
        }
    }
    o
}

fn build_workload(o: &Options) -> Box<dyn Workload> {
    let working_set = o.config.capacity_bytes.min(2 << 30);
    WorkloadSpec::new(&o.workload, o.seed, working_set, o.requests)
        .with_block(o.block)
        .with_read_pct(o.read_pct)
        .with_geometry(o.config.geometry())
        .build()
        .unwrap_or_else(|e| {
            eprintln!("hmcsim: {e}");
            usage()
        })
}

fn main() {
    let o = parse_options();
    if let Some(path) = &o.dump_config {
        let json = serde_json::to_string_pretty(&o.config).expect("config serializes");
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("hmcsim: {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("hmcsim: configuration written to {path}");
        return;
    }
    let config = o.config.clone().with_storage_mode(StorageMode::TimingOnly);
    let mut sim = HmcSim::new(1, config).expect("config validates");
    sim = sim.with_params(SimParams {
        link_flits_per_cycle: o.serialize_flits,
        conflict_policy: if o.stall_queue {
            ConflictPolicy::StallQueue
        } else {
            ConflictPolicy::SkipConflicting
        },
        threads: o.threads,
        fast_forward: o.fast_forward,
        timing: TimingParams::of(o.timing),
        interconnect: NocParams::of(o.interconnect).with_arbitration(o.arbitration),
        // CLI flags win over a cell-fault block in --config-file JSON.
        cell_faults: o.cell_faults.or(o.config.cell_faults),
        link_faults: o.link_faults.or(o.config.link_faults),
        ..SimParams::default()
    });
    // Legacy flag: --error-rate arms the retry protocol with its default
    // retry/retrain parameters; --link-error-rate and friends take
    // precedence when given.
    if o.error_rate > 0.0 && o.link_faults.is_none() && o.config.link_faults.is_none() {
        sim.enable_fault_injection(FaultConfig {
            packet_error_rate: o.error_rate,
            retry_cycles: 8,
            seed: o.seed as u64 | 1,
            ..FaultConfig::default()
        });
    }
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).expect("topology");

    // Optional sinks: per-cycle series and/or a text trace file.
    let series = o
        .series
        .as_ref()
        .map(|_| SharedSink::new(SeriesCollector::new(16, sim.config().num_vaults)));
    let mut sinks = MultiSink::new();
    let mut any_sink = false;
    if let Some(s) = &series {
        sinks = sinks.with(Box::new(s.clone()));
        any_sink = true;
    }
    if let Some(path) = &o.trace {
        let file = File::create(path).expect("create trace file");
        sinks = sinks.with(Box::new(TextSink::new(BufWriter::new(file))));
        any_sink = true;
    }
    if any_sink {
        sim.set_tracer(Tracer::new(Verbosity::Full, Box::new(sinks)));
    }

    let mut host = Host::attach(&sim, host_id).expect("host attach");
    if o.locality {
        host = host.with_selection(LinkSelection::LocalityAware);
    }
    let mut workload = build_workload(&o);

    if o.profile {
        // Static address profile of an identical workload instance.
        let mut for_profile = build_workload(&o);
        let map = sim.config().default_map().expect("geometry");
        let p = hmc_workloads::profile(for_profile.as_mut(), &map, 1_000_000)
            .expect("profile");
        println!("address profile (first 1M ops):");
        print!("{}", p.render());
        println!();
    }

    eprintln!(
        "hmcsim: {} workload, {} ops, config {} ...",
        workload.name(),
        workload.len_hint().unwrap_or(o.requests),
        o.config_name
    );
    let run_cfg = RunConfig {
        check_invariants: o.check,
        ..RunConfig::default()
    };
    let report = run_workload(&mut sim, &mut host, workload.as_mut(), run_cfg)
        .expect("run completes");

    println!("cycles            {}", report.cycles);
    println!("injected          {}", report.injected);
    println!("completed         {}", report.completed);
    println!("posted            {}", report.posted);
    println!("errors            {}", report.errors);
    println!("send stalls       {}", report.send_stalls);
    println!("throughput        {:.3} req/cycle", report.throughput);
    println!(
        "latency           mean {:.1}, max {} cycles",
        report.mean_latency, report.max_latency
    );
    if o.timing == TimingKind::Ddr {
        let s = sim.stats();
        println!(
            "row buffer        {} hits, {} misses, {} precharges",
            s.row_hits, s.row_misses, s.precharges
        );
    }
    if o.interconnect != InterconnectKind::Crossbar {
        let s = sim.stats();
        println!(
            "noc ({})        {} hops, {} stalls, {} arbitration losses",
            o.interconnect.name(),
            s.noc_hops,
            s.noc_stalls,
            s.noc_arb_losses
        );
    }
    if let Some(f) = sim.fault_state() {
        let s = sim.stats();
        println!(
            "link errors       {} injected, {} retries, {} retrains, {} poisoned responses",
            f.injected, s.link_retries, s.link_retrains, s.poisoned_responses
        );
    }
    if sim.cell_faults().is_some() {
        let s = sim.stats();
        println!(
            "cell faults       {} activations, {} bit flips, {} TRR refreshes, {} retention decays",
            s.hammer_activations, s.bit_flips, s.trr_refreshes, s.retention_decays
        );
    }
    if o.check {
        println!("invariants        {} violation(s)", report.invariant_violations);
        if report.invariant_violations > 0 {
            eprintln!(
                "hmcsim: invariant check failed; first violation: {:?}",
                sim.invariant_violations().first()
            );
            std::process::exit(1);
        }
    }

    if o.utilization {
        println!();
        for r in sim.utilization() {
            print!("{}", r.render());
        }
    }

    if o.energy {
        let activity = sim.activity();
        let energy = estimate_energy(&activity, &EnergyModel::hmc_gen1(), 1.25);
        println!();
        println!("energy (HMC gen-1 coefficients @ 1.25 GHz):");
        println!("  link        {:>14.0} pJ", energy.link_pj);
        println!("  dram        {:>14.0} pJ", energy.dram_pj);
        println!("  activate    {:>14.0} pJ", energy.activate_pj);
        println!("  logic       {:>14.0} pJ", energy.logic_pj);
        println!("  background  {:>14.0} pJ", energy.background_pj);
        println!("  total       {:>14.0} pJ", energy.total_pj);
        println!("  {:.2} pJ/bit, {:.2} W average", energy.pj_per_bit, energy.avg_power_w);
        if o.serialize_flits.is_none() {
            println!(
                "  (pJ/bit is robust; average watts assume real time per cycle —\n\
                 \x20  pass --serialize-flits 1 for physically-paced link timing)"
            );
        }
    }

    if let (Some(path), Some(s)) = (&o.series, &series) {
        let file = File::create(path).expect("create series file");
        s.0.lock()
            .write_csv(BufWriter::new(file))
            .expect("write series");
        eprintln!("hmcsim: series written to {path}");
    }
    sim.tracer_mut().flush();
    if let Some(path) = &o.trace {
        eprintln!("hmcsim: trace written to {path}");
    }
}
