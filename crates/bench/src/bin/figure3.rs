//! Demonstrate the paper's Figure 3: the six-stage sub-cycle clock
//! schedule for single- and multi-device configurations.
//!
//! A single read request is injected into a two-device chain targeting
//! the remote (child) device. The program prints, after every clock
//! cycle, which queue the packet (and later its response) occupies —
//! making the one-stage-per-sub-cycle progression of §IV.C directly
//! visible:
//!
//! ```text
//! host -> [root xbar] -> (forward) -> [child xbar] -> [child vault rqst]
//!      -> processed -> [child vault rsp] -> [child xbar rsp]
//!      -> (forward) -> [root xbar rsp] -> host
//! ```

use hmc_core::{topology, HmcSim};
use hmc_types::{BlockSize, Command, DeviceConfig, Packet};

fn snapshot(sim: &HmcSim, tag: u16) -> String {
    let mut places = Vec::new();
    for d in 0..sim.num_devices() {
        let dev = sim.device(d).unwrap();
        for x in &dev.xbars {
            if x.rqst.iter().any(|e| e.packet.tag() == tag) {
                places.push(format!("dev{d}.link{}.xbar_rqst", x.link));
            }
            if x.rsp.iter().any(|e| e.packet.tag() == tag) {
                places.push(format!("dev{d}.link{}.xbar_rsp", x.link));
            }
        }
        for v in &dev.vaults {
            if v.rqst.iter().any(|e| e.packet.tag() == tag) {
                places.push(format!("dev{d}.vault{}.rqst", v.id));
            }
            if v.rsp.iter().any(|e| e.packet.tag() == tag) {
                places.push(format!("dev{d}.vault{}.rsp", v.id));
            }
        }
    }
    if places.is_empty() {
        "(in flight between stages or delivered)".into()
    } else {
        places.join(", ")
    }
}

fn walk(sim: &mut HmcSim, label: &str, target_dev: u8) {
    println!("== {label}: read request to device {target_dev} ==");
    let tag = 42;
    let packet =
        Packet::request(Command::Rd(BlockSize::B64), target_dev, 0x40, tag, 0, &[]).unwrap();
    sim.send(0, 0, packet).unwrap();
    println!("  cycle {:>2}: injected  -> {}", sim.current_clock(), snapshot(sim, tag));
    for _ in 0..16 {
        sim.clock().unwrap();
        let where_now = snapshot(sim, tag);
        println!("  cycle {:>2}: clocked   -> {where_now}", sim.current_clock());
        if let Ok(rsp) = sim.recv(0, 0) {
            println!(
                "  cycle {:>2}: delivered -> response tag {} ({} FLITs)\n",
                sim.current_clock(),
                rsp.tag(),
                rsp.lng()
            );
            return;
        }
    }
    println!("  (no response within 16 cycles)\n");
}

fn main() {
    println!("Figure 3: sub-cycle clock stage schedule\n");
    println!("Stages per clock call (paper §IV.C):");
    println!("  1. child-device link crossbar transactions");
    println!("  2. root-device link crossbar request transactions");
    println!("  3. bank-conflict recognition on vault request queues");
    println!("  4. vault queue memory request processing");
    println!("  5. response registration (root devices, then children)");
    println!("  6. clock value update\n");

    // Single device: request resolves within one cycle's stage walk.
    let cfg = DeviceConfig::small();
    let mut sim = HmcSim::new(1, cfg.clone()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    walk(&mut sim, "single device", 0);

    // Two-device chain: the packet takes one chaining hop per cycle.
    let mut sim = HmcSim::new(2, cfg).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_chain(&mut sim, host).unwrap();
    walk(&mut sim, "two-device chain", 1);
}
