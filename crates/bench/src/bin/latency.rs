//! Request-latency distributions for all four paper configurations under
//! the §VI.A random-access workload, plus the bandwidth-utilization and
//! transaction-efficiency analysis of §IV.E.
//!
//! Usage:
//!   latency [--requests N] [--seed S]

use hmc_bench::harness::{paper_setup, SetupOptions};
use hmc_host::{run_workload, RunConfig};
use hmc_trace::analysis::{analyze_bandwidth, TrafficCounts};
use hmc_types::{BlockSize, DeviceConfig};
use hmc_workloads::RandomAccess;

fn main() {
    let mut requests: u64 = 100_000;
    let mut seed: u32 = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => {
                requests = args.next().and_then(|v| v.parse().ok()).unwrap_or(100_000)
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--help" | "-h" => {
                eprintln!("usage: latency [--requests N] [--seed S]");
                return;
            }
            other => {
                eprintln!("latency: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    println!("request latency distributions ({requests} random 64-byte requests, 50/50 mix)\n");
    for (label, cfg) in DeviceConfig::paper_configs() {
        let links = cfg.num_links;
        let lanes = cfg.lanes_per_link;
        let speed = cfg.link_speed;
        let (mut sim, mut host) = paper_setup(cfg, SetupOptions::default(), None);
        let mut w = RandomAccess::new(seed, 2 << 30, BlockSize::B64, 50, requests);
        let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default())
            .expect("latency run completes");

        println!("== {label} ==");
        println!(
            "   cycles {}   throughput {:.2} req/cycle   mean latency {:.1}   max {}",
            report.cycles, report.throughput, report.mean_latency, report.max_latency
        );

        // Histogram over power-of-two buckets.
        let hist = &host.latency;
        let peak = hist.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, &count) in hist.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = 1u64 << i;
            let hi = (1u64 << (i + 1)) - 1;
            let bar = "#".repeat(((count * 50) / peak) as usize);
            println!("   {lo:>6}-{hi:<6} {count:>8} {bar}");
        }

        // §IV.E analysis: bandwidth utilization & transaction efficiency
        // at a nominal 1.25 GHz logic-layer clock.
        let reads = report.completed / 2;
        let writes = report.completed - reads;
        let counts = TrafficCounts::uniform(BlockSize::B64, reads, writes);
        let bw = analyze_bandwidth(&counts, report.cycles, links, lanes, speed, 1.25);
        println!(
            "   data {:.1} MiB, wire {:.1} MiB, efficiency {:.1}%",
            bw.data_bytes as f64 / (1 << 20) as f64,
            bw.wire_bytes as f64 / (1 << 20) as f64,
            bw.efficiency * 100.0
        );
        println!(
            "   {:.1} data bytes/cycle (packet-arbitration crossbar model; absolute\n\
             \x20  GB/s needs the serialized-link model below)\n",
            bw.data_bytes_per_cycle
        );
    }

    // A serialized-link run: one FLIT per link direction per cycle, the
    // physical rate of a full-width 10 Gbps link at 1.25 GHz. Utilization
    // against the 160 GB/s peak is now meaningful.
    use hmc_core::{topology, HmcSim, SimParams};
    use hmc_host::Host;
    use hmc_types::StorageMode;
    println!("== 4-Link; 8-Bank; 2GB with serialized links (1 FLIT/cycle/link) ==");
    let cfg = DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly);
    let mut sim = HmcSim::new(1, cfg).unwrap().with_params(SimParams {
        link_flits_per_cycle: Some(1),
        ..SimParams::default()
    });
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).unwrap();
    let mut host = Host::attach(&sim, host_id).unwrap();
    let serialized_requests = requests.min(20_000);
    let mut w = RandomAccess::new(seed, 2 << 30, BlockSize::B64, 50, serialized_requests);
    let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
    let counts = TrafficCounts::uniform(
        BlockSize::B64,
        report.completed / 2,
        report.completed - report.completed / 2,
    );
    let bw = analyze_bandwidth(&counts, report.cycles, 4, 16, hmc_types::LinkSpeed::Gbps10, 1.25);
    println!(
        "   cycles {}   throughput {:.2} req/cycle   mean latency {:.1}",
        report.cycles, report.throughput, report.mean_latency
    );
    println!(
        "   achieved {:.1} GB/s of {:.0} GB/s peak ({:.1}% utilization at 1.25 GHz)",
        bw.achieved_gbs,
        bw.peak_gbs,
        bw.utilization * 100.0
    );
}
