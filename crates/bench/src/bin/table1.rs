//! Regenerate the paper's Table I: simulated runtime in clock cycles for
//! the four device configurations under 33,554,432 random 64-byte
//! requests (50/50 read/write).
//!
//! Usage:
//!   table1 [--scale N] [--full] [--seed S] [--threads N] [--check]
//!          [--fast-forward] [--timing classic|ddr]
//!          [--interconnect crossbar|ring|mesh]
//!          [--arbitration round-robin|oldest-first|locality-aware]
//!          [--hammer-threshold N] [--flip-prob PPM] [--retention CYCLES]
//!          [--mitigation none|trr|elevated]
//!
//! `--scale N` runs 1/N of the paper's request count (default 16);
//! `--full` is shorthand for `--scale 1` (the paper's exact request
//! count; takes a few minutes per configuration). `--threads N` runs
//! the sharded clock engine with N workers (0 = auto); cycle counts are
//! bit-identical to the serial engine. `--check` arms the per-cycle
//! protocol invariant checker and fails the run on any violation.
//! `--fast-forward` arms the engine's event-driven fast-forward mode
//! (cycle counts stay bit-identical to stepped execution). `--timing`
//! selects the vault timing backend: the paper's constant-time conflict
//! model (`classic`, default) or the cycle-accurate DDR state machine
//! (`ddr`). `--interconnect` selects the intra-cube fabric: the direct
//! crossbar (default) or a buffered ring/mesh NoC, with `--arbitration`
//! picking the per-hop arbitration policy buffered fabrics use. Any of
//! the cell-fault flags (`--hammer-threshold`, `--flip-prob`,
//! `--retention`, `--mitigation`) arms RowHammer/retention fault
//! injection for the runs; the remaining knobs keep their defaults.

use hmc_bench::table1::{format_table, run_table1_with};
use hmc_bench::SetupOptions;
use hmc_core::{NocParams, TimingParams};
use hmc_types::{ArbitrationKind, CellFaultConfig, InterconnectKind, LinkFaultConfig, TimingKind};

fn main() {
    let mut scale: u64 = 16;
    let mut seed: u32 = 1;
    let mut threads: usize = 1;
    let mut check = false;
    let mut fast_forward = false;
    let mut timing = TimingKind::Classic;
    let mut interconnect = InterconnectKind::Crossbar;
    let mut arbitration = ArbitrationKind::RoundRobin;
    let mut cell_faults = None;
    let mut link_faults = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = 1,
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs an integer"));
            }
            "--check" => check = true,
            "--fast-forward" => fast_forward = true,
            "--timing" => {
                timing = args
                    .next()
                    .and_then(|v| TimingKind::by_name(&v))
                    .unwrap_or_else(|| die("--timing needs `classic` or `ddr`"));
            }
            "--interconnect" => {
                interconnect = args
                    .next()
                    .and_then(|v| InterconnectKind::by_name(&v))
                    .unwrap_or_else(|| die("--interconnect needs `crossbar`, `ring`, or `mesh`"));
            }
            "--arbitration" => {
                arbitration = args.next().and_then(|v| ArbitrationKind::by_name(&v)).unwrap_or_else(
                    || die("--arbitration needs `round-robin`, `oldest-first`, or `locality-aware`"),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: table1 [--scale N] [--full] [--seed S] [--threads N] [--check] \
                     [--fast-forward] [--timing classic|ddr] \
                     [--interconnect crossbar|ring|mesh] \
                     [--arbitration round-robin|oldest-first|locality-aware] \
                     [--hammer-threshold N] [--flip-prob PPM] [--retention CYCLES] \
                     [--mitigation none|trr|elevated] \
                     [--link-error-rate PPM] [--link-retry-limit N] \
                     [--retrain-cycles N] [--link-retry-cycles N] [--link-fault-seed S]"
                );
                return;
            }
            flag => {
                let value = args.next();
                let hit = CellFaultConfig::apply_flag(&mut cell_faults, flag, value.as_deref())
                    .and_then(|hit| {
                        if hit {
                            Ok(true)
                        } else {
                            LinkFaultConfig::apply_flag(&mut link_faults, flag, value.as_deref())
                        }
                    });
                match hit {
                    Ok(true) => {}
                    Ok(false) => die(&format!("unknown argument {flag}")),
                    Err(e) => die(&e.to_string()),
                }
            }
        }
    }

    eprintln!(
        "Running Table I at 1/{scale} scale (seed {seed}, {threads} threads, {} timing, \
         {} fabric{}) ...",
        timing.name(),
        interconnect.name(),
        if check { ", invariants checked" } else { "" }
    );
    let opts = SetupOptions {
        threads,
        fast_forward,
        timing: TimingParams::of(timing),
        interconnect: NocParams::of(interconnect).with_arbitration(arbitration),
        cell_faults,
        link_faults,
        ..SetupOptions::default()
    };
    let rows = run_table1_with(scale, seed, opts, check, |config, cycles| {
        eprint!("\r  config {} of 4: {cycles:>10} cycles", config + 1);
    });
    eprintln!();
    println!("{}", format_table(&rows, scale));
    if check {
        let violations: u64 = rows.iter().map(|r| r.invariant_violations).sum();
        if violations > 0 {
            for r in &rows {
                if r.invariant_violations > 0 {
                    eprintln!(
                        "table1: {}: {} invariant violation(s)",
                        r.label, r.invariant_violations
                    );
                }
            }
            std::process::exit(1);
        }
        println!("Invariant check: 0 violations across all configurations.");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("table1: {msg}");
    std::process::exit(2);
}
