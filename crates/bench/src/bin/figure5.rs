//! Regenerate the paper's Figure 5: per-cycle random-access simulation
//! trace series for all four device configurations.
//!
//! For each configuration this runs the §VI.A random-access harness with
//! full tracing and emits a CSV time series of the five plotted
//! quantities — bank conflicts, read requests, write requests, crossbar
//! request stalls and routed-latency penalty events per cycle — plus an
//! ASCII sparkline summary and per-vault utilization totals.
//!
//! Usage:
//!   figure5 [--scale N] [--seed S] [--bin W] [--out DIR] [--threads N] [--check]
//!           [--fast-forward] [--timing classic|ddr]
//!           [--interconnect crossbar|ring|mesh]
//!           [--arbitration round-robin|oldest-first|locality-aware]
//!           [--hammer-threshold N] [--flip-prob PPM] [--retention CYCLES]
//!           [--mitigation none|trr|elevated]
//!
//! Defaults: 1/256 scale, bin width auto (~200 rows), output CSVs to the
//! current directory as `figure5_<config>.csv`.

use std::fs::File;
use std::io::BufWriter;

use hmc_bench::harness::{paper_setup, paper_workload, SetupOptions};
use hmc_core::{NocParams, TimingParams};
use hmc_host::{run_workload, RunConfig};
use hmc_trace::{SeriesCollector, SharedSink, Verbosity};
use hmc_types::{
    ArbitrationKind, CellFaultConfig, DeviceConfig, InterconnectKind, LinkFaultConfig,
    StorageMode, TimingKind,
};

fn main() {
    let mut scale: u64 = 256;
    let mut seed: u32 = 1;
    let mut bin: u64 = 0; // 0 = auto
    let mut out_dir = String::from(".");
    let mut threads: usize = 1;
    let mut check = false;
    let mut fast_forward = false;
    let mut timing = TimingKind::Classic;
    let mut interconnect = InterconnectKind::Crossbar;
    let mut arbitration = ArbitrationKind::RoundRobin;
    let mut cell_faults = None;
    let mut link_faults = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = parse(args.next(), "--scale"),
            "--seed" => seed = parse(args.next(), "--seed"),
            "--bin" => bin = parse(args.next(), "--bin"),
            "--out" => out_dir = args.next().unwrap_or_else(|| die("--out needs a path")),
            "--threads" => threads = parse(args.next(), "--threads"),
            "--check" => check = true,
            "--fast-forward" => fast_forward = true,
            "--timing" => {
                timing = args
                    .next()
                    .and_then(|v| TimingKind::by_name(&v))
                    .unwrap_or_else(|| die("--timing needs `classic` or `ddr`"));
            }
            "--interconnect" => {
                interconnect = args
                    .next()
                    .and_then(|v| InterconnectKind::by_name(&v))
                    .unwrap_or_else(|| die("--interconnect needs `crossbar`, `ring`, or `mesh`"));
            }
            "--arbitration" => {
                arbitration = args.next().and_then(|v| ArbitrationKind::by_name(&v)).unwrap_or_else(
                    || die("--arbitration needs `round-robin`, `oldest-first`, or `locality-aware`"),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figure5 [--scale N] [--seed S] [--bin W] [--out DIR] \
                     [--threads N] [--check] [--fast-forward] [--timing classic|ddr] \
                     [--interconnect crossbar|ring|mesh] \
                     [--arbitration round-robin|oldest-first|locality-aware] \
                     [--hammer-threshold N] [--flip-prob PPM] [--retention CYCLES] \
                     [--mitigation none|trr|elevated] \
                     [--link-error-rate PPM] [--link-retry-limit N] \
                     [--retrain-cycles N] [--link-retry-cycles N] [--link-fault-seed S]"
                );
                return;
            }
            flag => {
                let value = args.next();
                let hit = CellFaultConfig::apply_flag(&mut cell_faults, flag, value.as_deref())
                    .and_then(|hit| {
                        if hit {
                            Ok(true)
                        } else {
                            LinkFaultConfig::apply_flag(&mut link_faults, flag, value.as_deref())
                        }
                    });
                match hit {
                    Ok(true) => {}
                    Ok(false) => die(&format!("unknown argument {flag}")),
                    Err(e) => die(&e.to_string()),
                }
            }
        }
    }

    println!("Figure 5: random access simulation results (1/{scale} scale, seed {seed})\n");

    for (label, cfg) in DeviceConfig::paper_configs() {
        let slug = label
            .to_lowercase()
            .replace("; ", "_")
            .replace([' ', '-', ';'], "");
        let vaults = cfg.num_vaults;
        // Auto bin: target roughly 200 rows given the expected cycle count.
        let requests = hmc_bench::scaled_requests(scale);
        let expected_cycles = (requests / 60).max(200);
        let bin_width = if bin > 0 { bin } else { (expected_cycles / 200).max(1) };

        let series = SharedSink::new(SeriesCollector::new(bin_width, vaults));
        let opts = SetupOptions {
            verbosity: Verbosity::Full,
            storage: StorageMode::TimingOnly,
            threads,
            fast_forward,
            timing: TimingParams::of(timing),
            interconnect: NocParams::of(interconnect).with_arbitration(arbitration),
            cell_faults,
            link_faults,
        };
        let (mut sim, mut host) = paper_setup(cfg, opts, Some(Box::new(series.clone())));
        let mut workload = paper_workload(seed, scale);
        let run_cfg = RunConfig {
            check_invariants: check,
            fast_forward,
            ..RunConfig::default()
        };
        let report = run_workload(&mut sim, &mut host, &mut workload, run_cfg)
            .expect("figure5 run completes");
        if check && report.invariant_violations > 0 {
            die(&format!(
                "{label}: {} invariant violation(s); first: {:?}",
                report.invariant_violations,
                sim.invariant_violations().first()
            ));
        }

        let collector = series.0.lock();
        let totals = collector.totals();
        println!("== {label} ==");
        println!(
            "   cycles {}   reads {}   writes {}   bank conflicts {}   xbar stalls {}   latency events {}",
            report.cycles,
            totals.reads,
            totals.writes,
            totals.bank_conflicts,
            totals.xbar_stalls,
            totals.latency_events
        );
        if let Some(peak) = collector.peak_conflict_bin() {
            println!(
                "   peak conflict bin: cycle {} with {} conflicts",
                peak.cycle, peak.bank_conflicts
            );
        }
        let vu = collector.vaults();
        let (busiest, load) = vu.busiest_vault();
        println!(
            "   busiest vault {} ({} requests); load imbalance (cv) {:.4}",
            busiest,
            load,
            vu.load_imbalance()
        );
        println!(
            "   conflicts/cycle: {}",
            sparkline(collector.rows().iter().map(|r| r.bank_conflicts))
        );
        println!(
            "   requests/cycle:  {}",
            sparkline(collector.rows().iter().map(|r| r.reads + r.writes))
        );

        let path = format!("{out_dir}/figure5_{slug}.csv");
        let file = File::create(&path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        collector
            .write_csv(BufWriter::new(file))
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        println!("   series written to {path} (bin width {bin_width} cycles)\n");
    }
}

fn sparkline<I: Iterator<Item = u64>>(values: I) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let vals: Vec<u64> = values.collect();
    // Downsample to at most 60 columns.
    let cols = 60.min(vals.len().max(1));
    let chunk = vals.len().div_ceil(cols).max(1);
    let sampled: Vec<u64> = vals
        .chunks(chunk)
        .map(|c| c.iter().sum::<u64>() / c.len() as u64)
        .collect();
    let max = sampled.iter().copied().max().unwrap_or(0).max(1);
    sampled
        .iter()
        .map(|&v| BARS[((v * 7) / max) as usize])
        .collect()
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("figure5: {msg}");
    std::process::exit(2);
}
