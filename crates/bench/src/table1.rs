//! Table I regeneration: simulated runtime in clock cycles across the
//! four paper device configurations.
//!
//! Paper values (33,554,432 64-byte requests, 50/50 read/write):
//!
//! | Device configuration  | Cycles     |
//! |-----------------------|------------|
//! | 4-Link;  8-Bank; 2GB  | 3,404,553  |
//! | 4-Link; 16-Bank; 4GB  | 2,327,858  |
//! | 8-Link;  8-Bank; 4GB  | 1,708,918  |
//! | 8-Link; 16-Bank; 8GB  |   879,183  |
//!
//! with an average 1.7× speedup from doubling banks and 2.319× from
//! doubling links. Absolute cycle counts depend on queueing choices the
//! spec leaves open (§IV req. 3); the reproduction targets the *shape* —
//! ordering and speedup factors.

use hmc_host::{run_workload_with_progress, RunConfig};
use hmc_types::DeviceConfig;

use crate::harness::{paper_setup, paper_workload, scaled_requests, SetupOptions};

/// Paper Table I cycle counts, in configuration order.
pub const PAPER_CYCLES: [u64; 4] = [3_404_553, 2_327_858, 1_708_918, 879_183];

/// One regenerated Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Configuration label, paper spelling.
    pub label: &'static str,
    /// Measured simulated runtime in clock cycles.
    pub cycles: u64,
    /// Requests injected.
    pub requests: u64,
    /// Requests per cycle.
    pub throughput: f64,
    /// The paper's cycle count for this configuration (full scale).
    pub paper_cycles: u64,
    /// Protocol invariant violations observed during the run (always 0
    /// unless the run was made with the invariant checker armed).
    pub invariant_violations: u64,
}

/// Run the Table I experiment at `1/scale` of the paper's request count.
///
/// `progress` is invoked as `(config_index, cycles_elapsed)` during runs.
pub fn run_table1<F: FnMut(usize, u64)>(scale: u64, seed: u32, progress: F) -> Vec<Table1Row> {
    run_table1_threaded(scale, seed, 1, progress)
}

/// [`run_table1`] on the sharded clock engine with `threads` workers.
/// Cycle counts are bit-identical across thread counts — only wall-clock
/// time changes.
pub fn run_table1_threaded<F: FnMut(usize, u64)>(
    scale: u64,
    seed: u32,
    threads: usize,
    progress: F,
) -> Vec<Table1Row> {
    run_table1_checked(scale, seed, threads, false, progress)
}

/// [`run_table1_threaded`] with the protocol invariant checker optionally
/// armed (`check = true` sets [`RunConfig::check_invariants`]). Checked
/// runs are slower but verify token conservation, queue-slot validity,
/// tag-lifecycle and CRC invariants on every cycle; violations are
/// reported per row in [`Table1Row::invariant_violations`].
pub fn run_table1_checked<F: FnMut(usize, u64)>(
    scale: u64,
    seed: u32,
    threads: usize,
    check: bool,
    progress: F,
) -> Vec<Table1Row> {
    let opts = SetupOptions {
        threads,
        ..SetupOptions::default()
    };
    run_table1_with(scale, seed, opts, check, progress)
}

/// [`run_table1_checked`] over explicit [`SetupOptions`] — the full knob
/// set, including the engine's fast-forward mode. Cycle counts are
/// bit-identical across every option combination; only wall-clock time
/// changes.
pub fn run_table1_with<F: FnMut(usize, u64)>(
    scale: u64,
    seed: u32,
    opts: SetupOptions,
    check: bool,
    mut progress: F,
) -> Vec<Table1Row> {
    let requests = scaled_requests(scale);
    DeviceConfig::paper_configs()
        .into_iter()
        .enumerate()
        .map(|(i, (label, cfg))| {
            let (mut sim, mut host) = paper_setup(cfg, opts, None);
            let mut workload = paper_workload(seed, scale);
            let report = run_workload_with_progress(
                &mut sim,
                &mut host,
                &mut workload,
                RunConfig {
                    progress_every: 65_536,
                    check_invariants: check,
                    fast_forward: opts.fast_forward,
                    ..RunConfig::default()
                },
                |cycles, _| progress(i, cycles),
            )
            .expect("table1 run completes");
            Table1Row {
                label,
                cycles: report.cycles,
                requests,
                throughput: report.throughput,
                paper_cycles: PAPER_CYCLES[i],
                invariant_violations: report.invariant_violations,
            }
        })
        .collect()
}

/// Speedup summary over Table I rows: `(bank_speedups, link_speedups)` —
/// the two averages the paper reports (1.7× banks, 2.319× links).
pub fn table1_speedups(rows: &[Table1Row]) -> (f64, f64) {
    assert_eq!(rows.len(), 4, "expects the four paper configurations");
    let c = |i: usize| rows[i].cycles as f64;
    // Banks: 4L8B → 4L16B and 8L8B → 8L16B.
    let banks = (c(0) / c(1) + c(2) / c(3)) / 2.0;
    // Links: 4L8B → 8L8B and 4L16B → 8L16B.
    let links = (c(0) / c(2) + c(1) / c(3)) / 2.0;
    (banks, links)
}

/// Render the table in the paper's format, with paper-reference columns.
pub fn format_table(rows: &[Table1Row], scale: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "TABLE I. SIMULATION RUNTIME IN CLOCK CYCLES \
         ({} requests = 1/{} of paper scale)\n\n",
        rows.first().map(|r| r.requests).unwrap_or(0),
        scale.max(1)
    ));
    out.push_str(&format!(
        "{:<24} {:>14} {:>12} {:>16}\n",
        "Device Configuration", "Cycles", "Req/Cycle", "Paper (full)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:>14} {:>12.3} {:>16}\n",
            r.label, r.cycles, r.throughput, r.paper_cycles
        ));
    }
    if rows.len() == 4 {
        let (banks, links) = table1_speedups(rows);
        out.push_str(&format!(
            "\nAvg speedup, 2x banks: {banks:.3}x (paper: 1.700x)\n\
             Avg speedup, 2x links: {links:.3}x (paper: 2.319x)\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_arithmetic_matches_paper_on_paper_numbers() {
        let rows: Vec<Table1Row> = DeviceConfig::paper_configs()
            .into_iter()
            .zip(PAPER_CYCLES)
            .map(|((label, _), cycles)| Table1Row {
                label,
                cycles,
                requests: 33_554_432,
                throughput: 0.0,
                paper_cycles: cycles,
                invariant_violations: 0,
            })
            .collect();
        let (banks, links) = table1_speedups(&rows);
        assert!((banks - 1.703).abs() < 0.01, "banks speedup {banks}");
        assert!((links - 2.320).abs() < 0.01, "links speedup {links}");
    }

    #[test]
    fn tiny_scale_run_produces_ordered_rows() {
        // 1/8192 scale: 4096 requests per config — fast enough for tests.
        let rows = run_table1(8192, 1, |_, _| {});
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.cycles > 0, "{}: zero cycles", r.label);
            assert_eq!(r.requests, 4096);
        }
        let table = format_table(&rows, 8192);
        assert!(table.contains("4-Link; 8-Bank; 2GB"));
        assert!(table.contains("Avg speedup"));
    }

    #[test]
    fn fast_forward_rows_are_cycle_identical_to_stepped() {
        let stepped = run_table1(8192, 1, |_, _| {});
        let opts = SetupOptions {
            fast_forward: true,
            ..SetupOptions::default()
        };
        let fast = run_table1_with(8192, 1, opts, false, |_, _| {});
        for (s, f) in stepped.iter().zip(&fast) {
            assert_eq!(s.cycles, f.cycles, "{}: fast-forward perturbed timing", s.label);
            assert_eq!(s.requests, f.requests);
        }
    }

    #[test]
    fn checked_run_is_clean_and_cycle_identical_to_unchecked() {
        // The invariant checker must neither fire on a clean run nor
        // perturb simulated time (it only observes).
        let plain = run_table1(8192, 1, |_, _| {});
        let checked = run_table1_checked(8192, 1, 1, true, |_, _| {});
        for (p, c) in plain.iter().zip(&checked) {
            assert_eq!(c.invariant_violations, 0, "{}: violations", c.label);
            assert_eq!(p.cycles, c.cycles, "{}: checker perturbed timing", c.label);
        }
    }
}
