//! `BENCH_*.json` emitter: machine-readable engine-throughput records.
//!
//! Each record captures one measured run — workload shape, engine mode,
//! thread count, simulated cycles, wall time and the derived cycles/sec —
//! so CI can archive a trajectory of engine performance over time and
//! EXPERIMENTS.md tables can be regenerated from artifacts instead of
//! prose. Every record also stamps the host's logical CPU count so
//! trajectory comparisons can tell apart runs taken on differently
//! sized machines. Files are named
//! `BENCH_<workload>_<mode>_<timing>[_<fabric>]_t<threads>.json` (the
//! fabric segment appears only for buffered ring/mesh runs, keeping
//! crossbar file names stable); the summary comparing stepped against
//! fast-forward for one workload under one timing backend is
//! `BENCH_summary_<workload>_<timing>[_<fabric>]_t<threads>.json`.
//!
//! The workload shapes mirror the engine's differential tests: rounds of
//! (send a burst of reads, batch-clock a gap, drain responses). `dense`
//! keeps the queues busy nearly every cycle, `bursty` alternates short
//! bursts with medium gaps, and `sparse` models an idle-heavy device
//! where almost every cycle is dead — the shape the event-driven
//! fast-forward mode exists for.

use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use hmc_core::{HmcSim, NocParams, SimParams, TimingParams};
use hmc_types::{
    BlockSize, CellFaultConfig, Command, DeviceConfig, InterconnectKind, LinkFaultConfig, LinkId,
    Mitigation, Packet, StorageMode, TimingKind,
};
use hmc_workloads::{Hammer, Workload};
use serde::{Deserialize, Serialize};

/// Schema tag stamped into every emitted record.
pub const SCHEMA: &str = "hmc-bench/1";

/// The burst/gap shape of one measured workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadShape {
    /// Workload name, used in filenames and records.
    pub name: &'static str,
    /// Number of (burst, gap, drain) rounds.
    pub bursts: u64,
    /// Reads sent per burst, round-robin across the four host links.
    pub burst_len: u16,
    /// Cycles batch-clocked after each burst.
    pub gap: u64,
}

/// The three canonical shapes: dense, bursty and sparse.
pub const SHAPES: [WorkloadShape; 3] = [
    WorkloadShape {
        name: "dense",
        bursts: 400,
        burst_len: 24,
        gap: 32,
    },
    WorkloadShape {
        name: "bursty",
        bursts: 150,
        burst_len: 16,
        gap: 512,
    },
    WorkloadShape {
        name: "sparse",
        bursts: 40,
        burst_len: 4,
        gap: 20_000,
    },
];

/// Look up a canonical shape by name.
pub fn shape_by_name(name: &str) -> Option<WorkloadShape> {
    SHAPES.into_iter().find(|s| s.name == name)
}

/// One measured engine-throughput run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Record schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Workload shape name (`dense`, `bursty`, `sparse`).
    pub workload: String,
    /// Engine mode: `stepped` or `fast-forward`.
    pub mode: String,
    /// Vault timing backend: `classic` or `ddr` (defaults to empty on
    /// records written before the field existed).
    #[serde(default)]
    pub timing: String,
    /// Intra-cube interconnect fabric: `crossbar`, `ring` or `mesh`
    /// (defaults to empty on records written before the field existed).
    #[serde(default)]
    pub interconnect: String,
    /// Per-hop arbitration policy buffered fabrics used (empty on old
    /// records).
    #[serde(default)]
    pub arbitration: String,
    /// Worker threads (1 = serial engine).
    pub threads: u64,
    /// Logical CPU count of the host that took the measurement
    /// (`std::thread::available_parallelism`); 0 on records written
    /// before the field existed or when the count is unavailable.
    /// Throughput numbers are only comparable across records taken on
    /// similarly-sized hosts.
    #[serde(default)]
    pub num_cpus: u64,
    /// Simulated clock cycles elapsed over the run.
    pub simulated_cycles: u64,
    /// Wall-clock time for the run, nanoseconds.
    pub wall_ns: u64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Requests injected.
    pub requests: u64,
    /// Responses drained.
    pub responses: u64,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time_secs: u64,
}

/// Stepped-vs-fast-forward comparison for one workload shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Record schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Workload shape name.
    pub workload: String,
    /// Vault timing backend both runs used (`classic` or `ddr`).
    #[serde(default)]
    pub timing: String,
    /// Intra-cube interconnect fabric both runs used (empty on old
    /// records).
    #[serde(default)]
    pub interconnect: String,
    /// Worker threads both runs used.
    pub threads: u64,
    /// Stepped-mode simulated cycles per second.
    pub stepped_cycles_per_sec: f64,
    /// Fast-forward-mode simulated cycles per second.
    pub fast_forward_cycles_per_sec: f64,
    /// `fast_forward_cycles_per_sec / stepped_cycles_per_sec`.
    pub speedup: f64,
}

fn mode_name(fast_forward: bool) -> &'static str {
    if fast_forward {
        "fast-forward"
    } else {
        "stepped"
    }
}

fn unix_now_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn host_num_cpus() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(0)
}

fn emit_sim(
    threads: usize,
    fast_forward: bool,
    timing: TimingKind,
    noc: NocParams,
    cell_faults: Option<CellFaultConfig>,
    link_faults: Option<LinkFaultConfig>,
) -> HmcSim {
    let cfg = DeviceConfig::small().with_storage_mode(StorageMode::TimingOnly);
    let mut sim = HmcSim::new(1, cfg)
        .expect("small config validates")
        .with_params(SimParams {
            threads,
            fast_forward,
            timing: TimingParams::of(timing),
            interconnect: noc,
            cell_faults,
            link_faults,
            ..SimParams::default()
        });
    for l in 0..4 {
        sim.connect_host(0, l, sim.host_cube_id(0))
            .expect("host link wires");
    }
    sim
}

fn drain(sim: &mut HmcSim, responses: &mut u64) {
    for link in 0..4 {
        while sim.recv(0, link).is_ok() {
            *responses += 1;
        }
    }
}

/// Measure one workload shape in one engine mode under one timing
/// backend. The schedule is deterministic given the shape, so stepped
/// and fast-forward runs simulate the identical cycle span — only wall
/// time differs.
pub fn measure(
    shape: WorkloadShape,
    fast_forward: bool,
    threads: usize,
    timing: TimingKind,
    noc: NocParams,
    link_faults: Option<LinkFaultConfig>,
) -> BenchRecord {
    let mut sim = emit_sim(threads, fast_forward, timing, noc, None, link_faults);
    let mut requests = 0u64;
    let mut responses = 0u64;
    let start = Instant::now();
    let mut tag = 0u16;
    for burst in 0..shape.bursts {
        for i in 0..shape.burst_len {
            let link = (i % 4) as LinkId;
            let addr = (burst * 0x9e37 + i as u64 * 0x1_0000) % (1 << 30);
            loop {
                let p = Packet::request(Command::Rd(BlockSize::B64), 0, addr, tag, link, &[])
                    .expect("read request builds");
                match sim.send(0, link, p) {
                    Ok(()) => break,
                    // Crossbar full: give the device a cycle and free
                    // link buffers before retrying the same request.
                    Err(_) => {
                        sim.clock_batch(1).expect("clock");
                        drain(&mut sim, &mut responses);
                    }
                }
            }
            // Tags are a 9-bit field; reuse is safe here because far
            // fewer than 512 requests are ever outstanding at once.
            tag = (tag + 1) % (1 << 9);
            requests += 1;
        }
        sim.clock_batch(shape.gap).expect("clock");
        drain(&mut sim, &mut responses);
    }
    while !sim.is_idle() {
        sim.clock_batch(64).expect("clock");
        drain(&mut sim, &mut responses);
    }
    let wall = start.elapsed();
    let simulated_cycles = sim.current_clock();
    let wall_ns = wall.as_nanos().max(1) as u64;
    BenchRecord {
        schema: SCHEMA.into(),
        workload: shape.name.into(),
        mode: mode_name(fast_forward).into(),
        timing: timing.name().into(),
        interconnect: noc.kind.name().into(),
        arbitration: noc.arbitration.name().into(),
        threads: threads.max(1) as u64,
        num_cpus: host_num_cpus(),
        simulated_cycles,
        wall_ns,
        cycles_per_sec: simulated_cycles as f64 * 1e9 / wall_ns as f64,
        requests,
        responses,
        unix_time_secs: unix_now_secs(),
    }
}

/// Measure one shape in both modes under one timing backend and fabric,
/// and fold the comparison.
pub fn compare(
    shape: WorkloadShape,
    threads: usize,
    timing: TimingKind,
    noc: NocParams,
    link_faults: Option<LinkFaultConfig>,
) -> (BenchRecord, BenchRecord, BenchSummary) {
    let stepped = measure(shape, false, threads, timing, noc, link_faults);
    let fast = measure(shape, true, threads, timing, noc, link_faults);
    let summary = BenchSummary {
        schema: SCHEMA.into(),
        workload: shape.name.into(),
        timing: timing.name().into(),
        interconnect: noc.kind.name().into(),
        threads: threads.max(1) as u64,
        stepped_cycles_per_sec: stepped.cycles_per_sec,
        fast_forward_cycles_per_sec: fast.cycles_per_sec,
        speedup: fast.cycles_per_sec / stepped.cycles_per_sec.max(f64::MIN_POSITIVE),
    };
    (stepped, fast, summary)
}

/// Requests in the measured hammer shape: enough double-sided
/// activations of one bank to cross the default disturbance threshold
/// many times within a single refresh window.
pub const HAMMER_REQUESTS: u64 = 6_000;

/// Measure the double-sided hammer shape, optionally with cell-fault
/// injection armed. The request schedule is identical either way, so
/// comparing the two runs isolates the cost of the fault hook itself.
pub fn measure_hammer(
    fast_forward: bool,
    threads: usize,
    cell_faults: Option<CellFaultConfig>,
) -> (BenchRecord, u64) {
    let mut sim = emit_sim(
        threads,
        fast_forward,
        TimingKind::Classic,
        NocParams::default(),
        cell_faults,
        None,
    );
    let geometry = sim.config().geometry();
    let mut hammer = Hammer::new(
        geometry,
        BlockSize::B64,
        0,
        0,
        geometry.rows / 2,
        HAMMER_REQUESTS,
    )
    .expect("small geometry has interior rows");
    let mut requests = 0u64;
    let mut responses = 0u64;
    let start = Instant::now();
    let mut tag = 0u16;
    while let Some(op) = hammer.next_op() {
        let link = (requests % 4) as LinkId;
        loop {
            let p = Packet::request(op.command(), 0, op.addr, tag, link, &[])
                .expect("hammer read builds");
            match sim.send(0, link, p) {
                Ok(()) => break,
                Err(_) => {
                    sim.clock_batch(1).expect("clock");
                    drain(&mut sim, &mut responses);
                }
            }
        }
        tag = (tag + 1) % (1 << 9);
        requests += 1;
        if requests.is_multiple_of(64) {
            sim.clock_batch(32).expect("clock");
            drain(&mut sim, &mut responses);
        }
    }
    while !sim.is_idle() {
        sim.clock_batch(64).expect("clock");
        drain(&mut sim, &mut responses);
    }
    let wall = start.elapsed();
    let simulated_cycles = sim.current_clock();
    let wall_ns = wall.as_nanos().max(1) as u64;
    let bit_flips = sim.stats().bit_flips;
    let record = BenchRecord {
        schema: SCHEMA.into(),
        workload: "hammer".into(),
        mode: if cell_faults.is_some() {
            "faults-on".into()
        } else {
            "faults-off".into()
        },
        timing: TimingKind::Classic.name().into(),
        interconnect: InterconnectKind::Crossbar.name().into(),
        arbitration: NocParams::default().arbitration.name().into(),
        threads: threads.max(1) as u64,
        num_cpus: host_num_cpus(),
        simulated_cycles,
        wall_ns,
        cycles_per_sec: simulated_cycles as f64 * 1e9 / wall_ns as f64,
        requests,
        responses,
        unix_time_secs: unix_now_secs(),
    };
    (record, bit_flips)
}

/// Faults-off vs faults-armed comparison for the hammer shape.
///
/// The injection hook charges no cycles of its own — only the TRR
/// mitigation spends refresh time — so with mitigation forced off the
/// armed run must simulate the *identical* cycle span as the baseline.
/// CI archives this record to pin the overhead-when-off at zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HammerOverheadSummary {
    /// Record schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Always `hammer`.
    pub workload: String,
    /// Worker threads both runs used.
    pub threads: u64,
    /// Simulated cycles with cell faults unconfigured.
    pub off_simulated_cycles: u64,
    /// Simulated cycles with injection armed (mitigation forced off).
    pub on_simulated_cycles: u64,
    /// `on - off`; pinned at zero.
    pub simulated_cycle_overhead: i64,
    /// Baseline throughput, simulated cycles per second.
    pub off_cycles_per_sec: f64,
    /// Armed-run throughput, simulated cycles per second.
    pub on_cycles_per_sec: f64,
    /// Bits flipped during the armed run.
    pub bit_flips_on: u64,
}

/// Run the hammer shape with faults off and with injection armed
/// (mitigation stripped so timing is comparable), and fold the
/// comparison.
pub fn hammer_overhead(
    threads: usize,
    cfg: CellFaultConfig,
) -> (BenchRecord, BenchRecord, HammerOverheadSummary) {
    let armed = cfg.with_mitigation(Mitigation::None);
    let (off, _) = measure_hammer(false, threads, None);
    let (on, bit_flips_on) = measure_hammer(false, threads, Some(armed));
    let summary = HammerOverheadSummary {
        schema: SCHEMA.into(),
        workload: "hammer".into(),
        threads: threads.max(1) as u64,
        off_simulated_cycles: off.simulated_cycles,
        on_simulated_cycles: on.simulated_cycles,
        simulated_cycle_overhead: on.simulated_cycles as i64 - off.simulated_cycles as i64,
        off_cycles_per_sec: off.cycles_per_sec,
        on_cycles_per_sec: on.cycles_per_sec,
        bit_flips_on,
    };
    (off, on, summary)
}

/// File name for a hammer overhead summary:
/// `BENCH_hammer_overhead_t<threads>.json`.
pub fn hammer_summary_file_name(summary: &HammerOverheadSummary) -> String {
    format!("BENCH_hammer_overhead_t{}.json", summary.threads)
}

/// Write one hammer overhead summary into `dir`, returning the path.
pub fn write_hammer_summary(
    dir: &Path,
    summary: &HammerOverheadSummary,
) -> std::io::Result<PathBuf> {
    let path = dir.join(hammer_summary_file_name(summary));
    let json = serde_json::to_string_pretty(summary)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// `_<fabric>` filename segment for buffered fabrics; empty for the
/// crossbar (and for pre-fabric records), so legacy trajectory file
/// names stay stable.
fn fabric_segment(interconnect: &str) -> String {
    if interconnect.is_empty() || interconnect == InterconnectKind::Crossbar.name() {
        String::new()
    } else {
        format!("_{interconnect}")
    }
}

/// File name for a record:
/// `BENCH_<workload>_<mode>_<timing>[_<fabric>]_t<threads>.json`.
pub fn record_file_name(record: &BenchRecord) -> String {
    format!(
        "BENCH_{}_{}_{}{}_t{}.json",
        record.workload,
        record.mode,
        record.timing,
        fabric_segment(&record.interconnect),
        record.threads
    )
}

/// File name for a summary:
/// `BENCH_summary_<workload>_<timing>[_<fabric>]_t<threads>.json`.
pub fn summary_file_name(summary: &BenchSummary) -> String {
    format!(
        "BENCH_summary_{}_{}{}_t{}.json",
        summary.workload,
        summary.timing,
        fabric_segment(&summary.interconnect),
        summary.threads
    )
}

/// Write one record into `dir`, returning the path written.
pub fn write_record(dir: &Path, record: &BenchRecord) -> std::io::Result<PathBuf> {
    let path = dir.join(record_file_name(record));
    let json = serde_json::to_string_pretty(record)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Write one summary into `dir`, returning the path written.
pub fn write_summary(dir: &Path, summary: &BenchSummary) -> std::io::Result<PathBuf> {
    let path = dir.join(summary_file_name(summary));
    let json = serde_json::to_string_pretty(summary)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WorkloadShape {
        WorkloadShape {
            name: "sparse",
            bursts: 3,
            burst_len: 4,
            gap: 2_000,
        }
    }

    #[test]
    fn degraded_links_still_answer_every_request() {
        // Retries stretch the span but every request must still end in
        // exactly one response (clean or poisoned), in both modes.
        let lf = LinkFaultConfig::default()
            .with_error_rate_ppm(200_000)
            .with_retry_limit(1)
            .with_retry_cycles(4)
            .with_retrain_cycles(16)
            .with_seed(11);
        let clean = measure(tiny(), false, 1, TimingKind::Classic, NocParams::default(), None);
        let stepped = measure(
            tiny(),
            false,
            1,
            TimingKind::Classic,
            NocParams::default(),
            Some(lf),
        );
        let fast = measure(
            tiny(),
            true,
            1,
            TimingKind::Classic,
            NocParams::default(),
            Some(lf),
        );
        assert_eq!(stepped.simulated_cycles, fast.simulated_cycles);
        assert_eq!(stepped.responses, fast.responses);
        assert_eq!(stepped.responses, clean.responses, "every read must answer");
    }

    #[test]
    fn both_modes_simulate_the_identical_span() {
        let stepped = measure(tiny(), false, 1, TimingKind::Classic, NocParams::default(), None);
        let fast = measure(tiny(), true, 1, TimingKind::Classic, NocParams::default(), None);
        assert_eq!(stepped.simulated_cycles, fast.simulated_cycles);
        assert_eq!(stepped.requests, fast.requests);
        assert_eq!(stepped.responses, fast.responses);
        assert_eq!(stepped.responses, 12, "every read must answer");
        assert_eq!(stepped.mode, "stepped");
        assert_eq!(fast.mode, "fast-forward");
        assert_eq!(stepped.interconnect, "crossbar");
        assert!(stepped.num_cpus >= 1, "host CPU count must be stamped");
        assert!(stepped.cycles_per_sec > 0.0);
        assert!(fast.cycles_per_sec > 0.0);
    }

    #[test]
    fn ddr_backend_spans_match_across_modes_too() {
        let stepped = measure(tiny(), false, 1, TimingKind::Ddr, NocParams::default(), None);
        let fast = measure(tiny(), true, 1, TimingKind::Ddr, NocParams::default(), None);
        assert_eq!(stepped.simulated_cycles, fast.simulated_cycles);
        assert_eq!(stepped.responses, fast.responses);
        assert_eq!(stepped.responses, 12, "every read must answer");
        assert_eq!(stepped.timing, "ddr");
    }

    #[test]
    fn buffered_fabric_spans_match_across_modes() {
        let ring = NocParams::of(InterconnectKind::Ring);
        let stepped = measure(tiny(), false, 1, TimingKind::Classic, ring, None);
        let fast = measure(tiny(), true, 1, TimingKind::Classic, ring, None);
        assert_eq!(stepped.simulated_cycles, fast.simulated_cycles);
        assert_eq!(stepped.responses, fast.responses);
        assert_eq!(stepped.responses, 12, "every read must answer");
        assert_eq!(stepped.interconnect, "ring");
        assert_eq!(stepped.arbitration, "round-robin");
        assert!(record_file_name(&stepped).contains("_ring_"));
    }

    #[test]
    fn records_round_trip_through_json() {
        let (stepped, fast, summary) =
            compare(tiny(), 1, TimingKind::Classic, NocParams::default(), None);
        for r in [&stepped, &fast] {
            let json = serde_json::to_string(r).unwrap();
            let back: BenchRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, r);
        }
        let json = serde_json::to_string(&summary).unwrap();
        let back: BenchSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
        assert!(summary.speedup > 0.0);
    }

    #[test]
    fn emitted_files_land_where_named() {
        let dir = std::env::temp_dir().join("hmc_bench_emit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let record = measure(tiny(), true, 1, TimingKind::Ddr, NocParams::default(), None);
        let path = write_record(&dir, &record).unwrap();
        assert!(path.ends_with("BENCH_sparse_fast-forward_ddr_t1.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let back: BenchRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back, record);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hammer_overhead_when_off_is_pinned_at_zero() {
        let cfg = CellFaultConfig::default()
            .with_hammer_threshold(64)
            .with_flip_prob_ppm(1_000_000);
        let (off, on, summary) = hammer_overhead(1, cfg);
        assert_eq!(off.workload, "hammer");
        assert_eq!(off.mode, "faults-off");
        assert_eq!(on.mode, "faults-on");
        assert_eq!(
            summary.simulated_cycle_overhead, 0,
            "the fault hook must not perturb timing without TRR"
        );
        assert_eq!(off.simulated_cycles, on.simulated_cycles);
        assert_eq!(off.responses, on.responses);
        assert!(summary.bit_flips_on > 0, "armed run must actually flip bits");
        assert!(hammer_summary_file_name(&summary).contains("hammer_overhead"));
    }

    #[test]
    fn canonical_shapes_resolve_by_name() {
        for s in SHAPES {
            assert_eq!(shape_by_name(s.name).unwrap().name, s.name);
        }
        assert!(shape_by_name("nope").is_none());
    }
}
