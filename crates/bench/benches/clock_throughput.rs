//! Simulator-engine throughput: host wall-clock cost per simulated cycle,
//! idle and under random-access load, for 4- and 8-link devices.
//!
//! This is the quantity that determines whether the paper's 33.5-million-
//! request Table I runs are tractable; regressions here directly stretch
//! full-scale reproduction time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hmc_bench::harness::{paper_setup, SetupOptions};
use hmc_types::{BlockSize, DeviceConfig};
use hmc_workloads::{RandomAccess, Workload};

fn bench_idle_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("clock_idle");
    g.throughput(Throughput::Elements(1));
    for (name, cfg) in [
        ("4link", DeviceConfig::paper_4link_8bank_2gb()),
        ("8link", DeviceConfig::paper_8link_16bank_8gb()),
    ] {
        let (mut sim, _host) = paper_setup(cfg, SetupOptions::default(), None);
        g.bench_function(name, |b| b.iter(|| sim.clock().unwrap()));
    }
    g.finish();
}

fn bench_loaded_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("clock_loaded");
    g.sample_size(20);
    // Each iteration: keep the device saturated and run 64 cycles.
    g.throughput(Throughput::Elements(64));
    for (name, cfg) in [
        ("4link_8bank", DeviceConfig::paper_4link_8bank_2gb()),
        ("8link_16bank", DeviceConfig::paper_8link_16bank_8gb()),
    ] {
        let (mut sim, mut host) = paper_setup(cfg, SetupOptions::default(), None);
        let mut workload = RandomAccess::new(1, 2 << 30, BlockSize::B64, 50, u64::MAX / 2);
        g.bench_function(name, |b| {
            b.iter_batched(
                || (),
                |()| {
                    for _ in 0..64 {
                        // Inject until back-pressure, clock, drain — the
                        // §VI.A harness inner loop.
                        loop {
                            let op = workload.next_op().expect("endless workload");
                            if !host.try_issue(&mut sim, 0, &op).unwrap() {
                                break;
                            }
                        }
                        sim.clock().unwrap();
                        host.drain(&mut sim).unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_idle_clock, bench_loaded_clock);
criterion_main!(benches);
