//! Microbenchmarks of the address interleave maps: decode and encode for
//! the three standard field orders, on the paper's 4-link geometry.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hmc_types::address::{AddressMap, DecodedAddr};
use hmc_types::{BankFirstMap, DeviceConfig, LinearMap, LowInterleaveMap, PhysAddr};

fn bench_decode(c: &mut Criterion) {
    let g = DeviceConfig::paper_4link_8bank_2gb().geometry();
    let maps: Vec<(&str, Box<dyn AddressMap>)> = vec![
        ("low_interleave", Box::new(LowInterleaveMap::new(g).unwrap())),
        ("bank_first", Box::new(BankFirstMap::new(g).unwrap())),
        ("linear", Box::new(LinearMap::new(g).unwrap())),
    ];
    let mut group = c.benchmark_group("address_decode");
    for (name, map) in &maps {
        group.bench_function(*name, |b| {
            let mut addr = 0x12345u64;
            b.iter(|| {
                addr = (addr.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407))
                    % g.capacity_bytes();
                map.decode(PhysAddr::new_truncating(black_box(addr))).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let g = DeviceConfig::paper_4link_8bank_2gb().geometry();
    let map = LowInterleaveMap::new(g).unwrap();
    c.bench_function("address_encode/low_interleave", |b| {
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 1) % g.rows;
            map.encode(black_box(DecodedAddr {
                vault: (row % 16) as u16,
                bank: (row % 8) as u16,
                row,
                offset: 32,
            }))
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_decode, bench_encode);
criterion_main!(benches);
