//! Microbenchmarks of the memory substrate: sparse-store reads/writes,
//! bank operations with row-buffer accounting, and atomics.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hmc_mem::{Bank, SparseStore};
use hmc_types::config::StorageMode;

fn bench_sparse_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_store");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("write_64B_hot_page", |b| {
        let mut s = SparseStore::new(1 << 30);
        let data = [0xa5u8; 64];
        let mut offset = 0u64;
        b.iter(|| {
            offset = (offset + 64) % 4096; // stay on one page
            s.write(black_box(offset), &data)
        })
    });
    g.bench_function("write_64B_page_spread", |b| {
        let mut s = SparseStore::new(1 << 30);
        let data = [0xa5u8; 64];
        let mut offset = 0u64;
        b.iter(|| {
            offset = (offset + 4096 + 64) % (1 << 26); // new page each time
            s.write(black_box(offset), &data)
        })
    });
    g.bench_function("read_64B_resident", |b| {
        let mut s = SparseStore::new(1 << 30);
        s.write(0, &[1u8; 4096]);
        let mut buf = [0u8; 64];
        b.iter(|| s.read(black_box(512), &mut buf))
    });
    g.bench_function("read_64B_unallocated", |b| {
        let s = SparseStore::new(1 << 30);
        let mut buf = [0u8; 64];
        b.iter(|| s.read(black_box(1 << 29), &mut buf))
    });
    g.finish();
}

fn bench_bank_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("bank");
    for (name, mode) in [
        ("functional", StorageMode::Functional),
        ("timing_only", StorageMode::TimingOnly),
    ] {
        g.bench_function(format!("write_64B_{name}"), |b| {
            let mut bank = Bank::new(1 << 16, 128, 16, mode);
            let data = [0x3cu8; 64];
            let mut row = 0u64;
            b.iter(|| {
                row = (row + 1) & 0xffff;
                bank.write(black_box(row), 0, &data).unwrap()
            })
        });
    }
    g.bench_function("two_add8", |b| {
        let mut bank = Bank::new(1 << 16, 128, 16, StorageMode::Functional);
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 1) & 0xffff;
            bank.two_add8(black_box(row), 0, 3, 5).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sparse_store, bench_bank_ops);
criterion_main!(benches);
