//! Figure 5 tracing cost: the same random-access run with tracing off,
//! stall-level, full-level into a counting sink, and full-level into the
//! Figure 5 series collector. Quantifies what "enable all the possible
//! internal tracing outputs" (§VI.B) costs the simulation engine.

use criterion::{criterion_group, criterion_main, Criterion};
use hmc_bench::harness::{paper_setup, paper_workload, SetupOptions};
use hmc_host::{run_workload, RunConfig};
use hmc_trace::{CountingSink, SeriesCollector, SharedSink, TraceSink, Verbosity};
use hmc_types::{DeviceConfig, StorageMode};

const SCALE: u64 = 4096; // 8,192 requests per iteration

fn run_once(verbosity: Verbosity, sink: Option<Box<dyn TraceSink>>) {
    let opts = SetupOptions {
        verbosity,
        storage: StorageMode::TimingOnly,
        ..SetupOptions::default()
    };
    let (mut sim, mut host) = paper_setup(DeviceConfig::paper_4link_8bank_2gb(), opts, sink);
    let mut w = paper_workload(1, SCALE);
    run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
}

fn bench_tracing_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure5_tracing");
    g.sample_size(10);
    g.bench_function("off", |b| b.iter(|| run_once(Verbosity::Off, None)));
    g.bench_function("stalls_counting", |b| {
        b.iter(|| {
            run_once(
                Verbosity::Stalls,
                Some(Box::new(SharedSink::new(CountingSink::default()))),
            )
        })
    });
    g.bench_function("full_counting", |b| {
        b.iter(|| {
            run_once(
                Verbosity::Full,
                Some(Box::new(SharedSink::new(CountingSink::default()))),
            )
        })
    });
    g.bench_function("full_series", |b| {
        b.iter(|| {
            run_once(
                Verbosity::Full,
                Some(Box::new(SharedSink::new(SeriesCollector::new(16, 16)))),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tracing_levels);
criterion_main!(benches);
