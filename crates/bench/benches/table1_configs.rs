//! Table I as a criterion bench: each of the four paper device
//! configurations runs a 1/2048-scale random-access workload to
//! completion. Criterion reports host wall time; the simulated cycle
//! counts (the paper's metric) print once per configuration and are
//! regenerated in full by `cargo run --release -p hmc-bench --bin table1`.

use criterion::{criterion_group, criterion_main, Criterion};
use hmc_bench::harness::{paper_setup, paper_workload, SetupOptions};
use hmc_host::{run_workload, RunConfig};
use hmc_types::DeviceConfig;

const SCALE: u64 = 2048; // 16,384 requests per iteration

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for (label, cfg) in DeviceConfig::paper_configs() {
        // Report the simulated-cycle figure once, outside measurement.
        let (mut sim, mut host) = paper_setup(cfg.clone(), SetupOptions::default(), None);
        let mut w = paper_workload(1, SCALE);
        let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
        println!(
            "table1/{label}: {} simulated cycles for {} requests ({:.2} req/cycle)",
            report.cycles, report.injected, report.throughput
        );

        let slug = label.replace("; ", "_").replace(['-', ' ', ';'], "");
        g.bench_function(slug, |b| {
            b.iter(|| {
                let (mut sim, mut host) =
                    paper_setup(cfg.clone(), SetupOptions::default(), None);
                let mut w = paper_workload(1, SCALE);
                run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
