//! Microbenchmarks of the packet protocol layer: request construction,
//! validation (CRC included), response decode, and raw CRC throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hmc_core::builder::decode_response;
use hmc_types::crc::crc32k;
use hmc_types::{BlockSize, Command, Packet, ResponseStatus};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_build");
    g.bench_function("rd64_request", |b| {
        b.iter(|| {
            Packet::request(
                Command::Rd(BlockSize::B64),
                black_box(0),
                black_box(0x1234_5678),
                black_box(17),
                black_box(2),
                &[],
            )
            .unwrap()
        })
    });
    let payload = [0xa5u8; 128];
    g.bench_function("wr128_request", |b| {
        b.iter(|| {
            Packet::request(
                Command::Wr(BlockSize::B128),
                black_box(0),
                black_box(0x1234_5678),
                black_box(17),
                black_box(2),
                black_box(&payload),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_validate");
    let rd = Packet::request(Command::Rd(BlockSize::B64), 0, 0x40, 1, 0, &[]).unwrap();
    let wr = Packet::request(Command::Wr(BlockSize::B128), 0, 0x40, 1, 0, &[0u8; 128]).unwrap();
    g.bench_function("rd64", |b| b.iter(|| black_box(&rd).validate().unwrap()));
    g.bench_function("wr128", |b| b.iter(|| black_box(&wr).validate().unwrap()));
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let rsp = Packet::response(
        Command::RdResponse,
        42,
        1,
        ResponseStatus::Ok,
        &[0x5au8; 64],
    )
    .unwrap();
    c.bench_function("response_decode_rd64", |b| {
        b.iter(|| decode_response(black_box(&rsp)).unwrap())
    });
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32k");
    for size in [16usize, 64, 144] {
        let data = vec![0xc3u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| crc32k(black_box(&data))));
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_validate, bench_decode, bench_crc);
criterion_main!(benches);
