//! Sharded clock engine scaling: wall-clock cost of a saturated
//! simulation batch as the worker-thread count sweeps 1, 2, 4, 8.
//!
//! Every thread count simulates the identical cycle stream (the engine
//! is bit-identical by construction; `tests/parallel_determinism.rs`
//! asserts it), so the groups are directly comparable. The parallel
//! engine amortizes its worker start-up over a batch, so the measured
//! unit is `clock_batch(BATCH)` on a device kept saturated by a
//! random-access host loop between batches.
//!
//! Speedup depends on the machine's core count — on a single-core
//! container every thread count degenerates to roughly serial cost plus
//! hand-off overhead; see EXPERIMENTS.md for recorded numbers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hmc_bench::harness::{paper_setup, SetupOptions};
use hmc_types::{BlockSize, DeviceConfig};
use hmc_workloads::{RandomAccess, Workload};

/// Cycles per measured batch. Large enough to amortize the per-batch
/// worker spawn (~tens of microseconds per thread) far below the vault
/// work it parallelizes.
const BATCH: u64 = 64;

fn bench_thread_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("clock_parallel/8link_16bank");
    g.sample_size(20);
    g.throughput(Throughput::Elements(BATCH));
    for threads in [1usize, 2, 4, 8] {
        let opts = SetupOptions {
            threads,
            ..SetupOptions::default()
        };
        let (mut sim, mut host) =
            paper_setup(DeviceConfig::paper_8link_16bank_8gb(), opts, None);
        let mut workload = RandomAccess::new(1, 2 << 30, BlockSize::B64, 50, u64::MAX / 2);
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter_batched(
                || (),
                |()| {
                    // Saturate, batch-clock, drain — the §VI.A harness
                    // loop with the clock calls batched.
                    loop {
                        let op = workload.next_op().expect("endless workload");
                        if !host.try_issue(&mut sim, 0, &op).unwrap() {
                            break;
                        }
                    }
                    sim.clock_batch(BATCH).unwrap();
                    host.drain(&mut sim).unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_thread_sweep);
criterion_main!(benches);
