//! Ablation benches over the design choices DESIGN.md calls out. Each
//! group reports simulated cycle counts (printed) alongside criterion's
//! host wall times:
//!
//! * queue depths — crossbar/vault slot counts vs. runtime;
//! * address maps — the spec's low-interleave default vs. bank-first and
//!   linear orders (§III.B motivation);
//! * conflict policy — reordering vaults vs. strictly in-order vaults;
//! * link selection — round-robin vs. locality-aware hosts (§VI.B);
//! * posted writes — acknowledged vs. fire-and-forget write traffic;
//! * refresh — DRAM refresh duty cycles vs. the paper's refresh-free model;
//! * error rate — lossy-link retransmission cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hmc_core::{topology, ConflictPolicy, FaultConfig, HmcSim, RefreshParams, SimParams};
use hmc_host::{run_workload, Host, LinkSelection, RunConfig};
use hmc_types::{
    BankFirstMap, BlockSize, DeviceConfig, LinearMap, StorageMode,
};
use hmc_workloads::{RandomAccess, Stream, StreamMode};

const REQUESTS: u64 = 16_384;

fn base_config() -> DeviceConfig {
    DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly)
}

fn build(config: DeviceConfig, params: Option<SimParams>) -> (HmcSim, Host) {
    let mut sim = HmcSim::new(1, config).unwrap();
    if let Some(p) = params {
        sim = sim.with_params(p);
    }
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).unwrap();
    let host = Host::attach(&sim, host_id).unwrap();
    (sim, host)
}

fn random(seed: u32) -> RandomAccess {
    RandomAccess::new(seed, 2 << 30, BlockSize::B64, 50, REQUESTS)
}

fn cycles_of(sim: &mut HmcSim, host: &mut Host, w: &mut RandomAccess) -> u64 {
    run_workload(sim, host, w, RunConfig::default()).unwrap().cycles
}

fn bench_queue_depths(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_queue_depth");
    g.sample_size(10);
    for (xbar, vault) in [(32usize, 16usize), (128, 64), (512, 256)] {
        let cfg = base_config().with_queue_depths(xbar, vault);
        let (mut sim, mut host) = build(cfg.clone(), None);
        let cycles = cycles_of(&mut sim, &mut host, &mut random(1));
        println!("queue_depth/x{xbar}_v{vault}: {cycles} simulated cycles");
        g.bench_function(format!("x{xbar}_v{vault}"), |b| {
            b.iter(|| {
                let (mut sim, mut host) = build(cfg.clone(), None);
                cycles_of(&mut sim, &mut host, &mut random(1))
            })
        });
    }
    g.finish();
}

fn bench_address_maps(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_address_map");
    g.sample_size(10);
    // Sequential streaming is where interleave order matters most: the
    // low-interleave default rotates vaults; linear piles onto one bank.
    let geometry = base_config().geometry();
    type MapSetup = Option<Box<dyn Fn(&mut HmcSim)>>;
    let runs: Vec<(&str, MapSetup)> = vec![
        ("low_interleave", None),
        (
            "bank_first",
            Some(Box::new(move |sim: &mut HmcSim| {
                sim.set_address_map(Box::new(BankFirstMap::new(geometry).unwrap()))
                    .unwrap();
            })),
        ),
        (
            "linear",
            Some(Box::new(move |sim: &mut HmcSim| {
                sim.set_address_map(Box::new(LinearMap::new(geometry).unwrap()))
                    .unwrap();
            })),
        ),
    ];
    for (name, setup) in &runs {
        let run = || {
            let (mut sim, mut host) = build(base_config(), None);
            if let Some(f) = setup {
                f(&mut sim);
            }
            let mut w = Stream::unit(1 << 28, BlockSize::B128, StreamMode::ReadOnly, REQUESTS);
            run_workload(&mut sim, &mut host, &mut w, RunConfig::default())
                .unwrap()
                .cycles
        };
        println!("address_map/{name}: {} simulated cycles (stream)", run());
        g.bench_function(*name, |b| b.iter(run));
    }
    g.finish();
}

fn bench_conflict_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_conflict_policy");
    g.sample_size(10);
    for (name, policy) in [
        ("skip_conflicting", ConflictPolicy::SkipConflicting),
        ("stall_queue", ConflictPolicy::StallQueue),
    ] {
        let params = SimParams {
            conflict_policy: policy,
            ..SimParams::default()
        };
        let (mut sim, mut host) = build(base_config(), Some(params));
        let cycles = cycles_of(&mut sim, &mut host, &mut random(1));
        println!("conflict_policy/{name}: {cycles} simulated cycles");
        g.bench_function(name, |b| {
            b.iter(|| {
                let (mut sim, mut host) = build(base_config(), Some(params));
                cycles_of(&mut sim, &mut host, &mut random(1))
            })
        });
    }
    g.finish();
}

fn bench_link_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_link_selection");
    g.sample_size(10);
    for (name, selection) in [
        ("round_robin", LinkSelection::RoundRobin),
        ("locality_aware", LinkSelection::LocalityAware),
    ] {
        let run = move || {
            let (mut sim, host) = build(base_config(), None);
            let mut host = host.with_selection(selection);
            let mut w = random(1);
            let report = run_workload(&mut sim, &mut host, &mut w, RunConfig::default()).unwrap();
            (report.cycles, report.mean_latency)
        };
        let (cycles, lat) = run();
        println!("link_selection/{name}: {cycles} cycles, mean latency {lat:.1}");
        g.bench_function(name, |b| b.iter(run));
    }
    g.finish();
}

fn bench_posted_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_posted_writes");
    g.sample_size(10);
    for (name, posted) in [("acknowledged", false), ("posted", true)] {
        let run = move || {
            let (mut sim, mut host) = build(base_config(), None);
            let mut w = RandomAccess::new(1, 2 << 30, BlockSize::B64, 0, REQUESTS)
                .with_posted_writes(posted);
            run_workload(&mut sim, &mut host, &mut w, RunConfig::default())
                .unwrap()
                .cycles
        };
        println!("posted_writes/{name}: {} simulated cycles", run());
        g.bench_function(name, |b| b.iter(run));
    }
    g.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_refresh");
    g.sample_size(10);
    for (name, refresh) in [
        ("none", None),
        (
            "duty_12pct",
            Some(RefreshParams {
                interval: 16,
                duration: 2,
            }),
        ),
        (
            "duty_50pct",
            Some(RefreshParams {
                interval: 16,
                duration: 8,
            }),
        ),
    ] {
        let params = SimParams {
            refresh,
            ..SimParams::default()
        };
        let (mut sim, mut host) = build(base_config(), Some(params));
        let cycles = cycles_of(&mut sim, &mut host, &mut random(1));
        println!("refresh/{name}: {cycles} simulated cycles");
        g.bench_function(name, |b| {
            b.iter(|| {
                let (mut sim, mut host) = build(base_config(), Some(params));
                cycles_of(&mut sim, &mut host, &mut random(1))
            })
        });
    }
    g.finish();
}

fn bench_error_rates(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_error_rate");
    g.sample_size(10);
    for (name, rate) in [("clean", 0.0), ("ber_1e3", 1e-3), ("ber_1e2", 1e-2)] {
        let run = move || {
            let (mut sim, mut host) = build(base_config(), None);
            if rate > 0.0 {
                sim.enable_fault_injection(FaultConfig {
                    packet_error_rate: rate,
                    retry_cycles: 8,
                    seed: 11,
                    ..FaultConfig::default()
                });
            }
            cycles_of(&mut sim, &mut host, &mut random(1))
        };
        println!("error_rate/{name}: {} simulated cycles", run());
        g.bench_function(name, |b| b.iter(run));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_queue_depths,
    bench_address_maps,
    bench_conflict_policy,
    bench_link_selection,
    bench_posted_writes,
    bench_refresh,
    bench_error_rates
);
criterion_main!(benches);
