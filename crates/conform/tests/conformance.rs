//! End-to-end conformance checks: a clean mini-campaign over all four
//! paper presets and map kinds, and the checker-of-the-checker path —
//! a deliberately corrupted datapath must be caught, shrunk to a
//! minimal stream, and reproduced from the written replay file.

use std::io::BufReader;

use hmc_conform::fuzz::{campaign_with_corruption, case_for_stream, gen_stream};
use hmc_conform::{
    campaign, hammer_demo, run_case, run_case_cross_interconnect, run_case_cross_timing,
    shrink_case, write_repro, CampaignConfig, CorruptSpec, FuzzCase, MapKind,
};
use hmc_types::{ArbitrationKind, DeviceConfig, InterconnectKind, TimingKind};
use hmc_workloads::{OpKind, Replay, Workload};

/// Enough streams to hit every (preset, map) pair once: 4 presets
/// rotate fastest, maps every 4 streams -> 16 streams covers the grid.
fn mini_campaign() -> CampaignConfig {
    CampaignConfig {
        streams: 16,
        stream_len: 32,
        base_seed: 0xD1FF_5EED,
        full_sweep: false,
        fast_forward: false,
        ..CampaignConfig::default()
    }
}

#[test]
fn mini_campaign_is_clean_across_presets_and_maps() {
    let report = campaign(&mini_campaign());
    if let Some((case, failure)) = &report.failure {
        panic!(
            "stream on {} / {} (seed {:#x}) diverged: {failure}",
            case.label,
            case.map.name(),
            case.seed
        );
    }
    assert_eq!(report.streams_run, 16);
    assert!(report.responses_checked > 0);
}

#[test]
fn full_thread_sweep_passes_on_one_stream_per_preset() {
    let cfg = CampaignConfig {
        streams: 4,
        stream_len: 32,
        base_seed: 0xFADE,
        full_sweep: true,
        fast_forward: false,
        ..CampaignConfig::default()
    };
    let report = campaign(&cfg);
    assert!(report.is_clean(), "{:?}", report.failure.map(|(_, f)| f.to_string()));
}

#[test]
fn seeded_corruption_is_caught_shrunk_and_replayable() {
    let cfg = mini_campaign();
    let spec = CorruptSpec { addr: 0, xor: 0xbad0_bad0 };
    let report = campaign_with_corruption(&cfg, Some((0, spec)));
    let (case, failure) = report.failure.expect("the corrupted stream must fail");
    assert_eq!(report.streams_run, 1, "stream 0 carries the corruption");
    assert!(
        failure.description.contains("mismatch"),
        "the oracle flags wrong read data: {failure}"
    );

    // Shrink to a minimal stream — the corrupted write plus the read
    // that observes it, possibly with an op the ddmin pass cannot
    // split away.
    let shrunk = shrink_case(&case);
    assert!(shrunk.minimal.ops.len() < case.ops.len());
    assert!(shrunk.minimal.ops.len() >= 2);

    // The repro file must round-trip through hmc_workloads::Replay and
    // still reproduce the failure when re-run as a case.
    let path = std::env::temp_dir().join("hmc_conform_it_repro.csv");
    write_repro(&shrunk.minimal, &shrunk.failure, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let mut replay = Replay::read_csv(BufReader::new(&bytes[..])).unwrap();
    assert_eq!(replay.len(), shrunk.minimal.ops.len());

    let mut ops = Vec::new();
    while let Some(op) = replay.next_op() {
        ops.push(op);
    }
    let replayed = FuzzCase {
        ops,
        ..shrunk.minimal.clone()
    };
    assert!(
        run_case(&replayed).is_err(),
        "the replayed minimal case must still fail"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn posted_only_streams_quiesce_on_every_preset() {
    // Posted traffic exercises the no-tag, no-response path: quiesce
    // (idle device, tokens restored) is the only observable contract.
    for (label, device) in DeviceConfig::paper_configs() {
        let block = device.block_size.bytes() as u64;
        let ops: Vec<_> = (0..24)
            .map(|i| hmc_workloads::MemOp {
                kind: OpKind::PostedWrite,
                addr: (i % 8) * block,
                size: hmc_types::BlockSize::B32,
            })
            .collect();
        let mut case = FuzzCase::new(label, device, MapKind::LowInterleave, 1, ops);
        case.threads = vec![1, 4];
        let out = run_case(&case).unwrap_or_else(|f| panic!("{label}: {f}"));
        assert_eq!(out.checked, 0, "posted ops owe no responses");
    }
}

#[test]
fn campaign_schedule_is_reproducible() {
    let cfg = mini_campaign();
    for i in 0..8 {
        let a = case_for_stream(&cfg, i);
        let b = case_for_stream(&cfg, i);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.map, b.map);
        assert_eq!(a.gap_every, b.gap_every);
        assert_eq!(a.gap_cycles, b.gap_cycles);
    }
}

#[test]
fn forced_fast_forward_campaign_is_clean() {
    // Every stream gapped, every engine run doubled across the
    // stepped/fast-forward axis.
    let cfg = CampaignConfig {
        streams: 8,
        stream_len: 24,
        base_seed: 0x0FF0_FF00,
        full_sweep: false,
        fast_forward: true,
        ..CampaignConfig::default()
    };
    let report = campaign(&cfg);
    assert!(report.is_clean(), "{:?}", report.failure.map(|(_, f)| f.to_string()));
    assert_eq!(report.streams_run, 8);
}

#[test]
fn ddr_campaign_with_pinned_seed_is_clean() {
    // The DDR backend through the full harness: oracle agreement,
    // invariant checks, thread sweep, fast-forward axis, quiesce — all
    // under the cycle-accurate state machine, at a pinned seed so this
    // is the same guard every CI run executes.
    let cfg = CampaignConfig {
        streams: 16,
        stream_len: 32,
        base_seed: 0xC0FF_EE02,
        full_sweep: false,
        fast_forward: false,
        timing: TimingKind::Ddr,
        ..CampaignConfig::default()
    };
    let report = campaign(&cfg);
    if let Some((case, failure)) = &report.failure {
        panic!(
            "ddr stream on {} / {} (seed {:#x}) diverged: {failure}",
            case.label,
            case.map.name(),
            case.seed
        );
    }
    assert_eq!(report.streams_run, 16);
}

#[test]
fn ddr_full_thread_sweep_passes_stepped_and_fast_forward() {
    // The acceptance sweep: DdrTiming at 1/2/4/8 threads, each crossed
    // with the stepped and fast-forward engine modes, bit-identical.
    let cfg = CampaignConfig {
        streams: 4,
        stream_len: 32,
        base_seed: 0xFADE,
        full_sweep: true,
        fast_forward: true,
        timing: TimingKind::Ddr,
        ..CampaignConfig::default()
    };
    let report = campaign(&cfg);
    assert!(report.is_clean(), "{:?}", report.failure.map(|(_, f)| f.to_string()));
}

#[test]
fn backends_agree_functionally_on_every_preset_and_map() {
    // The backend-differential axis of the conformance suite: the same
    // seeded stream on every preset × address map, run to completion
    // under the classic constant-time model and the DDR state machine.
    // Responses (op, owner link, data) must match bit-for-bit; cycle
    // counts are expected to differ and are only reported.
    let mut deltas = Vec::new();
    for (pi, (label, device)) in DeviceConfig::paper_configs().iter().enumerate() {
        for (mi, map) in MapKind::ALL.into_iter().enumerate() {
            let seed = 0x5EED_0000 + (pi * 4 + mi) as u64;
            let ops = gen_stream(seed, 24, device);
            let mut case = FuzzCase::new(label, device.clone(), map, seed, ops);
            case.threads = vec![1, 4];
            let out = run_case_cross_timing(&case)
                .unwrap_or_else(|f| panic!("{label} / {}: {f}", map.name()));
            assert!(out.classic.checked > 0);
            assert_eq!(out.classic.checked, out.ddr.checked);
            deltas.push((label.to_string(), map.name(), out.latency_delta));
        }
    }
    assert_eq!(deltas.len(), 16, "all preset x map pairs ran");
    // Reported, not asserted: how much slower (or faster) DDR ran.
    for (preset, map, delta) in &deltas {
        eprintln!("latency delta ({preset}, {map}): ddr - classic = {delta} cycles");
    }
}

#[test]
fn fabrics_agree_functionally_on_every_preset_and_map() {
    // The fabric-differential axis: the same seeded stream on every
    // preset × address map, run to completion on the crossbar, the
    // ring, and the mesh. Responses (op, owner link, data) must match
    // bit-for-bit; hop latency makes cycle counts differ, so those are
    // only reported.
    let mut deltas = Vec::new();
    for (pi, (label, device)) in DeviceConfig::paper_configs().iter().enumerate() {
        for (mi, map) in MapKind::ALL.into_iter().enumerate() {
            let seed = 0xFAB0_0000 + (pi * 4 + mi) as u64;
            let ops = gen_stream(seed, 24, device);
            let mut case = FuzzCase::new(label, device.clone(), map, seed, ops);
            case.threads = vec![1, 4];
            let out = run_case_cross_interconnect(&case)
                .unwrap_or_else(|f| panic!("{label} / {}: {f}", map.name()));
            assert!(out.crossbar.checked > 0);
            assert_eq!(out.crossbar.checked, out.ring.checked);
            assert_eq!(out.crossbar.checked, out.mesh.checked);
            deltas.push((label.to_string(), map.name(), out.ring_delta, out.mesh_delta));
        }
    }
    assert_eq!(deltas.len(), 16, "all preset x map pairs ran");
    for (preset, map, ring, mesh) in &deltas {
        eprintln!("fabric deltas ({preset}, {map}): ring {ring:+}, mesh {mesh:+} cycles");
    }
}

#[test]
fn hammer_campaign_with_pinned_seed_is_clean() {
    // The RowHammer fault axis through the full harness at a pinned
    // seed — the CI hammer leg's guard. Every stream runs with fault
    // injection armed (TRR-mitigated), every second stream carries a
    // threshold-crossing adversarial burst, and the seeded fault
    // stream must be bit-identical across the thread × mode sweep.
    let cfg = CampaignConfig {
        streams: 8,
        stream_len: 24,
        base_seed: 0xC0FF_EE05,
        hammer: true,
        ..CampaignConfig::default()
    };
    let report = campaign(&cfg);
    if let Some((case, failure)) = &report.failure {
        panic!(
            "hammer stream on {} / {} (seed {:#x}) diverged: {failure}",
            case.label,
            case.map.name(),
            case.seed
        );
    }
    assert_eq!(report.streams_run, 8);
}

#[test]
fn hammer_demo_proves_end_to_end_detection() {
    // The fault-injection checker-of-the-checker: every injected flip
    // must surface through response data and be flagged by the oracle,
    // and the same adversarial stream must complete clean under TRR.
    let report = hammer_demo(0xC0FF_EE00, None).unwrap_or_else(|f| panic!("{f}"));
    assert!(report.bit_flips > 0, "the burst must actually flip bits");
    assert_eq!(report.detected_bits, report.bit_flips, "100% detection");
    assert!(report.corrupted_responses > 0);
    assert!(report.trr_refreshes > 0, "the mitigated leg must fire TRR");
}

#[test]
fn ring_campaign_with_pinned_seed_is_clean() {
    // The ring fabric through the full harness at a pinned seed — the
    // same guard the CI interconnect leg executes.
    let cfg = CampaignConfig {
        streams: 16,
        stream_len: 32,
        base_seed: 0xC0FF_EE03,
        interconnect: InterconnectKind::Ring,
        ..CampaignConfig::default()
    };
    let report = campaign(&cfg);
    if let Some((case, failure)) = &report.failure {
        panic!(
            "ring stream on {} / {} (seed {:#x}) diverged: {failure}",
            case.label,
            case.map.name(),
            case.seed
        );
    }
    assert_eq!(report.streams_run, 16);
}

#[test]
fn mesh_campaign_with_pinned_seed_is_clean() {
    // As above for the mesh, crossed with a non-default arbitration
    // policy so the oldest-first scan order sees campaign traffic too.
    let cfg = CampaignConfig {
        streams: 16,
        stream_len: 32,
        base_seed: 0xC0FF_EE04,
        interconnect: InterconnectKind::Mesh,
        arbitration: ArbitrationKind::OldestFirst,
        ..CampaignConfig::default()
    };
    let report = campaign(&cfg);
    if let Some((case, failure)) = &report.failure {
        panic!(
            "mesh stream on {} / {} (seed {:#x}) diverged: {failure}",
            case.label,
            case.map.name(),
            case.seed
        );
    }
    assert_eq!(report.streams_run, 16);
}
