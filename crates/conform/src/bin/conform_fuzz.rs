//! `conform-fuzz` — the deterministic conformance fuzz campaign.
//!
//! ```text
//! conform-fuzz [--streams N] [--len N] [--seed HEX] [--full-sweep]
//!              [--fast-forward] [--timing classic|ddr|both]
//!              [--interconnect crossbar|ring|mesh|all]
//!              [--arbitration round-robin|oldest-first|locality-aware]
//!              [--repro-dir DIR] [--demo-corruption]
//! ```
//!
//! Runs `N` seeded command streams differentially through the serial
//! engine, the sharded engine — each also in event-driven fast-forward
//! mode — and the functional oracle, rotating over the four paper
//! presets and four address maps. `--fast-forward` forces a seeded
//! idle gap (the fast-forward engine's jump fodder) onto every stream
//! instead of the default two-of-three rotation. `--timing` selects
//! the vault timing backend the streams run under — `both` runs the
//! whole campaign once per backend, so every stream is checked under
//! the classic constant-time model *and* the cycle-accurate DDR state
//! machine. `--interconnect` does the same for the intra-cube fabric
//! axis (`all` sweeps crossbar, ring, and mesh), and `--arbitration`
//! picks the hop-arbitration policy buffered fabrics use. Exits non-zero
//! on the first divergence, after shrinking it and writing a repro
//! trace. `--demo-corruption` instead *injects* a datapath fault into
//! one stream and exits zero only if the harness catches and shrinks
//! it — the checker checking itself.

use std::path::PathBuf;
use std::process::ExitCode;

use hmc_conform::{campaign, shrink_case, write_repro, CampaignConfig};
use hmc_conform::fuzz::campaign_with_corruption;
use hmc_conform::CorruptSpec;
use hmc_types::{ArbitrationKind, InterconnectKind, TimingKind};

fn usage() -> ! {
    eprintln!(
        "usage: conform-fuzz [--streams N] [--len N] [--seed HEX] [--full-sweep]\n\
         \x20                  [--fast-forward] [--timing classic|ddr|both]\n\
         \x20                  [--interconnect crossbar|ring|mesh|all]\n\
         \x20                  [--arbitration round-robin|oldest-first|locality-aware]\n\
         \x20                  [--repro-dir DIR] [--demo-corruption]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut cfg = CampaignConfig::default();
    let mut repro_dir = PathBuf::from(".");
    let mut demo_corruption = false;
    let mut timings: Vec<TimingKind> = vec![TimingKind::Classic];
    let mut fabrics: Vec<InterconnectKind> = vec![InterconnectKind::Crossbar];

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match arg.as_str() {
            "--streams" => cfg.streams = value("--streams").parse().unwrap_or_else(|_| usage()),
            "--len" => cfg.stream_len = value("--len").parse().unwrap_or_else(|_| usage()),
            "--seed" => {
                let v = value("--seed");
                let v = v.trim_start_matches("0x");
                cfg.base_seed = u64::from_str_radix(v, 16).unwrap_or_else(|_| usage());
            }
            "--full-sweep" => cfg.full_sweep = true,
            "--fast-forward" => cfg.fast_forward = true,
            "--timing" => {
                let v = value("--timing");
                timings = match v.as_str() {
                    "both" => TimingKind::ALL.to_vec(),
                    other => match TimingKind::by_name(other) {
                        Some(k) => vec![k],
                        None => {
                            eprintln!("--timing needs `classic`, `ddr`, or `both`");
                            usage()
                        }
                    },
                };
            }
            "--interconnect" => {
                let v = value("--interconnect");
                fabrics = match v.as_str() {
                    "all" => InterconnectKind::ALL.to_vec(),
                    other => match InterconnectKind::by_name(other) {
                        Some(k) => vec![k],
                        None => {
                            eprintln!("--interconnect needs `crossbar`, `ring`, `mesh`, or `all`");
                            usage()
                        }
                    },
                };
            }
            "--arbitration" => {
                let v = value("--arbitration");
                cfg.arbitration = match ArbitrationKind::by_name(&v) {
                    Some(a) => a,
                    None => {
                        eprintln!(
                            "--arbitration needs `round-robin`, `oldest-first`, \
                             or `locality-aware`"
                        );
                        usage()
                    }
                };
            }
            "--repro-dir" => repro_dir = PathBuf::from(value("--repro-dir")),
            "--demo-corruption" => demo_corruption = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }

    if demo_corruption {
        return run_corruption_demo(&cfg, &repro_dir);
    }

    let mut streams_clean = 0usize;
    let mut responses_checked = 0u64;
    for kind in &timings {
        for fabric in &fabrics {
            let cfg = CampaignConfig {
                timing: *kind,
                interconnect: *fabric,
                ..cfg.clone()
            };
            println!(
                "conform-fuzz: {} streams x {} ops, base seed {:#x}, {} thread sweep, \
                 {} timing, {} fabric ({} arbitration)",
                cfg.streams,
                cfg.stream_len,
                cfg.base_seed,
                if cfg.full_sweep { "full" } else { "rotating" },
                kind.name(),
                fabric.name(),
                cfg.arbitration.name(),
            );
            let report = campaign(&cfg);
            match report.failure {
                None => {
                    streams_clean += report.streams_run;
                    responses_checked += report.responses_checked;
                }
                Some((case, failure)) => {
                    eprintln!(
                        "FAIL on stream {} ({}, {} map, seed {:#x}, {} timing, \
                         {} fabric): {failure}",
                        report.streams_run - 1,
                        case.label,
                        case.map.name(),
                        case.seed,
                        case.timing.name(),
                        case.interconnect.name(),
                    );
                    eprintln!("shrinking…");
                    let shrunk = shrink_case(&case);
                    let path = repro_dir.join("conform-repro.csv");
                    match write_repro(&shrunk.minimal, &shrunk.failure, &path) {
                        Ok(()) => eprintln!(
                            "minimal repro: {} of {} ops ({} runs) -> {}",
                            shrunk.minimal.ops.len(),
                            shrunk.original_len,
                            shrunk.runs,
                            path.display()
                        ),
                        Err(e) => eprintln!("could not write repro file: {e}"),
                    }
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "PASS: {streams_clean} streams clean across {} backend(s) x {} fabric(s), \
         {responses_checked} responses oracle-checked",
        timings.len(),
        fabrics.len()
    );
    ExitCode::SUCCESS
}

/// Self-test mode: inject a known datapath corruption and demand the
/// harness catch it, shrink it, and write a loadable repro.
fn run_corruption_demo(cfg: &CampaignConfig, repro_dir: &std::path::Path) -> ExitCode {
    let demo = CampaignConfig {
        streams: cfg.streams.clamp(1, 4),
        ..cfg.clone()
    };
    let spec = CorruptSpec { addr: 0, xor: 0xbad0_bad0_bad0_bad0 };
    let report = campaign_with_corruption(&demo, Some((0, spec)));
    let Some((case, failure)) = report.failure else {
        eprintln!("FAIL: seeded corruption was NOT detected");
        return ExitCode::FAILURE;
    };
    println!("seeded corruption detected: {failure}");
    let shrunk = shrink_case(&case);
    let path = repro_dir.join("conform-demo-repro.csv");
    if let Err(e) = write_repro(&shrunk.minimal, &shrunk.failure, &path) {
        eprintln!("could not write repro file: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "PASS: shrunk {} -> {} ops in {} runs, repro at {}",
        shrunk.original_len,
        shrunk.minimal.ops.len(),
        shrunk.runs,
        path.display()
    );
    ExitCode::SUCCESS
}
