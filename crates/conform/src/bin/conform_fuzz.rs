//! `conform-fuzz` — the deterministic conformance fuzz campaign.
//!
//! ```text
//! conform-fuzz [--streams N] [--len N] [--seed HEX] [--full-sweep]
//!              [--fast-forward] [--timing classic|ddr|both]
//!              [--interconnect crossbar|ring|mesh|all]
//!              [--arbitration round-robin|oldest-first|locality-aware]
//!              [--repro-dir DIR] [--demo-corruption]
//!              [--hammer] [--demo-hammer] [--hammer-threshold N]
//!              [--flip-prob PPM] [--retention CYCLES]
//!              [--mitigation none|trr|elevated]
//!              [--link-errors] [--link-error-rate PPM]
//!              [--link-retry-limit N] [--link-retry-cycles N]
//!              [--retrain-cycles N] [--link-fault-seed HEX]
//! ```
//!
//! Runs `N` seeded command streams differentially through the serial
//! engine, the sharded engine — each also in event-driven fast-forward
//! mode — and the functional oracle, rotating over the four paper
//! presets and four address maps. `--fast-forward` forces a seeded
//! idle gap (the fast-forward engine's jump fodder) onto every stream
//! instead of the default two-of-three rotation. `--timing` selects
//! the vault timing backend the streams run under — `both` runs the
//! whole campaign once per backend, so every stream is checked under
//! the classic constant-time model *and* the cycle-accurate DDR state
//! machine. `--interconnect` does the same for the intra-cube fabric
//! axis (`all` sweeps crossbar, ring, and mesh), and `--arbitration`
//! picks the hop-arbitration policy buffered fabrics use. Exits non-zero
//! on the first divergence, after shrinking it and writing a repro
//! trace. `--demo-corruption` instead *injects* a datapath fault into
//! one stream and exits zero only if the harness catches and shrinks
//! it — the checker checking itself. `--hammer` arms the RowHammer
//! fault axis on every stream (TRR-mitigated by default, so streams
//! stay oracle-clean) and appends a threshold-crossing adversarial
//! burst to every second stream: the seeded fault stream — counters,
//! crossings, targeted refreshes, bank parks — must then be
//! bit-identical across the whole thread × engine-mode sweep.
//! `--demo-hammer` runs the fault-injection detection demo instead:
//! an unmitigated burst whose every flipped bit the oracle must flag
//! end to end, then the same stream completing clean under TRR. The
//! shared cell-fault flags (`--hammer-threshold`, `--flip-prob`,
//! `--retention`, `--mitigation`) parameterize both. `--link-errors`
//! arms the link-retry axis on every stream: packets are corrupted in
//! SERDES transit, recovered by in-order retransmission, or — past the
//! retry cap — aborted with poisoned responses while the link
//! retrains, and the oracle predicts the exact poisoned tag set at
//! issue time from the stateless fault stream. The shared link-fault
//! flags (`--link-error-rate`, `--link-retry-limit`,
//! `--link-retry-cycles`, `--retrain-cycles`, `--link-fault-seed`)
//! parameterize the axis.

use std::path::PathBuf;
use std::process::ExitCode;

use hmc_conform::{campaign, hammer_demo, shrink_case, write_repro, CampaignConfig};
use hmc_conform::fuzz::campaign_with_corruption;
use hmc_conform::CorruptSpec;
use hmc_types::{ArbitrationKind, CellFaultConfig, InterconnectKind, LinkFaultConfig, TimingKind};

fn usage() -> ! {
    eprintln!(
        "usage: conform-fuzz [--streams N] [--len N] [--seed HEX] [--full-sweep]\n\
         \x20                  [--fast-forward] [--timing classic|ddr|both]\n\
         \x20                  [--interconnect crossbar|ring|mesh|all]\n\
         \x20                  [--arbitration round-robin|oldest-first|locality-aware]\n\
         \x20                  [--repro-dir DIR] [--demo-corruption]\n\
         \x20                  [--hammer] [--demo-hammer] [--hammer-threshold N]\n\
         \x20                  [--flip-prob PPM] [--retention CYCLES]\n\
         \x20                  [--mitigation none|trr|elevated]\n\
         \x20                  [--link-errors] [--link-error-rate PPM]\n\
         \x20                  [--link-retry-limit N] [--link-retry-cycles N]\n\
         \x20                  [--retrain-cycles N] [--link-fault-seed HEX]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut cfg = CampaignConfig::default();
    let mut repro_dir = PathBuf::from(".");
    let mut demo_corruption = false;
    let mut demo_hammer = false;
    let mut timings: Vec<TimingKind> = vec![TimingKind::Classic];
    let mut fabrics: Vec<InterconnectKind> = vec![InterconnectKind::Crossbar];

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match arg.as_str() {
            "--streams" => cfg.streams = value("--streams").parse().unwrap_or_else(|_| usage()),
            "--len" => cfg.stream_len = value("--len").parse().unwrap_or_else(|_| usage()),
            "--seed" => {
                let v = value("--seed");
                let v = v.trim_start_matches("0x");
                cfg.base_seed = u64::from_str_radix(v, 16).unwrap_or_else(|_| usage());
            }
            "--full-sweep" => cfg.full_sweep = true,
            "--fast-forward" => cfg.fast_forward = true,
            "--timing" => {
                let v = value("--timing");
                timings = match v.as_str() {
                    "both" => TimingKind::ALL.to_vec(),
                    other => match TimingKind::by_name(other) {
                        Some(k) => vec![k],
                        None => {
                            eprintln!("--timing needs `classic`, `ddr`, or `both`");
                            usage()
                        }
                    },
                };
            }
            "--interconnect" => {
                let v = value("--interconnect");
                fabrics = match v.as_str() {
                    "all" => InterconnectKind::ALL.to_vec(),
                    other => match InterconnectKind::by_name(other) {
                        Some(k) => vec![k],
                        None => {
                            eprintln!("--interconnect needs `crossbar`, `ring`, `mesh`, or `all`");
                            usage()
                        }
                    },
                };
            }
            "--arbitration" => {
                let v = value("--arbitration");
                cfg.arbitration = match ArbitrationKind::by_name(&v) {
                    Some(a) => a,
                    None => {
                        eprintln!(
                            "--arbitration needs `round-robin`, `oldest-first`, \
                             or `locality-aware`"
                        );
                        usage()
                    }
                };
            }
            "--repro-dir" => repro_dir = PathBuf::from(value("--repro-dir")),
            "--demo-corruption" => demo_corruption = true,
            "--hammer" => cfg.hammer = true,
            "--demo-hammer" => demo_hammer = true,
            "--link-errors" => cfg.link_errors = true,
            "--help" | "-h" => usage(),
            other => {
                let v = args.next();
                match CellFaultConfig::apply_flag(&mut cfg.cell_faults, other, v.as_deref())
                    .and_then(|hit| {
                        if hit {
                            Ok(true)
                        } else {
                            LinkFaultConfig::apply_flag(&mut cfg.link_faults, other, v.as_deref())
                        }
                    }) {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("unknown argument {other:?}");
                        usage()
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        usage()
                    }
                }
            }
        }
    }

    // Any link-fault parameter implies the axis itself.
    if cfg.link_faults.is_some() {
        cfg.link_errors = true;
    }

    if demo_corruption {
        return run_corruption_demo(&cfg, &repro_dir);
    }
    if demo_hammer {
        return run_hammer_demo(&cfg);
    }

    let mut streams_clean = 0usize;
    let mut responses_checked = 0u64;
    for kind in &timings {
        for fabric in &fabrics {
            let cfg = CampaignConfig {
                timing: *kind,
                interconnect: *fabric,
                ..cfg.clone()
            };
            println!(
                "conform-fuzz: {} streams x {} ops, base seed {:#x}, {} thread sweep, \
                 {} timing, {} fabric ({} arbitration){}",
                cfg.streams,
                cfg.stream_len,
                cfg.base_seed,
                if cfg.full_sweep { "full" } else { "rotating" },
                kind.name(),
                fabric.name(),
                cfg.arbitration.name(),
                if cfg.hammer { ", hammer axis armed" } else { "" },
            );
            if cfg.link_errors {
                let lf = cfg.link_faults.unwrap_or_else(hmc_conform::default_link_faults);
                println!(
                    "link-retry axis armed: error rate {} ppm, retry limit {}, \
                     retry {} cycles, retrain {} cycles",
                    lf.error_rate_ppm, lf.retry_limit, lf.retry_cycles, lf.retrain_cycles
                );
            }
            let report = campaign(&cfg);
            match report.failure {
                None => {
                    streams_clean += report.streams_run;
                    responses_checked += report.responses_checked;
                }
                Some((case, failure)) => {
                    eprintln!(
                        "FAIL on stream {} ({}, {} map, seed {:#x}, {} timing, \
                         {} fabric): {failure}",
                        report.streams_run - 1,
                        case.label,
                        case.map.name(),
                        case.seed,
                        case.timing.name(),
                        case.interconnect.name(),
                    );
                    eprintln!("shrinking…");
                    let shrunk = shrink_case(&case);
                    let path = repro_dir.join("conform-repro.csv");
                    match write_repro(&shrunk.minimal, &shrunk.failure, &path) {
                        Ok(()) => eprintln!(
                            "minimal repro: {} of {} ops ({} runs) -> {}",
                            shrunk.minimal.ops.len(),
                            shrunk.original_len,
                            shrunk.runs,
                            path.display()
                        ),
                        Err(e) => eprintln!("could not write repro file: {e}"),
                    }
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "PASS: {streams_clean} streams clean across {} backend(s) x {} fabric(s), \
         {responses_checked} responses oracle-checked",
        timings.len(),
        fabrics.len()
    );
    ExitCode::SUCCESS
}

/// Fault-injection self-test: an unmitigated adversarial hammer burst
/// whose every flipped bit the oracle must flag end to end (tallied
/// bits equal the engine's `bit_flips` counter exactly, bit-identical
/// across the full thread × engine-mode sweep), then the same stream
/// completing clean under TRR.
fn run_hammer_demo(cfg: &CampaignConfig) -> ExitCode {
    match hammer_demo(cfg.base_seed, cfg.cell_faults) {
        Ok(report) => {
            println!(
                "hammer detection: {} injected bit flips, {} flagged by the oracle \
                 across {} corrupted responses (100% detection)",
                report.bit_flips, report.detected_bits, report.corrupted_responses
            );
            println!(
                "PASS: TRR re-run clean — 0 flips, {} targeted refreshes, {:+} cycles \
                 of mitigation cost",
                report.trr_refreshes, report.trr_cycle_cost
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("FAIL: {failure}");
            ExitCode::FAILURE
        }
    }
}

/// Self-test mode: inject a known datapath corruption and demand the
/// harness catch it, shrink it, and write a loadable repro.
fn run_corruption_demo(cfg: &CampaignConfig, repro_dir: &std::path::Path) -> ExitCode {
    let demo = CampaignConfig {
        streams: cfg.streams.clamp(1, 4),
        ..cfg.clone()
    };
    let spec = CorruptSpec { addr: 0, xor: 0xbad0_bad0_bad0_bad0 };
    let report = campaign_with_corruption(&demo, Some((0, spec)));
    let Some((case, failure)) = report.failure else {
        eprintln!("FAIL: seeded corruption was NOT detected");
        return ExitCode::FAILURE;
    };
    println!("seeded corruption detected: {failure}");
    let shrunk = shrink_case(&case);
    let path = repro_dir.join("conform-demo-repro.csv");
    if let Err(e) = write_repro(&shrunk.minimal, &shrunk.failure, &path) {
        eprintln!("could not write repro file: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "PASS: shrunk {} -> {} ops in {} runs, repro at {}",
        shrunk.original_len,
        shrunk.minimal.ops.len(),
        shrunk.runs,
        path.display()
    );
    ExitCode::SUCCESS
}
