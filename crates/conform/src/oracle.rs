//! The golden functional oracle.
//!
//! A deliberately simple model of what the HMC command set does to
//! memory (§II semantics, as implemented by `hmc-mem`): byte-accurate
//! shadow storage plus a table of the responses the device still owes.
//! It knows nothing about timing — under the fuzzer's block-ownership
//! discipline (see the crate docs) program order equals memory order,
//! so applying each operation at issue time yields the exact bytes
//! every read response must carry.

use std::collections::HashMap;

use hmc_core::ResponseInfo;
use hmc_types::{Command, ResponseStatus};
use hmc_workloads::{MemOp, OpKind};

/// Shadow-memory granule size in bytes (covers the 16-byte atomics).
const GRANULE: usize = 16;

/// What the device owes for one in-flight tag.
#[derive(Debug, Clone)]
struct Expected {
    /// Index of the operation in the fuzz stream (for diagnostics).
    op_index: usize,
    /// The response command class the device must produce.
    cmd: Command,
    /// Exact payload bytes of the response (empty for write responses).
    data: Vec<u8>,
    /// The link-retry protocol will exhaust on this packet: the device
    /// owes a poisoned `ErrorResponse` (LinkPoisoned ERRSTAT, DINV set,
    /// no data) instead of the functional response, and the operation
    /// never reaches memory.
    poisoned: bool,
}

/// The functional oracle: sparse byte-accurate shadow memory plus the
/// response ledger.
///
/// Drive it in lock-step with the engine: [`Oracle::issue`] when a
/// request is accepted, [`Oracle::check_response`] for every response
/// drained. At quiesce, [`Oracle::outstanding`] must be zero.
#[derive(Debug, Default)]
pub struct Oracle {
    mem: HashMap<u64, [u8; GRANULE]>,
    in_flight: HashMap<u16, Expected>,
    /// Operations applied (posted included).
    pub applied: u64,
    /// Responses checked good.
    pub checked: u64,
}

impl Oracle {
    /// A fresh oracle over all-zero memory.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Tags with a response still owed.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr + i as u64;
            *b = self
                .mem
                .get(&(a / GRANULE as u64))
                .map_or(0, |g| g[(a % GRANULE as u64) as usize]);
        }
    }

    fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            let a = addr + i as u64;
            self.mem.entry(a / GRANULE as u64).or_insert([0; GRANULE])
                [(a % GRANULE as u64) as usize] = b;
        }
    }

    fn read_u64(&self, addr: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Apply one accepted operation: update shadow memory and, for
    /// non-posted operations, record the response the device now owes
    /// under `tag`.
    ///
    /// `payload` is the request payload exactly as handed to the
    /// engine (write data; two u64 operands for atomics; data+mask for
    /// BWR; empty for reads).
    pub fn issue(&mut self, op_index: usize, op: &MemOp, tag: Option<u16>, payload: &[u8]) {
        let expected = match op.kind {
            OpKind::Read => {
                let mut data = vec![0u8; op.size.bytes()];
                self.read_bytes(op.addr, &mut data);
                Some((Command::RdResponse, data))
            }
            OpKind::Write => {
                self.write_bytes(op.addr, payload);
                Some((Command::WrResponse, Vec::new()))
            }
            OpKind::PostedWrite => {
                self.write_bytes(op.addr, payload);
                None
            }
            OpKind::TwoAdd8 => {
                let (op0, op1) = two_words(payload);
                let old0 = self.read_u64(op.addr);
                let old1 = self.read_u64(op.addr + 8);
                self.write_u64(op.addr, old0.wrapping_add(op0));
                self.write_u64(op.addr + 8, old1.wrapping_add(op1));
                Some((Command::WrResponse, Vec::new()))
            }
            OpKind::Add16 => {
                let (lo, hi) = two_words(payload);
                let operand = (lo as u128) | ((hi as u128) << 64);
                let mut buf = [0u8; 16];
                self.read_bytes(op.addr, &mut buf);
                let old = u128::from_le_bytes(buf);
                self.write_bytes(op.addr, &old.wrapping_add(operand).to_le_bytes());
                Some((Command::WrResponse, Vec::new()))
            }
            OpKind::BitWrite => {
                let (data, mask) = two_words(payload);
                let old = self.read_u64(op.addr);
                self.write_u64(op.addr, (old & !mask) | (data & mask));
                Some((Command::WrResponse, Vec::new()))
            }
        };
        self.applied += 1;
        if let Some((cmd, data)) = expected {
            let tag = tag.expect("non-posted operations carry a tag");
            let prev = self
                .in_flight
                .insert(tag, Expected { op_index, cmd, data, poisoned: false });
            assert!(prev.is_none(), "oracle: tag {tag} reissued while in flight");
        }
    }

    /// Record an accepted operation the link-retry protocol is known
    /// (by [`hmc_core::fault::predicts_poison`]) to abandon: the packet
    /// dies at the crossbar, so shadow memory is *not* updated, and for
    /// non-posted operations the device owes exactly one poisoned
    /// `ErrorResponse` under `tag`. Poisoned posted writes vanish
    /// entirely — no memory effect, no response.
    pub fn issue_poisoned(&mut self, op_index: usize, op: &MemOp, tag: Option<u16>) {
        self.applied += 1;
        if !op.expects_response() {
            return;
        }
        let tag = tag.expect("non-posted operations carry a tag");
        let prev = self.in_flight.insert(
            tag,
            Expected {
                op_index,
                cmd: Command::ErrorResponse,
                data: Vec::new(),
                poisoned: true,
            },
        );
        assert!(prev.is_none(), "oracle: tag {tag} reissued while in flight");
    }

    /// Check one drained response against the ledger. `Err` carries a
    /// human-readable divergence description.
    pub fn check_response(&mut self, rsp: &ResponseInfo) -> Result<usize, String> {
        self.check(rsp, false).map(|(idx, _)| idx)
    }

    /// Like [`Oracle::check_response`], but read-data mismatches are
    /// *tolerated* and tallied instead of failing: returns `(op index,
    /// mismatched bit count)`. Used by the cell-fault detection runs,
    /// where injected bit flips make corrupted read data the expected
    /// observation — every other divergence class still errors.
    pub fn check_response_lenient(&mut self, rsp: &ResponseInfo) -> Result<(usize, u64), String> {
        self.check(rsp, true)
    }

    fn check(&mut self, rsp: &ResponseInfo, lenient: bool) -> Result<(usize, u64), String> {
        let exp = self.in_flight.remove(&rsp.tag).ok_or_else(|| {
            format!("response for tag {} which has no request in flight", rsp.tag)
        })?;
        let at = format!("op #{} (tag {})", exp.op_index, rsp.tag);
        if exp.poisoned {
            // The fault stream predicted retry exhaustion at issue time:
            // the only acceptable outcome is the poisoned error frame.
            if rsp.status != ResponseStatus::LinkPoisoned {
                return Err(format!(
                    "{at}: predicted poison came back with status {:?}",
                    rsp.status
                ));
            }
            if rsp.cmd != exp.cmd {
                return Err(format!(
                    "{at}: poisoned response class {} where the oracle expects {}",
                    rsp.cmd.mnemonic(),
                    exp.cmd.mnemonic()
                ));
            }
            if !rsp.data_invalid {
                return Err(format!("{at}: poisoned response without DINV"));
            }
            if !rsp.data.is_empty() {
                return Err(format!(
                    "{at}: poisoned response carries {} data bytes",
                    rsp.data.len()
                ));
            }
            self.checked += 1;
            return Ok((exp.op_index, 0));
        }
        if rsp.status != ResponseStatus::Ok {
            return Err(format!("{at}: error status {:?}", rsp.status));
        }
        if rsp.cmd != exp.cmd {
            return Err(format!(
                "{at}: response class {} where the oracle expects {}",
                rsp.cmd.mnemonic(),
                exp.cmd.mnemonic()
            ));
        }
        if rsp.data_invalid {
            return Err(format!("{at}: DINV set on a successful response"));
        }
        if rsp.data != exp.data {
            if !lenient || rsp.data.len() != exp.data.len() {
                return Err(format!(
                    "{at}: read data mismatch — engine {:02x?}.. oracle {:02x?}.. ({} bytes)",
                    &rsp.data[..rsp.data.len().min(8)],
                    &exp.data[..exp.data.len().min(8)],
                    exp.data.len()
                ));
            }
            let bits: u64 = rsp
                .data
                .iter()
                .zip(&exp.data)
                .map(|(a, b)| (a ^ b).count_ones() as u64)
                .sum();
            self.checked += 1;
            return Ok((exp.op_index, bits));
        }
        self.checked += 1;
        Ok((exp.op_index, 0))
    }
}

/// Split a 16-byte atomic payload into its two little-endian u64 words
/// — the exact decoding `Packet::data_words` performs device-side.
fn two_words(payload: &[u8]) -> (u64, u64) {
    let w = |i: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&payload[i..i + 8]);
        u64::from_le_bytes(b)
    };
    (w(0), w(8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::BlockSize;

    fn rd(addr: u64, size: BlockSize) -> MemOp {
        MemOp::read(addr, size)
    }

    fn rsp(cmd: Command, tag: u16, data: Vec<u8>) -> ResponseInfo {
        ResponseInfo {
            cmd,
            tag,
            status: ResponseStatus::Ok,
            data_invalid: false,
            data,
            slid: 0,
        }
    }

    #[test]
    fn fresh_memory_reads_zero() {
        let mut o = Oracle::new();
        o.issue(0, &rd(0x400, BlockSize::B32), Some(7), &[]);
        o.check_response(&rsp(Command::RdResponse, 7, vec![0; 32])).unwrap();
        assert_eq!(o.checked, 1);
        assert_eq!(o.outstanding(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut o = Oracle::new();
        let data: Vec<u8> = (0..64).collect();
        o.issue(0, &MemOp::write(0x1000, BlockSize::B64), Some(1), &data);
        o.check_response(&rsp(Command::WrResponse, 1, vec![])).unwrap();
        o.issue(1, &rd(0x1000, BlockSize::B64), Some(2), &[]);
        o.check_response(&rsp(Command::RdResponse, 2, data)).unwrap();
    }

    #[test]
    fn two_add8_matches_bank_semantics() {
        let mut o = Oracle::new();
        let mut payload = [0u8; 16];
        payload[..8].copy_from_slice(&3u64.to_le_bytes());
        payload[8..].copy_from_slice(&u64::MAX.to_le_bytes());
        let op = MemOp { kind: OpKind::TwoAdd8, addr: 0x40, size: BlockSize::B16 };
        o.issue(0, &op, Some(1), &payload);
        o.issue(1, &op, Some(2), &payload);
        // 3 + 3 at 0x40; MAX + MAX wraps to ..FE at 0x48.
        let mut expect = vec![0u8; 16];
        expect[..8].copy_from_slice(&6u64.to_le_bytes());
        expect[8..].copy_from_slice(&u64::MAX.wrapping_add(u64::MAX).to_le_bytes());
        o.issue(2, &rd(0x40, BlockSize::B16), Some(3), &[]);
        o.check_response(&rsp(Command::RdResponse, 3, expect)).unwrap();
    }

    #[test]
    fn add16_carries_across_the_low_word() {
        let mut o = Oracle::new();
        let mut payload = [0u8; 16];
        payload[..8].copy_from_slice(&u64::MAX.to_le_bytes()); // lo
        payload[8..].copy_from_slice(&0u64.to_le_bytes()); // hi
        let op = MemOp { kind: OpKind::Add16, addr: 0x80, size: BlockSize::B16 };
        o.issue(0, &op, Some(1), &payload);
        o.issue(1, &op, Some(2), &payload);
        let sum = (u64::MAX as u128).wrapping_mul(2);
        o.issue(2, &rd(0x80, BlockSize::B16), Some(3), &[]);
        o.check_response(&rsp(Command::RdResponse, 3, sum.to_le_bytes().to_vec()))
            .unwrap();
    }

    #[test]
    fn bit_write_respects_the_mask()  {
        let mut o = Oracle::new();
        o.issue(0, &MemOp::write(0, BlockSize::B16), Some(1), &[0xff; 16]);
        let mut payload = [0u8; 16];
        payload[..8].copy_from_slice(&0u64.to_le_bytes()); // data
        payload[8..].copy_from_slice(&0x00ff_00ff_00ff_00ffu64.to_le_bytes()); // mask
        let op = MemOp { kind: OpKind::BitWrite, addr: 0, size: BlockSize::B16 };
        o.issue(1, &op, Some(2), &payload);
        let mut expect = vec![0xffu8; 16];
        for i in [0usize, 2, 4, 6] {
            expect[i] = 0; // mask-set bytes cleared by the zero data
        }
        o.issue(2, &rd(0, BlockSize::B16), Some(3), &[]);
        o.check_response(&rsp(Command::RdResponse, 3, expect)).unwrap();
    }

    #[test]
    fn posted_writes_apply_without_a_ledger_entry() {
        let mut o = Oracle::new();
        let op = MemOp { kind: OpKind::PostedWrite, addr: 0x200, size: BlockSize::B16 };
        o.issue(0, &op, None, &[0xaa; 16]);
        assert_eq!(o.outstanding(), 0);
        o.issue(1, &rd(0x200, BlockSize::B16), Some(1), &[]);
        o.check_response(&rsp(Command::RdResponse, 1, vec![0xaa; 16])).unwrap();
    }

    #[test]
    fn lenient_checks_tally_flipped_bits_but_still_catch_protocol_errors() {
        let mut o = Oracle::new();
        o.issue(0, &rd(0, BlockSize::B16), Some(4), &[]);
        // Three bits flipped across two bytes: tolerated, tallied.
        let mut data = vec![0u8; 16];
        data[0] = 0b101;
        data[9] = 0b1000;
        let (idx, bits) = o.check_response_lenient(&rsp(Command::RdResponse, 4, data)).unwrap();
        assert_eq!((idx, bits), (0, 3));
        assert_eq!(o.checked, 1);
        // Clean data tallies zero.
        o.issue(1, &rd(0, BlockSize::B16), Some(5), &[]);
        let (_, bits) = o.check_response_lenient(&rsp(Command::RdResponse, 5, vec![0; 16])).unwrap();
        assert_eq!(bits, 0);
        // A wrong response class is NOT tolerated.
        o.issue(2, &rd(0, BlockSize::B16), Some(6), &[]);
        assert!(o.check_response_lenient(&rsp(Command::WrResponse, 6, vec![])).is_err());
        // Nor is a length mismatch.
        o.issue(3, &rd(0, BlockSize::B16), Some(7), &[]);
        let err = o.check_response_lenient(&rsp(Command::RdResponse, 7, vec![0; 8])).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    fn poison(tag: u16) -> ResponseInfo {
        ResponseInfo {
            cmd: Command::ErrorResponse,
            tag,
            status: ResponseStatus::LinkPoisoned,
            data_invalid: true,
            data: vec![],
            slid: 0,
        }
    }

    #[test]
    fn predicted_poisons_demand_the_poisoned_error_frame() {
        let mut o = Oracle::new();
        // The poisoned write dies at the crossbar: memory is untouched.
        o.issue_poisoned(0, &MemOp::write(0x100, BlockSize::B16), Some(1));
        o.check_response(&poison(1)).unwrap();
        o.issue(1, &rd(0x100, BlockSize::B16), Some(2), &[]);
        o.check_response(&rsp(Command::RdResponse, 2, vec![0; 16])).unwrap();
        assert_eq!(o.outstanding(), 0);
    }

    #[test]
    fn poison_mispredictions_fail_both_ways() {
        let mut o = Oracle::new();
        // Predicted poison delivered clean: conformance failure.
        o.issue_poisoned(0, &rd(0, BlockSize::B16), Some(3));
        let err = o
            .check_response(&rsp(Command::RdResponse, 3, vec![0; 16]))
            .unwrap_err();
        assert!(err.contains("predicted poison"), "{err}");
        // Unpredicted poison delivered: also a failure.
        o.issue(1, &rd(0, BlockSize::B16), Some(4), &[]);
        let err = o.check_response(&poison(4)).unwrap_err();
        assert!(err.contains("error status"), "{err}");
        // Poison without DINV: failure.
        o.issue_poisoned(2, &rd(0, BlockSize::B16), Some(5));
        let mut p = poison(5);
        p.data_invalid = false;
        let err = o.check_response(&p).unwrap_err();
        assert!(err.contains("DINV"), "{err}");
    }

    #[test]
    fn poisoned_posted_writes_vanish_entirely() {
        let mut o = Oracle::new();
        let op = MemOp { kind: OpKind::PostedWrite, addr: 0x200, size: BlockSize::B16 };
        o.issue_poisoned(0, &op, None);
        assert_eq!(o.outstanding(), 0, "no response owed");
        o.issue(1, &rd(0x200, BlockSize::B16), Some(1), &[]);
        o.check_response(&rsp(Command::RdResponse, 1, vec![0; 16])).unwrap();
    }

    #[test]
    fn divergences_are_reported() {
        let mut o = Oracle::new();
        o.issue(0, &rd(0, BlockSize::B16), Some(4), &[]);
        let err = o
            .check_response(&rsp(Command::RdResponse, 4, vec![1; 16]))
            .unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
        // Orphan response: nothing in flight any more.
        let err = o.check_response(&rsp(Command::WrResponse, 4, vec![])).unwrap_err();
        assert!(err.contains("no request in flight"), "{err}");
    }
}
