//! The differential conformance harness.
//!
//! Runs one fuzz case — a seeded operation stream against one device
//! preset and one address map — through the serial engine and the
//! sharded parallel engine at each requested thread count, each
//! optionally crossed with the engine's event-driven fast-forward mode
//! (the stepped-vs-fast-forward axis), with the protocol invariant
//! checker armed and the functional [`Oracle`] checking every response.
//! Cases may also batch-clock seeded idle gaps mid-stream, which is
//! where fast-forward actually jumps. A case passes only when every
//! engine run is internally clean (oracle agreement, zero invariant
//! violations, full quiesce with link tokens back at their initial
//! allotment) and all runs produce bit-identical observation streams.

use hmc_core::fault::{predicts_poison, FaultConfig};
use hmc_core::{decode_response, topology, HmcSim, NocParams, TimingParams};
use hmc_host::{Pending, TagPool};
use hmc_types::{
    ArbitrationKind, CellFaultConfig, Cycle, DeviceConfig, HmcError, InterconnectKind, LinkFaultConfig,
    LinkId, Packet, TimingKind,
};
use hmc_workloads::{MemOp, OpKind};

use crate::fuzz::{Lcg, MapKind};
use crate::oracle::Oracle;

/// Thread counts every case runs at (1 = the serial engine).
pub const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// Tag value reserved for posted (no-response) requests.
const POSTED_TAG: u16 = 0x1ff;

/// The link that owns a physical address under the fuzzer's
/// block-ownership discipline: block index modulo the link count.
/// Confining each block to one link makes per-block completion order
/// total (§III.C stream ordering), which is what lets the oracle be
/// exact. See the crate docs.
pub fn owner_link(addr: u64, block_bytes: u64, num_links: u8) -> LinkId {
    ((addr / block_bytes) % num_links as u64) as LinkId
}

/// A deliberate payload corruption, keyed by address so it survives
/// shrinking: every write-class operation targeting `addr` has its
/// first payload word XORed with `xor` *after* the oracle has seen the
/// clean data. The packet is then sealed normally (valid CRC), so the
/// corruption models a silent datapath fault the oracle must catch on
/// the next read of that block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptSpec {
    /// Target address whose writes are corrupted.
    pub addr: u64,
    /// XOR pattern applied to the first 8 payload bytes.
    pub xor: u64,
}

/// One self-contained fuzz case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Human-readable preset label (diagnostics only).
    pub label: String,
    /// Device preset under test.
    pub config: DeviceConfig,
    /// Address map under test.
    pub map: MapKind,
    /// Stream seed — payloads derive from it deterministically.
    pub seed: u64,
    /// The operation stream.
    pub ops: Vec<MemOp>,
    /// Optional seeded corruption (conformance-of-the-checker tests).
    pub corrupt: Option<CorruptSpec>,
    /// Thread counts to sweep (defaults to [`THREAD_SWEEP`]).
    pub threads: Vec<usize>,
    /// Also run every swept engine in fast-forward mode and demand
    /// bit-identical observations (the stepped-vs-fast-forward axis).
    pub fast_forward: bool,
    /// Batch-clock an idle gap every this many injection rounds
    /// (0 = no gaps). Gaps are part of the case, so every engine run
    /// executes the identical gap schedule; they exist to push the
    /// fast-forward engine through real jumps mid-stream.
    pub gap_every: u64,
    /// Length of each injected idle gap in cycles.
    pub gap_cycles: u64,
    /// Vault timing backend every engine run uses. One case runs one
    /// backend — cycle counts are only comparable within a backend —
    /// so the cross-backend axis is a second `run_case` with the other
    /// kind (see [`run_case_cross_timing`]).
    pub timing: TimingKind,
    /// Intra-cube interconnect fabric every engine run uses. Like the
    /// timing axis, one case runs one fabric (cycle counts are only
    /// comparable within a fabric); the cross-fabric axis is
    /// [`run_case_cross_interconnect`].
    pub interconnect: InterconnectKind,
    /// Arbitration policy for buffered fabrics (ignored by the
    /// crossbar, which has no contended hop buffers).
    pub arbitration: ArbitrationKind,
    /// Cell-fault injection armed for every engine run (`None` = off,
    /// the default — pinned-seed campaigns from before the fault axis
    /// existed keep their exact behaviour). Flip decisions are
    /// stateless hashes, so the fault stream is part of the case and
    /// every engine run must reproduce it bit-identically.
    pub cell_faults: Option<CellFaultConfig>,
    /// Link-error injection armed for every engine run (`None` = off,
    /// the default). Corruption fates are stateless hashes of the
    /// per-link send sequence, so the harness mirrors each link's send
    /// counter and calls [`hmc_core::fault::predicts_poison`] at issue
    /// time: the oracle knows the exact poisoned tag set before the
    /// engine does, and every engine run must deliver it bit-for-bit.
    pub link_faults: Option<LinkFaultConfig>,
    /// Drain barrier: before issuing the op at this index, injection
    /// pauses until every outstanding response has returned. Hammer
    /// cases place it between the hammer burst and the victim
    /// read-back, so read-back is globally ordered after every flip.
    pub barrier: Option<usize>,
}

impl FuzzCase {
    /// A case over `ops` with the full thread sweep, the fast-forward
    /// axis armed, no gaps and no corruption.
    pub fn new(label: &str, config: DeviceConfig, map: MapKind, seed: u64, ops: Vec<MemOp>) -> Self {
        FuzzCase {
            label: label.to_string(),
            config,
            map,
            seed,
            ops,
            corrupt: None,
            threads: THREAD_SWEEP.to_vec(),
            fast_forward: true,
            gap_every: 0,
            gap_cycles: 0,
            timing: TimingKind::Classic,
            interconnect: InterconnectKind::Crossbar,
            arbitration: ArbitrationKind::RoundRobin,
            cell_faults: None,
            link_faults: None,
            barrier: None,
        }
    }

    /// The same case under another timing backend (builder style).
    pub fn with_timing(mut self, timing: TimingKind) -> Self {
        self.timing = timing;
        self
    }

    /// The same case on another interconnect fabric (builder style).
    pub fn with_interconnect(mut self, kind: InterconnectKind) -> Self {
        self.interconnect = kind;
        self
    }

    /// The same case under another arbitration policy (builder style).
    pub fn with_arbitration(mut self, arb: ArbitrationKind) -> Self {
        self.arbitration = arb;
        self
    }

    /// The same case with cell-fault injection armed (builder style).
    pub fn with_cell_faults(mut self, faults: Option<CellFaultConfig>) -> Self {
        self.cell_faults = faults;
        self
    }

    /// The same case with link-error injection armed (builder style).
    pub fn with_link_faults(mut self, faults: Option<LinkFaultConfig>) -> Self {
        self.link_faults = faults;
        self
    }
}

/// One completion observed at a host link: `(op index, cycle, link,
/// first response data word)`. Bit-identical across engines by the
/// determinism contract.
pub type Observation = (u32, Cycle, LinkId, u64);

/// The result of one engine run of a case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRun {
    /// Completions in delivery order.
    pub observations: Vec<Observation>,
    /// Cycles from first injection to quiesce.
    pub cycles: Cycle,
    /// Cell-fault counters at quiesce: `[hammer activations, bit
    /// flips, TRR refreshes, retention decays]`. All zero when the
    /// fault axis is off; when armed, part of the cross-engine
    /// comparison — the fault stream itself must be bit-identical
    /// across thread counts and engine modes.
    pub fault_stats: [u64; 4],
    /// Link-retry counters at quiesce: `[retries, retrains, poisoned
    /// responses]`. All zero when link errors are off; when armed, part
    /// of the cross-engine comparison.
    pub link_stats: [u64; 3],
    /// Op indices (sorted) whose response came back poisoned — exactly
    /// the set [`hmc_core::fault::predicts_poison`] predicted at issue
    /// time, compared bit-for-bit across the engine sweep.
    pub poisoned: Vec<u32>,
}

/// Oracle mismatches tolerated (and tallied) by a lenient engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MismatchTally {
    /// Read responses whose data diverged from the oracle.
    pub responses: u64,
    /// Total bits by which those responses diverged.
    pub bits: u64,
}

/// The result of a full (all-engines) case run.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The serial engine's run (the reference).
    pub reference: EngineRun,
    /// Responses checked by the oracle in the reference run.
    pub checked: u64,
}

/// A conformance failure: which engine configuration diverged and how.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Thread count of the diverging run (0 = cross-engine comparison).
    pub threads: usize,
    /// Human-readable description of the divergence.
    pub description: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.threads == 0 {
            write!(f, "cross-engine divergence: {}", self.description)
        } else {
            write!(f, "[{} thread(s)] {}", self.threads, self.description)
        }
    }
}

/// Deterministic payload bytes for operation `idx` of a `seed` stream.
/// Shared by the engine packet builder and the oracle — and by replay
/// reruns, which is why it depends only on `(seed, idx)`.
pub fn payload_for(seed: u64, idx: usize, len: usize) -> Vec<u8> {
    let mut lcg = Lcg::new(seed ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (0..len).map(|_| lcg.next_u64() as u8).collect()
}

fn is_write_class(kind: OpKind) -> bool {
    matches!(kind, OpKind::Write | OpKind::PostedWrite)
}

/// Human-readable engine mode for failure messages.
pub fn mode_name(fast_forward: bool) -> &'static str {
    if fast_forward {
        "fast-forward"
    } else {
        "stepped"
    }
}

/// Run one case at one thread count in one engine mode. Internally
/// checks the oracle on every response, the invariant checker every
/// cycle, and full quiesce at the end.
pub fn run_engine(case: &FuzzCase, threads: usize, fast_forward: bool) -> Result<EngineRun, Failure> {
    run_engine_inner(case, threads, fast_forward, false).map(|(run, _)| run)
}

/// Like [`run_engine`], but oracle read-data mismatches are tolerated
/// and tallied instead of failing the run — the detection mode for
/// unmitigated cell-fault cases, where corrupted read data is exactly
/// what the case exists to observe.
pub fn run_engine_lenient(
    case: &FuzzCase,
    threads: usize,
    fast_forward: bool,
) -> Result<(EngineRun, MismatchTally), Failure> {
    run_engine_inner(case, threads, fast_forward, true)
}

fn run_engine_inner(
    case: &FuzzCase,
    threads: usize,
    fast_forward: bool,
    lenient: bool,
) -> Result<(EngineRun, MismatchTally), Failure> {
    let timing = case.timing;
    let fabric = case.interconnect;
    let fail = |description: String| Failure {
        threads,
        description: format!(
            "[{} mode, {} timing, {} fabric] {description}",
            mode_name(fast_forward),
            timing.name(),
            fabric.name(),
        ),
    };

    let mut config = case.config.clone();
    // The case's fault axes win over anything baked into the preset.
    config.cell_faults = case.cell_faults.or(config.cell_faults);
    config.link_faults = case.link_faults.or(config.link_faults);
    let mut sim = HmcSim::new(1, config)
        .map_err(|e| fail(format!("sim construction: {e}")))?
        .with_threads(threads)
        .with_fast_forward(fast_forward)
        .with_timing(TimingParams::of(case.timing))
        .with_interconnect(NocParams::of(case.interconnect).with_arbitration(case.arbitration));
    sim.set_address_map(case.map.make(case.config.geometry()))
        .map_err(|e| fail(format!("address map: {e}")))?;
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).map_err(|e| fail(format!("topology: {e}")))?;
    sim.set_check_invariants(true);

    let block = case.config.block_size.bytes() as u64;
    let links = case.config.num_links;
    // Mirror of each link's monotonic send counter. The engine stamps
    // the same sequence onto accepted packets (stalled sends consume
    // nothing), so `predicts_poison` over (link, seq) tells the oracle
    // at issue time which packets the retry protocol will abandon.
    let link_fault_cfg: Option<FaultConfig> =
        case.link_faults.or(case.config.link_faults).map(FaultConfig::from);
    let mut send_seq = vec![0u64; links as usize];
    let mut poisoned_ops = Vec::new();
    let mut tags = TagPool::new();
    let mut tag_op = [u32::MAX; 512];
    let mut oracle = Oracle::new();
    let mut observations = Vec::with_capacity(case.ops.len());
    let mut next = 0usize;
    let start = sim.current_clock();
    // Generous deadlock guard: streams quiesce in a few thousand cycles.
    // Injected idle gaps are batch-clocked and accounted separately so
    // they never trip the guard.
    let max_cycles = 50_000 + 50 * case.ops.len() as u64;
    let mut round = 0u64;
    let mut gap_total = 0u64;
    let mut tally = MismatchTally::default();

    loop {
        // Strict in-order injection until the owner link stalls: the
        // ownership discipline forbids falling back to another link.
        while next < case.ops.len() {
            if case.barrier == Some(next) && tags.outstanding() > 0 {
                break; // drain barrier: everything in flight completes first
            }
            let op = case.ops[next];
            let link = owner_link(op.addr, block, links);
            let tag = if op.expects_response() {
                match tags.alloc(Pending {
                    addr: op.addr,
                    cmd: op.command(),
                    issue_cycle: sim.current_clock(),
                    dev: 0,
                    link,
                }) {
                    Some(t) => t,
                    None => break, // all 512 tags in flight
                }
            } else {
                POSTED_TAG
            };
            let payload = payload_for(case.seed, next, op.payload_bytes());
            let mut wire = payload.clone();
            if let Some(c) = case.corrupt {
                if c.addr == op.addr && is_write_class(op.kind) && wire.len() >= 8 {
                    let word = u64::from_le_bytes(wire[..8].try_into().unwrap()) ^ c.xor;
                    wire[..8].copy_from_slice(&word.to_le_bytes());
                }
            }
            let packet = Packet::request(op.command(), 0, op.addr, tag, link, &wire)
                .map_err(|e| fail(format!("op #{next}: packet build: {e}")))?;
            match sim.send(0, link, packet) {
                Ok(()) => {
                    let t = op.expects_response().then_some(tag);
                    if let Some(t) = t {
                        tag_op[t as usize] = next as u32;
                    }
                    let doomed = link_fault_cfg.as_ref().is_some_and(|fc| {
                        predicts_poison(fc, 0, link, send_seq[link as usize])
                    });
                    send_seq[link as usize] += 1;
                    if doomed {
                        // The retry protocol will exhaust on this packet:
                        // it never reaches memory, and (if non-posted)
                        // comes back as exactly one poisoned error frame.
                        oracle.issue_poisoned(next, &op, t);
                        poisoned_ops.push(next as u32);
                    } else {
                        oracle.issue(next, &op, t, &payload);
                    }
                    next += 1;
                }
                Err(HmcError::Stalled { .. }) => {
                    if op.expects_response() {
                        tags.complete(tag);
                    }
                    break;
                }
                Err(e) => return Err(fail(format!("op #{next}: send: {e}"))),
            }
        }

        sim.clock().map_err(|e| fail(format!("clock: {e}")))?;
        round += 1;
        if case.gap_every > 0 && case.gap_cycles > 0 && round.is_multiple_of(case.gap_every) {
            // The seeded idle gap: identical schedule in every engine
            // run (round counting is deterministic), so the observation
            // streams stay comparable while the fast-forward engine
            // gets real mid-stream jumps to prove itself on.
            sim.clock_batch(case.gap_cycles)
                .map_err(|e| fail(format!("gap clock: {e}")))?;
            gap_total += case.gap_cycles;
        }

        // Drain every host link in link order (deterministic).
        for link in 0..links {
            loop {
                let packet = match sim.recv(0, link) {
                    Ok(p) => p,
                    Err(HmcError::NoResponse { .. }) => break,
                    Err(e) => return Err(fail(format!("recv link {link}: {e}"))),
                };
                let rsp = decode_response(&packet)
                    .map_err(|e| fail(format!("link {link}: undecodable response: {e}")))?;
                let op_index = if lenient {
                    let (op_index, bits) = oracle
                        .check_response_lenient(&rsp)
                        .map_err(|e| fail(format!("oracle: {e}")))?;
                    if bits > 0 {
                        tally.responses += 1;
                        tally.bits += bits;
                    }
                    op_index
                } else {
                    oracle
                        .check_response(&rsp)
                        .map_err(|e| fail(format!("oracle: {e}")))?
                };
                if tags.complete(rsp.tag).is_none() {
                    return Err(fail(format!("tag {} completed twice", rsp.tag)));
                }
                debug_assert_eq!(tag_op[rsp.tag as usize], op_index as u32);
                tag_op[rsp.tag as usize] = u32::MAX;
                let word = rsp.data.get(..8).map_or(0, |b| {
                    u64::from_le_bytes(b.try_into().unwrap())
                });
                observations.push((op_index as u32, sim.current_clock(), link, word));
            }
        }

        if let Some(v) = sim.invariant_violations().first() {
            return Err(fail(format!(
                "invariant violation ({} total): {v}",
                sim.total_invariant_violations()
            )));
        }

        let done = next >= case.ops.len() && tags.outstanding() == 0;
        if done && sim.is_idle() {
            break;
        }
        if sim.current_clock() - start - gap_total > max_cycles {
            return Err(fail(format!(
                "no quiesce after {max_cycles} cycles: {} ops pending, {} tags in flight",
                case.ops.len() - next,
                tags.outstanding()
            )));
        }
    }

    // Quiesce conditions: the oracle ledger is empty and every link's
    // token pool is back at its initial allotment (token conservation).
    if oracle.outstanding() != 0 {
        return Err(fail(format!(
            "{} responses never delivered",
            oracle.outstanding()
        )));
    }
    let dev = sim.device(0).map_err(|e| fail(format!("{e}")))?;
    for l in &dev.links {
        if !l.at_initial_tokens() {
            return Err(fail(format!(
                "link {} leaked tokens: {} of {} at quiesce",
                l.id, l.tokens, l.initial_tokens
            )));
        }
    }

    let stats = sim.stats();
    poisoned_ops.sort_unstable();
    // Cross-check the engine's own poison ledger against the
    // prediction: stats count poisoned *responses* (posted drops emit
    // none), so count only ops that owed one.
    let owed: u64 = poisoned_ops
        .iter()
        .filter(|&&op| case.ops[op as usize].expects_response())
        .count() as u64;
    if stats.poisoned_responses != owed {
        return Err(fail(format!(
            "engine delivered {} poisoned responses where the fault stream \
             predicts {owed}",
            stats.poisoned_responses
        )));
    }
    Ok((
        EngineRun {
            observations,
            cycles: sim.current_clock() - start,
            fault_stats: [
                stats.hammer_activations,
                stats.bit_flips,
                stats.trr_refreshes,
                stats.retention_decays,
            ],
            link_stats: [
                stats.link_retries,
                stats.link_retrains,
                stats.poisoned_responses,
            ],
            poisoned: poisoned_ops,
        },
        tally,
    ))
}

/// Run one case through the full engine sweep: the serial stepped
/// reference first, then every requested thread count crossed with the
/// engine-mode axis (stepped, and fast-forward when the case arms it),
/// comparing bit-for-bit.
pub fn run_case(case: &FuzzCase) -> Result<CaseOutcome, Failure> {
    run_case_inner(case, false).map(|(out, _)| out)
}

/// [`run_case`] in detection mode: every engine run tolerates (and
/// tallies) oracle read-data mismatches, and the full sweep must still
/// agree bit-for-bit — corrupted words included, since deterministic
/// fault injection makes even the corruption reproducible. Returns the
/// serial stepped reference's tally alongside the outcome.
pub fn run_case_lenient(case: &FuzzCase) -> Result<(CaseOutcome, MismatchTally), Failure> {
    run_case_inner(case, true)
}

fn run_case_inner(case: &FuzzCase, lenient: bool) -> Result<(CaseOutcome, MismatchTally), Failure> {
    let (reference, tally) = run_engine_inner(case, 1, false, lenient)?;
    let checked = reference.observations.len() as u64;
    let modes: &[bool] = if case.fast_forward {
        &[false, true]
    } else {
        &[false]
    };
    for &t in case.threads.iter() {
        for &ff in modes {
            if t <= 1 && !ff {
                continue; // the reference itself
            }
            let (run, _) = run_engine_inner(case, t, ff, lenient)?;
            if run != reference {
                let mode = mode_name(ff);
                let at = run
                    .observations
                    .iter()
                    .zip(&reference.observations)
                    .position(|(a, b)| a != b)
                    .map_or_else(
                        || "stream lengths, cycle counts, or fault stats differ".to_string(),
                        |i| {
                            format!(
                                "first divergence at completion #{i}: \
                                 serial stepped {:?}, {t}-thread {mode} {:?}",
                                reference.observations[i], run.observations[i]
                            )
                        },
                    );
                return Err(Failure {
                    threads: 0,
                    description: format!(
                        "{t}-thread {mode} run ({} timing, {} fabric) diverges from serial \
                         stepped ({} vs {} completions, {} vs {} cycles, fault stats \
                         {:?} vs {:?}): {at}",
                        case.timing.name(),
                        case.interconnect.name(),
                        run.observations.len(),
                        reference.observations.len(),
                        run.cycles,
                        reference.cycles,
                        run.fault_stats,
                        reference.fault_stats,
                    ),
                });
            }
        }
    }
    Ok((CaseOutcome { reference, checked }, tally))
}

/// Functional (cycle-free) projection of a run for cross-backend
/// comparison: completions sorted by op index, carrying `(op, link,
/// data word)`. Two timing backends schedule the same case differently
/// — completions can interleave differently across links — but every
/// op must complete exactly once, on its owner link, with identical
/// data.
pub fn functional_observations(run: &EngineRun) -> Vec<(u32, LinkId, u64)> {
    let mut v: Vec<(u32, LinkId, u64)> = run
        .observations
        .iter()
        .map(|&(op, _, link, word)| (op, link, word))
        .collect();
    v.sort_unstable();
    v
}

/// The outcome of one case run under both timing backends.
#[derive(Debug, Clone)]
pub struct CrossTimingOutcome {
    /// The classic backend's full-sweep run.
    pub classic: CaseOutcome,
    /// The DDR backend's full-sweep run.
    pub ddr: CaseOutcome,
    /// `ddr cycles − classic cycles` for the serial stepped reference —
    /// reported, never asserted: the backends are *supposed* to differ
    /// here.
    pub latency_delta: i64,
}

/// Run one case under both timing backends — each through the full
/// thread × engine-mode sweep of [`run_case`] — and demand the
/// functional observation streams (op, link, data) agree bit-for-bit.
/// Cycle counts are excluded from the comparison and surfaced as
/// [`CrossTimingOutcome::latency_delta`] instead.
pub fn run_case_cross_timing(case: &FuzzCase) -> Result<CrossTimingOutcome, Failure> {
    let classic = run_case(&case.clone().with_timing(TimingKind::Classic))?;
    let ddr = run_case(&case.clone().with_timing(TimingKind::Ddr))?;
    let a = functional_observations(&classic.reference);
    let b = functional_observations(&ddr.reference);
    if a != b {
        let at = a
            .iter()
            .zip(&b)
            .position(|(x, y)| x != y)
            .map_or_else(
                || format!("{} vs {} completions", a.len(), b.len()),
                |i| format!("first divergence at op-sorted #{i}: classic {:?}, ddr {:?}", a[i], b[i]),
            );
        return Err(Failure {
            threads: 0,
            description: format!(
                "cross-backend functional divergence (classic vs ddr): {at}"
            ),
        });
    }
    let latency_delta = ddr.reference.cycles as i64 - classic.reference.cycles as i64;
    Ok(CrossTimingOutcome {
        classic,
        ddr,
        latency_delta,
    })
}

/// The outcome of one case run on every interconnect fabric.
#[derive(Debug, Clone)]
pub struct CrossInterconnectOutcome {
    /// The crossbar fabric's full-sweep run (the reference fabric).
    pub crossbar: CaseOutcome,
    /// The ring fabric's full-sweep run.
    pub ring: CaseOutcome,
    /// The mesh fabric's full-sweep run.
    pub mesh: CaseOutcome,
    /// `ring cycles − crossbar cycles` for the serial stepped reference
    /// — reported, never asserted: buffered hops are *supposed* to cost
    /// cycles.
    pub ring_delta: i64,
    /// `mesh cycles − crossbar cycles`, likewise reported only.
    pub mesh_delta: i64,
}

/// Run one case on every interconnect fabric — each through the full
/// thread × engine-mode sweep of [`run_case`] — and demand the
/// functional observation streams (op, link, data) agree bit-for-bit
/// with the crossbar reference. Cycle counts are excluded from the
/// comparison (buffered fabrics add hop latency) and surfaced as the
/// per-fabric deltas instead.
pub fn run_case_cross_interconnect(case: &FuzzCase) -> Result<CrossInterconnectOutcome, Failure> {
    let crossbar = run_case(&case.clone().with_interconnect(InterconnectKind::Crossbar))?;
    let ring = run_case(&case.clone().with_interconnect(InterconnectKind::Ring))?;
    let mesh = run_case(&case.clone().with_interconnect(InterconnectKind::Mesh))?;
    let reference = functional_observations(&crossbar.reference);
    for (fabric, run) in [("ring", &ring), ("mesh", &mesh)] {
        let got = functional_observations(&run.reference);
        if got != reference {
            let at = reference.iter().zip(&got).position(|(x, y)| x != y).map_or_else(
                || format!("{} vs {} completions", reference.len(), got.len()),
                |i| {
                    format!(
                        "first divergence at op-sorted #{i}: crossbar {:?}, {fabric} {:?}",
                        reference[i], got[i]
                    )
                },
            );
            return Err(Failure {
                threads: 0,
                description: format!(
                    "cross-fabric functional divergence (crossbar vs {fabric}): {at}"
                ),
            });
        }
    }
    let ring_delta = ring.reference.cycles as i64 - crossbar.reference.cycles as i64;
    let mesh_delta = mesh.reference.cycles as i64 - crossbar.reference.cycles as i64;
    Ok(CrossInterconnectOutcome {
        crossbar,
        ring,
        mesh,
        ring_delta,
        mesh_delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::BlockSize;

    fn tiny_case(ops: Vec<MemOp>) -> FuzzCase {
        let mut case = FuzzCase::new(
            "tiny",
            DeviceConfig::small(),
            MapKind::LowInterleave,
            7,
            ops,
        );
        case.threads = vec![1, 2];
        case
    }

    #[test]
    fn owner_link_partitions_blocks() {
        for b in 0..64u64 {
            let addr = b * 128;
            assert_eq!(owner_link(addr, 128, 4), (b % 4) as LinkId);
            assert_eq!(
                owner_link(addr, 128, 4),
                owner_link(addr + 127, 128, 4),
                "a block has one owner"
            );
        }
    }

    #[test]
    fn payloads_are_deterministic_and_distinct() {
        assert_eq!(payload_for(1, 0, 16), payload_for(1, 0, 16));
        assert_ne!(payload_for(1, 0, 16), payload_for(1, 1, 16));
        assert_ne!(payload_for(1, 0, 16), payload_for(2, 0, 16));
    }

    #[test]
    fn a_handwritten_stream_passes() {
        let block = 128u64;
        let ops = vec![
            MemOp::write(0, BlockSize::B128),
            MemOp::read(0, BlockSize::B128),
            MemOp::write(block, BlockSize::B64),
            MemOp::read(block, BlockSize::B64),
            MemOp { kind: OpKind::TwoAdd8, addr: 2 * block + 16, size: BlockSize::B16 },
            MemOp::read(2 * block, BlockSize::B32),
        ];
        let out = run_case(&tiny_case(ops)).unwrap();
        assert_eq!(out.checked, 6, "six non-posted ops, six responses");
        assert!(out.reference.cycles > 0);
        assert_eq!(out.reference.fault_stats, [0; 4], "fault axis off by default");
    }

    #[test]
    fn drain_barriers_order_later_ops_after_all_earlier_completions() {
        let block = 128u64;
        let ops = vec![
            MemOp::write(0, BlockSize::B64),
            MemOp::write(block, BlockSize::B64),
            MemOp::read(0, BlockSize::B64),
            MemOp::read(block, BlockSize::B64),
        ];
        let mut case = tiny_case(ops);
        case.barrier = Some(2);
        let out = run_case(&case).unwrap();
        assert_eq!(out.checked, 4);
        // Every pre-barrier completion is delivered strictly before any
        // post-barrier op completes.
        let last_write = out
            .reference
            .observations
            .iter()
            .filter(|o| o.0 < 2)
            .map(|o| o.1)
            .max()
            .unwrap();
        let first_read = out
            .reference
            .observations
            .iter()
            .filter(|o| o.0 >= 2)
            .map(|o| o.1)
            .min()
            .unwrap();
        assert!(last_write < first_read, "{last_write} vs {first_read}");
    }

    #[test]
    fn armed_but_idle_fault_axis_counts_activations_and_stays_clean() {
        let block = 128u64;
        let ops = vec![
            MemOp::write(0, BlockSize::B64),
            MemOp::read(0, BlockSize::B64),
            MemOp::read(5 * block, BlockSize::B32),
            MemOp::read(9 * block, BlockSize::B16),
        ];
        let mut case = tiny_case(ops);
        case.threads = vec![1, 2, 8];
        case.cell_faults = Some(CellFaultConfig::default());
        let out = run_case(&case).unwrap();
        assert_eq!(out.checked, 4);
        let [activations, flips, trr, decays] = out.reference.fault_stats;
        assert!(activations > 0, "armed axis counts row activations");
        assert_eq!((flips, trr, decays), (0, 0, 0), "default threshold never crossed");
    }

    #[test]
    fn gapped_streams_run_the_fast_forward_axis_bit_identically() {
        let block = 128u64;
        let ops = vec![
            MemOp::write(0, BlockSize::B64),
            MemOp::read(0, BlockSize::B64),
            MemOp::write(block, BlockSize::B128),
            MemOp::read(block, BlockSize::B128),
            MemOp::read(2 * block, BlockSize::B32),
            MemOp::read(3 * block, BlockSize::B16),
        ];
        let mut case = tiny_case(ops);
        case.threads = vec![1, 4];
        case.gap_every = 2;
        case.gap_cycles = 5_000;
        assert!(case.fast_forward, "the axis defaults on");
        let out = run_case(&case).unwrap();
        assert_eq!(out.checked, 6);
        // The gaps really ran: two rounds in, one 5k gap minimum.
        assert!(out.reference.cycles >= 5_000, "cycles {}", out.reference.cycles);
    }

    #[test]
    fn failure_reports_carry_the_engine_mode() {
        let f = Failure {
            threads: 3,
            description: format!("[{} mode] boom", mode_name(true)),
        };
        assert!(format!("{f}").contains("fast-forward"));
        assert!(format!("{f}").contains("[3 thread(s)]"));
        assert_eq!(mode_name(false), "stepped");
    }

    #[test]
    fn buffered_fabrics_agree_with_the_crossbar_functionally() {
        let block = 128u64;
        let ops = vec![
            MemOp::write(0, BlockSize::B128),
            MemOp::read(0, BlockSize::B128),
            MemOp::write(5 * block, BlockSize::B64),
            MemOp::read(5 * block, BlockSize::B64),
            MemOp { kind: OpKind::TwoAdd8, addr: 9 * block, size: BlockSize::B16 },
            MemOp::read(9 * block, BlockSize::B32),
            MemOp::read(14 * block, BlockSize::B16),
        ];
        let mut case = tiny_case(ops);
        case.threads = vec![1, 4];
        case.gap_every = 3;
        case.gap_cycles = 1_000;
        let out = run_case_cross_interconnect(&case).unwrap();
        assert_eq!(out.crossbar.checked, 7);
        assert_eq!(out.ring.checked, 7);
        assert_eq!(out.mesh.checked, 7);
        assert!(
            out.ring_delta >= 0 && out.mesh_delta >= 0,
            "buffered hops never make a stream faster (ring {:+}, mesh {:+})",
            out.ring_delta,
            out.mesh_delta
        );
    }

    #[test]
    fn buffered_fabrics_pass_the_full_sweep_under_every_arbitration() {
        let block = 128u64;
        let ops = vec![
            MemOp::write(2 * block, BlockSize::B64),
            MemOp::read(2 * block, BlockSize::B64),
            MemOp::read(7 * block, BlockSize::B32),
            MemOp::read(11 * block, BlockSize::B128),
        ];
        for kind in [InterconnectKind::Ring, InterconnectKind::Mesh] {
            for arb in ArbitrationKind::ALL {
                let mut case = tiny_case(ops.clone())
                    .with_interconnect(kind)
                    .with_arbitration(arb);
                case.threads = vec![1, 2, 8];
                case.gap_every = 2;
                case.gap_cycles = 500;
                let out = run_case(&case)
                    .unwrap_or_else(|f| panic!("{}/{}: {f}", kind.name(), arb.name()));
                assert_eq!(out.checked, 4);
            }
        }
    }

    #[test]
    fn link_errors_poison_predicted_ops_bit_identically_across_the_sweep() {
        // Most packets corrupt, one retry allowed: a solid fraction of
        // ops exhaust and must come back poisoned — predicted exactly
        // by the oracle at issue time, identically at every thread
        // count and in both engine modes.
        let block = 128u64;
        let ops: Vec<MemOp> = (0..16u64)
            .map(|i| {
                if i % 2 == 0 {
                    MemOp::write((i / 2) * block, BlockSize::B64)
                } else {
                    MemOp::read((i / 2) * block, BlockSize::B64)
                }
            })
            .collect();
        let mut case = tiny_case(ops);
        case.threads = vec![1, 2, 8];
        case.link_faults = Some(
            LinkFaultConfig::default()
                .with_error_rate_ppm(800_000)
                .with_retry_limit(1)
                .with_retry_cycles(4)
                .with_retrain_cycles(16)
                .with_seed(5),
        );
        let out = run_case(&case).unwrap();
        assert_eq!(out.checked, 16, "every op gets exactly one response");
        let [retries, retrains, poisons] = out.reference.link_stats;
        assert!(poisons > 0, "the tight cap must actually poison");
        assert!(retries > 0 && retrains > 0);
        assert_eq!(
            out.reference.poisoned.len() as u64,
            poisons,
            "predicted set matches delivered poisons (no posted ops here)"
        );
    }

    #[test]
    fn clean_links_leave_the_link_axis_silent() {
        let ops = vec![
            MemOp::write(0, BlockSize::B64),
            MemOp::read(0, BlockSize::B64),
        ];
        let out = run_case(&tiny_case(ops)).unwrap();
        assert_eq!(out.reference.link_stats, [0; 3]);
        assert!(out.reference.poisoned.is_empty());
    }

    #[test]
    fn corruption_is_caught_by_the_oracle() {
        let ops = vec![MemOp::write(0, BlockSize::B64), MemOp::read(0, BlockSize::B64)];
        let mut case = tiny_case(ops);
        case.corrupt = Some(CorruptSpec { addr: 0, xor: 0x1 });
        let err = run_case(&case).unwrap_err();
        assert!(err.description.contains("mismatch"), "{err}");
    }
}
