//! Deterministic command-stream generation and the fuzz campaign.
//!
//! Streams come from a 64-bit LCG seeded by the campaign's base seed
//! and the stream index — no wall-clock, no OS entropy. The campaign
//! rotates every stream across the four paper device presets and the
//! four address-map kinds, so a `(base seed, stream index)` pair names
//! one exact `(preset, map, ops)` case forever.

use hmc_types::cellfault::{CellFaultConfig, Mitigation};
use hmc_types::{
    AddressMap, ArbitrationKind, BankFirstMap, BankId, BlockSize, CustomMap, DecodedAddr,
    DeviceConfig, Field, InterconnectKind, LinearMap, LinkFaultConfig, LowInterleaveMap,
    MapGeometry, TimingKind, VaultId,
};
use hmc_workloads::{MemOp, OpKind};

use crate::harness::{
    owner_link, run_case, run_case_lenient, CorruptSpec, Failure, FuzzCase, THREAD_SWEEP,
};

/// A 64-bit linear congruential generator (Knuth's MMIX multiplier)
/// with a splitmix-style output mix — deterministic, seedable, and
/// dependency-free.
#[derive(Debug, Clone, Copy)]
pub struct Lcg(u64);

impl Lcg {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// The address-map kinds the campaign sweeps: the three specification
/// maps plus one [`CustomMap`] ordering none of them uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// `[offset][vault][bank][row]` — the specification default.
    LowInterleave,
    /// `[offset][bank][vault][row]` — the conflict-prone ablation.
    BankFirst,
    /// `[offset][row][bank][vault]` — the DIMM-like layout.
    Linear,
    /// `[offset][row][vault][bank]` via [`CustomMap`] — an ordering no
    /// built-in map provides.
    Custom,
}

impl MapKind {
    /// All kinds, in sweep order.
    pub const ALL: [MapKind; 4] = [
        MapKind::LowInterleave,
        MapKind::BankFirst,
        MapKind::Linear,
        MapKind::Custom,
    ];

    /// Instantiate the map for a device geometry.
    pub fn make(self, geometry: MapGeometry) -> Box<dyn AddressMap> {
        match self {
            MapKind::LowInterleave => {
                Box::new(LowInterleaveMap::new(geometry).expect("paper geometries validate"))
            }
            MapKind::BankFirst => {
                Box::new(BankFirstMap::new(geometry).expect("paper geometries validate"))
            }
            MapKind::Linear => {
                Box::new(LinearMap::new(geometry).expect("paper geometries validate"))
            }
            MapKind::Custom => Box::new(
                CustomMap::new(geometry, [Field::Row, Field::Vault, Field::Bank])
                    .expect("paper geometries validate"),
            ),
        }
    }

    /// Sweep-order label.
    pub fn name(self) -> &'static str {
        match self {
            MapKind::LowInterleave => "low-interleave",
            MapKind::BankFirst => "bank-first",
            MapKind::Linear => "linear",
            MapKind::Custom => "custom-rvb",
        }
    }
}

/// Read/write sizes the generator draws from (all ≤ the presets'
/// 128-byte block).
const SIZES: [BlockSize; 4] = [BlockSize::B16, BlockSize::B32, BlockSize::B64, BlockSize::B128];

/// Generate one seeded operation stream for a device configuration.
///
/// Addresses stay inside a small working set of blocks so that
/// read-after-write and atomic read-modify-write chains actually
/// collide; offsets respect each command's span and alignment rules
/// (atomics 16-byte aligned, BWR 8-byte aligned, reads/writes at
/// offset 0 so the span never crosses a block).
pub fn gen_stream(seed: u64, len: usize, config: &DeviceConfig) -> Vec<MemOp> {
    let block = config.block_size.bytes() as u64;
    // Working set: a handful of blocks per link keeps collisions hot.
    let blocks = (config.num_links as u64 * 12).min(config.capacity_bytes / block);
    let mut lcg = Lcg::new(seed);
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let base = lcg.below(blocks) * block;
        let op = match lcg.below(100) {
            0..=39 => MemOp::read(base, SIZES[lcg.below(4) as usize]),
            40..=64 => MemOp::write(base, SIZES[lcg.below(4) as usize]),
            65..=74 => MemOp {
                kind: OpKind::PostedWrite,
                addr: base,
                size: SIZES[lcg.below(4) as usize],
            },
            75..=84 => MemOp {
                kind: OpKind::TwoAdd8,
                addr: base + lcg.below(block / 16) * 16,
                size: BlockSize::B16,
            },
            85..=89 => MemOp {
                kind: OpKind::Add16,
                addr: base + lcg.below(block / 16) * 16,
                size: BlockSize::B16,
            },
            _ => MemOp {
                kind: OpKind::BitWrite,
                addr: base + lcg.below(block / 8) * 8,
                size: BlockSize::B16,
            },
        };
        ops.push(op);
    }
    ops
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of streams to run.
    pub streams: usize,
    /// Operations per stream.
    pub stream_len: usize,
    /// Base seed; stream `i` uses `base_seed ^ splitmix(i)`.
    pub base_seed: u64,
    /// Sweep every stream over all of 1/2/4/8 threads instead of the
    /// default rotation (serial + one parallel count per stream). A
    /// full sweep also forces the fast-forward axis on every stream,
    /// giving the complete {1,2,4,8} threads × {stepped, fast-forward}
    /// grid.
    pub full_sweep: bool,
    /// Force the stepped-vs-fast-forward axis and a seeded idle gap
    /// onto every stream, instead of the default rotation (the axis on
    /// every stream, gaps on two of every three).
    pub fast_forward: bool,
    /// Vault timing backend every stream runs under. Classic by
    /// default, so pinned-seed campaigns from before the backend axis
    /// existed keep their exact behaviour.
    pub timing: TimingKind,
    /// Interconnect fabric every stream runs on. Crossbar by default,
    /// so pinned-seed campaigns from before the fabric axis existed
    /// keep their exact behaviour.
    pub interconnect: InterconnectKind,
    /// Arbitration policy for buffered fabrics (crossbar ignores it).
    pub arbitration: ArbitrationKind,
    /// Arm the RowHammer fault axis: every stream runs with cell-fault
    /// injection installed (TRR-mitigated by default, so the oracle
    /// stays exact), and every second stream carries an appended
    /// adversarial hammer burst that actually crosses the threshold.
    /// Off by default — pinned-seed campaigns keep their behaviour.
    pub hammer: bool,
    /// Cell-fault parameters for the hammer axis ([`CellFaultConfig`]
    /// defaults with threshold 64, 20% flip odds, and TRR when `None`).
    /// Each stream re-seeds the config with its own stream seed.
    pub cell_faults: Option<CellFaultConfig>,
    /// Arm the link-error axis: every stream runs with the retry
    /// protocol under fire ([`default_link_faults`] unless overridden),
    /// the oracle predicting the exact poisoned tag set at issue time,
    /// and the poisoned-op sets included in the differential compare.
    /// Off by default — pinned-seed campaigns keep their behaviour.
    pub link_errors: bool,
    /// Link-fault parameters for the `link_errors` axis. Each stream
    /// re-seeds the config with its own stream seed.
    pub link_faults: Option<LinkFaultConfig>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            streams: 64,
            stream_len: 48,
            base_seed: 0xC0FF_EE00,
            full_sweep: false,
            fast_forward: false,
            timing: TimingKind::Classic,
            interconnect: InterconnectKind::Crossbar,
            arbitration: ArbitrationKind::RoundRobin,
            hammer: false,
            cell_faults: None,
            link_errors: false,
            link_faults: None,
        }
    }
}

/// Default link-fault axis for `--link-errors` campaigns: a packet
/// error rate high enough that retries are constant, a retry budget
/// tight enough that exhaustion (25%² = 6.25% of packets) actually
/// happens, and short retry/retrain windows so streams still quiesce
/// quickly. Every protocol edge — CRC detection, in-order
/// retransmission, exhaustion aborts, poisoned responses, link
/// retraining — fires inside an ordinary 48-op stream.
pub fn default_link_faults() -> LinkFaultConfig {
    LinkFaultConfig::default()
        .with_error_rate_ppm(250_000)
        .with_retry_cycles(4)
        .with_retry_limit(1)
        .with_retrain_cycles(24)
}

/// Default cell-fault axis for `--hammer` campaigns: a threshold low
/// enough for the appended bursts to cross it, aggressive flip odds,
/// and TRR armed — so the oracle stays exact while the whole fault
/// machinery (counting, crossings, targeted refresh, bank parking) is
/// exercised on every engine configuration.
pub fn default_hammer_faults() -> CellFaultConfig {
    CellFaultConfig::default()
        .with_hammer_threshold(64)
        .with_flip_prob_ppm(200_000)
        .with_mitigation(Mitigation::Trr)
}

/// Hammer read pairs per aggressor for exactly one threshold crossing:
/// 1.25 × threshold lands in `[threshold, 2·threshold)`, so no victim
/// bit can be flipped twice (and thereby XOR back to clean).
pub fn crossing_pairs(threshold: u32) -> u64 {
    let t = threshold.max(1) as u64;
    t + t / 4
}

/// Build a deterministic adversarial hammer burst for `config` under
/// `map`: ping-pong reads of two aggressor rows in one seeded
/// `(vault, bank)`, far enough apart that their victim rows are
/// disjoint and chosen to share one owner link — the engine's
/// per-`(link, vault, bank)` ordering guarantee then makes every read
/// close the other aggressor's row, so each is a fresh activation —
/// followed by a full read-back of all four victim rows. Returns the
/// ops and the index of the first read-back op, which callers install
/// as the case's drain barrier so read-back is globally ordered after
/// every flip.
pub fn hammer_burst(
    config: &DeviceConfig,
    map: MapKind,
    seed: u64,
    pairs: u64,
) -> (Vec<MemOp>, usize) {
    let geometry = config.geometry();
    let m = map.make(geometry);
    let block = config.block_size.bytes() as u64;
    let mut lcg = Lcg::new(seed ^ 0x4841_4d52); // "HAMR"
    let vault = lcg.below(geometry.vaults as u64) as VaultId;
    let bank = lcg.below(geometry.banks as u64) as BankId;
    let addr_of = |row: u64| {
        m.encode(DecodedAddr { vault, bank, row, offset: 0 })
            .expect("rows validated against geometry")
            .raw()
    };
    // First aggressor: an interior row with room above for the partner.
    let a = 2 + lcg.below(geometry.rows.saturating_sub(80).max(1));
    // Partner: the first row ≥ a+4 whose block lands on the same owner
    // link. Distance ≥ 4 keeps the two victim pairs {a±1} and {b±1}
    // disjoint from each other and from both aggressors.
    let a_link = owner_link(addr_of(a), block, config.num_links);
    let b = (a + 4..geometry.rows - 1)
        .find(|&r| owner_link(addr_of(r), block, config.num_links) == a_link)
        .unwrap_or(a + 4);
    let size = config.block_size;
    let mut ops = Vec::with_capacity(2 * pairs as usize + 4);
    for _ in 0..pairs {
        ops.push(MemOp::read(addr_of(a), size));
        ops.push(MemOp::read(addr_of(b), size));
    }
    let barrier = ops.len();
    for victim in [a - 1, a + 1, b - 1, b + 1] {
        ops.push(MemOp::read(addr_of(victim), size));
    }
    (ops, barrier)
}

/// Campaign outcome.
#[derive(Debug)]
pub struct CampaignReport {
    /// Streams executed (including the failing one, if any).
    pub streams_run: usize,
    /// Total responses checked by the oracle across all engine runs.
    pub responses_checked: u64,
    /// The first failing case and its failure, if any.
    pub failure: Option<(FuzzCase, Failure)>,
}

impl CampaignReport {
    /// True when every stream passed.
    pub fn is_clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// Build the case for stream `i` of a campaign: preset, map, and
/// thread sweep all derive from the stream index, so every preset ×
/// map × thread-count combination is exercised on a fixed schedule.
pub fn case_for_stream(cfg: &CampaignConfig, i: usize) -> FuzzCase {
    let presets = DeviceConfig::paper_configs();
    let (label, device) = &presets[i % presets.len()];
    let map = MapKind::ALL[(i / presets.len()) % MapKind::ALL.len()];
    let seed = cfg.base_seed ^ Lcg::new(i as u64).next_u64();
    let ops = gen_stream(seed, cfg.stream_len, device);
    let mut case = FuzzCase::new(label, device.clone(), map, seed, ops)
        .with_timing(cfg.timing)
        .with_interconnect(cfg.interconnect)
        .with_arbitration(cfg.arbitration);
    if !cfg.full_sweep {
        // Rotate the parallel engine's thread count; serial always runs.
        case.threads = vec![1, THREAD_SWEEP[1 + i % (THREAD_SWEEP.len() - 1)]];
    }
    // The fast-forward axis runs on every stream; idle gaps (the jumps
    // that make the axis bite) rotate onto two of every three streams
    // with seeded shape, unless forced everywhere.
    if cfg.fast_forward || !i.is_multiple_of(3) {
        let mut gap = Lcg::new(seed ^ 0x6a70);
        case.gap_every = 2 + gap.below(4);
        case.gap_cycles = 200 + gap.below(4_000);
    }
    if cfg.link_errors {
        let base = cfg.link_faults.unwrap_or_else(default_link_faults);
        case.link_faults = Some(base.with_seed(seed));
    }
    if cfg.hammer {
        let base = cfg.cell_faults.unwrap_or_else(default_hammer_faults);
        // Every stream runs with the axis armed (the counting path must
        // be deterministic even without crossings); every second stream
        // carries a real adversarial burst that crosses the threshold.
        case.cell_faults = Some(base.with_seed(seed));
        if i % 2 == 1 {
            let pairs = crossing_pairs(base.hammer_threshold);
            let (mut burst, barrier) = hammer_burst(&case.config, map, seed, pairs);
            case.barrier = Some(case.ops.len() + barrier);
            case.ops.append(&mut burst);
        }
    }
    case
}

/// Report of the hammer end-to-end detection demo.
#[derive(Debug, Clone, Copy)]
pub struct HammerDemoReport {
    /// Victim bits the engine flipped in the unmitigated run.
    pub bit_flips: u64,
    /// Corrupted bits the oracle flagged end-to-end — equal to
    /// [`HammerDemoReport::bit_flips`] by the demo's pass condition.
    pub detected_bits: u64,
    /// Read responses that carried corruption.
    pub corrupted_responses: u64,
    /// Targeted refreshes fired by the TRR-mitigated leg.
    pub trr_refreshes: u64,
    /// Mitigation cycle cost: mitigated minus unmitigated span.
    pub trr_cycle_cost: i64,
}

/// The hammer corruption-detection demo — the fault-injection analogue
/// of `--demo-corruption`, proving the oracle catches *every* injected
/// flip end to end:
///
/// 1. An adversarial burst runs unmitigated through the full thread ×
///    engine-mode sweep in detection mode. Every run must observe the
///    bit-identical corruption, and the oracle's flagged-bit tally must
///    equal the engine's `bit_flips` counter exactly — 100% detection.
/// 2. The same stream re-runs under TRR through the *strict* sweep: it
///    must complete clean, with zero flips and at least one targeted
///    refresh.
///
/// `faults` overrides the axis parameters (threshold, flip odds); the
/// demo pins mitigation, retention, and a one-window refresh horizon
/// itself, since the exact-tally comparison depends on them.
pub fn hammer_demo(
    base_seed: u64,
    faults: Option<CellFaultConfig>,
) -> Result<HammerDemoReport, Failure> {
    let device = DeviceConfig::small();
    let seed = base_seed ^ 0x6465_6d6f; // "demo"
    let base = faults.unwrap_or_else(default_hammer_faults);
    let armed = CellFaultConfig {
        mitigation: Mitigation::None,
        retention_cycles: 0,
        refresh_window: base.refresh_window.max(1 << 20),
        ..base
    }
    .with_seed(seed);
    let pairs = crossing_pairs(armed.hammer_threshold);
    let (ops, barrier) = hammer_burst(&device, MapKind::LowInterleave, seed, pairs);
    let mut case = FuzzCase::new("small", device, MapKind::LowInterleave, seed, ops);
    case.barrier = Some(barrier);
    case.cell_faults = Some(armed);

    let (outcome, tally) = run_case_lenient(&case)?;
    let [_, bit_flips, _, _] = outcome.reference.fault_stats;
    if bit_flips == 0 {
        return Err(Failure {
            threads: 0,
            description: "demo burst crossed no hammer threshold (no bits flipped)".into(),
        });
    }
    if tally.bits != bit_flips {
        return Err(Failure {
            threads: 0,
            description: format!(
                "detection gap: engine flipped {bit_flips} victim bits but the oracle \
                 flagged {} across {} responses",
                tally.bits, tally.responses
            ),
        });
    }

    let mitigated = case
        .clone()
        .with_cell_faults(Some(armed.with_mitigation(Mitigation::Trr)));
    let trr_outcome = run_case(&mitigated)?;
    let [_, trr_flips, trr_refreshes, _] = trr_outcome.reference.fault_stats;
    if trr_flips != 0 || trr_refreshes == 0 {
        return Err(Failure {
            threads: 0,
            description: format!(
                "TRR leg flipped {trr_flips} bits with {trr_refreshes} targeted refreshes"
            ),
        });
    }

    Ok(HammerDemoReport {
        bit_flips,
        detected_bits: tally.bits,
        corrupted_responses: tally.responses,
        trr_refreshes,
        trr_cycle_cost: trr_outcome.reference.cycles as i64 - outcome.reference.cycles as i64,
    })
}

/// Run a fuzz campaign, optionally seeding a deliberate corruption
/// into stream `corrupt_stream` (checker-of-the-checker tests). Stops
/// at the first failure.
pub fn campaign_with_corruption(
    cfg: &CampaignConfig,
    corrupt: Option<(usize, CorruptSpec)>,
) -> CampaignReport {
    let mut checked = 0u64;
    for i in 0..cfg.streams {
        let mut case = case_for_stream(cfg, i);
        if let Some((stream, spec)) = corrupt {
            if stream == i {
                // Corrupt the first written address; the fault is only
                // observable through a later read of that block, so
                // append one if the stream happens to lack it (keeps
                // the block-ownership discipline: same block, same
                // owner link).
                let addr = match case
                    .ops
                    .iter()
                    .find(|o| matches!(o.kind, OpKind::Write | OpKind::PostedWrite))
                {
                    Some(o) => o.addr,
                    None => {
                        case.ops.push(MemOp::write(spec.addr, BlockSize::B16));
                        spec.addr
                    }
                };
                if !case.ops.iter().any(|o| {
                    o.kind == OpKind::Read && o.addr == addr
                }) {
                    case.ops.push(MemOp::read(addr, BlockSize::B16));
                }
                case.corrupt = Some(CorruptSpec { addr, xor: spec.xor });
            }
        }
        match run_case(&case) {
            Ok(out) => checked += out.checked,
            Err(failure) => {
                return CampaignReport {
                    streams_run: i + 1,
                    responses_checked: checked,
                    failure: Some((case, failure)),
                }
            }
        }
    }
    CampaignReport {
        streams_run: cfg.streams,
        responses_checked: checked,
        failure: None,
    }
}

/// Run a clean fuzz campaign (no seeded corruption).
pub fn campaign(cfg: &CampaignConfig) -> CampaignReport {
    campaign_with_corruption(cfg, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::owner_link;

    #[test]
    fn streams_are_deterministic() {
        let cfg = DeviceConfig::paper_4link_8bank_2gb();
        assert_eq!(gen_stream(42, 64, &cfg), gen_stream(42, 64, &cfg));
        assert_ne!(gen_stream(42, 64, &cfg), gen_stream(43, 64, &cfg));
    }

    #[test]
    fn generated_ops_respect_span_and_alignment() {
        let cfg = DeviceConfig::paper_8link_16bank_8gb();
        let block = cfg.block_size.bytes() as u64;
        for op in gen_stream(7, 2_000, &cfg) {
            assert!(op.addr < cfg.capacity_bytes);
            let off = op.addr % block;
            match op.kind {
                OpKind::Read | OpKind::Write | OpKind::PostedWrite => {
                    assert_eq!(off, 0);
                    assert!(op.size.bytes() as u64 <= block);
                }
                OpKind::TwoAdd8 | OpKind::Add16 => {
                    assert_eq!(off % 16, 0);
                    assert!(off + 16 <= block);
                }
                OpKind::BitWrite => {
                    assert_eq!(off % 8, 0);
                    assert!(off + 8 <= block);
                }
            }
        }
    }

    #[test]
    fn every_block_has_a_single_owner_link() {
        let cfg = DeviceConfig::paper_4link_8bank_2gb();
        let block = cfg.block_size.bytes() as u64;
        let ops = gen_stream(11, 1_000, &cfg);
        let mut owners = std::collections::HashMap::new();
        for op in &ops {
            let owner = owner_link(op.addr, block, cfg.num_links);
            let prev = owners.insert(op.addr / block, owner);
            assert!(prev.is_none() || prev == Some(owner));
        }
    }

    #[test]
    fn case_schedule_covers_presets_maps_and_threads() {
        let cfg = CampaignConfig { streams: 16, ..Default::default() };
        let mut labels = std::collections::HashSet::new();
        let mut maps = std::collections::HashSet::new();
        let mut threads = std::collections::HashSet::new();
        for i in 0..16 {
            let case = case_for_stream(&cfg, i);
            labels.insert(case.label.clone());
            maps.insert(case.map.name());
            threads.extend(case.threads.iter().copied());
        }
        assert_eq!(labels.len(), 4, "all four paper presets");
        assert_eq!(maps.len(), 4, "all four map kinds");
        assert!(threads.contains(&2) && threads.contains(&4) && threads.contains(&8));
    }

    #[test]
    fn gap_rotation_covers_both_shapes_and_the_force_flag_gaps_all() {
        let cfg = CampaignConfig { streams: 12, ..Default::default() };
        let gapped = (0..12)
            .filter(|&i| case_for_stream(&cfg, i).gap_cycles > 0)
            .count();
        assert_eq!(gapped, 8, "two of every three streams carry a gap");
        for i in 0..12 {
            let case = case_for_stream(&cfg, i);
            assert!(case.fast_forward, "the axis runs on every stream");
            assert_eq!(case.gap_every > 0, case.gap_cycles > 0);
        }
        let forced = CampaignConfig { fast_forward: true, ..cfg };
        assert!((0..12).all(|i| case_for_stream(&forced, i).gap_cycles > 0));
    }

    #[test]
    fn hammer_bursts_ping_pong_one_owner_link_with_disjoint_victims() {
        let device = DeviceConfig::small();
        let block = device.block_size.bytes() as u64;
        for map in MapKind::ALL {
            let (ops, barrier) = hammer_burst(&device, map, 99, 80);
            assert_eq!(ops.len(), 2 * 80 + 4);
            assert_eq!(barrier, 160, "barrier sits between burst and read-back");
            assert_eq!(ops, hammer_burst(&device, map, 99, 80).0, "deterministic");
            // The ping-pong alternates exactly two addresses on one link.
            let a = ops[0].addr;
            let b = ops[1].addr;
            assert_ne!(a, b);
            assert_eq!(
                owner_link(a, block, device.num_links),
                owner_link(b, block, device.num_links),
                "{}: aggressors must share a (link, vault, bank) stream",
                map.name()
            );
            for pair in ops[..barrier].chunks(2) {
                assert_eq!((pair[0].addr, pair[1].addr), (a, b));
                assert!(pair.iter().all(|o| o.kind == OpKind::Read));
            }
            // Four distinct victim rows, none of them an aggressor.
            let victims: std::collections::HashSet<u64> =
                ops[barrier..].iter().map(|o| o.addr).collect();
            assert_eq!(victims.len(), 4);
            assert!(!victims.contains(&a) && !victims.contains(&b));
        }
    }

    #[test]
    fn hammer_campaigns_arm_every_stream_and_burst_every_second() {
        let cfg = CampaignConfig { streams: 8, hammer: true, ..Default::default() };
        for i in 0..8 {
            let case = case_for_stream(&cfg, i);
            let faults = case.cell_faults.expect("hammer campaigns arm every stream");
            assert_eq!(faults.seed, case.seed, "per-stream fault seed");
            assert_eq!(faults.mitigation, Mitigation::Trr, "campaign default is TRR");
            if i % 2 == 1 {
                let pairs = crossing_pairs(faults.hammer_threshold);
                assert_eq!(case.ops.len(), cfg.stream_len + 2 * pairs as usize + 4);
                assert_eq!(case.barrier, Some(cfg.stream_len + 2 * pairs as usize));
            } else {
                assert_eq!(case.ops.len(), cfg.stream_len, "armed but burst-free");
                assert_eq!(case.barrier, None);
            }
        }
        // The default campaign stays exactly as before the axis existed.
        let plain = CampaignConfig { streams: 8, ..Default::default() };
        for i in 0..8 {
            let case = case_for_stream(&plain, i);
            assert!(case.cell_faults.is_none() && case.barrier.is_none());
        }
    }

    #[test]
    fn link_error_campaigns_arm_every_stream_with_per_stream_seeds() {
        let cfg = CampaignConfig { streams: 6, link_errors: true, ..Default::default() };
        for i in 0..6 {
            let case = case_for_stream(&cfg, i);
            let lf = case.link_faults.expect("link-error campaigns arm every stream");
            assert_eq!(lf.seed, case.seed, "per-stream fault seed");
            assert_eq!(lf.error_rate_ppm, default_link_faults().error_rate_ppm);
        }
        // The default campaign stays exactly as before the axis existed.
        let plain = CampaignConfig { streams: 6, ..Default::default() };
        assert!((0..6).all(|i| case_for_stream(&plain, i).link_faults.is_none()));
    }

    #[test]
    fn a_small_link_error_campaign_passes_end_to_end() {
        let cfg = CampaignConfig {
            streams: 4,
            stream_len: 32,
            link_errors: true,
            ..Default::default()
        };
        let report = campaign(&cfg);
        if let Some((case, failure)) = &report.failure {
            panic!("stream {} ({}): {failure}", report.streams_run - 1, case.label);
        }
        assert!(report.responses_checked > 0);
    }

    #[test]
    fn crossing_pairs_land_inside_one_crossing() {
        for t in [1u32, 4, 64, 256, 1000] {
            let p = crossing_pairs(t);
            assert!(p >= t as u64 && p < 2 * t as u64, "threshold {t}: {p} pairs");
        }
        assert!(crossing_pairs(0) > 0, "disabled axis still builds a burst");
    }

    #[test]
    fn all_map_kinds_instantiate_on_all_presets() {
        for (_, cfg) in DeviceConfig::paper_configs() {
            for kind in MapKind::ALL {
                let map = kind.make(cfg.geometry());
                assert!(!map.name().is_empty());
            }
        }
    }
}
