//! Failure shrinking and reproduction files.
//!
//! When a fuzz stream fails, the raw stream is rarely the story — a
//! 48-operation case usually fails because of two or three operations
//! in it. [`shrink_case`] runs a ddmin-style delta debug: repeatedly
//! try dropping chunks of the stream, keeping any reduced stream that
//! still fails, down to chunk size one. Shrinking is deterministic
//! (the failure predicate is a full engine run, itself deterministic)
//! and sound under payload reindexing because the seeded corruption —
//! the usual failure source in checker-of-the-checker tests — is
//! keyed by *address*, not by stream position.
//!
//! The minimal stream is written with [`write_repro`] in the
//! `hmc_workloads::Replay` CSV dialect (`kind,addr,size`), so
//! `Replay::read_csv` + the printed `(preset, map, seed)` triple
//! reproduce the failure exactly.

use std::io::Write as _;
use std::path::Path;

use hmc_workloads::Replay;

use crate::harness::{run_case, Failure, FuzzCase};

/// The outcome of shrinking a failing case.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The minimal failing case.
    pub minimal: FuzzCase,
    /// The failure the minimal case still produces.
    pub failure: Failure,
    /// Operations in the original failing stream.
    pub original_len: usize,
    /// Engine runs spent shrinking.
    pub runs: usize,
}

/// ddmin over the operation stream: drop chunks, halving the chunk
/// size whenever no chunk can be dropped, until single operations are
/// irremovable. The input case must fail; panics otherwise.
pub fn shrink_case(case: &FuzzCase) -> ShrinkReport {
    let mut failure = run_case(case).expect_err("shrink_case needs a failing case");
    let original_len = case.ops.len();
    let mut current = case.clone();
    let mut runs = 1usize;
    let mut chunk = (current.ops.len() / 2).max(1);

    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < current.ops.len() && current.ops.len() > 1 {
            let end = (start + chunk).min(current.ops.len());
            let mut candidate = current.clone();
            candidate.ops.drain(start..end);
            if candidate.ops.is_empty() {
                start = end;
                continue;
            }
            runs += 1;
            match run_case(&candidate) {
                Err(f) => {
                    current = candidate;
                    failure = f;
                    progressed = true;
                    // Re-test from the same index: the stream shifted.
                }
                Ok(_) => start = end,
            }
        }
        if chunk == 1 && !progressed {
            break;
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }

    ShrinkReport {
        minimal: current,
        failure,
        original_len,
        runs,
    }
}

/// Write a reproduction file for a (typically minimal) failing case:
/// the `Replay` CSV trace with a `#`-prefixed preamble recording the
/// preset, map, seed, and failure — everything needed to re-run it.
pub fn write_repro(case: &FuzzCase, failure: &Failure, path: &Path) -> std::io::Result<()> {
    let mut out = Vec::new();
    writeln!(out, "# hmc-conform reproduction")?;
    writeln!(out, "# preset: {}", case.label)?;
    writeln!(out, "# map: {}", case.map.name())?;
    writeln!(out, "# seed: {:#x}", case.seed)?;
    writeln!(out, "# timing: {}", case.timing.name())?;
    writeln!(
        out,
        "# interconnect: {} ({} arbitration)",
        case.interconnect.name(),
        case.arbitration.name()
    )?;
    writeln!(out, "# fast-forward axis: {}", case.fast_forward)?;
    if case.gap_every > 0 {
        writeln!(
            out,
            "# idle gaps: {} cycles every {} rounds",
            case.gap_cycles, case.gap_every
        )?;
    }
    if let Some(c) = case.corrupt {
        writeln!(out, "# corrupt: addr={:#x} xor={:#x}", c.addr, c.xor)?;
    }
    if let Some(f) = case.cell_faults {
        writeln!(
            out,
            "# cell-faults: threshold={} flip={}ppm retention={} window={} \
             mitigation={} seed={:#x}",
            f.hammer_threshold,
            f.flip_prob_ppm,
            f.retention_cycles,
            f.refresh_window,
            f.mitigation.name(),
            f.seed
        )?;
    }
    if let Some(f) = case.link_faults {
        writeln!(
            out,
            "# link-faults: rate={}ppm retry-limit={} retry={} retrain={} seed={:#x}",
            f.error_rate_ppm, f.retry_limit, f.retry_cycles, f.retrain_cycles, f.seed
        )?;
    }
    if let Some(b) = case.barrier {
        writeln!(out, "# drain barrier before op: {b}")?;
    }
    writeln!(out, "# failure: {failure}")?;
    Replay::new(case.ops.clone()).write_csv(&mut out)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::CorruptSpec;
    use crate::fuzz::{gen_stream, MapKind};
    use hmc_types::DeviceConfig;
    use hmc_workloads::OpKind;
    use std::io::BufReader;

    /// A corrupted write followed by a read of the same block is the
    /// canonical injected failure; shrinking must reduce an oversized
    /// stream to (essentially) that pair.
    /// First address in `ops` that is written and later read back.
    fn write_read_collision(ops: &[hmc_workloads::MemOp]) -> Option<u64> {
        ops.iter().enumerate().find_map(|(i, o)| {
            (matches!(o.kind, OpKind::Write | OpKind::PostedWrite)
                && ops[i + 1..]
                    .iter()
                    .any(|r| r.kind == OpKind::Read && r.addr == o.addr))
            .then_some(o.addr)
        })
    }

    #[test]
    fn shrinks_a_seeded_corruption_to_a_minimal_pair() {
        let device = DeviceConfig::small();
        // Deterministically pick the first seed whose stream contains a
        // write->read collision for the corruption to surface through.
        let (seed, ops, addr) = (0u64..64)
            .find_map(|seed| {
                let ops = gen_stream(seed, 40, &device);
                write_read_collision(&ops).map(|addr| (seed, ops, addr))
            })
            .expect("some small seed yields a W->R pair in 40 ops");
        let mut case = FuzzCase::new("small", device, MapKind::LowInterleave, seed, ops);
        case.threads = vec![1, 2];
        case.corrupt = Some(CorruptSpec { addr, xor: 0xdead_beef });

        let report = shrink_case(&case);
        assert!(report.minimal.ops.len() <= 4, "minimal repro, got {} ops", report.minimal.ops.len());
        assert!(report.minimal.ops.len() >= 2, "needs the write and the read");
        assert!(report.minimal.ops.len() < report.original_len);
        // The minimal case still fails, with the same failure class.
        assert!(run_case(&report.minimal).is_err());
        assert!(report.failure.description.contains("mismatch"), "{}", report.failure);
    }

    #[test]
    fn repro_files_round_trip_through_replay() {
        let device = DeviceConfig::small();
        let ops = gen_stream(3, 8, &device);
        let case = FuzzCase::new("small", device, MapKind::Linear, 3, ops.clone());
        let failure = Failure { threads: 1, description: "synthetic".into() };
        let path = std::env::temp_dir().join("hmc_conform_repro_test.csv");
        write_repro(&case, &failure, &path).unwrap();
        let text = std::fs::read(&path).unwrap();
        let replay = Replay::read_csv(BufReader::new(&text[..])).unwrap();
        assert_eq!(replay.len(), ops.len());
        std::fs::remove_file(&path).ok();
    }
}
