//! # hmc-conform
//!
//! Model-based conformance checking for the HMC-Sim engine.
//!
//! The crate pits the cycle-accurate device model against a *golden
//! functional oracle* — a few hundred lines of obviously-correct Rust
//! that knows what the memory semantics of §II's command set must
//! produce, but nothing about queues, crossbars, or clock domains. A
//! deterministic fuzzer generates seeded command streams, the harness
//! drives the same stream through the serial engine, the sharded
//! parallel engine at several thread counts, and the oracle, and any
//! divergence — wrong read data, wrong response class, lost or
//! duplicated tags, engines disagreeing with each other, leaked link
//! tokens, protocol-invariant violations — fails the stream. Failing
//! streams are [shrunk](shrink) to a minimal reproduction and written
//! as a replay trace loadable by `hmc_workloads::Replay`.
//!
//! Everything is deterministic: streams come from a seeded LCG, no
//! wall-clock or OS entropy is consulted anywhere, and a `(seed,
//! preset, map, stream length)` tuple names a stream forever.
//!
//! ## The ownership discipline
//!
//! The engine guarantees completion order only per `(link, vault,
//! bank)` stream (paper §III.C); requests on different links race. To
//! keep the oracle *exact* rather than merely plausible, the fuzzer
//! partitions memory blocks across links — block `b` is only ever
//! accessed through link `b % num_links` ([`harness::owner_link`]).
//! Every pair of operations on the same block then shares a stream,
//! so program order equals memory order and the oracle can apply
//! writes at issue time and know precisely what every read returns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod harness;
pub mod oracle;
pub mod shrink;

pub use fuzz::{
    campaign, crossing_pairs, default_hammer_faults, default_link_faults, gen_stream,
    hammer_burst, hammer_demo, CampaignConfig, CampaignReport, HammerDemoReport, Lcg, MapKind,
};
pub use harness::{
    owner_link, run_case, run_case_cross_interconnect, run_case_cross_timing, run_case_lenient,
    CaseOutcome, CorruptSpec, CrossInterconnectOutcome, CrossTimingOutcome, Failure, FuzzCase,
    MismatchTally,
};
pub use oracle::Oracle;
pub use shrink::{shrink_case, write_repro, ShrinkReport};
