//! Bank storage and row-buffer modelling.
//!
//! "Once within a bank layer, the DRAM is organized traditionally using
//! rows and columns" (paper §III.A). A [`Bank`] owns a sparse byte store
//! covering its capacity, a block of DRAM dies for access accounting, and a
//! simple open-row tracker that distinguishes row-buffer hits from misses —
//! useful for the extended utilization traces.

use hmc_types::config::StorageMode;
use hmc_types::{HmcError, Result};

use crate::dram::DramBlock;
use crate::storage::SparseStore;

/// Aggregate operation counters for one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Completed read operations.
    pub reads: u64,
    /// Completed write operations.
    pub writes: u64,
    /// Completed atomic (read-modify-write) operations.
    pub atomics: u64,
    /// Accesses that re-used the open row.
    pub row_hits: u64,
    /// Accesses that opened a new row.
    pub row_misses: u64,
}

/// One memory bank: rows × block-size bytes of storage plus DRAM dies.
#[derive(Debug)]
pub struct Bank {
    rows: u64,
    block_bytes: u32,
    mode: StorageMode,
    store: SparseStore,
    drams: DramBlock,
    open_row: Option<u64>,
    stats: BankStats,
}

impl Bank {
    /// Create a bank of `rows` rows of `block_bytes` each, with
    /// `drams_per_bank` dies, in the given storage mode.
    pub fn new(rows: u64, block_bytes: u32, drams_per_bank: u16, mode: StorageMode) -> Self {
        let capacity = rows * block_bytes as u64;
        Bank {
            rows,
            block_bytes,
            mode,
            // Timing-only banks never materialize pages, but the store is
            // cheap to construct (it is just a capacity + empty map).
            store: SparseStore::new(capacity),
            drams: DramBlock::new(drams_per_bank),
            open_row: None,
            stats: BankStats::default(),
        }
    }

    /// Bank capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.rows * self.block_bytes as u64
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Operation counters.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Per-die DRAM accounting.
    pub fn drams(&self) -> &DramBlock {
        &self.drams
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    fn check_span(&self, row: u64, offset: u32, len: usize) -> Result<u64> {
        if row >= self.rows {
            return Err(HmcError::OutOfRange {
                what: "row",
                index: row,
                limit: self.rows,
            });
        }
        if offset as usize + len > self.block_bytes as usize {
            return Err(HmcError::InvalidAddress {
                addr: row * self.block_bytes as u64 + offset as u64,
                reason: format!(
                    "access of {len} bytes at block offset {offset} crosses the \
                     {}-byte block boundary",
                    self.block_bytes
                ),
            });
        }
        Ok(row * self.block_bytes as u64 + offset as u64)
    }

    fn touch_row(&mut self, row: u64) {
        if self.open_row == Some(row) {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
            self.open_row = Some(row);
        }
    }

    /// Read `buf.len()` bytes from `(row, offset)`.
    ///
    /// In timing-only mode the buffer is zero-filled; counters and the row
    /// buffer are updated identically in both modes.
    pub fn read(&mut self, row: u64, offset: u32, buf: &mut [u8]) -> Result<()> {
        let base = self.check_span(row, offset, buf.len())?;
        self.touch_row(row);
        self.stats.reads += 1;
        self.drams.record_access(base, buf.len());
        match self.mode {
            StorageMode::Functional => self.store.read(base, buf),
            StorageMode::TimingOnly => buf.fill(0),
        }
        Ok(())
    }

    /// Write `data` to `(row, offset)`.
    pub fn write(&mut self, row: u64, offset: u32, data: &[u8]) -> Result<()> {
        let base = self.check_span(row, offset, data.len())?;
        self.touch_row(row);
        self.stats.writes += 1;
        self.drams.record_access(base, data.len());
        if self.mode == StorageMode::Functional {
            self.store.write(base, data);
        }
        Ok(())
    }

    /// Dual 8-byte add-immediate (2ADD8): adds `op0` to the u64 at
    /// `(row, offset)` and `op1` to the u64 at `(row, offset + 8)`,
    /// wrapping. Returns the two original values.
    pub fn two_add8(&mut self, row: u64, offset: u32, op0: u64, op1: u64) -> Result<(u64, u64)> {
        let base = self.check_span(row, offset, 16)?;
        self.touch_row(row);
        self.stats.atomics += 1;
        self.drams.record_access(base, 16);
        if self.mode == StorageMode::TimingOnly {
            return Ok((0, 0));
        }
        let old0 = self.store.read_u64(base);
        let old1 = self.store.read_u64(base + 8);
        self.store.write_u64(base, old0.wrapping_add(op0));
        self.store.write_u64(base + 8, old1.wrapping_add(op1));
        Ok((old0, old1))
    }

    /// Single 16-byte add-immediate (ADD16): 128-bit add of `op` to the
    /// 16 bytes at `(row, offset)`, wrapping. Returns the original value.
    pub fn add16(&mut self, row: u64, offset: u32, op: u128) -> Result<u128> {
        let base = self.check_span(row, offset, 16)?;
        self.touch_row(row);
        self.stats.atomics += 1;
        self.drams.record_access(base, 16);
        if self.mode == StorageMode::TimingOnly {
            return Ok(0);
        }
        let mut buf = [0u8; 16];
        self.store.read(base, &mut buf);
        let old = u128::from_le_bytes(buf);
        self.store.write(base, &old.wrapping_add(op).to_le_bytes());
        Ok(old)
    }

    /// Bit write (BWR): 8 bytes of write data qualified by an 8-byte mask;
    /// only mask-set bits are updated. Returns the original value.
    pub fn bit_write(&mut self, row: u64, offset: u32, data: u64, mask: u64) -> Result<u64> {
        let base = self.check_span(row, offset, 8)?;
        self.touch_row(row);
        self.stats.atomics += 1;
        self.drams.record_access(base, 8);
        if self.mode == StorageMode::TimingOnly {
            return Ok(0);
        }
        let old = self.store.read_u64(base);
        self.store.write_u64(base, (old & !mask) | (data & mask));
        Ok(old)
    }

    /// XOR `xor` into the 64-bit little-endian word at index `word` of
    /// `row` — the cell-fault injection hook. Faults are physics, not
    /// accesses: no counters move and the row buffer stays put. Out-of-
    /// range coordinates are ignored, and timing-only banks skip the
    /// data mutation (the fault subsystem still counts the flips so
    /// both storage modes report identical fault statistics).
    pub fn corrupt_word(&mut self, row: u64, word: u32, xor: u64) {
        let offset = word as u64 * 8;
        if xor == 0 || row >= self.rows || offset + 8 > self.block_bytes as u64 {
            return;
        }
        if self.mode == StorageMode::Functional {
            let base = row * self.block_bytes as u64 + offset;
            let old = self.store.read_u64(base);
            self.store.write_u64(base, old ^ xor);
        }
    }

    /// Reset the bank: close the row, clear data and counters.
    pub fn reset(&mut self) {
        self.store.clear();
        self.drams.reset();
        self.open_row = None;
        self.stats = BankStats::default();
    }

    /// Resident (host-allocated) bytes backing this bank.
    pub fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> Bank {
        Bank::new(1024, 128, 16, StorageMode::Functional)
    }

    #[test]
    fn write_read_roundtrip() {
        let mut b = bank();
        let data: Vec<u8> = (0..64u8).collect();
        b.write(5, 32, &data).unwrap();
        let mut buf = [0u8; 64];
        b.read(5, 32, &mut buf).unwrap();
        assert_eq!(buf.to_vec(), data);
        assert_eq!(b.stats().reads, 1);
        assert_eq!(b.stats().writes, 1);
    }

    #[test]
    fn rows_are_isolated() {
        let mut b = bank();
        b.write(1, 0, &[0xaa; 16]).unwrap();
        let mut buf = [0xffu8; 16];
        b.read(2, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn out_of_range_row_rejected() {
        let mut b = bank();
        assert!(matches!(
            b.read(1024, 0, &mut [0u8; 8]),
            Err(HmcError::OutOfRange { .. })
        ));
    }

    #[test]
    fn block_boundary_crossing_rejected() {
        let mut b = bank();
        // 64 bytes at offset 96 would cross the 128-byte block boundary.
        assert!(matches!(
            b.write(0, 96, &[0u8; 64]),
            Err(HmcError::InvalidAddress { .. })
        ));
        // Exactly reaching the boundary is fine.
        b.write(0, 96, &[0u8; 32]).unwrap();
    }

    #[test]
    fn row_buffer_hit_miss_accounting() {
        let mut b = bank();
        b.write(3, 0, &[1; 8]).unwrap(); // miss (opens row 3)
        b.read(3, 8, &mut [0u8; 8]).unwrap(); // hit
        b.read(4, 0, &mut [0u8; 8]).unwrap(); // miss (opens row 4)
        b.read(3, 0, &mut [0u8; 8]).unwrap(); // miss again
        assert_eq!(b.stats().row_hits, 1);
        assert_eq!(b.stats().row_misses, 3);
        assert_eq!(b.open_row(), Some(3));
    }

    #[test]
    fn two_add8_is_a_dual_wrapping_add() {
        let mut b = bank();
        b.write(0, 0, &100u64.to_le_bytes()).unwrap();
        b.write(0, 8, &u64::MAX.to_le_bytes()).unwrap();
        let (old0, old1) = b.two_add8(0, 0, 5, 2).unwrap();
        assert_eq!(old0, 100);
        assert_eq!(old1, u64::MAX);
        let mut buf = [0u8; 8];
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 105);
        b.read(0, 8, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 1, "wrapping add");
        assert_eq!(b.stats().atomics, 1);
    }

    #[test]
    fn add16_is_a_128_bit_add() {
        let mut b = bank();
        b.write(0, 16, &u128::MAX.to_le_bytes()).unwrap();
        let old = b.add16(0, 16, 3).unwrap();
        assert_eq!(old, u128::MAX);
        let mut buf = [0u8; 16];
        b.read(0, 16, &mut buf).unwrap();
        assert_eq!(u128::from_le_bytes(buf), 2, "carry propagates across words");
    }

    #[test]
    fn bit_write_respects_mask() {
        let mut b = bank();
        b.write(0, 0, &0xffff_0000_ffff_0000u64.to_le_bytes()).unwrap();
        let old = b
            .bit_write(0, 0, 0x1234_5678_9abc_def0, 0x0000_ffff_0000_ffff)
            .unwrap();
        assert_eq!(old, 0xffff_0000_ffff_0000);
        let mut buf = [0u8; 8];
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(
            u64::from_le_bytes(buf),
            (0xffff_0000_ffff_0000u64 & !0x0000_ffff_0000_ffffu64)
                | (0x1234_5678_9abc_def0u64 & 0x0000_ffff_0000_ffffu64)
        );
    }

    #[test]
    fn timing_only_skips_data_but_counts() {
        let mut b = Bank::new(64, 128, 16, StorageMode::TimingOnly);
        b.write(0, 0, &[0xee; 32]).unwrap();
        let mut buf = [0xffu8; 32];
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32], "timing-only reads return zeros");
        assert_eq!(b.stats().writes, 1);
        assert_eq!(b.stats().reads, 1);
        assert_eq!(b.resident_bytes(), 0, "no pages materialized");
        assert_eq!(b.two_add8(0, 0, 1, 1).unwrap(), (0, 0));
        assert_eq!(b.add16(0, 0, 1).unwrap(), 0);
        assert_eq!(b.bit_write(0, 0, 1, 1).unwrap(), 0);
    }

    #[test]
    fn corrupt_word_flips_bits_without_side_effects() {
        let mut b = bank();
        b.write(7, 0, &0x00ff_00ff_00ff_00ffu64.to_le_bytes()).unwrap();
        let stats_before = b.stats();
        let open_before = b.open_row();
        b.corrupt_word(7, 0, 0x0000_0000_0000_00ff);
        assert_eq!(b.stats(), stats_before, "faults are not accesses");
        assert_eq!(b.open_row(), open_before, "row buffer untouched");
        let mut buf = [0u8; 8];
        b.read(7, 0, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 0x00ff_00ff_00ff_0000);
        // Out-of-range coordinates are silently ignored.
        b.corrupt_word(4096, 0, u64::MAX);
        b.corrupt_word(0, 1024, u64::MAX);
        // Timing-only banks ignore the data entirely.
        let mut t = Bank::new(64, 128, 16, StorageMode::TimingOnly);
        t.corrupt_word(0, 0, u64::MAX);
        assert_eq!(t.resident_bytes(), 0, "no pages materialized");
    }

    #[test]
    fn dram_accounting_tracks_accesses() {
        let mut b = bank();
        b.write(0, 0, &[0u8; 64]).unwrap();
        assert_eq!(b.drams().total_accesses(), 4, "four 16-byte units");
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut b = bank();
        b.write(0, 0, &[5; 8]).unwrap();
        b.reset();
        assert_eq!(b.stats(), BankStats::default());
        assert_eq!(b.open_row(), None);
        let mut buf = [0xffu8; 8];
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }
}
