//! Sparse paged byte storage.
//!
//! HMC devices reach 8 GB; a simulator cannot eagerly allocate that much
//! host memory per bank. [`SparseStore`] allocates fixed-size pages on first
//! write and reads zero-fill for untouched regions — matching a freshly
//! reset device whose DRAM content is architecturally undefined (we define
//! it as zero for determinism).

use std::collections::HashMap;

/// Size of a backing page in bytes.
pub const PAGE_BYTES: usize = 4096;

/// A sparse, zero-default byte store over a fixed capacity.
#[derive(Debug, Default)]
pub struct SparseStore {
    capacity: u64,
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl SparseStore {
    /// Create a store covering `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        SparseStore {
            capacity,
            pages: HashMap::new(),
        }
    }

    /// Total addressable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of pages currently materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident (allocated) bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES as u64
    }

    /// Read `buf.len()` bytes starting at `offset`; untouched bytes are zero.
    ///
    /// # Panics
    /// Panics if the span exceeds capacity (callers validate addresses
    /// before reaching storage).
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        assert!(
            offset + buf.len() as u64 <= self.capacity,
            "read span {}..{} exceeds capacity {}",
            offset,
            offset + buf.len() as u64,
            self.capacity
        );
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_idx = pos / PAGE_BYTES as u64;
            let in_page = (pos % PAGE_BYTES as u64) as usize;
            let chunk = (PAGE_BYTES - in_page).min(buf.len() - done);
            match self.pages.get(&page_idx) {
                Some(page) => {
                    buf[done..done + chunk].copy_from_slice(&page[in_page..in_page + chunk])
                }
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
        }
    }

    /// Write `data` starting at `offset`, materializing pages as needed.
    ///
    /// # Panics
    /// Panics if the span exceeds capacity.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        assert!(
            offset + data.len() as u64 <= self.capacity,
            "write span {}..{} exceeds capacity {}",
            offset,
            offset + data.len() as u64,
            self.capacity
        );
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let page_idx = pos / PAGE_BYTES as u64;
            let in_page = (pos % PAGE_BYTES as u64) as usize;
            let chunk = (PAGE_BYTES - in_page).min(data.len() - done);
            let page = self
                .pages
                .entry(page_idx)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            page[in_page..in_page + chunk].copy_from_slice(&data[done..done + chunk]);
            done += chunk;
        }
    }

    /// Read a little-endian u64 at `offset`.
    pub fn read_u64(&self, offset: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read(offset, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Write a little-endian u64 at `offset`.
    pub fn write_u64(&mut self, offset: u64, value: u64) {
        self.write(offset, &value.to_le_bytes());
    }

    /// Drop all resident pages (device reset).
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_store_reads_zero() {
        let s = SparseStore::new(1 << 20);
        let mut buf = [0xffu8; 64];
        s.read(12345, &mut buf);
        assert_eq!(buf, [0u8; 64]);
        assert_eq!(s.resident_pages(), 0, "reads must not materialize pages");
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = SparseStore::new(1 << 20);
        let data: Vec<u8> = (0..64u8).collect();
        s.write(1000, &data);
        let mut buf = [0u8; 64];
        s.read(1000, &mut buf);
        assert_eq!(buf.to_vec(), data);
    }

    #[test]
    fn spans_crossing_page_boundaries() {
        let mut s = SparseStore::new(1 << 20);
        let data: Vec<u8> = (0..=255u8).collect();
        let offset = PAGE_BYTES as u64 - 100;
        s.write(offset, &data);
        assert_eq!(s.resident_pages(), 2);
        let mut buf = vec![0u8; 256];
        s.read(offset, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn adjacent_writes_do_not_interfere() {
        let mut s = SparseStore::new(1 << 20);
        s.write(0, &[0xaa; 16]);
        s.write(16, &[0xbb; 16]);
        let mut buf = [0u8; 32];
        s.read(0, &mut buf);
        assert_eq!(&buf[..16], &[0xaa; 16]);
        assert_eq!(&buf[16..], &[0xbb; 16]);
    }

    #[test]
    fn sparseness_is_preserved() {
        let mut s = SparseStore::new(8 << 30); // 8 GiB capacity
        s.write(0, &[1]);
        s.write((4 << 30) + 7, &[2]);
        s.write((8 << 30) - 1, &[3]);
        assert_eq!(s.resident_pages(), 3);
        assert!(s.resident_bytes() < 16 * 1024);
        let mut b = [0u8; 1];
        s.read((4 << 30) + 7, &mut b);
        assert_eq!(b[0], 2);
    }

    #[test]
    fn u64_helpers_roundtrip() {
        let mut s = SparseStore::new(1 << 16);
        s.write_u64(40, 0x0123_4567_89ab_cdef);
        assert_eq!(s.read_u64(40), 0x0123_4567_89ab_cdef);
        assert_eq!(s.read_u64(48), 0);
    }

    #[test]
    fn clear_resets_contents() {
        let mut s = SparseStore::new(1 << 16);
        s.write(0, &[9; 8]);
        s.clear();
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.read_u64(0), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn out_of_range_write_panics() {
        let mut s = SparseStore::new(100);
        s.write(90, &[0; 20]);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn out_of_range_read_panics() {
        let s = SparseStore::new(100);
        let mut buf = [0u8; 20];
        s.read(90, &mut buf);
    }
}
