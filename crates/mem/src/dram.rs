//! DRAM die modelling.
//!
//! Within a bank, data is striped across a block of DRAM dies ("Each bank
//! contains a reference to a block of DRAMs. … The DRAM contains the
//! designated data storage for all I/O operations", paper §IV.A). The vault
//! controller addresses DRAM in 16-byte units and performs all reads and
//! writes as 32-byte column fetches (§III.A).
//!
//! This module models the *accounting* side of the DRAM layer: which dies a
//! column fetch touches and how many fetches an access requires. Actual
//! bytes live in the bank's [`SparseStore`](crate::storage::SparseStore).

/// Bytes delivered by one column fetch (§III.A).
pub const COLUMN_FETCH_BYTES: usize = 32;

/// Bytes of DRAM addressing granularity (1 Mb blocks each addressing
/// 16 bytes, §III.A).
pub const DRAM_ADDRESS_BYTES: usize = 16;

/// Per-die access counters for one bank's block of DRAMs.
#[derive(Debug, Clone)]
pub struct DramBlock {
    /// Column-fetch count per die.
    accesses: Vec<u64>,
}

impl DramBlock {
    /// Create a block of `dies` DRAM dies.
    pub fn new(dies: u16) -> Self {
        DramBlock {
            accesses: vec![0; dies as usize],
        }
    }

    /// Number of dies in the block.
    pub fn dies(&self) -> u16 {
        self.accesses.len() as u16
    }

    /// Number of column fetches needed for an access of `bytes` bytes.
    pub fn column_fetches(bytes: usize) -> usize {
        bytes.div_ceil(COLUMN_FETCH_BYTES)
    }

    /// Record an access of `bytes` bytes starting at bank-local `offset`,
    /// crediting each die its column fetches. Dies are interleaved in
    /// 16-byte units: die = (offset / 16) % dies.
    pub fn record_access(&mut self, offset: u64, bytes: usize) {
        let dies = self.accesses.len() as u64;
        if dies == 0 || bytes == 0 {
            return;
        }
        let first_unit = offset / DRAM_ADDRESS_BYTES as u64;
        let units = bytes.div_ceil(DRAM_ADDRESS_BYTES) as u64;
        for u in first_unit..first_unit + units {
            self.accesses[(u % dies) as usize] += 1;
        }
    }

    /// Access count (16-byte unit touches) of a single die.
    pub fn die_accesses(&self, die: u16) -> u64 {
        self.accesses[die as usize]
    }

    /// Total unit touches across all dies.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Reset counters (device reset).
    pub fn reset(&mut self) {
        self.accesses.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_fetch_math() {
        // §III.A: requests are performed in 32-byte column fetches.
        assert_eq!(DramBlock::column_fetches(16), 1);
        assert_eq!(DramBlock::column_fetches(32), 1);
        assert_eq!(DramBlock::column_fetches(33), 2);
        assert_eq!(DramBlock::column_fetches(64), 2);
        assert_eq!(DramBlock::column_fetches(128), 4);
    }

    #[test]
    fn accesses_stripe_across_dies() {
        let mut b = DramBlock::new(4);
        // A 64-byte access = four 16-byte units touching dies 0,1,2,3.
        b.record_access(0, 64);
        for d in 0..4 {
            assert_eq!(b.die_accesses(d), 1);
        }
        // A second 64-byte access at offset 64 wraps to the same dies.
        b.record_access(64, 64);
        for d in 0..4 {
            assert_eq!(b.die_accesses(d), 2);
        }
        assert_eq!(b.total_accesses(), 8);
    }

    #[test]
    fn unaligned_offset_starts_on_the_right_die() {
        let mut b = DramBlock::new(8);
        b.record_access(48, 16); // unit 3 -> die 3
        assert_eq!(b.die_accesses(3), 1);
        assert_eq!(b.total_accesses(), 1);
    }

    #[test]
    fn small_access_touches_one_die() {
        let mut b = DramBlock::new(16);
        b.record_access(0, 8);
        assert_eq!(b.die_accesses(0), 1);
        assert_eq!(b.total_accesses(), 1);
    }

    #[test]
    fn reset_clears_counts() {
        let mut b = DramBlock::new(2);
        b.record_access(0, 128);
        assert!(b.total_accesses() > 0);
        b.reset();
        assert_eq!(b.total_accesses(), 0);
    }

    #[test]
    fn zero_byte_access_is_a_noop() {
        let mut b = DramBlock::new(4);
        b.record_access(0, 0);
        assert_eq!(b.total_accesses(), 0);
    }
}
