//! # hmc-mem
//!
//! The memory storage substrate of the HMC-Sim stack: sparse paged backing
//! stores, banks with row-buffer and DRAM-die accounting, and per-vault
//! bank stacks. The simulator core (`hmc-core`) drives this crate from its
//! vault controllers during sub-cycle stage 4 (vault queue memory request
//! processing, paper §IV.C).
//!
//! Storage can run **functional** (real bytes move) or **timing-only**
//! (counters only) — the latter keeps the paper's 33.5-million-request
//! Table I runs within laptop memory budgets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod cellfault;
pub mod dram;
pub mod storage;
pub mod vault_mem;

pub use bank::{Bank, BankStats};
pub use cellfault::{ActivationOutcome, CellFaultState, ELEVATED_REFRESH_DIVISOR};
pub use dram::{DramBlock, COLUMN_FETCH_BYTES, DRAM_ADDRESS_BYTES};
pub use storage::{SparseStore, PAGE_BYTES};
pub use vault_mem::VaultMemory;
