//! Per-vault memory: the stack of banks a vault controller manages.
//!
//! "Once within a target memory vault, memory storage is again broken into
//! the traditional concept of banks and DRAMs. Vertical access through the
//! stacked memory layers is analogous to choosing the appropriate memory
//! bank" (paper §III.A). [`VaultMemory`] owns the banks of one vault and
//! dispatches decoded accesses to them.

use hmc_types::address::DecodedAddr;
use hmc_types::config::{DeviceConfig, StorageMode};
use hmc_types::{BankId, HmcError, Result};

use crate::bank::{Bank, BankStats};

/// The memory stack of a single vault: `banks_per_vault` banks.
#[derive(Debug)]
pub struct VaultMemory {
    banks: Vec<Bank>,
}

impl VaultMemory {
    /// Build a vault's bank stack from a device configuration.
    pub fn new(config: &DeviceConfig) -> Self {
        let banks = (0..config.banks_per_vault)
            .map(|_| {
                Bank::new(
                    config.rows_per_bank(),
                    config.block_size.bytes() as u32,
                    config.drams_per_bank,
                    config.storage_mode,
                )
            })
            .collect();
        VaultMemory { banks }
    }

    /// Build directly from raw geometry (used by unit tests).
    pub fn from_parts(
        num_banks: u16,
        rows: u64,
        block_bytes: u32,
        drams: u16,
        mode: StorageMode,
    ) -> Self {
        let banks = (0..num_banks)
            .map(|_| Bank::new(rows, block_bytes, drams, mode))
            .collect();
        VaultMemory { banks }
    }

    /// Number of banks in the vault.
    pub fn num_banks(&self) -> u16 {
        self.banks.len() as u16
    }

    fn bank_mut(&mut self, bank: BankId) -> Result<&mut Bank> {
        let limit = self.banks.len() as u16;
        self.banks
            .get_mut(bank as usize)
            .ok_or(HmcError::OutOfRange {
                what: "bank",
                index: bank as u64,
                limit: limit as u64,
            })
    }

    /// Immutable bank access (stats inspection).
    pub fn bank(&self, bank: BankId) -> Result<&Bank> {
        self.banks.get(bank as usize).ok_or(HmcError::OutOfRange {
            what: "bank",
            index: bank as u64,
            limit: self.banks.len() as u64,
        })
    }

    /// Read `buf.len()` bytes at the decoded coordinates.
    pub fn read(&mut self, at: DecodedAddr, buf: &mut [u8]) -> Result<()> {
        self.bank_mut(at.bank)?.read(at.row, at.offset, buf)
    }

    /// Write `data` at the decoded coordinates.
    pub fn write(&mut self, at: DecodedAddr, data: &[u8]) -> Result<()> {
        self.bank_mut(at.bank)?.write(at.row, at.offset, data)
    }

    /// Dual 8-byte atomic add at the decoded coordinates.
    pub fn two_add8(&mut self, at: DecodedAddr, op0: u64, op1: u64) -> Result<(u64, u64)> {
        self.bank_mut(at.bank)?.two_add8(at.row, at.offset, op0, op1)
    }

    /// 16-byte atomic add at the decoded coordinates.
    pub fn add16(&mut self, at: DecodedAddr, op: u128) -> Result<u128> {
        self.bank_mut(at.bank)?.add16(at.row, at.offset, op)
    }

    /// Masked bit-write at the decoded coordinates.
    pub fn bit_write(&mut self, at: DecodedAddr, data: u64, mask: u64) -> Result<u64> {
        self.bank_mut(at.bank)?.bit_write(at.row, at.offset, data, mask)
    }

    /// XOR `xor` into the 64-bit word at index `word` of `(bank, row)`
    /// — the cell-fault injection hook (see [`Bank::corrupt_word`]).
    /// Out-of-range banks are ignored.
    pub fn corrupt_word(&mut self, bank: BankId, row: u64, word: u32, xor: u64) {
        if let Some(b) = self.banks.get_mut(bank as usize) {
            b.corrupt_word(row, word, xor);
        }
    }

    /// Sum of all bank stats in the vault.
    pub fn aggregate_stats(&self) -> BankStats {
        let mut total = BankStats::default();
        for b in &self.banks {
            let s = b.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.atomics += s.atomics;
            total.row_hits += s.row_hits;
            total.row_misses += s.row_misses;
        }
        total
    }

    /// Reset every bank (device reset).
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.reset();
        }
    }

    /// Host bytes resident across all banks.
    pub fn resident_bytes(&self) -> u64 {
        self.banks.iter().map(|b| b.resident_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> VaultMemory {
        VaultMemory::from_parts(8, 256, 128, 16, StorageMode::Functional)
    }

    fn at(bank: u16, row: u64, offset: u32) -> DecodedAddr {
        DecodedAddr {
            vault: 0,
            bank,
            row,
            offset,
        }
    }

    #[test]
    fn dispatches_to_the_addressed_bank() {
        let mut v = vm();
        v.write(at(3, 10, 0), &[0x77; 16]).unwrap();
        let mut buf = [0u8; 16];
        v.read(at(3, 10, 0), &mut buf).unwrap();
        assert_eq!(buf, [0x77; 16]);
        // Other banks see nothing.
        v.read(at(4, 10, 0), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(v.bank(3).unwrap().stats().writes, 1);
        assert_eq!(v.bank(4).unwrap().stats().writes, 0);
    }

    #[test]
    fn invalid_bank_rejected() {
        let mut v = vm();
        assert!(matches!(
            v.write(at(8, 0, 0), &[0; 8]),
            Err(HmcError::OutOfRange { .. })
        ));
    }

    #[test]
    fn atomics_route_through_banks() {
        let mut v = vm();
        v.write(at(1, 0, 0), &7u64.to_le_bytes()).unwrap();
        let (old, _) = v.two_add8(at(1, 0, 0), 3, 0).unwrap();
        assert_eq!(old, 7);
        let old = v.add16(at(2, 0, 0), 9).unwrap();
        assert_eq!(old, 0);
        let old = v.bit_write(at(2, 0, 16), 0xff, 0xff).unwrap();
        assert_eq!(old, 0);
        assert_eq!(v.aggregate_stats().atomics, 3);
    }

    #[test]
    fn aggregate_stats_sum_banks() {
        let mut v = vm();
        for bank in 0..8u16 {
            v.write(at(bank, 0, 0), &[1; 8]).unwrap();
        }
        let s = v.aggregate_stats();
        assert_eq!(s.writes, 8);
        assert_eq!(s.row_misses, 8);
    }

    #[test]
    fn config_construction_matches_geometry() {
        let cfg = DeviceConfig::small();
        let v = VaultMemory::new(&cfg);
        assert_eq!(v.num_banks(), cfg.banks_per_vault);
        assert_eq!(
            v.bank(0).unwrap().capacity_bytes(),
            cfg.bank_capacity_bytes()
        );
    }

    #[test]
    fn reset_clears_all_banks() {
        let mut v = vm();
        v.write(at(0, 0, 0), &[5; 8]).unwrap();
        v.reset();
        assert_eq!(v.aggregate_stats(), BankStats::default());
        assert_eq!(v.resident_bytes(), 0);
    }
}
