//! Deterministic cell-level fault injection: RowHammer disturbance and
//! retention decay, layered on the bank model.
//!
//! The design goal is bit-identical fault streams across every engine
//! configuration (serial, 1/2/4/8-thread sharded, stepped, fast-forward),
//! achieved by two rules:
//!
//! 1. **No per-cycle work.** Activation counters are *lazily window-
//!    normalized*: each tracked row stores the refresh-window index it
//!    was last touched in, and a touch from a later window resets the
//!    count first — the same trick `DdrTiming` uses for refresh, so
//!    fast-forward jumps cannot miss a window edge.
//! 2. **No sequential RNG.** Every flip decision is a pure function of
//!    `(seed, axis, vault, bank, row, window, crossing, word, bit)`
//!    hashed through a SplitMix64-style mixer. Order of evaluation is
//!    irrelevant, so thread count and engine mode cannot perturb the
//!    stream.
//!
//! One [`CellFaultState`] lives inside each vault (it shards with the
//! vault across worker threads); the engine calls [`CellFaultState::on_access`]
//! for the retention axis and [`CellFaultState::on_activation`] when the
//! timing backend reports a row activation, and turns the returned
//! [`ActivationOutcome`] into trace events, statistics, and TRR bank
//! parking.

use std::collections::HashMap;

use hmc_types::cellfault::{CellFaultConfig, Mitigation};
use hmc_types::{BankId, Cycle};

use crate::vault_mem::VaultMemory;

/// Refresh-window divisor applied by [`Mitigation::ElevatedRefresh`]:
/// the elevated duty refreshes four times as often.
pub const ELEVATED_REFRESH_DIVISOR: u64 = 4;

/// Hash-domain tag separating hammer flips from every other draw.
const TAG_HAMMER: u64 = 0x4841_4d4d_4552_5f31; // "HAMMER_1"
/// Hash-domain tag separating retention decay from every other draw.
const TAG_RETENTION: u64 = 0x5245_5445_4e54_5f31; // "RETENT_1"

/// SplitMix64 output mixer (same constants as `fault::FaultState`).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Order-independent hash of a draw coordinate: each part is absorbed
/// through a multiply + SplitMix64 round, so nearby coordinates (row
/// ±1, consecutive windows) produce unrelated streams.
pub fn fault_hash(parts: &[u64]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for &p in parts {
        h = mix(h ^ p.wrapping_mul(0xff51_afd7_ed55_8ccd));
    }
    h
}

/// Whether a uniform `draw` falls inside a probability of `ppm` parts
/// per million. Saturating: `ppm >= 1_000_000` always hits — a strict
/// compare against a scaled threshold would miss `u64::MAX` draws.
pub fn ppm_hits(draw: u64, ppm: u32) -> bool {
    if ppm >= 1_000_000 {
        return true;
    }
    let threshold = ((u64::MAX as u128) * ppm as u128 / 1_000_000) as u64;
    draw < threshold
}

/// Deterministic 64-bit flip mask: one Bernoulli(`ppm`) draw per bit,
/// derived from `seed` by a counter-mode SplitMix64 stream.
pub fn flip_mask(seed: u64, ppm: u32) -> u64 {
    if ppm == 0 {
        return 0;
    }
    let mut mask = 0u64;
    let mut s = seed;
    for bit in 0..64 {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        if ppm_hits(mix(s), ppm) {
            mask |= 1u64 << bit;
        }
    }
    mask
}

/// Per-row tracking entry, lazily normalized to the current window.
#[derive(Debug, Clone, Copy, Default)]
struct RowTrack {
    /// Activations within window `act_window`.
    acts: u64,
    /// Refresh-window index `acts` belongs to.
    act_window: u64,
    /// `window + 1` of the last retention decay applied to this row
    /// (`0` = never), so decay fires at most once per window.
    decayed: u64,
}

/// What one activation did to the array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivationOutcome {
    /// Bits flipped per adjacent victim row as `(row, bits)`; slots
    /// with `bits == 0` are inert (edge rows have only one neighbor).
    pub flips: [(u64, u32); 2],
    /// Total victim bits flipped by this activation.
    pub flip_count: u64,
    /// A TRR targeted refresh fired instead of a disturbance.
    pub trr: bool,
    /// TRR refresh cost: the bank should stay busy until this cycle.
    pub park_until: Option<Cycle>,
}

/// Per-vault cell-fault injection state.
///
/// Holds only the sparse activation/decay tracking map — flip decisions
/// themselves are stateless hashes — so cloning, resetting, and moving
/// the state across shard threads is cheap and cannot perturb the
/// fault stream.
#[derive(Debug, Clone)]
pub struct CellFaultState {
    cfg: CellFaultConfig,
    vault: u64,
    rows: u64,
    words_per_row: u32,
    tracks: HashMap<(BankId, u64), RowTrack>,
}

impl CellFaultState {
    /// Create fault state for one vault of `rows`-row banks with
    /// `block_bytes`-byte rows.
    pub fn new(cfg: CellFaultConfig, vault: u16, rows: u64, block_bytes: u32) -> Self {
        CellFaultState {
            cfg,
            vault: vault as u64,
            rows,
            words_per_row: (block_bytes / 8).max(1),
            tracks: HashMap::new(),
        }
    }

    /// The installed configuration.
    pub fn config(&self) -> &CellFaultConfig {
        &self.cfg
    }

    /// Cycles per refresh window after mitigation: elevated refresh
    /// duty divides the configured window by [`ELEVATED_REFRESH_DIVISOR`].
    pub fn effective_window(&self) -> u64 {
        let w = self.cfg.refresh_window.max(1);
        match self.cfg.mitigation {
            Mitigation::ElevatedRefresh => (w / ELEVATED_REFRESH_DIVISOR).max(1),
            _ => w,
        }
    }

    /// Activation count of `(bank, row)` as seen at `cycle` — zero if
    /// the row's last activation was in an earlier refresh window.
    /// Test/oracle accessor.
    pub fn activation_count(&self, bank: BankId, row: u64, cycle: Cycle) -> u64 {
        let w = cycle / self.effective_window();
        match self.tracks.get(&(bank, row)) {
            Some(t) if t.act_window == w => t.acts,
            _ => 0,
        }
    }

    /// Retention axis, called on *every* access: if the access lands
    /// past the retention horizon within its refresh window, the
    /// accessed row decays (once per window) before the data is read.
    /// Returns the number of bits flipped.
    pub fn on_access(&mut self, bank: BankId, row: u64, cycle: Cycle, mem: &mut VaultMemory) -> u64 {
        let horizon = self.cfg.retention_cycles;
        if horizon == 0 {
            return 0;
        }
        let window = self.effective_window();
        if cycle % window < horizon {
            return 0; // refresh was recent enough; cells still hold
        }
        let w = cycle / window;
        let t = self.tracks.entry((bank, row)).or_default();
        if t.decayed == w + 1 {
            return 0;
        }
        t.decayed = w + 1;
        let (seed, ppm, vault, words) =
            (self.cfg.seed, self.cfg.retention_prob_ppm, self.vault, self.words_per_row);
        let mut bits = 0u64;
        for word in 0..words {
            let h = fault_hash(&[seed, TAG_RETENTION, vault, bank as u64, row, w, word as u64]);
            let xor = flip_mask(h, ppm);
            if xor != 0 {
                mem.corrupt_word(bank, row, word, xor);
                bits += xor.count_ones() as u64;
            }
        }
        bits
    }

    /// Hammer axis, called once per row *activation* (not per row-buffer
    /// hit): bumps the aggressor's lazily-normalized count and, on each
    /// threshold crossing, either disturbs the physically adjacent
    /// victim rows or — under [`Mitigation::Trr`] — refreshes them
    /// instead, erasing the accumulated disturbance and charging the
    /// bank `trr_cost` cycles.
    pub fn on_activation(
        &mut self,
        bank: BankId,
        row: u64,
        cycle: Cycle,
        mem: &mut VaultMemory,
    ) -> ActivationOutcome {
        let mut out = ActivationOutcome::default();
        let window = self.effective_window();
        let w = cycle / window;
        let t = self.tracks.entry((bank, row)).or_default();
        if t.act_window != w {
            t.act_window = w;
            t.acts = 0; // refresh-window edge: disturbance dissipated
        }
        t.acts += 1;
        let threshold = self.cfg.hammer_threshold as u64;
        if threshold == 0 || !t.acts.is_multiple_of(threshold) {
            return out;
        }
        let crossing = t.acts / threshold;
        if self.cfg.mitigation == Mitigation::Trr {
            // Targeted refresh: neighbors are refreshed, not disturbed,
            // and the aggressor's count restarts from zero.
            t.acts = 0;
            out.trr = true;
            out.park_until = Some(cycle.saturating_add(self.cfg.trr_cost as u64));
            return out;
        }
        let (seed, ppm, vault, rows, words) = (
            self.cfg.seed,
            self.cfg.flip_prob_ppm,
            self.vault,
            self.rows,
            self.words_per_row,
        );
        let victims = [row.checked_sub(1), (row + 1 < rows).then_some(row + 1)];
        for (slot, victim) in victims.into_iter().enumerate() {
            let Some(victim) = victim else { continue };
            let mut bits = 0u32;
            for word in 0..words {
                let h = fault_hash(&[
                    seed,
                    TAG_HAMMER,
                    vault,
                    bank as u64,
                    victim,
                    w,
                    crossing,
                    word as u64,
                ]);
                let xor = flip_mask(h, ppm);
                if xor != 0 {
                    mem.corrupt_word(bank, victim, word, xor);
                    bits += xor.count_ones();
                }
            }
            out.flips[slot] = (victim, bits);
            out.flip_count += bits as u64;
        }
        out
    }

    /// Clear all tracking state (device reset).
    pub fn reset(&mut self) {
        self.tracks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::config::StorageMode;

    fn state(cfg: CellFaultConfig) -> (CellFaultState, VaultMemory) {
        let mem = VaultMemory::from_parts(8, 256, 128, 16, StorageMode::Functional);
        (CellFaultState::new(cfg, 0, 256, 128), mem)
    }

    fn hammer_cfg() -> CellFaultConfig {
        CellFaultConfig::default()
            .with_hammer_threshold(4)
            .with_flip_prob_ppm(1_000_000)
            .with_refresh_window(1_000)
    }

    #[test]
    fn ppm_saturates_at_unit_probability() {
        assert!(ppm_hits(u64::MAX, 1_000_000), "unit rate must always fire");
        assert!(ppm_hits(u64::MAX, 2_000_000));
        assert!(!ppm_hits(u64::MAX, 999_999));
        assert!(ppm_hits(0, 1));
        assert!(!ppm_hits(u64::MAX / 2, 1));
    }

    #[test]
    fn flip_mask_is_deterministic_and_scales_with_ppm() {
        assert_eq!(flip_mask(42, 500), flip_mask(42, 500));
        assert_eq!(flip_mask(7, 0), 0);
        assert_eq!(flip_mask(7, 1_000_000), u64::MAX);
        // Across many seeds, a 1% rate flips vastly fewer bits than 50%.
        let count = |ppm| -> u32 { (0..512).map(|s| flip_mask(s, ppm).count_ones()).sum() };
        assert!(count(10_000) < count(500_000) / 4);
    }

    #[test]
    fn threshold_crossing_flips_adjacent_rows_only() {
        let (mut cf, mut mem) = state(hammer_cfg());
        for i in 0..4 {
            let out = cf.on_activation(2, 100, i, &mut mem);
            if i < 3 {
                assert_eq!(out, ActivationOutcome::default());
            } else {
                // 100% flip probability: both neighbors fully flipped.
                assert_eq!(out.flips[0], (99, 128 * 8));
                assert_eq!(out.flips[1], (101, 128 * 8));
                assert_eq!(out.flip_count, 2 * 128 * 8);
            }
        }
        let mut buf = [0u8; 128];
        mem.read(
            hmc_types::DecodedAddr { vault: 0, bank: 2, row: 99, offset: 0 },
            &mut buf,
        )
        .unwrap();
        assert_eq!(buf, [0xff; 128], "victim fully flipped");
        mem.read(
            hmc_types::DecodedAddr { vault: 0, bank: 2, row: 100, offset: 0 },
            &mut buf,
        )
        .unwrap();
        assert_eq!(buf, [0u8; 128], "aggressor itself untouched");
    }

    #[test]
    fn edge_rows_have_one_neighbor() {
        let (mut cf, mut mem) = state(hammer_cfg());
        let mut out = ActivationOutcome::default();
        for i in 0..4 {
            out = cf.on_activation(0, 0, i, &mut mem);
        }
        assert_eq!(out.flips[0], (0, 0), "row -1 does not exist");
        assert_eq!(out.flips[1].0, 1);
        let mut out = ActivationOutcome::default();
        for i in 0..4 {
            out = cf.on_activation(0, 255, i, &mut mem);
        }
        assert_eq!(out.flips[0].0, 254);
        assert_eq!(out.flips[1], (0, 0), "row 256 does not exist");
    }

    #[test]
    fn counts_reset_exactly_at_window_edges() {
        let (mut cf, mut mem) = state(hammer_cfg());
        for i in 0..3 {
            cf.on_activation(0, 10, 997 + i, &mut mem);
        }
        assert_eq!(cf.activation_count(0, 10, 999), 3);
        // Cycle 1000 opens a new window; the count restarts at 1.
        let out = cf.on_activation(0, 10, 1_000, &mut mem);
        assert_eq!(out.flip_count, 0);
        assert_eq!(cf.activation_count(0, 10, 1_000), 1);
        // And the stale count reads as zero from the new window.
        assert_eq!(cf.activation_count(0, 11, 1_000), 0);
    }

    #[test]
    fn lazy_normalization_survives_window_skips() {
        // Jumping several whole windows (fast-forward) must behave as
        // if the counter were reset at every edge in between.
        let (mut cf, mut mem) = state(hammer_cfg());
        for i in 0..3 {
            cf.on_activation(0, 10, i, &mut mem);
        }
        let out = cf.on_activation(0, 10, 5_500, &mut mem);
        assert_eq!(out.flip_count, 0);
        assert_eq!(cf.activation_count(0, 10, 5_500), 1);
    }

    #[test]
    fn trr_fires_instead_of_flipping_and_parks_the_bank() {
        let cfg = hammer_cfg().with_mitigation(Mitigation::Trr);
        let (mut cf, mut mem) = state(cfg);
        let mut trr = 0;
        for i in 0..12 {
            let out = cf.on_activation(1, 50, i, &mut mem);
            assert_eq!(out.flip_count, 0, "TRR prevents all flips");
            if out.trr {
                trr += 1;
                assert_eq!(out.park_until, Some(i + 16));
            }
        }
        // Count resets on each TRR, so crossings repeat every 4 acts.
        assert_eq!(trr, 3);
        assert_eq!(mem.resident_bytes(), 0, "no data was touched");
    }

    #[test]
    fn elevated_refresh_shrinks_the_window() {
        let cfg = hammer_cfg().with_mitigation(Mitigation::ElevatedRefresh);
        let (mut cf, mut mem) = state(cfg);
        assert_eq!(cf.effective_window(), 250);
        // Three activations per 250-cycle window never reach 4.
        let mut flips = 0u64;
        for wnd in 0..4u64 {
            for i in 0..3 {
                flips += cf.on_activation(0, 9, wnd * 250 + i, &mut mem).flip_count;
            }
        }
        assert_eq!(flips, 0, "elevated duty keeps counts under threshold");
    }

    #[test]
    fn retention_decays_once_per_window_past_horizon() {
        let cfg = CellFaultConfig::default()
            .with_hammer_threshold(0)
            .with_retention(100)
            .with_refresh_window(1_000);
        let cfg = CellFaultConfig { retention_prob_ppm: 1_000_000, ..cfg };
        let (mut cf, mut mem) = state(cfg);
        // Early in the window: cells still hold.
        assert_eq!(cf.on_access(3, 40, 50, &mut mem), 0);
        // Past the horizon: full decay (100% here), once.
        assert_eq!(cf.on_access(3, 40, 500, &mut mem), 128 * 8);
        assert_eq!(cf.on_access(3, 40, 600, &mut mem), 0, "once per window");
        // Next window decays again.
        assert_eq!(cf.on_access(3, 40, 1_500, &mut mem), 128 * 8);
    }

    #[test]
    fn retention_never_fires_when_horizon_exceeds_window() {
        let cfg = CellFaultConfig::default()
            .with_hammer_threshold(0)
            .with_retention(2_000)
            .with_refresh_window(1_000);
        let (mut cf, mut mem) = state(cfg);
        for c in (0..10_000).step_by(37) {
            assert_eq!(cf.on_access(0, 0, c, &mut mem), 0);
        }
    }

    #[test]
    fn streams_are_order_independent() {
        // The same set of activations in a different interleaving must
        // produce the same flips — the stateless-hash property that
        // makes thread count irrelevant.
        let run = |pairs: &[(BankId, u64)]| -> u64 {
            let (mut cf, mut mem) = state(hammer_cfg());
            let mut flips = 0;
            for (i, &(bank, row)) in pairs.iter().enumerate() {
                flips += cf.on_activation(bank, row, i as u64 / 2, &mut mem).flip_count;
            }
            flips
        };
        let a: Vec<(BankId, u64)> = (0..16).map(|i| ((i % 2) as BankId, 20 + (i % 2))).collect();
        let b: Vec<(BankId, u64)> = a.iter().rev().copied().collect();
        assert_eq!(run(&a), run(&b));
        assert!(run(&a) > 0);
    }

    #[test]
    fn reset_clears_tracking() {
        let (mut cf, mut mem) = state(hammer_cfg());
        for i in 0..3 {
            cf.on_activation(0, 10, i, &mut mem);
        }
        cf.reset();
        assert_eq!(cf.activation_count(0, 10, 0), 0);
    }
}
