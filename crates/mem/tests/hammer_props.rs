//! Property tests for the cell-fault injection subsystem.
//!
//! These check the `CellFaultState` contract against small independent
//! models over randomized activation schedules:
//!
//!  * activation counters lazily reset at every refresh-window edge,
//!  * disturbance lands only in rows physically adjacent to aggressors
//!    that crossed the hammer threshold — and nowhere else,
//!  * TRR at the spec threshold prevents every flip while firing a
//!    targeted refresh (with its bank-park cost) at each crossing,
//!  * retention decay fires at most once per row per window and only
//!    past the horizon,
//!  * the fault stream is a pure function of the activation multiset:
//!    shuffling the global interleaving leaves the corrupted image
//!    bit-identical (the property that makes shard thread count and
//!    engine mode unable to perturb faults — the engine-level analogue
//!    is enforced by the hmc-conform thread x mode sweep).

use std::collections::HashMap;

use proptest::prelude::*;

use hmc_mem::{CellFaultState, VaultMemory};
use hmc_types::address::DecodedAddr;
use hmc_types::cellfault::{CellFaultConfig, Mitigation};
use hmc_types::config::StorageMode;

const BANKS: u16 = 4;
const ROWS: u64 = 64;
const BLOCK: u32 = 128;
const WINDOW: u64 = 1_000;
const ROW_BITS: u32 = BLOCK * 8;

fn mem() -> VaultMemory {
    VaultMemory::from_parts(BANKS, ROWS, BLOCK, 16, StorageMode::Functional)
}

fn hammer_cfg(threshold: u32, ppm: u32) -> CellFaultConfig {
    CellFaultConfig::default()
        .with_hammer_threshold(threshold)
        .with_flip_prob_ppm(ppm)
        .with_refresh_window(WINDOW)
}

fn row_bytes(mem: &mut VaultMemory, bank: u16, row: u64) -> Vec<u8> {
    let mut buf = vec![0u8; BLOCK as usize];
    mem.read(DecodedAddr { vault: 0, bank, row, offset: 0 }, &mut buf)
        .expect("in-range row read");
    buf
}

/// Seeded Fisher-Yates so schedules shuffle deterministically per case.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        items.swap(i, (seed >> 33) as usize % (i + 1));
    }
}

proptest! {
    /// Counter model: activations accumulate within a refresh window
    /// and read back as zero the moment the window index changes —
    /// regardless of how the schedule hops rows, banks, and windows.
    #[test]
    fn activation_counts_reset_exactly_at_window_edges(
        steps in prop::collection::vec(
            (0u16..BANKS, 0u64..ROWS, 0u64..400), 1..80),
    ) {
        // threshold 0 disables crossings, isolating the pure counter.
        let mut state = CellFaultState::new(hammer_cfg(0, 0), 0, ROWS, BLOCK);
        let mut mem = mem();
        let mut cycle = 0u64;
        let mut model: HashMap<(u16, u64), (u64, u64)> = HashMap::new();
        for &(bank, row, advance) in &steps {
            cycle += advance;
            let w = cycle / WINDOW;
            let slot = model.entry((bank, row)).or_insert((w, 0));
            if slot.0 != w {
                *slot = (w, 0); // window edge: disturbance dissipated
            }
            slot.1 += 1;
            let out = state.on_activation(bank, row, cycle, &mut mem);
            prop_assert_eq!(out.flip_count, 0);
            prop_assert_eq!(state.activation_count(bank, row, cycle), slot.1);
        }
        // Every tracked row reads back as zero one window later.
        for (&(bank, row), &(w, _)) in &model {
            prop_assert_eq!(state.activation_count(bank, row, (w + 1) * WINDOW), 0);
        }
        prop_assert_eq!(mem.resident_bytes(), 0, "counting never touches cells");
    }

    /// With aggressors spaced four rows apart and exactly one threshold
    /// crossing each (at saturating flip probability), corruption is
    /// fully characterized: both neighbors of every aggressor flip all
    /// their bits, and *no other row* — aggressors included — changes.
    #[test]
    fn flips_land_only_adjacent_to_over_threshold_aggressors(
        raw_slots in prop::collection::vec(0u64..15, 1..6),
        threshold in 2u32..8,
        extra in 0u32..2,
        order_seed in any::<u64>(),
    ) {
        let mut slots = raw_slots;
        slots.sort_unstable();
        slots.dedup();
        let aggressors: Vec<u64> = slots.iter().map(|s| 2 + s * 4).collect();
        // `threshold + extra < 2*threshold`: exactly one crossing each.
        let mut schedule: Vec<u64> = aggressors
            .iter()
            .flat_map(|&row| std::iter::repeat_n(row, (threshold + extra) as usize))
            .collect();
        shuffle(&mut schedule, order_seed);

        let cfg = hammer_cfg(threshold, 1_000_000);
        let mut state = CellFaultState::new(cfg, 0, ROWS, BLOCK);
        let mut mem = mem();
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for (i, &row) in schedule.iter().enumerate() {
            let out = state.on_activation(0, row, i as u64, &mut mem);
            let n = counts.entry(row).or_insert(0);
            *n += 1;
            if *n == threshold {
                // The crossing disturbs both neighbors, every bit.
                prop_assert_eq!(out.flips, [(row - 1, ROW_BITS), (row + 1, ROW_BITS)]);
                prop_assert_eq!(out.flip_count, 2 * ROW_BITS as u64);
            } else {
                prop_assert_eq!(out.flip_count, 0, "flip without a crossing");
            }
        }
        let victim = |row: u64| aggressors.iter().any(|&a| row + 1 == a || row == a + 1);
        for row in 0..ROWS {
            let bytes = row_bytes(&mut mem, 0, row);
            let expect = if victim(row) { 0xFFu8 } else { 0x00 };
            prop_assert!(
                bytes.iter().all(|&b| b == expect),
                "row {} corrupted wrongly (victim: {})", row, victim(row)
            );
        }
    }

    /// TRR at the spec threshold: arbitrary single-window schedules
    /// never flip a bit; instead a targeted refresh (with its bank
    /// park) fires at every crossing and restarts the aggressor count.
    #[test]
    fn trr_at_spec_threshold_prevents_all_flips(
        schedule in prop::collection::vec((0u16..BANKS, 1u64..ROWS - 1), 8..120),
        threshold in 1u32..6,
    ) {
        let cfg = hammer_cfg(threshold, 1_000_000).with_mitigation(Mitigation::Trr);
        let trr_cost = cfg.trr_cost as u64;
        let mut state = CellFaultState::new(cfg, 0, ROWS, BLOCK);
        let mut mem = mem();
        let mut counts: HashMap<(u16, u64), u32> = HashMap::new();
        for (i, &(bank, row)) in schedule.iter().enumerate() {
            let cycle = i as u64;
            let out = state.on_activation(bank, row, cycle, &mut mem);
            prop_assert_eq!(out.flip_count, 0, "TRR let a disturbance through");
            let n = counts.entry((bank, row)).or_insert(0);
            *n += 1;
            if *n == threshold {
                prop_assert!(out.trr, "no targeted refresh at the crossing");
                prop_assert_eq!(out.park_until, Some(cycle + trr_cost));
                *n = 0; // refresh erased the accumulated disturbance
            } else {
                prop_assert!(!out.trr);
                prop_assert_eq!(out.park_until, None);
            }
            prop_assert_eq!(state.activation_count(bank, row, cycle), *n as u64);
        }
        prop_assert_eq!(mem.resident_bytes(), 0, "no cell was ever written");
    }

    /// Retention model: a row accessed past the horizon decays exactly
    /// once per refresh window (every bit, at saturating probability);
    /// accesses before the horizon never decay anything.
    #[test]
    fn retention_decays_once_per_window_and_only_past_the_horizon(
        accesses in prop::collection::vec((0u64..ROWS, 0u64..700), 1..80),
    ) {
        const HORIZON: u64 = 400;
        let cfg = CellFaultConfig {
            retention_prob_ppm: 1_000_000,
            ..CellFaultConfig::default()
                .with_hammer_threshold(0)
                .with_retention(HORIZON)
                .with_refresh_window(WINDOW)
        };
        let mut state = CellFaultState::new(cfg, 0, ROWS, BLOCK);
        let mut mem = mem();
        let mut decayed: HashMap<u64, u64> = HashMap::new(); // row -> window + 1
        let mut cycle = 0u64;
        for &(row, advance) in &accesses {
            cycle += advance;
            let w = cycle / WINDOW;
            let fresh = cycle % WINDOW >= HORIZON && decayed.get(&row) != Some(&(w + 1));
            let bits = state.on_access(0, row, cycle, &mut mem);
            if fresh {
                prop_assert_eq!(bits, ROW_BITS as u64, "full decay expected");
                decayed.insert(row, w + 1);
            } else {
                prop_assert_eq!(bits, 0, "decay before horizon or twice in a window");
            }
        }
    }

    /// Determinism: the same multiset of (bank, row) activations —
    /// delivered in shuffled global interleavings, with overlapping
    /// victims and repeated crossings allowed — corrupts the exact
    /// same cells and tallies the exact same flip count.
    #[test]
    fn fault_streams_are_bit_identical_across_interleavings(
        schedule in prop::collection::vec((0u16..BANKS, 1u64..ROWS - 1), 4..60),
        seed in any::<u64>(),
        order_seeds in prop::collection::vec(any::<u64>(), 2..4),
    ) {
        let run = |order: &[(u16, u64)]| {
            let cfg = hammer_cfg(3, 300_000).with_seed(seed);
            let mut state = CellFaultState::new(cfg, 0, ROWS, BLOCK);
            let mut mem = mem();
            let mut flips = 0u64;
            // All inside window 0: the cycle can't reorder crossings.
            for (i, &(bank, row)) in order.iter().enumerate() {
                flips += state.on_activation(bank, row, i as u64, &mut mem).flip_count;
            }
            let mut image = Vec::with_capacity(BANKS as usize * ROWS as usize * BLOCK as usize);
            for bank in 0..BANKS {
                for row in 0..ROWS {
                    image.extend_from_slice(&row_bytes(&mut mem, bank, row));
                }
            }
            (flips, image)
        };
        let baseline = run(&schedule);
        for &order_seed in &order_seeds {
            let mut permuted = schedule.clone();
            shuffle(&mut permuted, order_seed);
            let outcome = run(&permuted);
            prop_assert_eq!(&outcome.0, &baseline.0, "flip totals diverged");
            prop_assert_eq!(&outcome.1, &baseline.1, "corrupted image diverged");
        }
    }
}
