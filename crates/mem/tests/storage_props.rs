//! Model-based property tests of the storage substrate: the sparse store
//! against a byte-map reference, and banks against an operation model.

use std::collections::HashMap;

use proptest::prelude::*;

use hmc_mem::{Bank, SparseStore, VaultMemory};
use hmc_types::address::DecodedAddr;
use hmc_types::config::StorageMode;

proptest! {
    #[test]
    fn sparse_store_matches_a_byte_map(
        ops in prop::collection::vec(
            (any::<u32>(), prop::collection::vec(any::<u8>(), 1..64)),
            1..60,
        )
    ) {
        let capacity = 1u64 << 24;
        let mut store = SparseStore::new(capacity);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (offset, data) in &ops {
            let offset = *offset as u64 % (capacity - data.len() as u64);
            store.write(offset, data);
            for (i, &b) in data.iter().enumerate() {
                model.insert(offset + i as u64, b);
            }
        }
        // Verify all written bytes plus a fringe of unwritten ones.
        for (&addr, &expect) in &model {
            let mut buf = [0u8; 1];
            store.read(addr, &mut buf);
            prop_assert_eq!(buf[0], expect, "at {}", addr);
        }
        let mut buf = [0u8; 1];
        for probe in [0u64, capacity / 2, capacity - 1] {
            store.read(probe, &mut buf);
            prop_assert_eq!(buf[0], *model.get(&probe).unwrap_or(&0));
        }
    }

    #[test]
    fn bank_rows_behave_like_independent_arrays(
        writes in prop::collection::vec((0u64..32, 0u32..4, any::<u8>()), 1..40)
    ) {
        // Bank: 32 rows x 128 bytes; write 32-byte chunks at 4 offsets.
        let mut bank = Bank::new(32, 128, 16, StorageMode::Functional);
        let mut model: HashMap<(u64, u32), [u8; 32]> = HashMap::new();
        for &(row, slot, val) in &writes {
            let offset = slot * 32;
            let data = [val; 32];
            bank.write(row, offset, &data).unwrap();
            model.insert((row, slot), data);
        }
        for (&(row, slot), expect) in &model {
            let mut buf = [0u8; 32];
            bank.read(row, slot * 32, &mut buf).unwrap();
            prop_assert_eq!(&buf, expect);
        }
        // Row-buffer accounting: hits + misses == total accesses.
        let s = bank.stats();
        prop_assert_eq!(
            s.row_hits + s.row_misses,
            s.reads + s.writes + s.atomics
        );
    }

    #[test]
    fn atomics_commute_with_their_arithmetic_model(
        seed0 in any::<u64>(),
        seed1 in any::<u64>(),
        adds in prop::collection::vec((any::<u64>(), any::<u64>()), 1..20)
    ) {
        let mut bank = Bank::new(4, 128, 16, StorageMode::Functional);
        bank.write(0, 0, &seed0.to_le_bytes()).unwrap();
        bank.write(0, 8, &seed1.to_le_bytes()).unwrap();
        let (mut m0, mut m1) = (seed0, seed1);
        for &(a, b) in &adds {
            bank.two_add8(0, 0, a, b).unwrap();
            m0 = m0.wrapping_add(a);
            m1 = m1.wrapping_add(b);
        }
        let mut buf = [0u8; 8];
        bank.read(0, 0, &mut buf).unwrap();
        prop_assert_eq!(u64::from_le_bytes(buf), m0);
        bank.read(0, 8, &mut buf).unwrap();
        prop_assert_eq!(u64::from_le_bytes(buf), m1);
    }

    #[test]
    fn bit_write_only_touches_masked_bits(
        initial in any::<u64>(),
        data in any::<u64>(),
        mask in any::<u64>(),
    ) {
        let mut bank = Bank::new(4, 128, 16, StorageMode::Functional);
        bank.write(1, 0, &initial.to_le_bytes()).unwrap();
        bank.bit_write(1, 0, data, mask).unwrap();
        let mut buf = [0u8; 8];
        bank.read(1, 0, &mut buf).unwrap();
        prop_assert_eq!(
            u64::from_le_bytes(buf),
            (initial & !mask) | (data & mask)
        );
    }

    #[test]
    fn vault_memory_isolates_banks(
        ops in prop::collection::vec((0u16..8, 0u64..16, any::<u8>()), 1..40)
    ) {
        let mut vm = VaultMemory::from_parts(8, 16, 128, 16, StorageMode::Functional);
        let mut model: HashMap<(u16, u64), u8> = HashMap::new();
        for &(bank, row, val) in &ops {
            let at = DecodedAddr { vault: 0, bank, row, offset: 0 };
            vm.write(at, &[val; 16]).unwrap();
            model.insert((bank, row), val);
        }
        for (&(bank, row), &val) in &model {
            let at = DecodedAddr { vault: 0, bank, row, offset: 0 };
            let mut buf = [0u8; 16];
            vm.read(at, &mut buf).unwrap();
            prop_assert_eq!(buf, [val; 16]);
        }
    }

    #[test]
    fn timing_only_banks_never_allocate(
        ops in prop::collection::vec((0u64..64, any::<u8>()), 1..50)
    ) {
        let mut bank = Bank::new(64, 128, 16, StorageMode::TimingOnly);
        for &(row, val) in &ops {
            bank.write(row, 0, &[val; 64]).unwrap();
        }
        prop_assert_eq!(bank.resident_bytes(), 0);
        let s = bank.stats();
        prop_assert_eq!(s.writes, ops.len() as u64);
    }
}
